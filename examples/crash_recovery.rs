//! Crash-recovery without changing a line of the consensus algorithm.
//!
//! Section 3.3 of the paper: "Without any changes, Algorithm 1 can be used
//! in the crash-recovery model. Handling of recoveries is done at a lower
//! layer." This example shows both layers:
//!
//! 1. at the HO level, OneThirdRule rides through a crash-recovery pattern
//!    expressed purely as transmission faults;
//! 2. at the system level, Algorithm 2 (the predicate implementation)
//!    absorbs real crashes with stable storage while the upper layer stays
//!    untouched.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use heardof::core::adversary::CrashRecovery;
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::round::Round;
use heardof::predicates::alg2::Alg2Program;
use heardof::predicates::bounds::BoundParams;
use heardof::sim::{
    BadPeriodConfig, GoodKind, Period, PeriodKind, Schedule, SimConfig, Simulator, TimePoint,
};

fn main() {
    let n = 4;

    // ------------------------------------------------------------------
    // Layer 1: the HO model. A process being down for a while is just a
    // run of rounds in which nobody hears it and it hears nobody.
    println!("— HO level: crash-recovery as transmission faults —");
    let mut adv = CrashRecovery::new(
        n,
        &[
            (0, Round(1), Round(4)), // p0 down for rounds 1..=4
            (2, Round(3), Round(5)), // p2 down for rounds 3..=5
        ],
    );
    let mut exec = RoundExecutor::new(OneThirdRule::new(n), vec![9u64, 4, 7, 5]);
    let decided = exec.run_until_all_decided(&mut adv, 30).expect("decides");
    println!(
        "all four processes decided {:?} by round {decided:?} (p0 and p2 were down part of the time)",
        exec.decisions()[0],
    );

    // ------------------------------------------------------------------
    // Layer 2: the system model. Real crashes: volatile state is lost,
    // Algorithm 2 restarts from stable storage (rp, sp) — the consensus
    // algorithm on top is the same OneThirdRule instance.
    println!("\n— system level: real crashes, stable storage, same algorithm —");
    let params = BoundParams::new(n, 1.0, 2.0);
    let bad = BadPeriodConfig {
        loss: 0.4,
        crash_prob: 0.05, // processes crash and recover during the bad period
        min_down: 3.0,
        max_down: 15.0,
        ..BadPeriodConfig::default()
    };
    let schedule = Schedule::new(vec![
        Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Bad(bad),
        },
        Period {
            start: TimePoint::new(80.0),
            kind: PeriodKind::Good {
                pi0: ProcessSet::full(n),
                kind: GoodKind::PiDown,
            },
        },
    ]);
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(3);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                [9u64, 4, 7, 5][p],
                params.alg2_timeout(),
            )
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let decided = sim.run_until(TimePoint::new(500.0), |s| {
        s.programs().iter().all(|p| p.decision().is_some())
    });
    assert!(decided, "good period brings the decision");
    let crashes: u64 = sim.programs().iter().map(|p| p.crash_count()).sum();
    println!(
        "decision {:?} at t = {:.1} after {} crash(es) and {} recoveries",
        sim.program(ProcessId::new(0)).decision().unwrap(),
        sim.now().get(),
        crashes,
        sim.stats().recoveries,
    );
    println!(
        "messages: {} sent, {} delivered, {} dropped",
        sim.stats().transmissions,
        sim.stats().delivered(),
        sim.stats().dropped,
    );
    println!("\nSame OneThirdRule; the gap the failure-detector model suffers from is gone.");
}
