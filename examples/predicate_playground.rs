//! Predicate playground: communication predicates as first-class values.
//!
//! Builds heard-of traces by hand and with adversaries, then evaluates the
//! paper's predicates (Table 1 and §4.2) against them — including the
//! implications `P_su ⇒ P_k` and `P2_otr ⇒ P_otr^restr`.
//!
//! ```sh
//! cargo run --example predicate_playground
//! ```

use heardof::core::adversary::{Adversary, CrashRecovery, KernelOnly, RandomLoss};
use heardof::core::predicate::{
    find_p2otr_witness, find_restricted_otr_witness, Kernel, MajorityEachRound, NonEmptyKernel,
    P2Otr, Potr, PotrRestricted, Predicate, SpaceUniform,
};
use heardof::core::process::ProcessSet;
use heardof::core::round::Round;
use heardof::core::trace::Trace;

fn record(adv: &mut impl Adversary, n: usize, rounds: u64) -> Trace {
    let mut t = Trace::new(n);
    for r in 1..=rounds {
        t.push_round(adv.ho_sets(Round(r), n));
    }
    t
}

fn check(name: &str, p: &dyn Predicate, t: &Trace) {
    println!(
        "{:>28}  {}",
        name,
        if p.holds(t) { "✓ holds" } else { "✗ fails" }
    );
}

fn main() {
    let n = 4;
    let pi0 = ProcessSet::from_indices(0..3);

    // --- A handcrafted trace: junk, then a uniform round, then a kernel
    //     round (exactly the P2_otr pattern a good period produces). ------
    let mut t = Trace::new(n);
    t.push_round(vec![
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::from_indices([2]),
        ProcessSet::from_indices([3]),
    ]);
    t.push_round(vec![pi0, pi0, pi0, pi0]); // space uniform over Π0
    t.push_round(vec![ProcessSet::full(n), pi0, pi0, pi0]); // kernel round

    println!("handcrafted trace ({} rounds):", t.rounds());
    check(
        "P_su(Π0, 2, 2)",
        &SpaceUniform::new(pi0, Round(2), Round(2)),
        &t,
    );
    check("P_k(Π0, 2, 3)", &Kernel::new(pi0, Round(2), Round(3)), &t);
    check("P2_otr(Π0)", &P2Otr::new(pi0), &t);
    check("P_otr", &Potr, &t);
    check("P_otr^restr", &PotrRestricted, &t);
    check("majority each round", &MajorityEachRound, &t);
    if let Some(r0) = find_p2otr_witness(&t, pi0) {
        println!("{:>28}  r0 = {r0:?}", "P2_otr witness");
    }
    if let Some((r0, set)) = find_restricted_otr_witness(&t) {
        println!("{:>28}  r0 = {r0:?}, Π0 = {set:?}", "P_otr^restr witness");
    }

    // --- Adversary-generated traces. -----------------------------------
    println!("\nrandom loss 40%, 30 rounds:");
    let t = record(&mut RandomLoss::new(0.4, 7), n, 30);
    check("P_otr", &Potr, &t);
    check("non-empty kernel ∀r", &NonEmptyKernel, &t);
    check("majority each round", &MajorityEachRound, &t);

    println!("\nkernel-guaranteed chaos, 30 rounds:");
    let t = record(&mut KernelOnly::new(0.8, 9), n, 30);
    check("non-empty kernel ∀r", &NonEmptyKernel, &t);
    check("P_otr", &Potr, &t);

    println!("\ncrash-recovery (p3 down rounds 2..=4), 8 rounds:");
    let t = record(&mut CrashRecovery::new(n, &[(3, Round(2), Round(4))]), n, 8);
    check("P_otr", &Potr, &t);
    check("P_otr^restr", &PotrRestricted, &t);

    // Combinators compose predicates like values.
    println!("\ncombinators:");
    let both = MajorityEachRound.and(NonEmptyKernel);
    println!("  {}", both.describe());
    check("majority ∧ kernel", &both, &t);
}
