//! Failure detectors vs communication predicates (the paper's §1 + App. A).
//!
//! Three concrete demonstrations of the paper's criticisms of the
//! failure-detector model:
//!
//! 1. **Message loss blocks Chandra–Toueg**: the ◇S algorithm assumes
//!    reliable links; a lost coordinator message from a *correct* (hence
//!    never-suspected) coordinator blocks phase 3 forever.
//! 2. **Crash-recovery forces a different, heavier algorithm**: Aguilera
//!    et al. need ◇Su epochs, stable storage and retransmission.
//! 3. **The HO algorithm is the same code in every model** and tolerates
//!    loss natively.
//!
//! ```sh
//! cargo run --example fd_comparison
//! ```

use heardof::core::adversary::RandomLoss;
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::fd::harness::{run_aguilera, run_chandra_toueg, FdScenario};

fn main() {
    let n = 3;

    // --- 1. Chandra–Toueg under 30% message loss. ----------------------
    println!("— Chandra–Toueg (◇S, crash-stop) under 30% message loss —");
    let mut blocked = 0;
    for seed in 0..5 {
        let out = run_chandra_toueg(&FdScenario::lossy(n, 0.3, seed));
        println!(
            "  seed {seed}: {}/{} decided{}",
            out.decided_count(),
            n,
            if out.decided_count() < n {
                "   ← BLOCKED"
            } else {
                ""
            }
        );
        blocked += usize::from(out.decided_count() < n);
    }
    println!("  blocked in {blocked}/5 runs: FD algorithms need reliable links.\n");

    // --- 2. Aguilera et al. under the same loss. ------------------------
    println!("— Aguilera et al. (◇Su, crash-recovery) under the same loss —");
    for seed in 0..3 {
        let out = run_aguilera(&FdScenario::lossy(n, 0.3, seed));
        println!(
            "  seed {seed}: {}/{} decided, {} messages, {} stable-storage writes",
            out.decided_count(),
            n,
            out.messages_sent,
            out.stable_writes
        );
    }
    println!("  live — but at the cost of retransmission + stable storage + ◇Su epochs.\n");

    // --- 3. The HO algorithm under the same loss. ------------------------
    println!("— OneThirdRule in the HO model under 30% transmission faults —");
    for seed in 0..3 {
        let mut adv = RandomLoss::new(0.3, seed);
        let mut exec = RoundExecutor::new(OneThirdRule::new(n), vec![10, 11, 12]);
        match exec.run_until_all_decided(&mut adv, 100) {
            Ok(r) => println!("  seed {seed}: all decided in {r:?} rounds"),
            Err(e) => println!("  seed {seed}: {e}"),
        }
    }
    println!("\n  One algorithm, no storage, no detector, loss-tolerant by construction:");
    println!("  transmission faults are just HO sets the predicate layer reports.");
}
