//! A replicated log from repeated consensus — the application the paper's
//! first sentence motivates ("consensus is related to replication and
//! appears when implementing atomic broadcast…").
//!
//! Part 1: the single-slot construction. Five replicas order a stream of
//! commands by running one OneThirdRule instance per log slot, one slot
//! at a time. Transmission faults (here: 30% random loss, plus a replica
//! isolated for a while) delay slots but can never fork the log.
//!
//! Part 2: the production shape — `ho-rsm`'s pipelined [`LogDriver`]
//! drives a client workload end-to-end under a **crash-recovery**
//! adversary: four slots in flight per round, batched proposals, decided
//! slots applied in order, crashed replicas backfilled after recovery.
//! The applied log is printed and checked for prefix agreement and
//! exactly-once apply.
//!
//! ```sh
//! cargo run --example replicated_log
//! ```

use heardof::core::adversary::{CrashRecovery, FullDelivery, RandomLoss, Scripted};
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::round::Round;
use heardof::core::sequence::RepeatedConsensus;
use heardof::rsm::{decode_slot_value, LogDriver, RsmConfig, WorkloadSpec};

/// "Client commands": replica p proposes command `100·slot + p` for each
/// slot — think of it as each replica offering its own next request.
fn proposals(p: ProcessId, slot: u64) -> u64 {
    100 * slot + p.index() as u64
}

fn main() {
    let n = 5;
    let alg = RepeatedConsensus::new(OneThirdRule::new(n), proposals as fn(ProcessId, u64) -> u64);
    let mut exec = RoundExecutor::new(alg, (0..n as u64).collect());

    // Phase 1: healthy network, 10 rounds → 5 slots decided everywhere.
    exec.run(&mut FullDelivery, 10).unwrap();
    println!("after 10 healthy rounds:");
    for (p, s) in exec.states().iter().enumerate() {
        println!("  replica {p}: {} slots  {:?}", s.log().len(), s.log());
    }

    // Phase 2: replica 4 partitioned away for 12 rounds; the quorum keeps
    // ordering commands. (Scripted is absolute-round-indexed: pad over the
    // 10 rounds already executed.)
    let quorum = ProcessSet::from_indices(0..4);
    let solo = ProcessSet::from_indices([4]);
    let full = ProcessSet::full(n);
    let mut script = vec![vec![full; n]; 10];
    script.extend(vec![vec![quorum, quorum, quorum, quorum, solo]; 12]);
    let mut adv = Scripted::new(script);
    exec.run(&mut adv, 12).unwrap();
    println!("\nafter 12 rounds with replica 4 isolated:");
    for (p, s) in exec.states().iter().enumerate() {
        println!("  replica {p}: {} slots", s.log().len());
    }

    // Phase 3: the partition heals under a lossy network; replica 4 catches
    // up from the decided prefixes piggybacked on every message.
    let mut adv = RandomLoss::new(0.3, 7);
    exec.run(&mut adv, 30).unwrap();
    println!("\nafter healing + 30 rounds at 30% loss:");
    let logs: Vec<_> = exec.states().iter().map(|s| s.log().to_vec()).collect();
    for (p, log) in logs.iter().enumerate() {
        println!("  replica {p}: {} slots", log.len());
    }

    // The invariant that makes this a replicated log: prefix consistency.
    for a in &logs {
        for b in &logs {
            let common = a.len().min(b.len());
            assert_eq!(&a[..common], &b[..common], "log fork!");
        }
    }
    println!("\nprefix consistency verified across all replicas ✓");
    println!(
        "first slots: {:?} (slot k = smallest proposal 100k)",
        &logs
            .iter()
            .map(|l| l.len())
            .min()
            .map(|m| &logs[0][..m.min(4)])
    );

    // ── Part 2: the pipelined log service under crash-recovery ──────────
    //
    // The production shape: a LogDriver keeps four slots in flight per
    // round, batches a fixed-rate client workload into proposals, and the
    // slot-keyed value ordering rotates which replica's batch wins. Every
    // replica is down for a staggered window; the quorum keeps ordering
    // and backfill catches the recovered replicas up.
    println!("\n=== pipelined log service (ho-rsm), crash-recovery adversary ===");
    let n = 5;
    let mut service = LogDriver::new(
        OneThirdRule::new(n),
        WorkloadSpec::FixedRate { per_round: 2 },
        RsmConfig::with_depth(4),
        42,
    );
    let outages: Vec<(usize, Round, Round)> = (0..n)
        .map(|q| (q, Round(5 + 4 * q as u64), Round(10 + 4 * q as u64)))
        .collect();
    println!("outages: each replica down for 5 rounds, staggered: {outages:?}");
    let mut adv = CrashRecovery::new(n, &outages);
    service.run(&mut adv, 60).unwrap();

    let check = service.check();
    assert!(
        check.is_ok(),
        "log invariant violated: {:?}",
        check.violation
    );
    let stats = service.service_stats();
    println!(
        "after 60 rounds: {} slots ordered ({} no-ops), {} commands applied, \
         {} requeued after lost slots",
        check.slots, check.noop_slots, check.commands, stats.requeued_commands
    );
    println!(
        "apply latency (rounds): p50={:?} p99={:?} max={:?}",
        stats.latency_percentile(50),
        stats.latency_percentile(99),
        stats.latency_percentile(100),
    );

    println!("\napplied log (slot: proposer commands [first, first+count)):");
    let logs = service.applied_logs();
    let longest = logs.iter().max_by_key(|l| l.len()).unwrap();
    for (slot, &value) in longest.iter().enumerate().take(12) {
        let b = decode_slot_value(slot as u64, value);
        println!(
            "  slot {slot:2}: replica {} × {} commands [{}..{})",
            b.proposer,
            b.count,
            b.first,
            b.first + b.count
        );
    }
    if longest.len() > 12 {
        println!("  … {} more slots", longest.len() - 12);
    }
    println!(
        "replica log lengths: {:?} — prefix agreement + exactly-once verified ✓",
        logs.iter().map(|l| l.len()).collect::<Vec<_>>()
    );
}
