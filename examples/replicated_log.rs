//! A replicated log from repeated consensus — the application the paper's
//! first sentence motivates ("consensus is related to replication and
//! appears when implementing atomic broadcast…").
//!
//! Five replicas order a stream of client commands by running one
//! OneThirdRule instance per log slot, multiplexed over the same rounds.
//! Transmission faults (here: 30% random loss, plus a replica isolated for
//! a while) delay slots but can never fork the log.
//!
//! ```sh
//! cargo run --example replicated_log
//! ```

use heardof::core::adversary::{FullDelivery, RandomLoss, Scripted};
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::sequence::RepeatedConsensus;

/// "Client commands": replica p proposes command `100·slot + p` for each
/// slot — think of it as each replica offering its own next request.
fn proposals(p: ProcessId, slot: u64) -> u64 {
    100 * slot + p.index() as u64
}

fn main() {
    let n = 5;
    let alg = RepeatedConsensus::new(OneThirdRule::new(n), proposals as fn(ProcessId, u64) -> u64);
    let mut exec = RoundExecutor::new(alg, (0..n as u64).collect());

    // Phase 1: healthy network, 10 rounds → 5 slots decided everywhere.
    exec.run(&mut FullDelivery, 10).unwrap();
    println!("after 10 healthy rounds:");
    for (p, s) in exec.states().iter().enumerate() {
        println!("  replica {p}: {} slots  {:?}", s.log().len(), s.log());
    }

    // Phase 2: replica 4 partitioned away for 12 rounds; the quorum keeps
    // ordering commands. (Scripted is absolute-round-indexed: pad over the
    // 10 rounds already executed.)
    let quorum = ProcessSet::from_indices(0..4);
    let solo = ProcessSet::from_indices([4]);
    let full = ProcessSet::full(n);
    let mut script = vec![vec![full; n]; 10];
    script.extend(vec![vec![quorum, quorum, quorum, quorum, solo]; 12]);
    let mut adv = Scripted::new(script);
    exec.run(&mut adv, 12).unwrap();
    println!("\nafter 12 rounds with replica 4 isolated:");
    for (p, s) in exec.states().iter().enumerate() {
        println!("  replica {p}: {} slots", s.log().len());
    }

    // Phase 3: the partition heals under a lossy network; replica 4 catches
    // up from the decided prefixes piggybacked on every message.
    let mut adv = RandomLoss::new(0.3, 7);
    exec.run(&mut adv, 30).unwrap();
    println!("\nafter healing + 30 rounds at 30% loss:");
    let logs: Vec<_> = exec.states().iter().map(|s| s.log().to_vec()).collect();
    for (p, log) in logs.iter().enumerate() {
        println!("  replica {p}: {} slots", log.len());
    }

    // The invariant that makes this a replicated log: prefix consistency.
    for a in &logs {
        for b in &logs {
            let common = a.len().min(b.len());
            assert_eq!(&a[..common], &b[..common], "log fork!");
        }
    }
    println!("\nprefix consistency verified across all replicas ✓");
    println!(
        "first slots: {:?} (slot k = smallest proposal 100k)",
        &logs
            .iter()
            .map(|l| l.len())
            .min()
            .map(|m| &logs[0][..m.min(4)])
    );
}
