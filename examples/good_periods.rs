//! Good periods, bad periods, and the paper's timing theorems.
//!
//! The system alternates between bad periods (loss, crashes, asynchrony)
//! and good periods where a subset π0 is synchronous. The paper computes
//! the *minimal good-period length* for the predicate layer to deliver its
//! guarantee; this example measures it empirically for both implementations:
//!
//! * Algorithm 2 in a π0-down good period vs Theorems 3 and 5;
//! * Algorithm 3 in a π0-arbitrary good period vs Theorems 6 and 7;
//! * the full stack (Alg. 3 + macro-rounds + OneThirdRule) vs §4.2.2(c).
//!
//! ```sh
//! cargo run --example good_periods
//! ```

use heardof::core::process::ProcessSet;
use heardof::predicates::bounds::BoundParams;
use heardof::predicates::measure::{
    measure_alg2_space_uniform, measure_alg3_kernel, measure_full_stack, Scenario,
};

fn main() {
    let params = BoundParams::new(4, 1.0, 2.0);
    println!(
        "n = {}, φ = {}, δ = {} (normalized: Φ− = 1)\n",
        params.n, params.phi, params.delta
    );

    // --- Algorithm 2, π0-down good periods. ----------------------------
    println!("Algorithm 2 → P_su(π0, ρ0, ρ0+1)   [two uniform rounds]");
    let m = measure_alg2_space_uniform(params, ProcessSet::full(4), 2, Scenario::Initial, 1);
    println!(
        "  initial good period:    measured {:>6.1}   Theorem 5 bound {:>6.1}",
        m.empirical_length().unwrap(),
        m.bound
    );
    let m = measure_alg2_space_uniform(params, ProcessSet::full(4), 2, Scenario::rough(60.0), 1);
    println!(
        "  mid-run good period:    measured {:>6.1}   Theorem 3 bound {:>6.1}",
        m.empirical_length().unwrap(),
        m.bound
    );
    println!(
        "  nice-vs-not-nice bound ratio at x = 2: {:.2}  (the paper's ≈ 3/2)\n",
        params.nice_ratio(2)
    );

    // --- Algorithm 3, π0-arbitrary good periods. ------------------------
    println!("Algorithm 3 → P_k(π0, ρ0, ρ0+1)    [two kernel rounds, f = 1]");
    let m = measure_alg3_kernel(params, 1, 2, Scenario::Initial, 1);
    println!(
        "  initial good period:    measured {:>6.1}   Theorem 7 bound {:>6.1}",
        m.empirical_length().unwrap(),
        m.bound
    );
    let m = measure_alg3_kernel(params, 1, 2, Scenario::rough(60.0), 1);
    println!(
        "  mid-run good period:    measured {:>6.1}   Theorem 6 bound {:>6.1}\n",
        m.empirical_length().unwrap(),
        m.bound
    );

    // --- The full stack. ------------------------------------------------
    println!("Full stack (Alg. 3 + Alg. 4 + OneThirdRule), f = 1");
    let out = measure_full_stack(params, 1, Scenario::rough(60.0), 1);
    println!(
        "  consensus in a π0-arbitrary good period: measured {:>6.1}   §4.2.2(c) bound {:>6.1}",
        out.measurement.empirical_length().unwrap(),
        out.measurement.bound
    );
    let decided: Vec<_> = out.decisions.iter().flatten().collect();
    println!("  decisions: {decided:?} ({} send steps)", out.send_steps);
    println!("\nAll measured lengths sit below the worst-case bounds, as the theorems promise.");
}
