//! Quickstart: consensus with communication predicates in 60 lines.
//!
//! Runs the paper's Algorithm 1 (OneThirdRule) in the Heard-Of model,
//! first over a fault-free network, then under heavy transmission faults
//! that eventually clear — the `P_otr` predicate tells us exactly when a
//! decision is guaranteed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use heardof::core::adversary::{EventuallyGood, FullDelivery};
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::predicate::{Potr, Predicate};
use heardof::core::process::ProcessSet;

fn main() {
    let n = 5;

    // --- A nice run: no transmission faults at all. -------------------
    let mut exec = RoundExecutor::new(OneThirdRule::new(n), vec![30u64, 10, 50, 20, 40]);
    let decided_at = exec
        .run_until_all_decided(&mut FullDelivery, 10)
        .expect("decides");
    println!(
        "nice run:    all decided {:?} in round {decided_at:?}",
        exec.decisions()[0]
    );

    // --- A rough run: 8 rounds of 70% message loss, then stability. ----
    // The adversary model is the paper's DT fault class: any transmission
    // may fail, transiently. No process "crashes"; no failure detector is
    // consulted; the algorithm is byte-for-byte the same.
    let mut adversary = EventuallyGood::new(8, ProcessSet::full(n), 0.7, 42);
    let mut exec = RoundExecutor::new(OneThirdRule::new(n), vec![30u64, 10, 50, 20, 40]);
    let decided_at = exec
        .run_until_all_decided(&mut adversary, 50)
        .expect("decides once the predicate holds");
    println!(
        "rough run:   all decided {:?} in round {decided_at:?}",
        exec.decisions()[0]
    );

    // The interface between the two layers is the communication predicate:
    // the trace of heard-of sets witnesses P_otr, so Theorem 1 applies.
    println!("P_otr holds: {}", Potr.holds(exec.trace()));
    println!(
        "trace:       {} rounds, decision = smallest initial value = 10",
        exec.trace().rounds()
    );
}
