//! # heardof
//!
//! A complete implementation of *"Communication Predicates: A High-Level
//! Abstraction for Coping with Transient and Dynamic Faults"* (Hutle &
//! Schiper, DSN 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the Heard-Of round model: algorithms (`OneThirdRule`,
//!   `UniformVoting`, `LastVoting`), communication predicates as first-class
//!   values, round executors, adversaries and the `P_k → P_su` translation.
//! * [`sim`] — the DLS-style system-level simulator with real-valued time,
//!   send/receive/make-ready steps and good/bad period schedules.
//! * [`predicates`] — the predicate implementation layer: Algorithm 2
//!   (π0-down good periods), Algorithm 3 (π0-arbitrary good periods),
//!   macro-round translation, and the closed-form good-period bounds of
//!   Theorems 3, 5, 6 and 7.
//! * [`fd`] — the failure-detector baselines from the paper's appendix:
//!   Chandra–Toueg ◇S consensus (crash-stop) and Aguilera et al. ◇Su
//!   consensus (crash-recovery).
//! * [`rsm`] — the replicated-log service: repeated consensus pipelined
//!   over the round runtime (multi-slot windows, client workloads, applied-
//!   log checker) — the layer real systems consume consensus through.
//! * [`harness`] — the parallel scenario-sweep harness: thousands of
//!   (algorithm × adversary × size × seed) runs fanned across every core,
//!   with per-scenario verdicts and SendPlan message accounting.
//!
//! ## Quick start
//!
//! ```
//! use heardof::core::algorithms::OneThirdRule;
//! use heardof::core::adversary::FullDelivery;
//! use heardof::core::executor::RoundExecutor;
//!
//! // Four processes propose 0, 1, 2, 3; with perfect communication the
//! // OneThirdRule algorithm decides the smallest value in two rounds.
//! let alg = OneThirdRule::new(4);
//! let mut exec = RoundExecutor::new(alg, vec![0u64, 1, 2, 3]);
//! let mut adversary = FullDelivery;
//! exec.run_until_all_decided(&mut adversary, 10).unwrap();
//! assert!(exec.decisions().iter().all(|d| *d == Some(0)));
//! ```

pub use ho_core as core;
pub use ho_fd as fd;
pub use ho_harness as harness;
pub use ho_predicates as predicates;
pub use ho_rsm as rsm;
pub use ho_sim as sim;
