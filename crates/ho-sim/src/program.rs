//! The step-machine interface between processes and the simulator.
//!
//! Processes in the system model execute a sequence of *atomic steps*:
//! **send steps** (send a message to one or all processes, plus local
//! computation) and **receive steps** (receive at most one message from the
//! local buffer, plus local computation). The engine drives a [`Program`]
//! through these steps; the program never sees the clock directly — only
//! its own steps, exactly as in the paper's model.
//!
//! Sending is expressed as a [`SendPlan`] — the same closed form of the
//! sending function `S_p^r` the round-synchronous executor consumes — so
//! both execution machines share one message kernel: a broadcast plan
//! carries one pooled payload that the engine fans out to `n` destinations
//! by reference count, and recipients receive [`WireMsg`] handles that keep
//! the payload alive (generation-checked) for as long as they hold it.

use ho_core::executor::MessageStats;
use ho_core::pool::PooledPayload;
use ho_core::process::ProcessId;
use ho_core::send_plan::SendPlan;

/// What a process does in its next atomic step.
#[derive(Clone, Debug, PartialEq)]
pub enum StepKind<M> {
    /// A send step: the process's send plan for this step. A
    /// [`SendPlan::Broadcast`] is `send_p(m) to all` (every process in Π,
    /// the sender included, hears one shared payload); a
    /// [`SendPlan::Unicast`] addresses explicit destinations;
    /// [`SendPlan::Silent`] is a send step that sends nothing.
    Send(SendPlan<M>),
    /// A receive step: the engine pops one buffered message chosen by
    /// [`Program::select_message`] and hands it to
    /// [`Program::on_receive`]; if the buffer is empty, the empty message
    /// `λ` (`None`) is received.
    Receive,
}

impl<M> StepKind<M> {
    /// A broadcast send step (`send ⟨m⟩ to all`).
    #[must_use]
    pub fn send_all(message: M) -> Self {
        StepKind::Send(SendPlan::broadcast(message))
    }

    /// A send step addressed to a single process.
    #[must_use]
    pub fn send_to(destination: ProcessId, message: M) -> Self {
        StepKind::Send(SendPlan::to(destination, message))
    }
}

/// A message as it travels the wire and sits in a reception buffer: owned
/// (unicast) or a generation-stamped handle into the sender's payload pool
/// (broadcast — one refcount bump per destination, no copy).
#[derive(Clone, Debug)]
pub enum WireMsg<M> {
    /// An owned payload (unicast deliveries, tests).
    Owned(M),
    /// A shared, pooled payload (broadcast deliveries). Reading through the
    /// handle debug-asserts the sender has not recycled the slot — which it
    /// cannot while this handle is alive.
    Shared(PooledPayload<M>),
}

impl<M> WireMsg<M> {
    /// The wire payload.
    #[must_use]
    pub fn get(&self) -> &M {
        match self {
            WireMsg::Owned(m) => m,
            WireMsg::Shared(m) => m,
        }
    }

    /// Extracts an owned message: by move for owned payloads, by (shallow,
    /// for handle-carrying message types) clone for shared ones.
    #[must_use]
    pub fn into_msg(self) -> M
    where
        M: Clone,
    {
        match self {
            WireMsg::Owned(m) => m,
            WireMsg::Shared(m) => (*m).clone(),
        }
    }
}

impl<M> std::ops::Deref for WireMsg<M> {
    type Target = M;

    fn deref(&self) -> &M {
        self.get()
    }
}

impl<M: PartialEq> PartialEq for WireMsg<M> {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

/// A process program driven by atomic steps.
///
/// Lifecycle: the engine repeatedly calls [`Program::next_step`]; for
/// receive steps it then calls [`Program::select_message`] on the buffered
/// messages followed by [`Program::on_receive`]. Crashes call
/// [`Program::on_crash`] (volatile state should be dropped; stable storage
/// — anything the implementation chose to persist — survives); recoveries
/// call [`Program::on_recover`].
pub trait Program {
    /// Message type on the wire.
    type Msg: Clone + std::fmt::Debug;

    /// The next atomic step this process wants to take.
    fn next_step(&mut self) -> StepKind<Self::Msg>;

    /// The *reception policy*: which buffered message to receive.
    ///
    /// Returns an index into `buffer`, or `None` to receive the empty
    /// message λ even though the buffer is non-empty (no standard policy
    /// does this, but the model allows any policy). Called only for
    /// `Receive` steps with a non-empty buffer.
    fn select_message(&mut self, buffer: &[(ProcessId, WireMsg<Self::Msg>)]) -> Option<usize>;

    /// Outcome of a receive step: `Some((q, m))` or the empty message λ.
    fn on_receive(&mut self, message: Option<(ProcessId, WireMsg<Self::Msg>)>);

    /// The process crashed: volatile state is lost. Implementations should
    /// reset anything not explicitly persisted to their stable storage.
    fn on_crash(&mut self);

    /// The process recovered and will start taking steps again.
    fn on_recover(&mut self);

    /// Whether a buffered message is *provably ignorable* — receiving it
    /// would leave this program's state unchanged. Before each receive
    /// step the engine drops every buffered message this returns `true`
    /// for (counted as [`SimStats::discarded`](crate::SimStats)).
    ///
    /// This is §4.2.1's space optimisation ("drop messages for rounds
    /// already completed") applied to the reception buffer: Algorithms 2
    /// and 3 re-announce INIT every loop iteration, so without pruning a
    /// buffer accumulates stale round messages faster than one-per-step
    /// reception can drain them — unbounded memory, and unbounded payload
    /// pinning that would defeat the payload pool. The default keeps
    /// everything (plain programs see every message).
    fn discard_buffered(&self, _msg: &Self::Msg) -> bool {
        false
    }

    /// This process's payload-construction accounting — how many wire and
    /// upper-layer payloads it built, and how many of those landed in
    /// recycled pool slots. The same struct the round-synchronous executor
    /// reports, so [`Simulator::message_stats`](crate::Simulator::message_stats)
    /// can aggregate a whole run in the executor's terms.
    fn message_stats(&self) -> MessageStats {
        MessageStats::default()
    }
}

/// Reception policy helpers shared by the predicate-implementation
/// algorithms.
pub mod policy {
    use ho_core::process::ProcessId;

    /// "Highest round number first" (Algorithm 2, line 1): the index of a
    /// message with the maximal round among `buffer`, where `round_of`
    /// extracts a message's round. Ties break towards the *newest* arrival:
    /// re-announcements (Algorithm 3's INIT resends) leave stale duplicates
    /// in the buffer, and an oldest-first tie-break would let them starve a
    /// fresh ROUND message of the same round.
    pub fn highest_round_first<M>(
        buffer: &[(ProcessId, M)],
        mut round_of: impl FnMut(&M) -> u64,
    ) -> Option<usize> {
        buffer
            .iter()
            .enumerate()
            .max_by_key(|(i, (_, m))| (round_of(m), *i))
            .map(|(i, _)| i)
    }

    /// "The highest round message from each process in a round-robin
    /// fashion" (Algorithm 3, line 1): at the `i`-th receive step, the
    /// message with the highest round number *from process `p_(i mod n)`*;
    /// if there is none, an arbitrary message (we pick the globally highest
    /// round, which the proofs permit).
    pub fn round_robin_highest<M>(
        buffer: &[(ProcessId, M)],
        receive_step: u64,
        n: usize,
        mut round_of: impl FnMut(&M) -> u64,
    ) -> Option<usize> {
        let wanted = ProcessId::new((receive_step % n as u64) as usize);
        let from_wanted = buffer
            .iter()
            .enumerate()
            .filter(|(_, (q, _))| *q == wanted)
            .max_by_key(|(i, (_, m))| (round_of(m), *i))
            .map(|(i, _)| i);
        from_wanted.or_else(|| highest_round_first(buffer, round_of))
    }
}

#[cfg(test)]
mod tests {
    use super::policy::*;
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn highest_round_first_picks_max() {
        let buf = vec![(p(0), 3u64), (p(1), 7), (p(2), 5)];
        assert_eq!(highest_round_first(&buf, |m| *m), Some(1));
    }

    #[test]
    fn highest_round_first_prefers_newest_on_tie() {
        let buf = vec![(p(0), 7u64), (p(1), 7)];
        assert_eq!(highest_round_first(&buf, |m| *m), Some(1));
    }

    #[test]
    fn empty_buffer_yields_none() {
        let buf: Vec<(ProcessId, u64)> = vec![];
        assert_eq!(highest_round_first(&buf, |m| *m), None);
        assert_eq!(round_robin_highest(&buf, 0, 4, |m| *m), None);
    }

    #[test]
    fn round_robin_targets_i_mod_n() {
        let buf = vec![(p(0), 3u64), (p(1), 9), (p(2), 1), (p(2), 4)];
        // Step 2 targets p2: its highest-round message is index 3.
        assert_eq!(round_robin_highest(&buf, 2, 3, |m| *m), Some(3));
        // Step 1 targets p1.
        assert_eq!(round_robin_highest(&buf, 1, 3, |m| *m), Some(1));
    }

    #[test]
    fn round_robin_falls_back_to_global_max() {
        let buf = vec![(p(0), 3u64), (p(1), 9)];
        // Step 2 targets p2, which has no message → highest overall (p1).
        assert_eq!(round_robin_highest(&buf, 2, 3, |m| *m), Some(1));
    }

    #[test]
    fn step_kind_equality_compares_plan_content() {
        assert_eq!(StepKind::<u64>::Receive, StepKind::Receive);
        assert_ne!(StepKind::send_all(1u64), StepKind::Receive);
        // Two independently built broadcasts of the same value compare
        // equal — plans compare by content, not slot identity.
        assert_eq!(StepKind::send_all(1u64), StepKind::send_all(1u64));
        assert_ne!(StepKind::send_all(1u64), StepKind::send_all(2u64));
    }

    #[test]
    fn wire_msg_reads_and_extracts() {
        let owned: WireMsg<u64> = WireMsg::Owned(7);
        let shared: WireMsg<u64> = WireMsg::Shared(PooledPayload::new(7));
        assert_eq!(*owned, 7);
        assert_eq!(*shared, 7);
        assert_eq!(owned, shared, "wire messages compare by payload");
        assert_eq!(owned.into_msg(), 7);
        assert_eq!(shared.into_msg(), 7);
    }
}
