//! The step-machine interface between processes and the simulator.
//!
//! Processes in the system model execute a sequence of *atomic steps*:
//! **send steps** (send a message to one or all processes, plus local
//! computation) and **receive steps** (receive at most one message from the
//! local buffer, plus local computation). The engine drives a [`Program`]
//! through these steps; the program never sees the clock directly — only
//! its own steps, exactly as in the paper's model.

use ho_core::process::ProcessId;

/// What a process does in its next atomic step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepKind<M> {
    /// A send step: broadcast `m` to all processes (including the sender —
    /// `send_p(m) to all` puts `m` into `network_s` for all `s ∈ Π`).
    ///
    /// The engine clones `m` per destination; programs wrapping an
    /// [`HoAlgorithm`](ho_core::HoAlgorithm) should thread the algorithm's
    /// [`SendPlan`](ho_core::SendPlan) broadcast payload (an `Arc`) into
    /// `m` so those clones stay shallow — see `ho-predicates`'s `Alg2Msg`.
    SendAll(M),
    /// A send step addressed to a single process.
    SendTo(ProcessId, M),
    /// A receive step: the engine pops one buffered message chosen by
    /// [`Program::select_message`] and hands it to
    /// [`Program::on_receive`]; if the buffer is empty, the empty message
    /// `λ` (`None`) is received.
    Receive,
}

/// A process program driven by atomic steps.
///
/// Lifecycle: the engine repeatedly calls [`Program::next_step`]; for
/// receive steps it then calls [`Program::select_message`] on the buffered
/// messages followed by [`Program::on_receive`]. Crashes call
/// [`Program::on_crash`] (volatile state should be dropped; stable storage
/// — anything the implementation chose to persist — survives); recoveries
/// call [`Program::on_recover`].
pub trait Program {
    /// Message type on the wire.
    type Msg: Clone + std::fmt::Debug;

    /// The next atomic step this process wants to take.
    fn next_step(&mut self) -> StepKind<Self::Msg>;

    /// The *reception policy*: which buffered message to receive.
    ///
    /// Returns an index into `buffer`, or `None` to receive the empty
    /// message λ even though the buffer is non-empty (no standard policy
    /// does this, but the model allows any policy). Called only for
    /// `Receive` steps with a non-empty buffer.
    fn select_message(&mut self, buffer: &[(ProcessId, Self::Msg)]) -> Option<usize>;

    /// Outcome of a receive step: `Some((q, m))` or the empty message λ.
    fn on_receive(&mut self, message: Option<(ProcessId, Self::Msg)>);

    /// The process crashed: volatile state is lost. Implementations should
    /// reset anything not explicitly persisted to their stable storage.
    fn on_crash(&mut self);

    /// The process recovered and will start taking steps again.
    fn on_recover(&mut self);
}

/// Reception policy helpers shared by the predicate-implementation
/// algorithms.
pub mod policy {
    use ho_core::process::ProcessId;

    /// "Highest round number first" (Algorithm 2, line 1): the index of a
    /// message with the maximal round among `buffer`, where `round_of`
    /// extracts a message's round. Ties break towards the *newest* arrival:
    /// re-announcements (Algorithm 3's INIT resends) leave stale duplicates
    /// in the buffer, and an oldest-first tie-break would let them starve a
    /// fresh ROUND message of the same round.
    pub fn highest_round_first<M>(
        buffer: &[(ProcessId, M)],
        mut round_of: impl FnMut(&M) -> u64,
    ) -> Option<usize> {
        buffer
            .iter()
            .enumerate()
            .max_by_key(|(i, (_, m))| (round_of(m), *i))
            .map(|(i, _)| i)
    }

    /// "The highest round message from each process in a round-robin
    /// fashion" (Algorithm 3, line 1): at the `i`-th receive step, the
    /// message with the highest round number *from process `p_(i mod n)`*;
    /// if there is none, an arbitrary message (we pick the globally highest
    /// round, which the proofs permit).
    pub fn round_robin_highest<M>(
        buffer: &[(ProcessId, M)],
        receive_step: u64,
        n: usize,
        mut round_of: impl FnMut(&M) -> u64,
    ) -> Option<usize> {
        let wanted = ProcessId::new((receive_step % n as u64) as usize);
        let from_wanted = buffer
            .iter()
            .enumerate()
            .filter(|(_, (q, _))| *q == wanted)
            .max_by_key(|(i, (_, m))| (round_of(m), *i))
            .map(|(i, _)| i);
        from_wanted.or_else(|| highest_round_first(buffer, round_of))
    }
}

#[cfg(test)]
mod tests {
    use super::policy::*;
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn highest_round_first_picks_max() {
        let buf = vec![(p(0), 3u64), (p(1), 7), (p(2), 5)];
        assert_eq!(highest_round_first(&buf, |m| *m), Some(1));
    }

    #[test]
    fn highest_round_first_prefers_newest_on_tie() {
        let buf = vec![(p(0), 7u64), (p(1), 7)];
        assert_eq!(highest_round_first(&buf, |m| *m), Some(1));
    }

    #[test]
    fn empty_buffer_yields_none() {
        let buf: Vec<(ProcessId, u64)> = vec![];
        assert_eq!(highest_round_first(&buf, |m| *m), None);
        assert_eq!(round_robin_highest(&buf, 0, 4, |m| *m), None);
    }

    #[test]
    fn round_robin_targets_i_mod_n() {
        let buf = vec![(p(0), 3u64), (p(1), 9), (p(2), 1), (p(2), 4)];
        // Step 2 targets p2: its highest-round message is index 3.
        assert_eq!(round_robin_highest(&buf, 2, 3, |m| *m), Some(3));
        // Step 1 targets p1.
        assert_eq!(round_robin_highest(&buf, 1, 3, |m| *m), Some(1));
    }

    #[test]
    fn round_robin_falls_back_to_global_max() {
        let buf = vec![(p(0), 3u64), (p(1), 9)];
        // Step 2 targets p2, which has no message → highest overall (p1).
        assert_eq!(round_robin_highest(&buf, 2, 3, |m| *m), Some(1));
    }

    #[test]
    fn step_kind_equality() {
        assert_eq!(StepKind::<u64>::Receive, StepKind::Receive);
        assert_ne!(StepKind::SendAll(1u64), StepKind::Receive);
    }
}
