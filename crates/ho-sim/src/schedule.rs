//! Good/bad period schedules (§4.1).
//!
//! The system alternates between *good* periods — where the synchrony and
//! fault assumptions hold for a subset `π0` — and *bad* periods, where
//! behaviour is arbitrary (but benign). Three flavours of good period, from
//! strongest to weakest:
//!
//! 1. **Π-good** — `π0 = Π`, everybody synchronous, nobody crashes;
//! 2. **π0-down** — `π0` synchronous and crash-free, `π̄0` down for the
//!    whole period and none of its messages in transit;
//! 3. **π0-arbitrary** — `π0` synchronous and crash-free; *no restriction*
//!    on `π̄0` (crashes, recoveries, asynchrony, loss).
//!
//! Case 1 is case 2 with `π0 = Π`, so the implementation (and the paper)
//! distinguishes only π0-down and π0-arbitrary.

use ho_core::contact::ContactPlan;
use ho_core::process::{ProcessId, ProcessSet};

use crate::config::BadPeriodConfig;
use crate::time::TimePoint;

/// A real-valued-time rendering of a [`ContactPlan`]: the plan's 1-based
/// rounds are mapped onto time with a fixed `round_len`, and every
/// transmission consults [`LinkSchedule::link_up`] at its send time.
///
/// The schedule is self-limiting: past the plan's guaranteed-good point
/// (`(good_from − 1) · round_len`) every link is unconditionally up, so a
/// good period placed at or after that horizon keeps the §4.1 synchrony
/// guarantees — and the theorem bounds — intact. Before the horizon the
/// plan *adds* deterministic link downs on top of whatever the period
/// rules decide.
#[derive(Clone, Copy, Debug)]
pub struct LinkSchedule {
    plan: ContactPlan,
    seed: u64,
    n: usize,
    round_len: f64,
}

impl LinkSchedule {
    /// Renders `plan` over `n` processes with `round_len` time units per
    /// plan round, decisions drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `round_len` is not positive.
    #[must_use]
    pub fn new(plan: ContactPlan, seed: u64, n: usize, round_len: f64) -> Self {
        assert!(round_len > 0.0, "round length must be positive");
        LinkSchedule {
            plan,
            seed,
            n,
            round_len,
        }
    }

    /// The underlying plan.
    #[must_use]
    pub fn plan(&self) -> ContactPlan {
        self.plan
    }

    /// The time at which the plan's permanent fully-connected suffix
    /// begins — place the schedule's good period at or after this.
    #[must_use]
    pub fn horizon(&self) -> TimePoint {
        TimePoint::new((self.plan.good_from() - 1) as f64 * self.round_len)
    }

    /// Whether the directed link `from → to` is up at time `t`.
    #[must_use]
    pub fn link_up(&self, from: ProcessId, to: ProcessId, t: TimePoint) -> bool {
        let round = (t.get() / self.round_len).floor().max(0.0) as u64 + 1;
        self.plan.link_up(self.seed, self.n, round, from, to)
    }
}

/// The flavour of a good period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoodKind {
    /// `π̄0` processes are down throughout; none of their messages are in
    /// transit during the period.
    PiDown,
    /// `π̄0` processes are unrestricted (crash, recover, run at any speed,
    /// lose messages).
    PiArbitrary,
}

/// One period of the schedule.
#[derive(Clone, Copy, Debug)]
pub enum PeriodKind {
    /// A good period for the subset `π0`.
    Good {
        /// The synchronous subset.
        pi0: ProcessSet,
        /// Flavour.
        kind: GoodKind,
    },
    /// A bad period with the given fault behaviour.
    Bad(BadPeriodConfig),
}

impl PeriodKind {
    /// A Π-good period over `n` processes (case 1 = case 2 with `π0 = Π`).
    #[must_use]
    pub fn all_good(n: usize) -> Self {
        PeriodKind::Good {
            pi0: ProcessSet::full(n),
            kind: GoodKind::PiDown,
        }
    }

    /// Whether this is a good period.
    #[must_use]
    pub fn is_good(&self) -> bool {
        matches!(self, PeriodKind::Good { .. })
    }
}

/// A period: `[start, end)` with `end = None` meaning "until the end of the
/// run".
#[derive(Clone, Copy, Debug)]
pub struct Period {
    /// Start time (inclusive).
    pub start: TimePoint,
    /// Behaviour during the period.
    pub kind: PeriodKind,
}

/// A full schedule: consecutive periods starting at time 0, optionally
/// overlaid with a deterministic contact-plan [`LinkSchedule`].
#[derive(Clone, Debug)]
pub struct Schedule {
    periods: Vec<Period>,
    link: Option<LinkSchedule>,
}

impl Schedule {
    /// Builds a schedule from periods.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, does not start at 0, or is not sorted by
    /// strictly increasing start time.
    #[must_use]
    pub fn new(periods: Vec<Period>) -> Self {
        assert!(!periods.is_empty(), "schedule needs at least one period");
        assert_eq!(
            periods[0].start,
            TimePoint::ZERO,
            "schedule must start at time 0"
        );
        for w in periods.windows(2) {
            assert!(
                w[0].start < w[1].start,
                "periods must have strictly increasing start times"
            );
        }
        Schedule {
            periods,
            link: None,
        }
    }

    /// Overlays a contact-plan link schedule: before the plan's horizon
    /// every transmission additionally requires its directed link to be
    /// up. Good periods starting at or after [`LinkSchedule::horizon`]
    /// are unaffected (the plan is all-up there by construction), so the
    /// synchrony guarantees a verdict is checked against still hold.
    #[must_use]
    pub fn with_link_schedule(mut self, link: LinkSchedule) -> Self {
        self.link = Some(link);
        self
    }

    /// The contact-plan link schedule, if one is overlaid.
    #[must_use]
    pub fn link_schedule(&self) -> Option<&LinkSchedule> {
        self.link.as_ref()
    }

    /// Whether the directed link `from → to` is up at `t` — `true` when
    /// no link schedule is overlaid.
    #[must_use]
    pub fn link_up(&self, from: ProcessId, to: ProcessId, t: TimePoint) -> bool {
        self.link.is_none_or(|l| l.link_up(from, to, t))
    }

    /// A single good period covering all of time (the fault-free system):
    /// scenario 2 of §4.2 — "the good period starts from the beginning".
    #[must_use]
    pub fn always_good(pi0: ProcessSet, kind: GoodKind) -> Self {
        Schedule::new(vec![Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Good { pi0, kind },
        }])
    }

    /// Scenario 1 of §4.2: a bad period `[0, good_start)` followed by a good
    /// period lasting to the end of the run.
    #[must_use]
    pub fn bad_then_good(
        bad: BadPeriodConfig,
        good_start: TimePoint,
        pi0: ProcessSet,
        kind: GoodKind,
    ) -> Self {
        assert!(
            good_start > TimePoint::ZERO,
            "good period must start after 0"
        );
        Schedule::new(vec![
            Period {
                start: TimePoint::ZERO,
                kind: PeriodKind::Bad(bad),
            },
            Period {
                start: good_start,
                kind: PeriodKind::Good { pi0, kind },
            },
        ])
    }

    /// Strict alternation bad/good with the given durations, repeated
    /// `cycles` times, ending with a final good period that lasts forever.
    #[must_use]
    pub fn alternating(
        bad: BadPeriodConfig,
        bad_len: f64,
        good_len: f64,
        cycles: usize,
        pi0: ProcessSet,
        kind: GoodKind,
    ) -> Self {
        assert!(
            bad_len > 0.0 && good_len > 0.0,
            "period lengths must be positive"
        );
        let mut t = 0.0;
        let mut periods = Vec::new();
        for _ in 0..cycles {
            periods.push(Period {
                start: TimePoint::new(t),
                kind: PeriodKind::Bad(bad),
            });
            t += bad_len;
            periods.push(Period {
                start: TimePoint::new(t),
                kind: PeriodKind::Good { pi0, kind },
            });
            t += good_len;
        }
        periods.push(Period {
            start: TimePoint::new(t),
            kind: PeriodKind::Bad(bad),
        });
        periods.push(Period {
            start: TimePoint::new(t + bad_len),
            kind: PeriodKind::Good { pi0, kind },
        });
        Schedule::new(periods)
    }

    /// The periods, in order.
    #[must_use]
    pub fn periods(&self) -> &[Period] {
        &self.periods
    }

    /// The period in force at time `t`.
    #[must_use]
    pub fn at(&self, t: TimePoint) -> &Period {
        let idx = self
            .periods
            .partition_point(|p| p.start <= t)
            .saturating_sub(1);
        &self.periods[idx]
    }

    /// The kind in force at `t`.
    #[must_use]
    pub fn kind_at(&self, t: TimePoint) -> &PeriodKind {
        &self.at(t).kind
    }

    /// Whether `t` falls in a good period whose `π0` contains `p`.
    #[must_use]
    pub fn is_synchronous_at(&self, t: TimePoint, p: ho_core::ProcessId) -> bool {
        match self.kind_at(t) {
            PeriodKind::Good { pi0, .. } => pi0.contains(p),
            PeriodKind::Bad(_) => false,
        }
    }

    /// Start of the first good period at or after `t`, if any.
    #[must_use]
    pub fn next_good_start(&self, t: TimePoint) -> Option<TimePoint> {
        self.periods
            .iter()
            .find(|p| p.start >= t && p.kind.is_good())
            .map(|p| p.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::ProcessId;

    fn pi0() -> ProcessSet {
        ProcessSet::from_indices([0, 1, 2])
    }

    #[test]
    fn lookup_at_boundaries() {
        let s = Schedule::bad_then_good(
            BadPeriodConfig::default(),
            TimePoint::new(10.0),
            pi0(),
            GoodKind::PiDown,
        );
        assert!(!s.kind_at(TimePoint::ZERO).is_good());
        assert!(!s.kind_at(TimePoint::new(9.999)).is_good());
        assert!(s.kind_at(TimePoint::new(10.0)).is_good());
        assert!(s.kind_at(TimePoint::new(1e9)).is_good());
    }

    #[test]
    fn synchrony_respects_pi0() {
        let s = Schedule::always_good(pi0(), GoodKind::PiArbitrary);
        assert!(s.is_synchronous_at(TimePoint::new(5.0), ProcessId::new(1)));
        assert!(!s.is_synchronous_at(TimePoint::new(5.0), ProcessId::new(3)));
    }

    #[test]
    fn alternating_layout() {
        let s = Schedule::alternating(
            BadPeriodConfig::calm(),
            5.0,
            20.0,
            2,
            pi0(),
            GoodKind::PiDown,
        );
        assert!(!s.kind_at(TimePoint::new(0.0)).is_good());
        assert!(s.kind_at(TimePoint::new(5.0)).is_good());
        assert!(!s.kind_at(TimePoint::new(25.0)).is_good());
        assert!(s.kind_at(TimePoint::new(30.0)).is_good());
        assert_eq!(
            s.next_good_start(TimePoint::new(26.0)),
            Some(TimePoint::new(30.0))
        );
    }

    #[test]
    #[should_panic(expected = "start at time 0")]
    fn must_start_at_zero() {
        let _ = Schedule::new(vec![Period {
            start: TimePoint::new(1.0),
            kind: PeriodKind::all_good(3),
        }]);
    }

    #[test]
    fn link_schedule_maps_time_onto_plan_rounds() {
        let plan = ContactPlan::StoreAndForward { dark: 4 };
        let link = LinkSchedule::new(plan, 9, 4, 2.5);
        let dark = plan.dark_replica(9, 4);
        let other = ProcessId::new((dark.index() + 1) % 4);
        // Before the horizon the dark replica's links are down…
        assert_eq!(link.horizon(), TimePoint::new(10.0));
        for t in [0.0, 2.4, 9.9] {
            assert!(!link.link_up(dark, other, TimePoint::new(t)), "t = {t}");
            assert!(!link.link_up(other, dark, TimePoint::new(t)), "t = {t}");
            assert!(link.link_up(dark, dark, TimePoint::new(t)), "self-delivery");
        }
        // …and from the horizon on everything is up forever.
        for t in [10.0, 10.1, 1e6] {
            assert!(link.link_up(dark, other, TimePoint::new(t)), "t = {t}");
        }
        // The schedule overlay defaults to all-up without a plan.
        let s = Schedule::always_good(pi0(), GoodKind::PiDown);
        assert!(s.link_up(dark, other, TimePoint::ZERO));
        let s = s.with_link_schedule(link);
        assert!(!s.link_up(dark, other, TimePoint::ZERO));
        assert!(s.link_schedule().is_some());
    }

    #[test]
    fn all_good_covers_everyone() {
        match PeriodKind::all_good(4) {
            PeriodKind::Good { pi0, kind } => {
                assert_eq!(pi0, ProcessSet::full(4));
                assert_eq!(kind, GoodKind::PiDown);
            }
            PeriodKind::Bad(_) => unreachable!(),
        }
    }
}
