//! The discrete-event simulation engine.
//!
//! The engine owns the processes' [`Program`]s, the per-process message
//! buffers, the event queue and the global real-valued clock. It enforces
//! the §4.1 semantics:
//!
//! * **steps are atomic** and take no time; time elapses *between* steps;
//! * in a good period, every `π0` process takes at least one step per `Φ+`
//!   and at most one per `Φ−`;
//! * a message sent between `π0` processes at `t` inside a good period is in
//!   the destination buffer by `t + Δ` (send → make-ready collapsed into a
//!   single delivery event with delay ≤ Δ);
//! * at the start of a *π0-down* good period, `π̄0` processes are forced
//!   down and their in-flight messages are purged ("no messages from `π̄0`
//!   in transit");
//! * in bad periods (and for `π̄0` in *π0-arbitrary* good periods):
//!   messages may be lost or arbitrarily delayed, processes may crash
//!   (volatile state lost — [`Program::on_crash`]), recover, or run slow.
//!
//! The message path is the [`SendPlan`] kernel shared with the
//! round-synchronous executor: programs emit plans, a broadcast's single
//! pooled payload fans out to `n` destinations by reference count, and
//! in-flight/buffered copies are generation-checked pool handles. On the
//! pooled path a broadcast is additionally *coalesced* in the event queue:
//! destinations sharing a delivery delay ride one [`Event::BroadcastReady`]
//! carrying a recipient mask, with per-recipient gating (destination down,
//! π0-down purge) applied at dispatch — under worst-case delay timing a
//! broadcast costs one queue event instead of `n`. The retired
//! per-destination clone fan-out survives as [`SimConfig::clone_fanout`],
//! the oracle for the equivalence tests; it stays uncoalesced, so the
//! lockstep suite also proves coalesced ≡ per-destination delivery.
//!
//! The event queue itself is pluggable ([`SimConfig::scheduler`]): the
//! default calendar queue or the original binary heap, bit-identical in
//! dispatch order (see [`crate::scheduler`]).

use ho_core::executor::MessageStats;
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::send_plan::SendPlan;
use ho_core::telemetry::{Event as TelemetryEvent, EventKind, Telemetry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{DelayTiming, SimConfig, StepTiming};
use crate::program::{Program, StepKind, WireMsg};
use crate::schedule::{GoodKind, PeriodKind, Schedule};
use crate::scheduler::{wheel_width, EventQueue};
use crate::stats::SimStats;
use crate::time::TimePoint;

#[derive(Clone, Debug)]
enum Event<M> {
    /// Process `p` takes its next atomic step; stale if `gen` mismatches.
    Step { p: ProcessId, gen: u64 },
    /// A message becomes ready for reception at `dest`. In-flight broadcast
    /// messages hold pool handles ([`WireMsg::Shared`]): the sender's
    /// payload slot stays pinned — and generation-checked — until the last
    /// in-flight copy is delivered or dropped.
    MakeReady {
        dest: ProcessId,
        from: ProcessId,
        sent_at: TimePoint,
        msg: WireMsg<M>,
    },
    /// A coalesced broadcast delivery: every destination in `recipients`
    /// drew the same delay at send time, so they share one in-flight event
    /// (and one pool handle). Fan-out — including the per-recipient
    /// destination-down and π0-down-purge gates — happens at dispatch, in
    /// ascending process order: exactly the order the per-destination
    /// events would have fired, since their sequence numbers were
    /// consecutive.
    BroadcastReady {
        from: ProcessId,
        sent_at: TimePoint,
        recipients: ProcessSet,
        msg: WireMsg<M>,
    },
    /// A schedule period begins.
    PeriodStart(usize),
    /// Process `p` recovers from a bad-period crash.
    Recover { p: ProcessId, gen: u64 },
}

struct ProcessSlot<M> {
    down: bool,
    /// Whether the engine forced this process down (π0-down period) rather
    /// than a random bad-period crash.
    forced_down: bool,
    step_gen: u64,
    /// The reception buffer: broadcast entries are pool handles into their
    /// senders' payload slots, so buffering costs no payload copy.
    buffer: Vec<(ProcessId, WireMsg<M>)>,
}

/// Reusable simulator storage: the event queue's buckets, the process
/// slots (with their reception buffers) and the broadcast fan-out scratch.
///
/// A sweep runs thousands of scenarios back to back; constructing each
/// [`Simulator`] via [`Simulator::with_scratch`] and returning its storage
/// with [`Simulator::retire`] keeps those allocations warm across
/// scenarios — the sim-layer analogue of the round loop's `RoundScratch`.
pub struct SimScratch<P: Program> {
    queue: Option<EventQueue<Event<P::Msg>>>,
    slots: Vec<ProcessSlot<P::Msg>>,
    fanout: Vec<(u64, ProcessSet)>,
}

impl<P: Program> SimScratch<P> {
    /// An empty scratch: the first scenario allocates, the rest reuse.
    #[must_use]
    pub fn new() -> Self {
        SimScratch {
            queue: None,
            slots: Vec::new(),
            fanout: Vec::new(),
        }
    }
}

impl<P: Program> Default for SimScratch<P> {
    fn default() -> Self {
        SimScratch::new()
    }
}

/// The discrete-event simulator.
pub struct Simulator<P: Program> {
    cfg: SimConfig,
    schedule: Schedule,
    programs: Vec<P>,
    slots: Vec<ProcessSlot<P::Msg>>,
    queue: EventQueue<Event<P::Msg>>,
    /// Send-time coalescing scratch: `(delay bit pattern, recipients)` per
    /// distinct delay drawn by one broadcast. Kept on the simulator so
    /// steady-state broadcasts never allocate.
    fanout: Vec<(u64, ProcessSet)>,
    now: TimePoint,
    seq: u64,
    rng: SmallRng,
    stats: SimStats,
    /// Flight recorder + metrics (see [`ho_core::telemetry`]): off by
    /// default — one branch per hook — and installed by the harness via
    /// [`Simulator::set_telemetry`]. Telemetry only observes the run, so
    /// recorded and unrecorded executions are bit-identical.
    telemetry: Telemetry,
}

impl<P: Program> Simulator<P> {
    /// Builds a simulator over `programs` (one per process).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cfg.n` or the config is inconsistent.
    #[must_use]
    pub fn new(cfg: SimConfig, schedule: Schedule, programs: Vec<P>) -> Self {
        Simulator::with_scratch(cfg, schedule, programs, &mut SimScratch::new())
    }

    /// Builds a simulator reusing `scratch`'s storage (see [`SimScratch`]).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cfg.n` or the config is inconsistent.
    #[must_use]
    pub fn with_scratch(
        cfg: SimConfig,
        schedule: Schedule,
        programs: Vec<P>,
        scratch: &mut SimScratch<P>,
    ) -> Self {
        cfg.validate();
        assert_eq!(programs.len(), cfg.n, "one program per process");
        let width = wheel_width(cfg.phi_minus, cfg.delta);
        let queue = match scratch.queue.take() {
            Some(queue) => queue.recycle(cfg.scheduler, width, cfg.n),
            None => EventQueue::new(cfg.scheduler, width, cfg.n),
        };
        // Recycled slots keep their buffers' capacity; fresh ones are
        // pre-sized to n so first-round reception never reallocates.
        let mut slots = std::mem::take(&mut scratch.slots);
        slots.truncate(cfg.n);
        for slot in &mut slots {
            slot.down = false;
            slot.forced_down = false;
            slot.step_gen = 0;
            slot.buffer.clear();
        }
        while slots.len() < cfg.n {
            slots.push(ProcessSlot {
                down: false,
                forced_down: false,
                step_gen: 0,
                buffer: Vec::with_capacity(cfg.n),
            });
        }
        let mut fanout = std::mem::take(&mut scratch.fanout);
        fanout.clear();
        let mut sim = Simulator {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            schedule,
            programs,
            slots,
            queue,
            fanout,
            now: TimePoint::ZERO,
            seq: 0,
            stats: SimStats::default(),
            telemetry: Telemetry::off(),
        };
        // Period-start events (skip index 0; it is in force at t = 0).
        let starts: Vec<(usize, TimePoint)> = sim
            .schedule
            .periods()
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, period)| (i, period.start))
            .collect();
        for (i, start) in starts {
            sim.push(start, Event::PeriodStart(i));
        }
        // Apply the initial period's forced-down rule, then schedule first
        // steps for every up process. (apply_period_entry is not used here:
        // it would also schedule steps for pi0, double-scheduling them.)
        if let PeriodKind::Good {
            pi0,
            kind: GoodKind::PiDown,
        } = sim.schedule.periods()[0].kind
        {
            for p in pi0.complement(sim.cfg.n).iter() {
                sim.crash(p, true);
            }
        }
        for p in 0..sim.cfg.n {
            let pid = ProcessId::new(p);
            if !sim.slots[p].down {
                let first = sim.first_step_offset(pid);
                sim.schedule_step(pid, first);
            }
        }
        sim
    }

    /// Returns this simulator's reusable storage to `scratch`: queue
    /// buckets, process slots and the fan-out scratch keep their capacity
    /// for the next scenario. Pending events and buffered messages are
    /// dropped (releasing their pool handles).
    pub fn retire(self, scratch: &mut SimScratch<P>) {
        let width = wheel_width(self.cfg.phi_minus, self.cfg.delta);
        let Simulator {
            cfg,
            queue,
            mut slots,
            mut fanout,
            ..
        } = self;
        for slot in &mut slots {
            slot.buffer.clear();
        }
        fanout.clear();
        scratch.queue = Some(queue.recycle(cfg.scheduler, width, cfg.n));
        scratch.slots = slots;
        scratch.fanout = fanout;
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> TimePoint {
        self.now
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Message accounting for the whole run, in the round-synchronous
    /// executor's terms: engine-side deliveries merged with every
    /// program's payload-construction counters
    /// ([`Program::message_stats`]) — the unified two-layer view.
    #[must_use]
    pub fn message_stats(&self) -> MessageStats {
        let mut stats = self.stats.messages;
        for program in &self.programs {
            stats.merge(&program.message_stats());
        }
        stats
    }

    /// Read access to the programs.
    #[must_use]
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Read access to one program.
    #[must_use]
    pub fn program(&self, p: ProcessId) -> &P {
        &self.programs[p.index()]
    }

    /// Whether `p` is currently down.
    #[must_use]
    pub fn is_down(&self, p: ProcessId) -> bool {
        self.slots[p.index()].down
    }

    /// The schedule driving this run.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Installs a telemetry handle (recorder + metrics). Pass
    /// [`Telemetry::off`] to disable recording.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Read access to the telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Takes the telemetry handle out, leaving an off handle behind —
    /// how the harness recovers the ring for draining and reuse.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.telemetry)
    }

    /// Runs until `stop` returns true (checked after every event) or the
    /// clock passes `deadline`. Returns `true` iff `stop` fired.
    pub fn run_until(&mut self, deadline: TimePoint, mut stop: impl FnMut(&Self) -> bool) -> bool {
        if stop(self) {
            return true;
        }
        while let Some((at, event)) = self.queue.pop_at_most(deadline) {
            self.now = at;
            self.stats.events_dispatched += 1;
            self.telemetry.record(
                0,
                at.get(),
                TelemetryEvent::ALL,
                EventKind::SchedulerDispatch {
                    queue_depth: self.queue.len() as u64,
                },
            );
            self.dispatch(event);
            if stop(self) {
                return true;
            }
        }
        false
    }

    /// Runs until `deadline` unconditionally.
    pub fn run_for(&mut self, deadline: TimePoint) {
        self.run_until(deadline, |_| false);
    }

    // ------------------------------------------------------------------
    // Event plumbing.

    fn push(&mut self, at: TimePoint, event: Event<P::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, event);
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(self.queue.len() as u64);
    }

    fn schedule_step(&mut self, p: ProcessId, dt: f64) {
        let gen = self.slots[p.index()].step_gen;
        self.push(self.now.after(dt), Event::Step { p, gen });
    }

    fn dispatch(&mut self, event: Event<P::Msg>) {
        match event {
            Event::Step { p, gen } => self.on_step(p, gen),
            Event::MakeReady {
                dest,
                from,
                sent_at,
                msg,
            } => self.on_make_ready(dest, from, sent_at, msg),
            Event::BroadcastReady {
                from,
                sent_at,
                recipients,
                msg,
            } => self.on_broadcast_ready(from, sent_at, recipients, msg),
            Event::PeriodStart(idx) => self.on_period_start(idx),
            Event::Recover { p, gen } => self.on_recover_event(p, gen),
        }
    }

    // ------------------------------------------------------------------
    // Timing rules.

    fn in_good_sync(&self, p: ProcessId, t: TimePoint) -> bool {
        self.schedule.is_synchronous_at(t, p)
    }

    /// Offset of the first step after (re-)entering synchrony or starting.
    fn first_step_offset(&mut self, p: ProcessId) -> f64 {
        if self.in_good_sync(p, self.now) {
            match self.cfg.step_timing {
                StepTiming::WorstCase => self.cfg.phi_plus,
                StepTiming::Fastest => self.cfg.phi_minus,
                StepTiming::Jittered => self.rng.gen_range(0.0..=self.cfg.phi_plus),
            }
        } else {
            let (fast, slow) = self.bad_speed_band();
            self.rng
                .gen_range(self.cfg.phi_minus / fast..=self.cfg.phi_plus * slow)
        }
    }

    /// Gap to the next step for an up process at the current time.
    fn step_gap(&mut self, p: ProcessId) -> f64 {
        if self.in_good_sync(p, self.now) {
            match self.cfg.step_timing {
                StepTiming::WorstCase => self.cfg.phi_plus,
                StepTiming::Fastest => self.cfg.phi_minus,
                StepTiming::Jittered => self.rng.gen_range(self.cfg.phi_minus..=self.cfg.phi_plus),
            }
        } else {
            let (fast, slow) = self.bad_speed_band();
            self.rng
                .gen_range(self.cfg.phi_minus / fast..=self.cfg.phi_plus * slow)
        }
    }

    fn bad_config_now(&self) -> Option<crate::config::BadPeriodConfig> {
        match self.schedule.kind_at(self.now) {
            PeriodKind::Bad(cfg) => Some(*cfg),
            PeriodKind::Good { .. } => None,
        }
    }

    /// `(fast, slow)` speed-band multipliers under the current bad rules.
    fn bad_speed_band(&self) -> (f64, f64) {
        let rules = self.arbitrary_rules();
        (rules.fast_factor.max(1.0), rules.slow_factor.max(1.0))
    }

    /// The bad rules applying to non-synchronous behaviour right now: the
    /// bad period's own config, or (inside a π0-arbitrary good period) the
    /// most recent bad period's config.
    fn arbitrary_rules(&self) -> crate::config::BadPeriodConfig {
        if let Some(cfg) = self.bad_config_now() {
            return cfg;
        }
        // Inside a good period: reuse the last bad period's config, or the
        // default if the schedule has none before now.
        self.schedule
            .periods()
            .iter()
            .filter(|p| p.start <= self.now)
            .filter_map(|p| match p.kind {
                PeriodKind::Bad(cfg) => Some(cfg),
                PeriodKind::Good { .. } => None,
            })
            .next_back()
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Step execution.

    fn on_step(&mut self, p: ProcessId, gen: u64) {
        let idx = p.index();
        if self.slots[idx].down || self.slots[idx].step_gen != gen {
            return;
        }

        // Bad-rules crash roulette (never inside a good period for π0).
        if !self.in_good_sync(p, self.now) {
            let rules = self.arbitrary_rules();
            if rules.crash_prob > 0.0 && self.rng.gen_bool(rules.crash_prob) {
                self.crash(p, false);
                let down_for = self
                    .rng
                    .gen_range(rules.min_down..=rules.max_down.max(rules.min_down));
                let gen = self.slots[idx].step_gen;
                self.push(self.now.after(down_for), Event::Recover { p, gen });
                return;
            }
        }

        match self.programs[idx].next_step() {
            StepKind::Send(plan) => {
                self.stats.send_steps += 1;
                self.consume_plan(p, plan);
            }
            StepKind::Receive => {
                self.stats.receive_steps += 1;
                // Prune provably ignorable messages first (§4.2.1 applied
                // to the buffer — see [`Program::discard_buffered`]): this
                // bounds the buffer under INIT-resend storms and releases
                // the pinned payload handles back to their senders' pools.
                let program = &self.programs[idx];
                let buffer = &mut self.slots[idx].buffer;
                let before = buffer.len();
                buffer.retain(|(_, m)| !program.discard_buffered(m));
                self.stats.discarded += (before - buffer.len()) as u64;
                let received = if self.slots[idx].buffer.is_empty() {
                    None
                } else {
                    let choice = self.programs[idx].select_message(&self.slots[idx].buffer);
                    choice.map(|i| self.slots[idx].buffer.remove(i))
                };
                if received.is_none() {
                    self.stats.empty_receives += 1;
                }
                self.programs[idx].on_receive(received);
            }
        }

        let gap = self.step_gap(p);
        self.schedule_step(p, gap);
    }

    // ------------------------------------------------------------------
    // Network.

    /// Executes one send plan — the same closed form of `S_p^r` the
    /// round-synchronous executor consumes. A broadcast fans its single
    /// pooled payload out to all `n` destinations (the sender included) by
    /// reference count; with [`SimConfig::clone_fanout`] set, it instead
    /// deep-clones the payload per destination — the retired per-message
    /// scheme, kept as the oracle for the clone-vs-pool equivalence proof.
    fn consume_plan(&mut self, from: ProcessId, plan: SendPlan<P::Msg>) {
        match plan {
            SendPlan::Broadcast(payload) => {
                self.stats.broadcast_sends += 1;
                if self.cfg.clone_fanout {
                    for q in 0..self.cfg.n {
                        self.transmit(from, ProcessId::new(q), WireMsg::Owned((*payload).clone()));
                    }
                    return;
                }
                // Pooled path: sample per-destination routing in ascending
                // destination order — the identical RNG draw sequence to
                // the clone oracle — then coalesce the survivors of each
                // distinct delay into one in-flight event with a recipient
                // mask. Under worst-case delay timing every good-period
                // destination shares Δ, so a broadcast costs one event.
                let mut fanout = std::mem::take(&mut self.fanout);
                debug_assert!(fanout.is_empty());
                for q in 0..self.cfg.n {
                    let dest = ProcessId::new(q);
                    self.stats.transmissions += 1;
                    let (lost, delay) = self.route(from, dest);
                    if lost {
                        self.stats.dropped += 1;
                        continue;
                    }
                    let bits = delay.to_bits();
                    match fanout.iter_mut().find(|(b, _)| *b == bits) {
                        Some((_, recipients)) => recipients.insert(dest),
                        None => fanout.push((bits, ProcessSet::singleton(dest))),
                    }
                }
                let sent_at = self.now;
                for (bits, recipients) in fanout.drain(..) {
                    self.push(
                        sent_at.after(f64::from_bits(bits)),
                        Event::BroadcastReady {
                            from,
                            sent_at,
                            recipients,
                            msg: WireMsg::Shared(payload.clone()),
                        },
                    );
                }
                self.fanout = fanout;
            }
            SendPlan::Unicast(pairs) => {
                for (q, m) in pairs {
                    self.transmit(from, q, WireMsg::Owned(m));
                }
            }
            SendPlan::Silent => {}
        }
    }

    fn transmit(&mut self, from: ProcessId, to: ProcessId, msg: WireMsg<P::Msg>) {
        self.stats.transmissions += 1;
        let (lost, delay) = self.route(from, to);
        if lost {
            self.stats.dropped += 1;
            return;
        }
        self.push(
            self.now.after(delay),
            Event::MakeReady {
                dest: to,
                from,
                sent_at: self.now,
                msg,
            },
        );
    }

    /// Loss and delay for a transmission starting now.
    fn route(&mut self, from: ProcessId, to: ProcessId) -> (bool, f64) {
        // Contact-plan overlay: a transmission on a scheduled-down
        // directed link is lost regardless of the period rules. Past the
        // plan's horizon every link is up, so good periods placed there
        // keep their delivery guarantee.
        if !self.schedule.link_up(from, to, self.now) {
            return (true, 0.0);
        }
        match *self.schedule.kind_at(self.now) {
            PeriodKind::Good { pi0, .. } if pi0.contains(from) && pi0.contains(to) => {
                let delay = match self.cfg.delay_timing {
                    DelayTiming::WorstCase => self.cfg.delta,
                    DelayTiming::Jittered => self.rng.gen_range(0.0..=self.cfg.delta),
                };
                (false, delay)
            }
            _ => {
                // Bad period, or a transmission touching π̄0 in a good
                // period: arbitrary rules. Send-omission, link loss and
                // receive-omission all end in non-reception (§2.3); they
                // are sampled separately only for the statistics.
                let rules = self.arbitrary_rules();
                let dropped = (rules.send_omission > 0.0 && self.rng.gen_bool(rules.send_omission))
                    || (rules.loss > 0.0 && self.rng.gen_bool(rules.loss))
                    || (rules.receive_omission > 0.0 && self.rng.gen_bool(rules.receive_omission));
                if dropped {
                    (true, 0.0)
                } else {
                    let max = self.cfg.delta * (1.0 + rules.extra_delay_factor.max(0.0));
                    (false, self.rng.gen_range(0.0..=max))
                }
            }
        }
    }

    fn on_make_ready(
        &mut self,
        dest: ProcessId,
        from: ProcessId,
        sent_at: TimePoint,
        msg: WireMsg<P::Msg>,
    ) {
        // π0-down purge: no messages from π̄0 processes are in transit
        // during the good period.
        if let PeriodKind::Good {
            pi0,
            kind: GoodKind::PiDown,
        } = *self.schedule.kind_at(self.now)
        {
            if !pi0.contains(from) && sent_at < self.schedule.at(self.now).start {
                self.stats.dropped += 1;
                return;
            }
        }
        if self.slots[dest.index()].down {
            self.stats.dropped += 1;
            return;
        }
        self.stats.messages.delivered += 1;
        self.slots[dest.index()].buffer.push((from, msg));
    }

    /// Delivers a coalesced broadcast: per-recipient gating at the shared
    /// delivery instant, in ascending process order — bit-identical to the
    /// per-destination events it replaces (their sequence numbers were
    /// consecutive, so nothing could interleave).
    fn on_broadcast_ready(
        &mut self,
        from: ProcessId,
        sent_at: TimePoint,
        recipients: ProcessSet,
        msg: WireMsg<P::Msg>,
    ) {
        // The π0-down purge depends only on the sender and the shared
        // delivery time, so it gates the whole mask at once.
        let purge = match *self.schedule.kind_at(self.now) {
            PeriodKind::Good {
                pi0,
                kind: GoodKind::PiDown,
            } => !pi0.contains(from) && sent_at < self.schedule.at(self.now).start,
            _ => false,
        };
        for dest in recipients.iter() {
            if purge || self.slots[dest.index()].down {
                self.stats.dropped += 1;
                continue;
            }
            self.stats.messages.delivered += 1;
            self.slots[dest.index()].buffer.push((from, msg.clone()));
        }
    }

    // ------------------------------------------------------------------
    // Crashes, recoveries, period transitions.

    fn crash(&mut self, p: ProcessId, forced: bool) {
        let idx = p.index();
        if self.slots[idx].down {
            self.slots[idx].forced_down |= forced;
            return;
        }
        self.stats.crashes += 1;
        self.telemetry
            .record(0, self.now.get(), p.index() as u32, EventKind::ProcessCrash);
        self.slots[idx].down = true;
        self.slots[idx].forced_down = forced;
        self.slots[idx].step_gen += 1; // invalidate pending steps
        self.slots[idx].buffer.clear(); // volatile buffer lost
        self.programs[idx].on_crash();
    }

    fn recover(&mut self, p: ProcessId) {
        let idx = p.index();
        if !self.slots[idx].down {
            return;
        }
        self.stats.recoveries += 1;
        self.telemetry.record(
            0,
            self.now.get(),
            p.index() as u32,
            EventKind::ProcessRecover,
        );
        self.slots[idx].down = false;
        self.slots[idx].forced_down = false;
        self.slots[idx].step_gen += 1;
        self.programs[idx].on_recover();
        let first = self.first_step_offset(p);
        self.schedule_step(p, first);
    }

    fn on_recover_event(&mut self, p: ProcessId, gen: u64) {
        // Only recover if the crash that scheduled this is still current.
        if self.slots[p.index()].down && self.slots[p.index()].step_gen == gen {
            self.recover(p);
        }
    }

    fn on_period_start(&mut self, idx: usize) {
        // A period boundary is where the link/fault regime changes — the
        // sim-layer analogue of a contact-plan phase change.
        self.telemetry.record(
            idx as u64,
            self.now.get(),
            TelemetryEvent::ALL,
            EventKind::ContactPhaseChange,
        );
        self.apply_period_entry(idx);
    }

    /// Applies entry rules of period `idx` (assumed in force at `self.now`).
    fn apply_period_entry(&mut self, idx: usize) {
        let kind = self.schedule.periods()[idx].kind;
        match kind {
            PeriodKind::Good { pi0, kind } => {
                // π0 members must be up and meeting the Φ+ bound from the
                // very start of the period.
                for p in pi0.iter() {
                    if self.slots[p.index()].down {
                        self.recover(p);
                    } else {
                        self.slots[p.index()].step_gen += 1;
                        let first = self.first_step_offset(p);
                        self.schedule_step(p, first);
                    }
                }
                if kind == GoodKind::PiDown {
                    for p in pi0.complement(self.cfg.n).iter() {
                        self.crash(p, true);
                    }
                }
            }
            PeriodKind::Bad(_) => {
                // Forced-down processes come back up when the π0-down good
                // period ends.
                let forced: Vec<ProcessId> = (0..self.cfg.n)
                    .map(ProcessId::new)
                    .filter(|p| self.slots[p.index()].forced_down)
                    .collect();
                for p in forced {
                    self.recover(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BadPeriodConfig;
    use crate::schedule::Period;
    use ho_core::process::ProcessSet;

    /// Broadcasts a counter, then receives forever; records everything.
    #[derive(Clone, Debug, Default)]
    struct Chatter {
        sent: u64,
        received: Vec<(ProcessId, u64)>,
        crashes: u64,
        recoveries: u64,
        want_send: bool,
    }

    impl Program for Chatter {
        type Msg = u64;

        fn next_step(&mut self) -> StepKind<u64> {
            self.want_send = !self.want_send;
            if self.want_send {
                self.sent += 1;
                StepKind::send_all(self.sent)
            } else {
                StepKind::Receive
            }
        }

        fn select_message(&mut self, _buffer: &[(ProcessId, WireMsg<u64>)]) -> Option<usize> {
            Some(0)
        }

        fn on_receive(&mut self, message: Option<(ProcessId, WireMsg<u64>)>) {
            if let Some((q, m)) = message {
                self.received.push((q, *m));
            }
        }

        fn on_crash(&mut self) {
            self.crashes += 1;
        }

        fn on_recover(&mut self) {
            self.recoveries += 1;
        }
    }

    fn all_good_sim(n: usize, phi: f64, delta: f64) -> Simulator<Chatter> {
        let cfg = SimConfig::normalized(n, phi, delta);
        let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown);
        Simulator::new(cfg, schedule, vec![Chatter::default(); n])
    }

    #[test]
    fn messages_flow_in_good_period() {
        let mut sim = all_good_sim(3, 1.0, 2.0);
        sim.run_for(TimePoint::new(50.0));
        for p in sim.programs() {
            assert!(p.sent > 10, "everyone keeps sending");
            assert!(!p.received.is_empty(), "everyone receives");
        }
        assert_eq!(sim.stats().dropped, 0, "no loss in an all-good run");
    }

    #[test]
    fn good_period_step_rate_is_bounded() {
        // Worst-case timing: steps every Φ+ exactly. In 100 time units with
        // Φ+ = 2, a process takes about 50 steps.
        let mut sim = all_good_sim(2, 2.0, 1.0);
        sim.run_for(TimePoint::new(100.0));
        let steps = sim.stats().total_steps();
        assert!((2 * 45..=2 * 51).contains(&steps), "got {steps}");
    }

    #[test]
    fn good_period_delivery_within_delta() {
        // With worst-case delay = Δ every delivery is exactly Δ after the
        // send; the first receive at time ≥ Φ+ + Δ can see a message.
        let mut sim = all_good_sim(2, 1.0, 3.0);
        sim.run_for(TimePoint::new(30.0));
        assert!(sim.stats().delivered() > 0);
        // In-flight messages at the deadline are neither delivered nor
        // dropped yet.
        assert!(sim.stats().delivered() + sim.stats().dropped <= sim.stats().transmissions);
    }

    #[test]
    fn pi_down_forces_outsiders_down() {
        let n = 3;
        let pi0 = ProcessSet::from_indices([0, 1]);
        let cfg = SimConfig::normalized(n, 1.0, 1.0);
        let schedule = Schedule::always_good(pi0, GoodKind::PiDown);
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.run_for(TimePoint::new(20.0));
        assert!(sim.is_down(ProcessId::new(2)));
        assert_eq!(sim.program(ProcessId::new(2)).sent, 0, "down from t=0");
        assert!(sim.program(ProcessId::new(0)).sent > 0);
    }

    #[test]
    fn bad_period_loses_messages() {
        let n = 2;
        let cfg = SimConfig::normalized(n, 1.0, 1.0).with_seed(7);
        let bad = BadPeriodConfig {
            loss: 1.0,
            crash_prob: 0.0,
            ..BadPeriodConfig::default()
        };
        let schedule = Schedule::new(vec![Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Bad(bad),
        }]);
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.run_for(TimePoint::new(50.0));
        assert_eq!(sim.stats().delivered(), 0, "loss = 1.0 drops everything");
        assert!(sim.stats().dropped > 0);
    }

    #[test]
    fn bad_then_good_transition_recovers_flow() {
        let n = 3;
        let cfg = SimConfig::normalized(n, 1.0, 1.0).with_seed(3);
        let bad = BadPeriodConfig {
            loss: 1.0,
            crash_prob: 0.0,
            ..BadPeriodConfig::default()
        };
        let schedule = Schedule::bad_then_good(
            bad,
            TimePoint::new(30.0),
            ProcessSet::full(n),
            GoodKind::PiDown,
        );
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.run_for(TimePoint::new(29.0));
        assert_eq!(sim.stats().delivered(), 0);
        sim.run_for(TimePoint::new(60.0));
        assert!(sim.stats().delivered() > 0, "good period delivers");
    }

    #[test]
    fn crashes_and_recoveries_fire_hooks() {
        let n = 2;
        let cfg = SimConfig::normalized(n, 1.0, 1.0).with_seed(11);
        let bad = BadPeriodConfig {
            crash_prob: 0.2,
            min_down: 1.0,
            max_down: 3.0,
            slow_factor: 1.0,
            extra_delay_factor: 0.0,
            ..BadPeriodConfig::calm()
        };
        let schedule = Schedule::new(vec![Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Bad(bad),
        }]);
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.run_for(TimePoint::new(200.0));
        assert!(sim.stats().crashes > 0, "crash roulette fires");
        assert!(sim.stats().recoveries > 0, "recoveries follow");
        let total_hooks: u64 = sim.programs().iter().map(|p| p.crashes).sum();
        assert_eq!(total_hooks, sim.stats().crashes);
    }

    #[test]
    fn telemetry_records_engine_events() {
        let n = 2;
        let cfg = SimConfig::normalized(n, 1.0, 1.0).with_seed(11);
        let bad = BadPeriodConfig {
            crash_prob: 0.2,
            min_down: 1.0,
            max_down: 3.0,
            slow_factor: 1.0,
            extra_delay_factor: 0.0,
            ..BadPeriodConfig::calm()
        };
        let schedule = Schedule::bad_then_good(
            bad,
            TimePoint::new(100.0),
            ProcessSet::full(n),
            GoodKind::PiDown,
        );
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.set_telemetry(Telemetry::with_capacity(256));
        sim.run_for(TimePoint::new(200.0));
        let stats = sim.stats().clone();
        let telemetry = sim.take_telemetry();
        assert!(!sim.telemetry().is_on(), "handle taken");
        let s = telemetry.summary().expect("recorder was on");
        assert_eq!(
            s.count(&EventKind::SchedulerDispatch { queue_depth: 0 }),
            stats.events_dispatched
        );
        assert_eq!(s.count(&EventKind::ProcessCrash), stats.crashes);
        assert_eq!(s.count(&EventKind::ProcessRecover), stats.recoveries);
        assert_eq!(s.count(&EventKind::ContactPhaseChange), 1, "one boundary");
        // The ring wrapped (dispatches far exceed its capacity) and the
        // truncation is counted, not hidden.
        assert!(s.events_dropped > 0);
        assert_eq!(s.events_recorded - s.events_dropped, 256);
    }

    #[test]
    fn run_until_stop_condition() {
        let mut sim = all_good_sim(2, 1.0, 1.0);
        let fired = sim.run_until(TimePoint::new(1000.0), |s| {
            s.programs().iter().any(|p| p.sent >= 5)
        });
        assert!(fired);
        assert!(sim.now().get() < 1000.0);
    }

    #[test]
    fn omissive_bad_period_drops_transmissions() {
        let n = 3;
        let cfg = SimConfig::normalized(n, 1.0, 1.0).with_seed(13);
        let bad = BadPeriodConfig::omissive(0.5, 0.5);
        let schedule = Schedule::new(vec![Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Bad(bad),
        }]);
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.run_for(TimePoint::new(100.0));
        let s = sim.stats();
        // fault prob = 1 − 0.5·0.5 = 0.75; allow wide tolerance.
        let ratio = s.dropped as f64 / s.transmissions as f64;
        assert!(ratio > 0.6 && ratio < 0.9, "drop ratio {ratio}");
    }

    #[test]
    fn fast_outsiders_step_faster_than_phi_minus() {
        // A speedy bad period lets processes step well below the Φ− gap —
        // the arbitrarily-fast regime of the real-valued-clock remark.
        let n = 1;
        let cfg = SimConfig::normalized(n, 1.0, 1.0).with_seed(2);
        let schedule = Schedule::new(vec![Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Bad(BadPeriodConfig::speedy(10.0)),
        }]);
        let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
        sim.run_for(TimePoint::new(100.0));
        // With gaps in [0.1, 1.0], expect far more than 100 steps.
        assert!(
            sim.stats().total_steps() > 150,
            "steps {}",
            sim.stats().total_steps()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let n = 3;
            let cfg = SimConfig::normalized(n, 1.5, 2.0)
                .with_seed(seed)
                .with_step_timing(StepTiming::Jittered)
                .with_delay_timing(DelayTiming::Jittered);
            let schedule = Schedule::bad_then_good(
                BadPeriodConfig::lossy(0.5),
                TimePoint::new(20.0),
                ProcessSet::full(n),
                GoodKind::PiDown,
            );
            let mut sim = Simulator::new(cfg, schedule, vec![Chatter::default(); n]);
            sim.run_for(TimePoint::new(100.0));
            (sim.stats().clone(), sim.programs()[0].received.clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }
}
