//! Run statistics: step, message and fault counters.

/// Counters accumulated over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Send steps executed (each may fan out to `n` transmissions).
    pub send_steps: u64,
    /// Receive steps executed (including receptions of the empty message λ).
    pub receive_steps: u64,
    /// Receive steps that returned the empty message λ.
    pub empty_receives: u64,
    /// Point-to-point transmissions handed to the network.
    pub transmissions: u64,
    /// Transmissions that reached a buffer.
    pub delivered: u64,
    /// Transmissions dropped (bad-period loss, π0-down purge, or
    /// destination down).
    pub dropped: u64,
    /// Crash events (including forced downs at π0-down period starts).
    pub crashes: u64,
    /// Recovery events.
    pub recoveries: u64,
    /// Broadcast send steps (`SendAll`): one wire-message *value* fanned
    /// out to `n` destinations. With `Arc`-shared payloads (the SendPlan
    /// kernel), each such step costs one payload allocation, not `n`.
    pub broadcast_sends: u64,
}

impl SimStats {
    /// Total steps taken by all processes.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.send_steps + self.receive_steps
    }

    /// Fraction of transmissions that were delivered, in `[0, 1]`
    /// (1.0 when nothing was sent).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.transmissions == 0 {
            1.0
        } else {
            self.delivered as f64 / self.transmissions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let s = SimStats {
            send_steps: 4,
            receive_steps: 10,
            transmissions: 8,
            delivered: 6,
            dropped: 2,
            ..SimStats::default()
        };
        assert_eq!(s.total_steps(), 14);
        assert!((s.delivery_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_ratio_is_one() {
        assert_eq!(SimStats::default().delivery_ratio(), 1.0);
    }
}
