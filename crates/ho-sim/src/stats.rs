//! Run statistics: step, message and fault counters.
//!
//! Message accounting is shared with the round-synchronous executor: the
//! simulator embeds the same [`MessageStats`] struct the executor reports,
//! so sweep reports aggregate both layers uniformly. The engine fills
//! `messages.delivered`; the payload-construction counters
//! (`payload_allocs` / `payload_reuses`) live with the programs — they own
//! the payload pools — and are merged in by
//! [`Simulator::message_stats`](crate::Simulator::message_stats).

use ho_core::executor::MessageStats;

/// Counters accumulated over a simulation run.
///
/// Equality compares the *behavioural* counters only: `events_dispatched`
/// and `peak_queue_depth` describe the event-queue mechanics, which
/// legitimately differ between the coalesced broadcast path and the
/// per-destination `clone_fanout` oracle (fewer, fatter events). They are
/// identical across scheduler backends — the lockstep suite asserts that
/// explicitly.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Send steps executed (each may fan out to `n` transmissions).
    pub send_steps: u64,
    /// Receive steps executed (including receptions of the empty message λ).
    pub receive_steps: u64,
    /// Receive steps that returned the empty message λ.
    pub empty_receives: u64,
    /// Point-to-point transmissions handed to the network.
    pub transmissions: u64,
    /// Transmissions dropped (bad-period loss, π0-down purge, or
    /// destination down).
    pub dropped: u64,
    /// Buffered messages discarded as provably ignorable
    /// ([`Program::discard_buffered`](crate::Program::discard_buffered) —
    /// §4.2.1's space optimisation applied to the reception buffer).
    pub discarded: u64,
    /// Crash events (including forced downs at π0-down period starts).
    pub crashes: u64,
    /// Recovery events.
    pub recoveries: u64,
    /// Broadcast send steps: one pooled wire payload fanned out to `n`
    /// destinations by reference count — one payload construction per
    /// step, not `n`.
    pub broadcast_sends: u64,
    /// Message accounting in the executor's terms. The engine counts
    /// `delivered` (transmissions that reached a buffer); see the module
    /// docs for where the construction counters come from.
    pub messages: MessageStats,
    /// Events dispatched from the queue — the engine's unit of work. A
    /// coalesced broadcast dispatches one event per distinct delay, not one
    /// per destination, so this is *lower* than under `clone_fanout`.
    /// Excluded from equality (see the struct docs).
    pub events_dispatched: u64,
    /// High-water mark of pending events in the scheduler. Excluded from
    /// equality (see the struct docs).
    pub peak_queue_depth: u64,
}

impl PartialEq for SimStats {
    fn eq(&self, other: &Self) -> bool {
        // Queue-mechanics diagnostics deliberately excluded — see the
        // struct docs.
        self.send_steps == other.send_steps
            && self.receive_steps == other.receive_steps
            && self.empty_receives == other.empty_receives
            && self.transmissions == other.transmissions
            && self.dropped == other.dropped
            && self.discarded == other.discarded
            && self.crashes == other.crashes
            && self.recoveries == other.recoveries
            && self.broadcast_sends == other.broadcast_sends
            && self.messages == other.messages
    }
}

impl Eq for SimStats {}

impl SimStats {
    /// Total steps taken by all processes.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.send_steps + self.receive_steps
    }

    /// Transmissions that reached a buffer.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.messages.delivered
    }

    /// Fraction of transmissions that were delivered, in `[0, 1]`
    /// (1.0 when nothing was sent).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.transmissions == 0 {
            1.0
        } else {
            self.delivered() as f64 / self.transmissions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let s = SimStats {
            send_steps: 4,
            receive_steps: 10,
            transmissions: 8,
            dropped: 2,
            messages: MessageStats {
                delivered: 6,
                ..MessageStats::default()
            },
            ..SimStats::default()
        };
        assert_eq!(s.total_steps(), 14);
        assert_eq!(s.delivered(), 6);
        assert!((s.delivery_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_ratio_is_one() {
        assert_eq!(SimStats::default().delivery_ratio(), 1.0);
    }

    #[test]
    fn queue_mechanics_are_excluded_from_equality() {
        let a = SimStats {
            send_steps: 1,
            events_dispatched: 10,
            peak_queue_depth: 3,
            ..SimStats::default()
        };
        let b = SimStats {
            send_steps: 1,
            events_dispatched: 99,
            peak_queue_depth: 7,
            ..SimStats::default()
        };
        assert_eq!(a, b, "queue diagnostics do not affect equality");
        let c = SimStats {
            send_steps: 2,
            ..a.clone()
        };
        assert_ne!(a, c, "behavioural counters still do");
    }
}
