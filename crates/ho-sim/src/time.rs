//! Real-valued simulation time.
//!
//! The paper deliberately uses clocks with values from ℝ rather than the
//! integers of DLS (see the remark in §4.1): with integer clocks, processes
//! outside `π0` could not be arbitrarily fast relative to `π0`, which would
//! smuggle a synchrony assumption into the "π0-arbitrary" good period. We
//! follow suit with `f64` time.

use std::cmp::Ordering;

/// A point in simulated time (finite, non-negative `f64`).
///
/// `TimePoint` provides the total order that `f64` lacks so it can key the
/// event queue; construction rejects NaN.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimePoint(f64);

impl TimePoint {
    /// The start of time.
    pub const ZERO: TimePoint = TimePoint(0.0);

    /// The end of time — a deadline no event outlives.
    pub const MAX: TimePoint = TimePoint(f64::MAX);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN or negative.
    #[must_use]
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "time cannot be NaN");
        assert!(t >= 0.0, "time cannot be negative");
        TimePoint(t)
    }

    /// The raw value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// This point shifted `dt` into the future.
    ///
    /// # Panics
    ///
    /// Panics if the result would be NaN or negative.
    #[must_use]
    pub fn after(self, dt: f64) -> TimePoint {
        TimePoint::new(self.0 + dt)
    }
}

impl Eq for TimePoint {}

impl PartialOrd for TimePoint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimePoint {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is rejected at construction.
        self.0.partial_cmp(&other.0).expect("no NaN time")
    }
}

impl From<f64> for TimePoint {
    fn from(t: f64) -> Self {
        TimePoint::new(t)
    }
}

impl std::fmt::Display for TimePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = TimePoint::new(1.0);
        let b = TimePoint::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn after_advances() {
        assert_eq!(TimePoint::ZERO.after(2.5), TimePoint::new(2.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = TimePoint::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = TimePoint::new(-1.0);
    }
}
