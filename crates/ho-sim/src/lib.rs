//! # ho-sim — the system-level model of §4.1
//!
//! A discrete-event simulator implementing the paper's variant of the
//! DLS partially synchronous model:
//!
//! * a fictitious global **real-valued clock** (`f64`, not integers — see
//!   the paper's remark on why ℝ matters for π0-arbitrary good periods);
//! * processes execute **atomic send / receive steps**; the network's
//!   make-ready step is folded into a bounded-delay delivery event;
//! * **good periods**: every `π0` process takes ≥ 1 step per `Φ+` and
//!   ≤ 1 per `Φ−`; messages between `π0` processes are ready within `Δ`;
//! * **bad periods**: crashes, recoveries, send/receive omission
//!   (as message drops), loss and arbitrary slowness;
//! * good periods come in **π0-down** and **π0-arbitrary** flavours
//!   ([`schedule::GoodKind`]).
//!
//! Processes are [`program::Program`]s: step machines that never see the
//! clock, only their own atomic steps — exactly the information available
//! to a process in the paper's model. The `ho-predicates` crate implements
//! the paper's Algorithms 2 and 3 as such programs.

pub mod config;
pub mod engine;
pub mod program;
pub mod schedule;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use config::{BadPeriodConfig, DelayTiming, SimConfig, StepTiming};
pub use engine::{SimScratch, Simulator};
pub use program::{Program, StepKind, WireMsg};
pub use schedule::{GoodKind, LinkSchedule, Period, PeriodKind, Schedule};
pub use scheduler::SchedulerKind;
pub use stats::SimStats;
pub use time::TimePoint;
