//! Simulation parameters: the synchrony bounds of §4.1.
//!
//! In a good period, processes in `π0` take at least one step per `Φ+` and
//! at most one step per `Φ−` time units, and a message sent at `t` between
//! `π0` processes is in the destination buffer by `t + Δ`. The paper scales
//! everything by `1/Φ−`: `φ = Φ+/Φ−` is the normalized process-speed bound
//! and `δ = Δ/Φ−` the normalized transmission delay. [`SimConfig::normalized`]
//! builds configurations directly in that normalized form (`Φ− = 1`).

use crate::scheduler::SchedulerKind;

/// How step intervals are drawn within the `[Φ−, Φ+]` band.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StepTiming {
    /// Every gap is exactly `Φ+` (the slowest admissible process — the
    /// worst case the theorems are stated against).
    #[default]
    WorstCase,
    /// Every gap is exactly `Φ−` (fastest admissible).
    Fastest,
    /// Gaps drawn uniformly from `[Φ−, Φ+]`.
    Jittered,
}

/// How message delays are drawn within `(0, Δ]` for good-period messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DelayTiming {
    /// Every delay is exactly `Δ` (worst case).
    #[default]
    WorstCase,
    /// Delays drawn uniformly from `(0, Δ]`.
    Jittered,
}

/// The synchrony and timing parameters of a simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of processes `n`.
    pub n: usize,
    /// `Φ+`: in a good period every `π0` process takes ≥ 1 step per `Φ+`.
    pub phi_plus: f64,
    /// `Φ−`: in a good period every `π0` process takes ≤ 1 step per `Φ−`.
    pub phi_minus: f64,
    /// `Δ`: good-period transmission bound between `π0` processes.
    pub delta: f64,
    /// Step interval policy.
    pub step_timing: StepTiming,
    /// Message delay policy.
    pub delay_timing: DelayTiming,
    /// RNG seed — every run is deterministic under its seed.
    pub seed: u64,
    /// Event-queue backend. Dispatch order — and therefore every observable
    /// of a run — is identical under both; [`SchedulerKind::Heap`] survives
    /// as the oracle the lockstep equivalence suite replays against.
    pub scheduler: SchedulerKind,
    /// Fan broadcasts out by deep-cloning the payload per destination
    /// instead of sharing one pooled payload by reference count. This is
    /// the retired pre-pool delivery scheme, kept only as the oracle for
    /// the clone-vs-pool equivalence proofs — behaviour is identical, the
    /// allocation economy is not.
    pub clone_fanout: bool,
}

impl SimConfig {
    /// A configuration in the paper's normalized units: `Φ− = 1`,
    /// `Φ+ = φ`, `Δ = δ`. All reported times are then directly comparable
    /// with the theorem formulas.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1`, `φ ≥ 1` and `δ > 0`.
    #[must_use]
    pub fn normalized(n: usize, phi: f64, delta: f64) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(phi >= 1.0, "φ = Φ+/Φ− is at least 1");
        assert!(delta > 0.0, "δ must be positive");
        SimConfig {
            n,
            phi_plus: phi,
            phi_minus: 1.0,
            delta,
            step_timing: StepTiming::default(),
            delay_timing: DelayTiming::default(),
            seed: 0,
            scheduler: SchedulerKind::default(),
            clone_fanout: false,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the step-interval policy.
    #[must_use]
    pub fn with_step_timing(mut self, timing: StepTiming) -> Self {
        self.step_timing = timing;
        self
    }

    /// Sets the message-delay policy.
    #[must_use]
    pub fn with_delay_timing(mut self, timing: DelayTiming) -> Self {
        self.delay_timing = timing;
        self
    }

    /// Selects the event-queue backend (see [`SimConfig::scheduler`]).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the per-destination deep-clone fan-out (the equivalence
    /// oracle — see [`SimConfig::clone_fanout`]).
    #[must_use]
    pub fn with_clone_fanout(mut self, clone_fanout: bool) -> Self {
        self.clone_fanout = clone_fanout;
        self
    }

    /// `φ = Φ+/Φ−`, the normalized process speed bound.
    #[must_use]
    pub fn phi(&self) -> f64 {
        self.phi_plus / self.phi_minus
    }

    /// `δ = Δ/Φ−`, the normalized transmission delay.
    #[must_use]
    pub fn delta_norm(&self) -> f64 {
        self.delta / self.phi_minus
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `Φ+ < Φ−` or any bound is non-positive.
    pub fn validate(&self) {
        assert!(self.n >= 1, "need at least one process");
        assert!(self.phi_minus > 0.0, "Φ− must be positive");
        assert!(self.phi_plus >= self.phi_minus, "Φ+ must be at least Φ−");
        assert!(self.delta > 0.0, "Δ must be positive");
    }
}

/// Behaviour of the system during *bad* periods (and of `π̄0` during
/// π0-arbitrary good periods): arbitrary, but benign.
///
/// The paper's §2.3 point is that send omission, link loss and receive
/// omission are indistinguishable at the HO level — all three are
/// *transmission faults*. The simulator still models them separately so
/// experiments can attribute faults to components: a transmission fails
/// with probability `1 − (1−send_omission)(1−loss)(1−receive_omission)`.
#[derive(Clone, Copy, Debug)]
pub struct BadPeriodConfig {
    /// Probability that the *sender* drops an outgoing copy
    /// (send-omission fault of the process).
    pub send_omission: f64,
    /// Probability that the *link* loses the message.
    pub loss: f64,
    /// Probability that the *receiver* drops the message at make-ready
    /// time (receive-omission fault of the process).
    pub receive_omission: f64,
    /// Extra delay factor: surviving messages take up to
    /// `Δ · (1 + extra_delay_factor)` to become ready.
    pub extra_delay_factor: f64,
    /// Per-step crash probability for a process running under bad rules.
    pub crash_prob: f64,
    /// Downtime bounds `[min_down, max_down]` after a crash.
    pub min_down: f64,
    /// See [`BadPeriodConfig::min_down`].
    pub max_down: f64,
    /// Step-slowdown factor: step gaps drawn up to `Φ+ · slow_factor`.
    pub slow_factor: f64,
    /// Step-speedup factor: step gaps drawn down to `Φ−/fast_factor`.
    ///
    /// The paper's remark on real-valued clocks (§4.1) exists precisely so
    /// that processes outside `π0` can be *arbitrarily fast* relative to
    /// `π0`; raise this to exercise that regime.
    pub fast_factor: f64,
}

impl Default for BadPeriodConfig {
    fn default() -> Self {
        BadPeriodConfig {
            send_omission: 0.0,
            receive_omission: 0.0,
            loss: 0.3,
            extra_delay_factor: 4.0,
            crash_prob: 0.02,
            min_down: 5.0,
            max_down: 50.0,
            slow_factor: 5.0,
            fast_factor: 1.0,
        }
    }
}

impl BadPeriodConfig {
    /// A maximally quiet bad period: no loss, no crashes, no slowdown —
    /// useful to isolate one fault dimension in tests.
    #[must_use]
    pub fn calm() -> Self {
        BadPeriodConfig {
            send_omission: 0.0,
            receive_omission: 0.0,
            loss: 0.0,
            extra_delay_factor: 0.0,
            crash_prob: 0.0,
            min_down: 0.0,
            max_down: 0.0,
            slow_factor: 1.0,
            fast_factor: 1.0,
        }
    }

    /// A bad period whose processes run up to `fast_factor`× faster than
    /// the `Φ−` bound (and lose nothing): models the arbitrarily-fast
    /// outsiders of the real-valued-clock remark.
    #[must_use]
    pub fn speedy(fast_factor: f64) -> Self {
        BadPeriodConfig {
            fast_factor,
            ..BadPeriodConfig::calm()
        }
    }

    /// A chaotic bad period with the given message-loss rate.
    #[must_use]
    pub fn lossy(loss: f64) -> Self {
        BadPeriodConfig {
            loss,
            ..BadPeriodConfig::default()
        }
    }

    /// A bad period whose only faults are process omissions (no link loss,
    /// no crashes): the ST/DT omission classes of §2.2.
    #[must_use]
    pub fn omissive(send_omission: f64, receive_omission: f64) -> Self {
        BadPeriodConfig {
            send_omission,
            receive_omission,
            loss: 0.0,
            crash_prob: 0.0,
            ..BadPeriodConfig::default()
        }
    }

    /// The probability that a transmission under these rules fails for any
    /// of the three §2.3 reasons.
    #[must_use]
    pub fn transmission_fault_prob(&self) -> f64 {
        1.0 - (1.0 - self.send_omission) * (1.0 - self.loss) * (1.0 - self.receive_omission)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_config_units() {
        let c = SimConfig::normalized(4, 2.0, 5.0);
        assert_eq!(c.phi(), 2.0);
        assert_eq!(c.delta_norm(), 5.0);
        c.validate();
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::normalized(4, 1.5, 3.0)
            .with_seed(9)
            .with_step_timing(StepTiming::Jittered)
            .with_delay_timing(DelayTiming::Jittered);
        assert_eq!(c.seed, 9);
        assert_eq!(c.step_timing, StepTiming::Jittered);
        assert_eq!(c.delay_timing, DelayTiming::Jittered);
    }

    #[test]
    fn scheduler_defaults_to_wheel_with_heap_oracle() {
        let c = SimConfig::normalized(4, 1.0, 2.0);
        assert_eq!(c.scheduler, SchedulerKind::Wheel);
        assert_eq!(
            c.with_scheduler(SchedulerKind::Heap).scheduler,
            SchedulerKind::Heap
        );
        assert_eq!(SchedulerKind::Heap.name(), "heap");
        assert_eq!(SchedulerKind::Wheel.name(), "wheel");
        assert_eq!(
            SchedulerKind::all(),
            [SchedulerKind::Heap, SchedulerKind::Wheel]
        );
    }

    #[test]
    #[should_panic(expected = "φ = Φ+/Φ− is at least 1")]
    fn phi_below_one_rejected() {
        let _ = SimConfig::normalized(4, 0.5, 3.0);
    }

    #[test]
    fn bad_period_presets() {
        let calm = BadPeriodConfig::calm();
        assert_eq!(calm.loss, 0.0);
        assert_eq!(calm.crash_prob, 0.0);
        let lossy = BadPeriodConfig::lossy(0.8);
        assert_eq!(lossy.loss, 0.8);
        let om = BadPeriodConfig::omissive(0.2, 0.1);
        assert_eq!(om.loss, 0.0);
        assert_eq!(om.send_omission, 0.2);
        assert_eq!(om.receive_omission, 0.1);
    }

    #[test]
    fn transmission_fault_probability_composes() {
        let c = BadPeriodConfig {
            send_omission: 0.5,
            loss: 0.5,
            receive_omission: 0.0,
            ..BadPeriodConfig::calm()
        };
        assert!((c.transmission_fault_prob() - 0.75).abs() < 1e-12);
        assert_eq!(BadPeriodConfig::calm().transmission_fault_prob(), 0.0);
    }
}
