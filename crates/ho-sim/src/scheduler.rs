//! Event-queue backends for the discrete-event engine.
//!
//! The engine dispatches strictly in `(time, seq)` order — time first, FIFO
//! at equal timestamps. Two backends implement that contract:
//!
//! * [`SchedulerKind::Heap`] — the original global `BinaryHeap`, `O(log E)`
//!   per operation. Kept as the equivalence oracle.
//! * [`SchedulerKind::Wheel`] — a bucketed calendar queue (time wheel):
//!   a power-of-two ring of buckets, one simulated *day* (a bucket width
//!   of time) per bucket, with a far-overflow tier for events beyond the
//!   wheel's horizon. Buckets are intrusive linked lists over one shared
//!   node arena, so event storage is recycled through a free list and the
//!   arena only ever grows to the queue's high-water mark. Push is `O(1)`;
//!   pop scans one bucket. Event days are computed **once at push time**
//!   in integer arithmetic, so cursor advancement never re-derives a day
//!   from floating point and the two backends agree bit-for-bit on
//!   dispatch order.
//!
//! Both backends yield the exact global `(time, seq)` minimum on every pop,
//! so a simulation run is bit-identical under either — the lockstep suite
//! in `tests/scheduler_equivalence.rs` proves it across the fault zoo.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::TimePoint;

/// Number of buckets on the wheel (one simulated day each). Power of two so
/// the cursor is a mask, sized so the default horizon (`NBUCKETS × width`)
/// comfortably covers step gaps, message delays and crash-recovery spans;
/// anything further lands in the far tier and migrates on wrap.
const NBUCKETS: usize = 128;

/// Which event-queue backend a [`crate::Simulator`] run uses.
///
/// Dispatch order is identical under both — `Heap` survives as the oracle
/// the lockstep equivalence suite replays against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Global binary heap ordered by `(time, seq)` — the original backend.
    Heap,
    /// Bucketed calendar queue with FIFO buckets and a far-overflow tier.
    #[default]
    Wheel,
}

impl SchedulerKind {
    /// Short lowercase name, used in scenario ids and JSON reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// Both backends, oracle first — the axis the divergence checks sweep.
    #[must_use]
    pub fn all() -> [SchedulerKind; 2] {
        [SchedulerKind::Heap, SchedulerKind::Wheel]
    }
}

/// The bucket width the engine derives from its timing config: half the
/// smallest recurring inter-event gap, so steady-state bucket occupancy
/// stays near one event per process.
#[must_use]
pub(crate) fn wheel_width(phi_minus: f64, delta: f64) -> f64 {
    (phi_minus.min(delta) * 0.5).max(1e-9)
}

pub(crate) struct HeapEntry<T> {
    at: TimePoint,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Arena null index: end of a bucket or free list.
const NIL: u32 = u32::MAX;

/// An arena node: one pending event on an intrusive singly-linked list
/// (its day's bucket, the far tier, or the free list).
struct Node<T> {
    /// Integer day index, fixed at push time: `floor(at / width)` clamped
    /// to the cursor. All ordering decisions after the push are integer.
    day: u64,
    at: TimePoint,
    seq: u64,
    next: u32,
    /// `None` once popped and the node sits on the free list.
    item: Option<T>,
}

/// The calendar queue: `NBUCKETS` bucket lists plus a far tier, all
/// intrusive lists over one shared node arena. The arena grows to the
/// queue's global high-water mark and is then permanently warm — a rare
/// event burst never grows per-bucket storage (there is none), which is
/// what keeps steady-state rounds allocation-free.
pub(crate) struct CalendarQueue<T> {
    arena: Vec<Node<T>>,
    /// Free-list head: nodes recycled by pops.
    free: u32,
    /// Per-bucket list heads, cursor `day & mask`.
    buckets: Vec<u32>,
    /// Far-tier list head: events at or beyond `day + NBUCKETS` days.
    far: u32,
    far_len: usize,
    mask: u64,
    inv_width: f64,
    /// Current day: every pending near event has `node.day >= day`.
    day: u64,
    /// Events currently on the wheel (the buckets).
    near: usize,
}

impl<T> CalendarQueue<T> {
    fn new(width: f64, reserve: usize) -> Self {
        CalendarQueue {
            // Steady state holds one step event per process plus in-flight
            // coalesced broadcasts; start with headroom over n.
            arena: Vec::with_capacity(reserve.saturating_mul(4)),
            free: NIL,
            buckets: vec![NIL; NBUCKETS],
            far: NIL,
            far_len: 0,
            mask: (NBUCKETS - 1) as u64,
            inv_width: width.recip(),
            day: 0,
            near: 0,
        }
    }

    fn reset(&mut self, width: f64) {
        self.arena.clear();
        self.free = NIL;
        self.buckets.fill(NIL);
        self.far = NIL;
        self.far_len = 0;
        self.inv_width = width.recip();
        self.day = 0;
        self.near = 0;
    }

    fn len(&self) -> usize {
        self.near + self.far_len
    }

    fn alloc(&mut self, day: u64, at: TimePoint, seq: u64, item: T) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let node = &mut self.arena[i as usize];
            self.free = node.next;
            node.day = day;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.item = Some(item);
            i
        } else {
            self.arena.push(Node {
                day,
                at,
                seq,
                next: NIL,
                item: Some(item),
            });
            (self.arena.len() - 1) as u32
        }
    }

    fn push(&mut self, at: TimePoint, seq: u64, item: T) {
        // `as u64` truncates toward zero — floor, for non-negative time.
        // The clamp guards the floating-point edge where an event pushed at
        // the current instant rounds into an already-passed day; placing it
        // on the cursor day keeps its true `(at, seq)` key authoritative.
        let day = ((at.get() * self.inv_width) as u64).max(self.day);
        let i = self.alloc(day, at, seq, item);
        if day < self.day + NBUCKETS as u64 {
            let bucket = (day & self.mask) as usize;
            self.arena[i as usize].next = self.buckets[bucket];
            self.buckets[bucket] = i;
            self.near += 1;
        } else {
            self.arena[i as usize].next = self.far;
            self.far = i;
            self.far_len += 1;
        }
    }

    /// Pops the global `(at, seq)` minimum if its time is `<= deadline`.
    ///
    /// Within the cursor bucket only nodes stamped with the current day
    /// are candidates; the minimum among them *is* the global minimum,
    /// because a day maps to exactly one bucket and every earlier day has
    /// been exhausted before the cursor advanced past it.
    fn pop_at_most(&mut self, deadline: TimePoint) -> Option<(TimePoint, T)> {
        loop {
            if self.near == 0 {
                if self.far_len == 0 {
                    return None;
                }
                // Jump the cursor straight to the earliest far day instead
                // of spinning the wheel through empty years.
                let mut jump = u64::MAX;
                let mut i = self.far;
                while i != NIL {
                    let node = &self.arena[i as usize];
                    jump = jump.min(node.day);
                    i = node.next;
                }
                debug_assert!(jump >= self.day);
                self.day = jump;
                self.migrate();
            }
            let bucket = (self.day & self.mask) as usize;
            // Scan the bucket list for the minimal current-day node,
            // remembering its predecessor for the unlink.
            let mut best: Option<(TimePoint, u64, u32, u32)> = None;
            let mut prev = NIL;
            let mut i = self.buckets[bucket];
            while i != NIL {
                let node = &self.arena[i as usize];
                if node.day == self.day
                    && best.is_none_or(|(at, seq, _, _)| (node.at, node.seq) < (at, seq))
                {
                    best = Some((node.at, node.seq, i, prev));
                }
                prev = i;
                i = node.next;
            }
            match best {
                Some((at, _, i, prev)) => {
                    if at > deadline {
                        return None;
                    }
                    let next = self.arena[i as usize].next;
                    if prev == NIL {
                        self.buckets[bucket] = next;
                    } else {
                        self.arena[prev as usize].next = next;
                    }
                    let node = &mut self.arena[i as usize];
                    let item = node.item.take().expect("pending node holds its event");
                    node.next = self.free;
                    self.free = i;
                    self.near -= 1;
                    return Some((at, item));
                }
                None => {
                    self.day += 1;
                    if self.day & self.mask == 0 {
                        // A wheel wrap advances the horizon by a full ring:
                        // pull newly-reachable far events onto the wheel.
                        self.migrate();
                    }
                }
            }
        }
    }

    /// Relinks far nodes whose day now falls inside the horizon onto the
    /// wheel. Pure pointer surgery within the arena — never allocates.
    fn migrate(&mut self) {
        let horizon = self.day + NBUCKETS as u64;
        let mut prev = NIL;
        let mut i = self.far;
        while i != NIL {
            let (day, next) = {
                let node = &self.arena[i as usize];
                (node.day, node.next)
            };
            if day < horizon {
                if prev == NIL {
                    self.far = next;
                } else {
                    self.arena[prev as usize].next = next;
                }
                let bucket = (day & self.mask) as usize;
                self.arena[i as usize].next = self.buckets[bucket];
                self.buckets[bucket] = i;
                self.far_len -= 1;
                self.near += 1;
            } else {
                prev = i;
            }
            i = next;
        }
    }
}

/// The engine-facing queue: one of the two backends behind a common API.
pub(crate) enum EventQueue<T> {
    Heap(BinaryHeap<Reverse<HeapEntry<T>>>),
    Wheel(CalendarQueue<T>),
}

impl<T> EventQueue<T> {
    pub(crate) fn new(kind: SchedulerKind, width: f64, reserve: usize) -> Self {
        match kind {
            SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(reserve)),
            SchedulerKind::Wheel => EventQueue::Wheel(CalendarQueue::new(width, reserve)),
        }
    }

    /// Reuses this queue's allocations for a fresh run: pending entries are
    /// dropped, bucket and heap storage survives. Falls back to a fresh
    /// allocation only when the backend kind changes.
    pub(crate) fn recycle(self, kind: SchedulerKind, width: f64, reserve: usize) -> Self {
        match (self, kind) {
            (EventQueue::Heap(mut heap), SchedulerKind::Heap) => {
                heap.clear();
                EventQueue::Heap(heap)
            }
            (EventQueue::Wheel(mut wheel), SchedulerKind::Wheel) => {
                wheel.reset(width);
                EventQueue::Wheel(wheel)
            }
            (_, kind) => EventQueue::new(kind, width, reserve),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(heap) => heap.len(),
            EventQueue::Wheel(wheel) => wheel.len(),
        }
    }

    pub(crate) fn push(&mut self, at: TimePoint, seq: u64, item: T) {
        match self {
            EventQueue::Heap(heap) => heap.push(Reverse(HeapEntry { at, seq, item })),
            EventQueue::Wheel(wheel) => wheel.push(at, seq, item),
        }
    }

    /// Pops the earliest event iff its time is `<= deadline`.
    pub(crate) fn pop_at_most(&mut self, deadline: TimePoint) -> Option<(TimePoint, T)> {
        match self {
            EventQueue::Heap(heap) => {
                if heap.peek().is_some_and(|Reverse(e)| e.at <= deadline) {
                    let Reverse(e) = heap.pop().expect("peeked");
                    Some((e.at, e.item))
                } else {
                    None
                }
            }
            EventQueue::Wheel(wheel) => wheel.pop_at_most(deadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const FAR: TimePoint = TimePoint::MAX;

    fn drain(queue: &mut EventQueue<u32>) -> Vec<(TimePoint, u32)> {
        let mut out = Vec::new();
        while let Some(e) = queue.pop_at_most(FAR) {
            out.push(e);
        }
        out
    }

    #[test]
    fn fifo_at_equal_timestamps() {
        for kind in SchedulerKind::all() {
            let mut queue = EventQueue::new(kind, 0.5, 4);
            let t = TimePoint::new(3.25);
            for seq in 0..10u64 {
                queue.push(t, seq, seq as u32);
            }
            let order: Vec<u32> = drain(&mut queue).into_iter().map(|(_, x)| x).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{kind:?} keeps FIFO");
        }
    }

    #[test]
    fn far_future_events_jump_the_cursor() {
        let mut queue = EventQueue::new(SchedulerKind::Wheel, 0.5, 4);
        queue.push(TimePoint::new(0.1), 0, 1);
        queue.push(TimePoint::new(10_000.0), 1, 2);
        queue.push(TimePoint::new(250.0), 2, 3);
        assert_eq!(queue.len(), 3);
        let order: Vec<u32> = drain(&mut queue).into_iter().map(|(_, x)| x).collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn deadline_is_respected_without_losing_events() {
        for kind in SchedulerKind::all() {
            let mut queue = EventQueue::new(kind, 0.5, 4);
            queue.push(TimePoint::new(1.0), 0, 1);
            queue.push(TimePoint::new(5.0), 1, 2);
            assert_eq!(
                queue.pop_at_most(TimePoint::new(2.0)),
                Some((TimePoint::new(1.0), 1))
            );
            assert_eq!(queue.pop_at_most(TimePoint::new(2.0)), None);
            assert_eq!(queue.len(), 1, "{kind:?} keeps the late event");
            assert_eq!(
                queue.pop_at_most(TimePoint::new(5.0)),
                Some((TimePoint::new(5.0), 2))
            );
        }
    }

    /// The wheel replays a randomized push/pop trace in exactly the heap's
    /// order — interleaved pushes only at the current frontier, as in the
    /// engine (events are only scheduled while dispatching one).
    #[test]
    fn wheel_matches_heap_on_random_traces() {
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut heap = EventQueue::new(SchedulerKind::Heap, 0.5, 4);
            let mut wheel = EventQueue::new(SchedulerKind::Wheel, 0.5, 4);
            let mut seq = 0u64;
            let mut now = 0.0f64;
            let push = |heap: &mut EventQueue<u32>,
                        wheel: &mut EventQueue<u32>,
                        rng: &mut SmallRng,
                        now: f64,
                        seq: &mut u64| {
                // Mostly near events, occasionally far beyond the horizon,
                // with repeated exact timestamps to exercise FIFO.
                let dt = match rng.gen_range(0u32..10) {
                    0 => 500.0 + rng.gen_range(0.0..100.0),
                    1..=3 => 2.0,
                    _ => rng.gen_range(0.0..8.0),
                };
                let at = TimePoint::new(now + dt);
                heap.push(at, *seq, *seq as u32);
                wheel.push(at, *seq, *seq as u32);
                *seq += 1;
            };
            for _ in 0..50 {
                push(&mut heap, &mut wheel, &mut rng, now, &mut seq);
            }
            while heap.len() > 0 {
                let expect = heap.pop_at_most(FAR).expect("non-empty");
                let got = wheel.pop_at_most(FAR).expect("wheel has the same events");
                assert_eq!(got, expect, "seed {seed}");
                now = expect.0.get();
                // Simulate dispatch-time scheduling at the new frontier.
                if rng.gen_bool(0.6) {
                    push(&mut heap, &mut wheel, &mut rng, now, &mut seq);
                }
                if seq > 600 {
                    break;
                }
            }
        }
    }

    #[test]
    fn recycle_preserves_order_and_reuses_storage() {
        for kind in SchedulerKind::all() {
            let mut queue = EventQueue::new(kind, 0.5, 8);
            for seq in 0..32u64 {
                queue.push(TimePoint::new(seq as f64 * 0.3), seq, seq as u32);
            }
            queue = queue.recycle(kind, 0.5, 8);
            assert_eq!(queue.len(), 0, "recycle drops pending events");
            queue.push(TimePoint::new(1.0), 0, 7);
            assert_eq!(queue.pop_at_most(FAR), Some((TimePoint::new(1.0), 7)));
        }
    }
}
