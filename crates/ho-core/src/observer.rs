//! The round-observer hook: streaming access to each round's HO sets.
//!
//! [`Trace`](crate::trace::Trace) answers "what happened" after the fact —
//! but only in the retention modes that keep rows around, and the sweep's
//! hot configuration ([`TraceMode::Off`](crate::trace::TraceMode)) keeps
//! none. [`RoundObserver`] is the streaming alternative: the executor hands
//! every round's effective HO sets to the observer *as the round completes*
//! and retains nothing. Incremental predicate evaluators (the
//! `ho-predicates` monitor subsystem) ride on this hook, so the sweep can
//! evaluate communication predicates grid-wide without ever materialising
//! a trace.
//!
//! ## Contract
//!
//! * `observe_round` is called exactly once per executed round, in round
//!   order, immediately after delivery and before the transition phase.
//! * The `ho` slice is the executor's scratch row — borrow it for the call
//!   only; copy out whatever must persist.
//! * [`RoundObserver::active`] lets the executor skip computing the HO
//!   support sets entirely when nobody is listening: under `TraceMode::Off`
//!   with an inactive observer the per-round support sets are never built
//!   (the statistics need only the mailbox sizes). An observer that returns
//!   `false` from `active` must tolerate `observe_round` never being called.
//! * Observers are expected to be allocation-free per round in steady
//!   state; `tests/alloc_steady_state.rs` holds the monitor stack to that.

use crate::process::ProcessSet;
use crate::round::Round;

/// Receives each executed round's effective HO sets as the run progresses.
pub trait RoundObserver {
    /// Whether this observer currently wants rounds. Executors skip
    /// computing HO rows (and the `observe_round` call) while this is
    /// `false`.
    fn active(&self) -> bool {
        true
    }

    /// Called once per executed round with `ho[p]` = effective `HO(p, r)`
    /// (the support of `p`'s mailbox).
    fn observe_round(&mut self, r: Round, ho: &[ProcessSet]);
}

/// The inert observer: never active, never called. The plain (unobserved)
/// executor entry points use this, keeping the unmonitored hot path
/// identical to the pre-hook one.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    fn active(&self) -> bool {
        false
    }

    fn observe_round(&mut self, _r: Round, _ho: &[ProcessSet]) {}
}

impl<O: RoundObserver + ?Sized> RoundObserver for &mut O {
    fn active(&self) -> bool {
        (**self).active()
    }

    fn observe_round(&mut self, r: Round, ho: &[ProcessSet]) {
        (**self).observe_round(r, ho);
    }
}

/// `None` behaves like [`NullObserver`] — what lets call sites thread an
/// optional monitor through without duplicating the run loop.
impl<O: RoundObserver> RoundObserver for Option<O> {
    fn active(&self) -> bool {
        self.as_ref().is_some_and(RoundObserver::active)
    }

    fn observe_round(&mut self, r: Round, ho: &[ProcessSet]) {
        if let Some(obs) = self {
            obs.observe_round(r, ho);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collect(Vec<(u64, Vec<ProcessSet>)>);

    impl RoundObserver for Collect {
        fn observe_round(&mut self, r: Round, ho: &[ProcessSet]) {
            self.0.push((r.get(), ho.to_vec()));
        }
    }

    #[test]
    fn null_observer_is_inactive() {
        assert!(!NullObserver.active());
        assert!(!None::<NullObserver>.active());
    }

    #[test]
    fn option_and_reference_forward() {
        let mut c = Collect::default();
        {
            let mut opt = Some(&mut c);
            assert!(opt.active());
            opt.observe_round(Round(3), &[ProcessSet::full(2)]);
        }
        assert_eq!(c.0.len(), 1);
        assert_eq!(c.0[0].0, 3);
    }
}
