//! The consensus specification and its runtime checker.
//!
//! Consensus (§3.1) over initial values `v_i`:
//!
//! * **Integrity** — any decision value is the initial value of some process.
//! * **Agreement** — no two processes decide differently.
//! * **Termination** — all processes (or, with restricted-scope predicates,
//!   all processes in `Π0`) eventually decide.
//!
//! The checker observes decisions as they happen and reports the first
//! safety violation; termination is checked at the end of a run against a
//! scope.

use std::fmt;

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// A violation of the consensus safety specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusViolation<V> {
    /// A decision value was not any process's initial value.
    Integrity {
        /// The offending process.
        process: ProcessId,
        /// The round in which it decided.
        round: Round,
        /// The decided value.
        value: V,
    },
    /// Two processes decided different values.
    Agreement {
        /// The first decider observed.
        first: (ProcessId, V),
        /// The conflicting decider.
        second: (ProcessId, V),
        /// The round of the conflicting decision.
        round: Round,
    },
    /// A process changed or withdrew a previous decision.
    Revoked {
        /// The offending process.
        process: ProcessId,
        /// What it had decided.
        was: V,
        /// What it reports now (`None` = withdrawn).
        now: Option<V>,
        /// The round of the revocation.
        round: Round,
    },
}

impl<V: fmt::Debug> fmt::Display for ConsensusViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::Integrity {
                process,
                round,
                value,
            } => write!(
                f,
                "integrity violated: {process} decided {value:?} at {round:?}, \
                 which is no process's initial value"
            ),
            ConsensusViolation::Agreement {
                first,
                second,
                round,
            } => write!(
                f,
                "agreement violated at {round:?}: {} decided {:?} but {} decided {:?}",
                first.0, first.1, second.0, second.1
            ),
            ConsensusViolation::Revoked {
                process,
                was,
                now,
                round,
            } => write!(
                f,
                "decision revoked at {round:?}: {process} had decided {was:?}, now {now:?}"
            ),
        }
    }
}

impl<V: fmt::Debug> std::error::Error for ConsensusViolation<V> {}

/// Observes decisions round by round and checks integrity, agreement and
/// irrevocability online.
#[derive(Clone, Debug)]
pub struct ConsensusChecker<V> {
    initial: Vec<V>,
    decisions: Vec<Option<(V, Round)>>,
}

impl<V: Clone + PartialEq + fmt::Debug> ConsensusChecker<V> {
    /// A checker for a run starting from the given initial values.
    #[must_use]
    pub fn new(initial: Vec<V>) -> Self {
        let n = initial.len();
        ConsensusChecker {
            initial,
            decisions: vec![None; n],
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.initial.len()
    }

    /// Records the decision state of `p` after round `r`.
    ///
    /// Call with `p`'s current decision (possibly `None`) after every round;
    /// the checker detects revocation as well as fresh violations.
    ///
    /// # Errors
    ///
    /// Returns the violation if integrity, agreement or irrevocability is
    /// broken by this observation.
    pub fn observe(
        &mut self,
        p: ProcessId,
        r: Round,
        decision: Option<&V>,
    ) -> Result<(), ConsensusViolation<V>> {
        let prior = self.decisions[p.index()].clone();
        match (prior, decision) {
            (None, None) => Ok(()),
            (Some((was, _)), None) => Err(ConsensusViolation::Revoked {
                process: p,
                was,
                now: None,
                round: r,
            }),
            (Some((was, _)), Some(now)) if was != *now => Err(ConsensusViolation::Revoked {
                process: p,
                was,
                now: Some(now.clone()),
                round: r,
            }),
            (Some(_), Some(_)) => Ok(()),
            (None, Some(v)) => {
                if !self.initial.contains(v) {
                    return Err(ConsensusViolation::Integrity {
                        process: p,
                        round: r,
                        value: v.clone(),
                    });
                }
                if let Some((q, (w, _))) = self
                    .decisions
                    .iter()
                    .enumerate()
                    .find_map(|(q, d)| d.as_ref().map(|d| (q, d.clone())))
                {
                    if w != *v {
                        return Err(ConsensusViolation::Agreement {
                            first: (ProcessId::new(q), w),
                            second: (p, v.clone()),
                            round: r,
                        });
                    }
                }
                self.decisions[p.index()] = Some((v.clone(), r));
                Ok(())
            }
        }
    }

    /// The set of processes that have decided.
    #[must_use]
    pub fn decided(&self) -> ProcessSet {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(p, _)| ProcessId::new(p))
            .collect()
    }

    /// Whether every process in `scope` has decided (the termination
    /// condition, restricted to `scope` as in Theorem 2).
    #[must_use]
    pub fn terminated(&self, scope: ProcessSet) -> bool {
        scope.is_subset(self.decided())
    }

    /// The common decision value, if at least one process decided.
    #[must_use]
    pub fn decision_value(&self) -> Option<&V> {
        self.decisions
            .iter()
            .find_map(|d| d.as_ref().map(|(v, _)| v))
    }

    /// The round at which `p` decided, if it has.
    #[must_use]
    pub fn decision_round(&self, p: ProcessId) -> Option<Round> {
        self.decisions[p.index()].as_ref().map(|(_, r)| *r)
    }

    /// The latest decision round among processes in `scope`, if all decided.
    #[must_use]
    pub fn last_decision_round(&self, scope: ProcessSet) -> Option<Round> {
        scope
            .iter()
            .map(|p| self.decision_round(p))
            .collect::<Option<Vec<_>>>()
            .map(|rs| rs.into_iter().max().unwrap_or(Round(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn accepts_valid_run() {
        let mut c = ConsensusChecker::new(vec![10, 20, 30]);
        assert!(c.observe(p(0), Round(2), Some(&20)).is_ok());
        assert!(c.observe(p(1), Round(3), Some(&20)).is_ok());
        assert!(c.observe(p(2), Round(3), None).is_ok());
        assert!(!c.terminated(ProcessSet::full(3)));
        assert!(c.terminated(ProcessSet::from_indices([0, 1])));
        assert_eq!(c.decision_value(), Some(&20));
        assert_eq!(c.decision_round(p(1)), Some(Round(3)));
        assert_eq!(
            c.last_decision_round(ProcessSet::from_indices([0, 1])),
            Some(Round(3))
        );
    }

    #[test]
    fn integrity_violation_detected() {
        let mut c = ConsensusChecker::new(vec![1, 2]);
        let err = c.observe(p(0), Round(1), Some(&99)).unwrap_err();
        assert!(matches!(
            err,
            ConsensusViolation::Integrity { value: 99, .. }
        ));
    }

    #[test]
    fn agreement_violation_detected() {
        let mut c = ConsensusChecker::new(vec![1, 2]);
        c.observe(p(0), Round(1), Some(&1)).unwrap();
        let err = c.observe(p(1), Round(2), Some(&2)).unwrap_err();
        assert!(matches!(err, ConsensusViolation::Agreement { .. }));
    }

    #[test]
    fn revocation_detected() {
        let mut c = ConsensusChecker::new(vec![1, 2]);
        c.observe(p(0), Round(1), Some(&1)).unwrap();
        let err = c.observe(p(0), Round(2), None).unwrap_err();
        assert!(matches!(err, ConsensusViolation::Revoked { now: None, .. }));
        // Changing the value is also a revocation (not agreement) for the
        // same process.
        let mut c = ConsensusChecker::new(vec![1, 2]);
        c.observe(p(0), Round(1), Some(&1)).unwrap();
        let err = c.observe(p(0), Round(2), Some(&2)).unwrap_err();
        assert!(matches!(err, ConsensusViolation::Revoked { .. }));
    }

    #[test]
    fn repeated_same_decision_ok() {
        let mut c = ConsensusChecker::new(vec![5]);
        c.observe(p(0), Round(1), Some(&5)).unwrap();
        assert!(c.observe(p(0), Round(2), Some(&5)).is_ok());
    }

    #[test]
    fn last_decision_round_none_until_all_decide() {
        let mut c = ConsensusChecker::new(vec![1, 1]);
        c.observe(p(0), Round(4), Some(&1)).unwrap();
        assert_eq!(c.last_decision_round(ProcessSet::full(2)), None);
        c.observe(p(1), Round(6), Some(&1)).unwrap();
        assert_eq!(c.last_decision_round(ProcessSet::full(2)), Some(Round(6)));
    }

    #[test]
    fn violation_display_messages() {
        let v: ConsensusViolation<u32> = ConsensusViolation::Agreement {
            first: (p(0), 1),
            second: (p(1), 2),
            round: Round(3),
        };
        let s = v.to_string();
        assert!(s.contains("agreement violated"));
    }
}
