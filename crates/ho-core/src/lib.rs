//! # ho-core — the Heard-Of round model
//!
//! The model layer of *"Communication Predicates: A High-Level Abstraction
//! for Coping with Transient and Dynamic Faults"* (Hutle & Schiper,
//! DSN 2007).
//!
//! An HO algorithm is a pair of per-round functions `⟨S_p^r, T_p^r⟩`
//! ([`algorithm::HoAlgorithm`]); all benign faults — crashes, recoveries,
//! omissions, link loss — are *transmission faults*, visible to the
//! algorithm only through the heard-of sets `HO(p, r)` recorded in a
//! [`trace::Trace`]. A problem is solved by a pair `⟨A, P⟩` of an algorithm
//! and a [`predicate::Predicate`] over those traces.
//!
//! ```
//! use ho_core::algorithms::OneThirdRule;
//! use ho_core::adversary::EventuallyGood;
//! use ho_core::executor::RoundExecutor;
//! use ho_core::predicate::{Potr, Predicate};
//! use ho_core::process::ProcessSet;
//!
//! // 5 rounds of chaos, then uniform delivery over all four processes:
//! let mut adversary = EventuallyGood::new(5, ProcessSet::full(4), 0.7, 1);
//! let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![3u64, 1, 4, 1]);
//! exec.run(&mut adversary, 5 + 2).unwrap();
//!
//! // The trace witnesses P_otr, so Theorem 1 applies — and indeed:
//! assert!(Potr.holds(exec.trace()));
//! assert!(exec.decisions().iter().all(Option::is_some));
//! ```

pub mod adversary;
pub mod algorithm;
pub mod algorithms;
pub mod consensus;
pub mod contact;
pub mod executor;
pub mod mailbox;
pub mod observer;
pub mod pool;
pub mod predicate;
pub mod process;
pub mod round;
pub mod send_plan;
pub mod sequence;
pub mod telemetry;
pub mod trace;
pub mod translation;

pub use algorithm::{HoAlgorithm, HoAlgorithmExt};
pub use consensus::{ConsensusChecker, ConsensusViolation};
pub use contact::{contact_seed, ContactPlan, ContactPlanAdversary};
pub use executor::{MessageStats, RoundExecutor, RoundScratch, RunError};
pub use mailbox::{DuplicateSender, Mailbox};
pub use observer::{NullObserver, RoundObserver};
pub use pool::{PayloadPool, PayloadSlot, PooledPayload};
pub use process::{ProcessId, ProcessSet, MAX_PROCESSES};
pub use round::Round;
pub use send_plan::{DeliveryStats, Outbox, PlanSlot, PlanSpares, SendPlan};
pub use sequence::{ProposalSource, RepeatedConsensus};
pub use telemetry::{
    Event, EventKind, FlightRecorder, Metrics, Phase, Telemetry, TelemetrySummary,
};
pub use trace::{Trace, TraceMode};
pub use translation::Translated;
