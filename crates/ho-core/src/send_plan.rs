//! The per-round send plan: `S_p^r` evaluated **once** per process.
//!
//! The paper's sending function `S_p^r` maps a destination to an optional
//! message. Evaluating it per destination forces every execution machine to
//! make `n` calls — and `n` message clones — per sender per round, `O(n²)`
//! clones per round even for pure-broadcast algorithms like OneThirdRule
//! whose round message does not depend on the destination at all.
//!
//! [`SendPlan`] is the closed form of `S_p^r`: produced once per process
//! per round, it states *how* the round's messages fan out —
//! [`SendPlan::Broadcast`] (one shared payload for every destination),
//! [`SendPlan::Unicast`] (an explicit destination list, for
//! coordinator-based algorithms like LastVoting) or [`SendPlan::Silent`].
//! Broadcast payloads are reference-counted, so a broadcast round costs one
//! payload allocation per sender (`O(n)` per round) no matter how many
//! destinations hear it; recipients share the payload through their
//! [`Mailbox`](crate::mailbox::Mailbox).
//!
//! [`Outbox`] is a whole round's worth of plans — one per process — with
//! the delivery and accounting loops all four execution machines
//! (round-synchronous executor, translation, Algorithms 2/3, simulator)
//! share.

use std::sync::Arc;

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::pool::{PayloadPool, PooledPayload};
use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// How one process's round-`r` messages fan out: the closed form of the
/// sending function `S_p^r`.
#[derive(Debug)]
pub enum SendPlan<M> {
    /// The same message to every destination (`send ⟨m⟩ to all`). The
    /// payload is shared — cloning the plan, or delivering it to any number
    /// of destinations, never copies `M` — and generation-stamped: a
    /// recipient that held onto the payload while its slot was recycled
    /// trips a debug assertion instead of reading the wrong round's data.
    Broadcast(PooledPayload<M>),
    /// Distinct messages to an explicit set of destinations (coordinator
    /// rounds, point-to-point phases). Destinations must be distinct.
    Unicast(Vec<(ProcessId, M)>),
    /// No message this round.
    Silent,
}

impl<M> SendPlan<M> {
    /// A broadcast of `message` to all destinations.
    #[must_use]
    pub fn broadcast(message: M) -> Self {
        SendPlan::Broadcast(PooledPayload::new(message))
    }

    /// A unicast plan from explicit `(destination, message)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a destination appears twice: rounds are communication
    /// closed, so `S_p^r` yields at most one message per destination.
    #[must_use]
    pub fn unicast(pairs: Vec<(ProcessId, M)>) -> Self {
        let mut seen = ProcessSet::empty();
        for (q, _) in &pairs {
            assert!(!seen.contains(*q), "duplicate destination {q} in send plan");
            seen.insert(*q);
        }
        SendPlan::Unicast(pairs)
    }

    /// A single message to a single destination.
    #[must_use]
    pub fn to(destination: ProcessId, message: M) -> Self {
        SendPlan::Unicast(vec![(destination, message)])
    }

    /// The empty plan.
    #[must_use]
    pub const fn silent() -> Self {
        SendPlan::Silent
    }

    /// The message this plan sends to destination `q`, if any — the
    /// original per-destination view `S_p^r(s_p)(q)`.
    #[must_use]
    pub fn message_for(&self, q: ProcessId) -> Option<&M> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            SendPlan::Unicast(pairs) => pairs.iter().find(|(d, _)| *d == q).map(|(_, m)| m),
            SendPlan::Silent => None,
        }
    }

    /// The shared payload of a broadcast plan (`None` for unicast/silent).
    #[must_use]
    pub fn broadcast_payload(&self) -> Option<&M> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            _ => None,
        }
    }

    /// The shared payload *handle* of a broadcast plan (`None` for
    /// unicast/silent). Cloning the handle is how Algorithms 2 and 3 thread
    /// the payload straight into their wire messages: one refcount bump, no
    /// payload copy.
    #[must_use]
    pub fn broadcast_handle(&self) -> Option<&PooledPayload<M>> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            _ => None,
        }
    }

    /// Consumes the plan, returning the shared broadcast payload if the
    /// plan is a broadcast. The step machines of Algorithms 2 and 3 thread
    /// this handle straight into their wire messages, so the payload is
    /// allocated exactly once per (process, round).
    #[must_use]
    pub fn into_broadcast_payload(self) -> Option<PooledPayload<M>> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this plan sends the same message to everybody.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        matches!(self, SendPlan::Broadcast(_))
    }

    /// Whether this plan sends nothing.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        match self {
            SendPlan::Silent => true,
            SendPlan::Unicast(pairs) => pairs.is_empty(),
            SendPlan::Broadcast(_) => false,
        }
    }

    /// How many destinations receive a message under full delivery in a
    /// universe of `n` processes.
    #[must_use]
    pub fn dest_count(&self, n: usize) -> usize {
        match self {
            SendPlan::Broadcast(_) => n,
            SendPlan::Unicast(pairs) => pairs.len(),
            SendPlan::Silent => 0,
        }
    }

    /// How many payload allocations *constructing* this plan cost: `1` for
    /// a broadcast (shared by all destinations thereafter), one per pair
    /// for unicast. Unicast deliveries additionally clone per recipient —
    /// [`Outbox::deliver_into`] reports those — so the full new-scheme cost
    /// is construction + delivery clones. Broadcasts are the quantity the
    /// SendPlan refactor drives from `O(n²)` to `O(n)` per round; unicast
    /// plans gain nothing from sharing (each destination's message is
    /// distinct by definition).
    #[must_use]
    pub fn payload_allocs(&self) -> usize {
        match self {
            SendPlan::Broadcast(_) => 1,
            SendPlan::Unicast(pairs) => pairs.len(),
            SendPlan::Silent => 0,
        }
    }
}

impl<M: Clone> Clone for SendPlan<M> {
    fn clone(&self) -> Self {
        match self {
            // Cloning a broadcast shares the payload.
            SendPlan::Broadcast(m) => SendPlan::Broadcast(m.clone()),
            SendPlan::Unicast(pairs) => SendPlan::Unicast(pairs.clone()),
            SendPlan::Silent => SendPlan::Silent,
        }
    }
}

/// Plans compare structurally by message content (broadcast payloads by
/// value, not by slot identity).
impl<M: PartialEq> PartialEq for SendPlan<M> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SendPlan::Broadcast(a), SendPlan::Broadcast(b)) => a == b,
            (SendPlan::Unicast(a), SendPlan::Unicast(b)) => a == b,
            (SendPlan::Silent, SendPlan::Silent) => true,
            _ => false,
        }
    }
}

/// Spare buffers retired from a sender's previous plans, kept for reuse by
/// [`PlanSlot`]: the destination vector of a displaced unicast plan.
/// (Displaced broadcast payloads go to the shared [`PayloadPool`] instead —
/// unlike destination vectors, which every sender needs simultaneously in a
/// unicast round, a retired payload slot can serve *any* sender's next
/// broadcast.)
#[derive(Debug)]
pub struct PlanSpares<M> {
    pairs: Vec<(ProcessId, M)>,
}

// Cloning spares clones the (cleared) buffers — only relevant for cloning
// whole step machines that embed their spares, e.g. the simulator programs.
impl<M: Clone> Clone for PlanSpares<M> {
    fn clone(&self) -> Self {
        PlanSpares {
            pairs: self.pairs.clone(),
        }
    }
}

impl<M> Default for PlanSpares<M> {
    fn default() -> Self {
        PlanSpares { pairs: Vec::new() }
    }
}

/// A writable slot for one sender's round-`r` plan, backed by the sender's
/// previous plan, its [`PlanSpares`], and a shared [`PayloadPool`].
///
/// This is the scratch-buffer side of the sending API: instead of returning
/// a freshly allocated [`SendPlan`], an algorithm *writes* its plan through
/// the slot, and the slot recycles the buffers of earlier rounds — a
/// broadcast payload slot from the sender's own previous plan or the shared
/// pool (reusable once every recipient has dropped its reference, whether
/// that takes one round — the executor — or many — the simulator's
/// Algorithms 2/3, whose recipients hold payloads across rounds) and the
/// sender's unicast destination vector. In steady state both broadcast
/// rounds and shape-alternating coordinator rounds cost **zero** heap
/// allocations.
#[derive(Debug)]
pub struct PlanSlot<'a, M> {
    plan: &'a mut SendPlan<M>,
    spares: &'a mut PlanSpares<M>,
    pool: &'a mut PayloadPool<M>,
}

impl<'a, M> PlanSlot<'a, M> {
    /// Builds a slot over a caller-owned plan, spare buffers, and retired-
    /// payload pool.
    #[must_use]
    pub fn new(
        plan: &'a mut SendPlan<M>,
        spares: &'a mut PlanSpares<M>,
        pool: &'a mut PayloadPool<M>,
    ) -> Self {
        PlanSlot { plan, spares, pool }
    }

    /// Replaces the slot's plan, retiring the displaced plan's buffers into
    /// the spares (destination vectors) or the pool (broadcast payloads —
    /// parked even while recipients still share them).
    fn install(&mut self, new: SendPlan<M>) {
        let old = std::mem::replace(self.plan, new);
        match old {
            SendPlan::Broadcast(handle) => self.pool.retire(handle),
            SendPlan::Unicast(mut pairs) => {
                if pairs.capacity() > self.spares.pairs.capacity() {
                    pairs.clear();
                    self.spares.pairs = pairs;
                }
            }
            SendPlan::Silent => {}
        }
    }

    /// Writes a broadcast of `message`, reusing the current plan's or a
    /// pooled broadcast allocation when one is uniquely owned. Returns the
    /// number of payload buffers reused in place (0 or 1).
    pub fn broadcast(&mut self, message: M) -> u64 {
        let mut msg = Some(message);
        if let SendPlan::Broadcast(handle) = &mut *self.plan {
            if handle.try_rewrite(|slot| *slot = msg.take().expect("unwritten")) {
                return 1;
            }
        }
        if let Some(handle) = self
            .pool
            .take_rewrite(|slot| *slot = msg.take().expect("unwritten"))
        {
            self.install(SendPlan::Broadcast(handle));
            return 1;
        }
        self.install(SendPlan::broadcast(msg.take().expect("unwritten")));
        0
    }

    /// Like [`PlanSlot::broadcast`], but lets the caller overwrite a
    /// reusable payload buffer in place instead of building a fresh payload
    /// first: `reuse` runs when a uniquely owned payload from an earlier
    /// round is available (e.g. `Clone::clone_into`, which also reuses the
    /// payload's own heap), `make` builds the payload otherwise. Returns
    /// the number of payload buffers reused in place (0 or 1).
    pub fn broadcast_with(&mut self, make: impl FnOnce() -> M, reuse: impl FnOnce(&mut M)) -> u64 {
        if let SendPlan::Broadcast(handle) = &mut *self.plan {
            if handle.is_unique() {
                let rewritten = handle.try_rewrite(reuse);
                debug_assert!(rewritten, "uniqueness probed above");
                return 1;
            }
        }
        if let Some(handle) = self.pool.take_rewrite(reuse) {
            self.install(SendPlan::Broadcast(handle));
            return 1;
        }
        self.install(SendPlan::broadcast(make()));
        0
    }

    /// Writes a single-destination plan, reusing the current or spare
    /// destination vector. Returns the number of buffers reused in place.
    pub fn unicast_to(&mut self, destination: ProcessId, message: M) -> u64 {
        if let SendPlan::Unicast(pairs) = &mut *self.plan {
            pairs.clear();
            pairs.push((destination, message));
            return 1;
        }
        let mut pairs = std::mem::take(&mut self.spares.pairs);
        let reused = u64::from(pairs.capacity() > 0);
        pairs.clear();
        pairs.push((destination, message));
        self.install(SendPlan::Unicast(pairs));
        reused
    }

    /// Writes the empty plan. An existing unicast plan is emptied in place
    /// (keeping its buffer warm — [`SendPlan::is_silent`] treats an empty
    /// destination list as silent); a broadcast plan is retired into the
    /// spares.
    pub fn silent(&mut self) {
        match &mut *self.plan {
            SendPlan::Unicast(pairs) => pairs.clear(),
            SendPlan::Broadcast(_) => self.install(SendPlan::Silent),
            SendPlan::Silent => {}
        }
    }

    /// Installs an already-built plan (the non-reusing fallback the default
    /// [`HoAlgorithm::send_into`](crate::algorithm::HoAlgorithm::send_into)
    /// uses).
    pub fn set(&mut self, plan: SendPlan<M>) {
        self.install(plan);
    }
}

/// One round's send plans, one per process, plus delivery accounting.
///
/// This is the kernel every execution machine drives: collect the plans
/// from the pre-round states, then deliver each destination's view under
/// whatever HO assignment the machine's fault model produced.
///
/// An `Outbox` is reusable: [`Outbox::recollect`] overwrites the previous
/// round's plans through [`PlanSlot`]s, recycling their payload buffers
/// instead of allocating fresh ones.
#[derive(Debug)]
pub struct Outbox<M> {
    /// The round's plan table, behind one `Arc` so delivery can attach the
    /// *whole table* to each recipient's mailbox: one refcount bump per
    /// recipient per round, not one per delivered broadcast message.
    plans: Arc<Vec<SendPlan<M>>>,
    spares: Vec<PlanSpares<M>>,
    /// Retired broadcast payload slots, shared across senders (see
    /// [`PayloadPool`]).
    pool: PayloadPool<M>,
    /// Senders whose current plan is a broadcast — delivery to a recipient
    /// intersects this with the HO set instead of matching every plan.
    broadcast_set: ProcessSet,
    /// `dest_index[d]` = senders whose unicast plan addresses `d` — so
    /// delivery probes only the senders that actually hit this recipient.
    dest_index: Vec<ProcessSet>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            plans: Arc::new(Vec::new()),
            spares: Vec::new(),
            pool: PayloadPool::default(),
            broadcast_set: ProcessSet::empty(),
            dest_index: Vec::new(),
        }
    }
}

/// What one [`Outbox::deliver_into`] call cost: the per-recipient deep
/// clones of delivered unicast messages, and how many of those clones were
/// written into payloads recycled from the recipient's previous round
/// (zero allocator traffic for `clone_from`-friendly message types).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Payload constructions: one per delivered unicast message (broadcast
    /// deliveries share the plan's payload and construct nothing).
    pub clones: u64,
    /// Clones served from the mailbox's retired-payload pool.
    pub recycled: u64,
}

impl<M: Clone> Outbox<M> {
    /// An empty, reusable outbox (see [`Outbox::recollect`]).
    #[must_use]
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Evaluates `S_q^r` once per process over the pre-round states into a
    /// freshly allocated outbox.
    #[must_use]
    pub fn collect<A>(alg: &A, r: Round, states: &[A::State]) -> Outbox<A::Message>
    where
        A: HoAlgorithm<Message = M>,
    {
        let mut out = Outbox::default();
        out.recollect(alg, r, states);
        out
    }

    /// Re-evaluates `S_q^r` once per process over the pre-round states,
    /// overwriting this outbox's previous plans in place. Each sender's
    /// plan is written through a [`PlanSlot`], so payload buffers from the
    /// previous round are recycled where the algorithm's
    /// [`send_into`](crate::algorithm::HoAlgorithm::send_into) supports it.
    ///
    /// Returns the number of payload buffers reused in place this round.
    /// For the broadcast `Arc`s to be reusable, the previous round's
    /// mailboxes must have been cleared *before* this call (otherwise their
    /// shared references keep every payload alive).
    pub fn recollect<A>(&mut self, alg: &A, r: Round, states: &[A::State]) -> u64
    where
        A: HoAlgorithm<Message = M>,
    {
        if Arc::get_mut(&mut self.plans).is_none() {
            // A recipient still references the previous round's table (the
            // executor clears its mailboxes first, so this is the cold
            // path); start a fresh one.
            self.plans = Arc::new(Vec::with_capacity(states.len()));
        }
        let plans = Arc::get_mut(&mut self.plans).expect("checked unique above");
        plans.truncate(states.len());
        self.spares.truncate(states.len());
        while plans.len() < states.len() {
            plans.push(SendPlan::Silent);
        }
        while self.spares.len() < states.len() {
            self.spares.push(PlanSpares::default());
        }
        let mut reused = 0;
        for (q, state) in states.iter().enumerate() {
            let mut slot = PlanSlot::new(&mut plans[q], &mut self.spares[q], &mut self.pool);
            reused += alg.send_into(r, ProcessId::new(q), state, &mut slot);
        }
        self.index_plans();
        reused
    }

    /// Rebuilds the per-kind sender sets and the destination index from
    /// the current plans.
    fn index_plans(&mut self) {
        let mut broadcast = ProcessSet::empty();
        self.dest_index.clear();
        self.dest_index
            .resize(self.plans.len(), ProcessSet::empty());
        for (q, plan) in self.plans.iter().enumerate() {
            match plan {
                SendPlan::Broadcast(_) => broadcast.insert(ProcessId::new(q)),
                SendPlan::Unicast(pairs) => {
                    for (d, _) in pairs {
                        // Destinations outside the universe are legal plan
                        // content but undeliverable; ignore them here.
                        if let Some(slot) = self.dest_index.get_mut(d.index()) {
                            slot.insert(ProcessId::new(q));
                        }
                    }
                }
                SendPlan::Silent => {}
            }
        }
        self.broadcast_set = broadcast;
    }

    /// Builds an outbox directly from plans (one per process).
    #[must_use]
    pub fn from_plans(plans: Vec<SendPlan<M>>) -> Self {
        let mut out = Outbox {
            plans: Arc::new(plans),
            spares: Vec::new(),
            pool: PayloadPool::default(),
            broadcast_set: ProcessSet::empty(),
            dest_index: Vec::new(),
        };
        out.index_plans();
        out
    }

    /// Number of senders covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the outbox covers no senders.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The plan of sender `q`.
    #[must_use]
    pub fn plan(&self, q: ProcessId) -> &SendPlan<M> {
        &self.plans[q.index()]
    }

    /// Delivers into `dest`'s mailbox every message the HO assignment
    /// `allowed` lets through: for each authorised sender `q`, the message
    /// (if any) that `q`'s plan addresses to `dest`. Broadcast payloads are
    /// delivered by reference count, not by deep clone; unicast payloads
    /// are cloned per recipient, into payload buffers the mailbox retired
    /// last round where available.
    ///
    /// Returns the round's [`DeliveryStats`] for this recipient: add
    /// `clones` to [`Outbox::payload_allocs`] for the total construction
    /// count under the plan kernel, `recycled` of which touched no fresh
    /// payload buffer.
    pub fn deliver_into(
        &self,
        dest: ProcessId,
        allowed: ProcessSet,
        mailbox: &mut Mailbox<M>,
    ) -> DeliveryStats {
        let mut stats = DeliveryStats::default();
        // Senders are unique (drawn from a set) and each plan addresses a
        // destination at most once, so the trusted (debug-assert-only)
        // mailbox inserts are sound here. Unicast deliveries only touch
        // the senders whose plan actually addresses *this* recipient.
        let addressed = self
            .dest_index
            .get(dest.index())
            .copied()
            .unwrap_or_else(ProcessSet::empty);
        for q in allowed.intersection(addressed).iter() {
            if let SendPlan::Unicast(pairs) = &self.plans[q.index()] {
                if let Some((_, m)) = pairs.iter().find(|(d, _)| *d == dest) {
                    stats.recycled += u64::from(mailbox.push_trusted_recycled(q, m));
                    stats.clones += 1;
                }
            }
        }
        // Broadcast deliveries are one bitset intersection and one
        // `deliver_table` call attaching the round table — a single
        // refcount bump per recipient, no per-message work at all.
        let broadcasters = allowed.intersection(self.broadcast_set);
        if !broadcasters.is_empty() {
            mailbox.deliver_table(Arc::clone(&self.plans), broadcasters);
        }
        stats
    }

    /// Total payload allocations this round's sending phase cost
    /// (see [`SendPlan::payload_allocs`]).
    #[must_use]
    pub fn payload_allocs(&self) -> u64 {
        self.plans.iter().map(|p| p.payload_allocs() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn broadcast_serves_every_destination() {
        let plan = SendPlan::broadcast(7u64);
        assert!(plan.is_broadcast());
        assert!(!plan.is_silent());
        assert_eq!(plan.message_for(p(0)), Some(&7));
        assert_eq!(plan.message_for(p(5)), Some(&7));
        assert_eq!(plan.broadcast_payload(), Some(&7));
        assert_eq!(plan.dest_count(4), 4);
        assert_eq!(plan.payload_allocs(), 1);
    }

    #[test]
    fn unicast_serves_only_listed_destinations() {
        let plan = SendPlan::unicast(vec![(p(1), 10u64), (p(3), 30)]);
        assert_eq!(plan.message_for(p(1)), Some(&10));
        assert_eq!(plan.message_for(p(3)), Some(&30));
        assert_eq!(plan.message_for(p(0)), None);
        assert_eq!(plan.broadcast_payload(), None);
        assert_eq!(plan.dest_count(4), 2);
        assert_eq!(plan.payload_allocs(), 2);
    }

    #[test]
    fn silent_serves_nobody() {
        let plan: SendPlan<u64> = SendPlan::silent();
        assert!(plan.is_silent());
        assert_eq!(plan.message_for(p(0)), None);
        assert_eq!(plan.dest_count(9), 0);
        assert_eq!(plan.payload_allocs(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_unicast_destination_rejected() {
        let _ = SendPlan::unicast(vec![(p(1), 1u64), (p(1), 2)]);
    }

    #[test]
    fn cloning_a_broadcast_shares_the_payload() {
        let plan = SendPlan::broadcast(vec![1u64, 2, 3]);
        let copy = plan.clone();
        let (a, b) = match (&plan, &copy) {
            (SendPlan::Broadcast(a), SendPlan::Broadcast(b)) => (a, b),
            _ => unreachable!(),
        };
        assert!(
            crate::pool::PooledPayload::ptr_eq(a, b),
            "clone must not copy the payload"
        );
    }

    #[test]
    fn outbox_delivery_respects_ho_and_destinations() {
        let plans = vec![
            SendPlan::broadcast(100u64), // p0 broadcasts
            SendPlan::to(p(0), 200),     // p1 unicasts to p0 only
            SendPlan::silent(),          // p2 silent
        ];
        let outbox = Outbox::from_plans(plans);
        assert_eq!(outbox.len(), 3);
        assert_eq!(outbox.payload_allocs(), 2);

        // p0 hears everyone: gets p0's broadcast and p1's unicast. The
        // unicast delivery is the round's only deep clone (cold: the
        // mailbox has no retired payloads yet).
        let mut mb = Mailbox::empty();
        assert_eq!(
            outbox.deliver_into(p(0), ProcessSet::full(3), &mut mb),
            DeliveryStats {
                clones: 1,
                recycled: 0
            }
        );
        assert_eq!(mb.senders(), ProcessSet::from_indices([0, 1]));
        assert_eq!(mb.from(p(1)), Some(&200));

        // After a clear, the same delivery is served from the retired
        // payload — a construction, but no fresh buffer.
        mb.clear();
        assert_eq!(
            outbox.deliver_into(p(0), ProcessSet::full(3), &mut mb),
            DeliveryStats {
                clones: 1,
                recycled: 1
            }
        );
        assert_eq!(mb.from(p(1)), Some(&200));

        // p1 hears everyone but only the broadcast addresses it — shared,
        // so zero deep clones.
        let mut mb = Mailbox::empty();
        assert_eq!(
            outbox.deliver_into(p(1), ProcessSet::full(3), &mut mb),
            DeliveryStats::default()
        );
        assert_eq!(mb.senders(), ProcessSet::from_indices([0]));

        // HO restriction masks the broadcast.
        let mut mb = Mailbox::empty();
        assert_eq!(
            outbox.deliver_into(p(1), ProcessSet::from_indices([1, 2]), &mut mb),
            DeliveryStats::default()
        );
        assert!(mb.is_empty());
    }

    #[test]
    fn plan_slot_reuses_unique_broadcast_allocation() {
        let mut plan = SendPlan::broadcast(1u64);
        let payload_ptr = match &plan {
            SendPlan::Broadcast(a) => a.as_ptr(),
            _ => unreachable!(),
        };
        let mut spares = PlanSpares::default();
        let mut pool = PayloadPool::default();
        let mut slot = PlanSlot::new(&mut plan, &mut spares, &mut pool);
        assert_eq!(slot.broadcast(2), 1, "unique payload is rewritten in place");
        match &plan {
            SendPlan::Broadcast(a) => {
                assert_eq!(**a, 2);
                assert_eq!(a.as_ptr(), payload_ptr, "no new allocation");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn plan_slot_allocates_while_payload_is_shared() {
        let mut plan = SendPlan::broadcast(1u64);
        let held = match &plan {
            SendPlan::Broadcast(a) => a.clone(),
            _ => unreachable!(),
        };
        let mut spares = PlanSpares::default();
        let mut pool = PayloadPool::default();
        let mut slot = PlanSlot::new(&mut plan, &mut spares, &mut pool);
        // A recipient still holds the payload: rewriting must not alias it.
        assert_eq!(slot.broadcast(2), 0);
        assert_eq!(*held, 1, "the shared payload is untouched");
        assert_eq!(plan.broadcast_payload(), Some(&2));
        // Once the recipient drops its reference, the retired slot comes
        // back into service via the pool.
        drop(held);
        let mut slot = PlanSlot::new(&mut plan, &mut spares, &mut pool);
        assert_eq!(slot.broadcast(3), 1);
    }

    #[test]
    fn plan_slot_pool_parks_payloads_held_across_rounds() {
        // The simulator shape the generation-stamped pool exists for: the
        // recipient holds the payload for several further rounds. Each
        // displaced handle parks in the pool (PR 3's ArcPool dropped it),
        // and the *first* round after the recipient lets go reuses it.
        let mut plan = SendPlan::broadcast(0u64);
        let held = match &plan {
            SendPlan::Broadcast(a) => a.clone(),
            _ => unreachable!(),
        };
        let held_ptr = held.as_ptr();
        let mut spares = PlanSpares::default();
        let mut pool = PayloadPool::default();
        assert_eq!(
            PlanSlot::new(&mut plan, &mut spares, &mut pool).broadcast(1),
            0,
            "round 1 allocates: round 0's payload is still held"
        );
        assert_eq!(
            PlanSlot::new(&mut plan, &mut spares, &mut pool).broadcast(2),
            1,
            "round 2 rewrites round 1's (unheld) payload in place"
        );
        // The recipient finally drops its reference: the parked slot 0
        // returns to service even though it sat shared in the pool.
        drop(held);
        let mut probe = pool.take_rewrite(|v| *v = 9).expect("slot 0 drained");
        assert_eq!(probe.as_ptr(), held_ptr, "the parked allocation, reused");
        assert!(probe.is_unique());
    }

    #[test]
    fn plan_slot_pool_serves_shape_alternation_across_senders() {
        // The LastVoting rotation shape: sender A broadcasts, then switches
        // to unicast (retiring its payload to the pool); sender B's *first
        // ever* broadcast must reuse A's retired payload, not allocate.
        let mut plan_a = SendPlan::Silent;
        let mut plan_b = SendPlan::Silent;
        let mut spares_a = PlanSpares::default();
        let mut spares_b = PlanSpares::default();
        let mut pool = PayloadPool::default();
        assert_eq!(
            PlanSlot::new(&mut plan_a, &mut spares_a, &mut pool).broadcast(1u64),
            0,
            "the very first broadcast allocates"
        );
        let arc_ptr = match &plan_a {
            SendPlan::Broadcast(a) => a.as_ptr(),
            _ => unreachable!(),
        };
        // A's shape flips to unicast: the payload retires to the pool.
        PlanSlot::new(&mut plan_a, &mut spares_a, &mut pool).unicast_to(p(0), 2);
        assert_eq!(
            PlanSlot::new(&mut plan_b, &mut spares_b, &mut pool).broadcast(3u64),
            1,
            "B's first broadcast reuses A's retired payload"
        );
        match &plan_b {
            SendPlan::Broadcast(a) => {
                assert_eq!(**a, 3);
                assert_eq!(a.as_ptr(), arc_ptr, "same allocation");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn plan_slot_reuses_unicast_pairs_across_silent_rounds() {
        let mut plan: SendPlan<u64> = SendPlan::Silent;
        let mut spares = PlanSpares::default();
        let mut pool = PayloadPool::default();
        let mut slot = PlanSlot::new(&mut plan, &mut spares, &mut pool);
        assert_eq!(slot.unicast_to(p(2), 7), 0, "first round allocates");
        slot.silent();
        assert!(plan.is_silent(), "empty destination list reads as silent");
        let mut slot = PlanSlot::new(&mut plan, &mut spares, &mut pool);
        assert_eq!(slot.unicast_to(p(1), 9), 1, "buffer kept warm");
        assert_eq!(plan.message_for(p(1)), Some(&9));
        assert_eq!(plan.message_for(p(2)), None);
    }

    #[test]
    fn recollect_reuses_payloads_once_mailboxes_clear() {
        struct Bcast;
        impl HoAlgorithm for Bcast {
            type State = u64;
            type Message = u64;
            type Value = u64;
            fn n(&self) -> usize {
                2
            }
            fn init(&self, _p: ProcessId, v: u64) -> u64 {
                v
            }
            fn send(&self, _r: Round, _p: ProcessId, s: &u64) -> SendPlan<u64> {
                SendPlan::broadcast(*s)
            }
            fn send_into(
                &self,
                _r: Round,
                _p: ProcessId,
                s: &u64,
                slot: &mut PlanSlot<'_, u64>,
            ) -> u64 {
                slot.broadcast(*s)
            }
            fn transition(&self, _r: Round, _p: ProcessId, _s: &mut u64, _mb: &Mailbox<u64>) {}
            fn decision(&self, _s: &u64) -> Option<u64> {
                None
            }
        }
        let states = [10u64, 20];
        let mut outbox = Outbox::new();
        assert_eq!(outbox.recollect(&Bcast, Round(1), &states), 0);
        let mut mailboxes: Vec<Mailbox<u64>> = vec![Mailbox::empty(), Mailbox::empty()];
        for (i, mb) in mailboxes.iter_mut().enumerate() {
            outbox.deliver_into(p(i), ProcessSet::full(2), mb);
        }
        // Mailboxes still reference the payloads: no reuse possible.
        assert_eq!(outbox.recollect(&Bcast, Round(2), &states), 0);
        // After clearing the recipients, both Arcs are unique again.
        for mb in &mut mailboxes {
            mb.clear();
        }
        assert_eq!(outbox.recollect(&Bcast, Round(3), &states), 2);
        assert_eq!(outbox.plan(p(0)).broadcast_payload(), Some(&10));
    }

    #[test]
    fn broadcast_delivery_shares_one_payload_across_recipients() {
        let outbox = Outbox::from_plans(vec![SendPlan::broadcast(vec![9u8; 64])]);
        let mut boxes: Vec<Mailbox<Vec<u8>>> = (0..8).map(|_| Mailbox::empty()).collect();
        for (i, mb) in boxes.iter_mut().enumerate() {
            outbox.deliver_into(p(i), ProcessSet::full(1), mb);
        }
        // All eight mailboxes alias the same allocation.
        let firsts: Vec<*const Vec<u8>> = boxes
            .iter()
            .map(|mb| mb.from(p(0)).unwrap() as *const _)
            .collect();
        assert!(firsts.windows(2).all(|w| w[0] == w[1]));
    }
}
