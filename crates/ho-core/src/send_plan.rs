//! The per-round send plan: `S_p^r` evaluated **once** per process.
//!
//! The paper's sending function `S_p^r` maps a destination to an optional
//! message. Evaluating it per destination forces every execution machine to
//! make `n` calls — and `n` message clones — per sender per round, `O(n²)`
//! clones per round even for pure-broadcast algorithms like OneThirdRule
//! whose round message does not depend on the destination at all.
//!
//! [`SendPlan`] is the closed form of `S_p^r`: produced once per process
//! per round, it states *how* the round's messages fan out —
//! [`SendPlan::Broadcast`] (one shared payload for every destination),
//! [`SendPlan::Unicast`] (an explicit destination list, for
//! coordinator-based algorithms like LastVoting) or [`SendPlan::Silent`].
//! Broadcast payloads are reference-counted, so a broadcast round costs one
//! payload allocation per sender (`O(n)` per round) no matter how many
//! destinations hear it; recipients share the payload through their
//! [`Mailbox`](crate::mailbox::Mailbox).
//!
//! [`Outbox`] is a whole round's worth of plans — one per process — with
//! the delivery and accounting loops all four execution machines
//! (round-synchronous executor, translation, Algorithms 2/3, simulator)
//! share.

use std::sync::Arc;

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// How one process's round-`r` messages fan out: the closed form of the
/// sending function `S_p^r`.
#[derive(Debug)]
pub enum SendPlan<M> {
    /// The same message to every destination (`send ⟨m⟩ to all`). The
    /// payload is shared — cloning the plan, or delivering it to any number
    /// of destinations, never copies `M`.
    Broadcast(Arc<M>),
    /// Distinct messages to an explicit set of destinations (coordinator
    /// rounds, point-to-point phases). Destinations must be distinct.
    Unicast(Vec<(ProcessId, M)>),
    /// No message this round.
    Silent,
}

impl<M> SendPlan<M> {
    /// A broadcast of `message` to all destinations.
    #[must_use]
    pub fn broadcast(message: M) -> Self {
        SendPlan::Broadcast(Arc::new(message))
    }

    /// A unicast plan from explicit `(destination, message)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a destination appears twice: rounds are communication
    /// closed, so `S_p^r` yields at most one message per destination.
    #[must_use]
    pub fn unicast(pairs: Vec<(ProcessId, M)>) -> Self {
        let mut seen = ProcessSet::empty();
        for (q, _) in &pairs {
            assert!(!seen.contains(*q), "duplicate destination {q} in send plan");
            seen.insert(*q);
        }
        SendPlan::Unicast(pairs)
    }

    /// A single message to a single destination.
    #[must_use]
    pub fn to(destination: ProcessId, message: M) -> Self {
        SendPlan::Unicast(vec![(destination, message)])
    }

    /// The empty plan.
    #[must_use]
    pub const fn silent() -> Self {
        SendPlan::Silent
    }

    /// The message this plan sends to destination `q`, if any — the
    /// original per-destination view `S_p^r(s_p)(q)`.
    #[must_use]
    pub fn message_for(&self, q: ProcessId) -> Option<&M> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            SendPlan::Unicast(pairs) => pairs.iter().find(|(d, _)| *d == q).map(|(_, m)| m),
            SendPlan::Silent => None,
        }
    }

    /// The shared payload of a broadcast plan (`None` for unicast/silent).
    #[must_use]
    pub fn broadcast_payload(&self) -> Option<&M> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            _ => None,
        }
    }

    /// Consumes the plan, returning the shared broadcast payload if the
    /// plan is a broadcast. The step machines of Algorithms 2 and 3 thread
    /// this `Arc` straight into their wire messages, so the payload is
    /// allocated exactly once per (process, round).
    #[must_use]
    pub fn into_broadcast_payload(self) -> Option<Arc<M>> {
        match self {
            SendPlan::Broadcast(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this plan sends the same message to everybody.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        matches!(self, SendPlan::Broadcast(_))
    }

    /// Whether this plan sends nothing.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        match self {
            SendPlan::Silent => true,
            SendPlan::Unicast(pairs) => pairs.is_empty(),
            SendPlan::Broadcast(_) => false,
        }
    }

    /// How many destinations receive a message under full delivery in a
    /// universe of `n` processes.
    #[must_use]
    pub fn dest_count(&self, n: usize) -> usize {
        match self {
            SendPlan::Broadcast(_) => n,
            SendPlan::Unicast(pairs) => pairs.len(),
            SendPlan::Silent => 0,
        }
    }

    /// How many payload allocations *constructing* this plan cost: `1` for
    /// a broadcast (shared by all destinations thereafter), one per pair
    /// for unicast. Unicast deliveries additionally clone per recipient —
    /// [`Outbox::deliver_into`] reports those — so the full new-scheme cost
    /// is construction + delivery clones. Broadcasts are the quantity the
    /// SendPlan refactor drives from `O(n²)` to `O(n)` per round; unicast
    /// plans gain nothing from sharing (each destination's message is
    /// distinct by definition).
    #[must_use]
    pub fn payload_allocs(&self) -> usize {
        match self {
            SendPlan::Broadcast(_) => 1,
            SendPlan::Unicast(pairs) => pairs.len(),
            SendPlan::Silent => 0,
        }
    }
}

impl<M: Clone> Clone for SendPlan<M> {
    fn clone(&self) -> Self {
        match self {
            // Cloning a broadcast shares the payload.
            SendPlan::Broadcast(m) => SendPlan::Broadcast(Arc::clone(m)),
            SendPlan::Unicast(pairs) => SendPlan::Unicast(pairs.clone()),
            SendPlan::Silent => SendPlan::Silent,
        }
    }
}

/// One round's send plans, one per process, plus delivery accounting.
///
/// This is the kernel every execution machine drives: collect the plans
/// from the pre-round states, then deliver each destination's view under
/// whatever HO assignment the machine's fault model produced.
#[derive(Debug)]
pub struct Outbox<M> {
    plans: Vec<SendPlan<M>>,
}

impl<M: Clone> Outbox<M> {
    /// Evaluates `S_q^r` once per process over the pre-round states.
    #[must_use]
    pub fn collect<A>(alg: &A, r: Round, states: &[A::State]) -> Outbox<A::Message>
    where
        A: HoAlgorithm<Message = M>,
    {
        Outbox {
            plans: states
                .iter()
                .enumerate()
                .map(|(q, s)| alg.send(r, ProcessId::new(q), s))
                .collect(),
        }
    }

    /// Builds an outbox directly from plans (one per process).
    #[must_use]
    pub fn from_plans(plans: Vec<SendPlan<M>>) -> Self {
        Outbox { plans }
    }

    /// Number of senders covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the outbox covers no senders.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The plan of sender `q`.
    #[must_use]
    pub fn plan(&self, q: ProcessId) -> &SendPlan<M> {
        &self.plans[q.index()]
    }

    /// Delivers into `dest`'s mailbox every message the HO assignment
    /// `allowed` lets through: for each authorised sender `q`, the message
    /// (if any) that `q`'s plan addresses to `dest`. Broadcast payloads are
    /// delivered by reference count, not by deep clone.
    ///
    /// Returns the number of deep payload clones performed — zero for
    /// broadcast deliveries, one per delivered unicast message. Add this
    /// to [`Outbox::payload_allocs`] for the round's total allocation
    /// count under the plan kernel.
    pub fn deliver_into(
        &self,
        dest: ProcessId,
        allowed: ProcessSet,
        mailbox: &mut Mailbox<M>,
    ) -> u64 {
        let mut deep_clones = 0;
        for q in allowed.iter() {
            match &self.plans[q.index()] {
                SendPlan::Broadcast(m) => mailbox.push_shared(q, Arc::clone(m)),
                SendPlan::Unicast(pairs) => {
                    if let Some((_, m)) = pairs.iter().find(|(d, _)| *d == dest) {
                        mailbox.push(q, m.clone());
                        deep_clones += 1;
                    }
                }
                SendPlan::Silent => {}
            }
        }
        deep_clones
    }

    /// Total payload allocations this round's sending phase cost
    /// (see [`SendPlan::payload_allocs`]).
    #[must_use]
    pub fn payload_allocs(&self) -> u64 {
        self.plans.iter().map(|p| p.payload_allocs() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn broadcast_serves_every_destination() {
        let plan = SendPlan::broadcast(7u64);
        assert!(plan.is_broadcast());
        assert!(!plan.is_silent());
        assert_eq!(plan.message_for(p(0)), Some(&7));
        assert_eq!(plan.message_for(p(5)), Some(&7));
        assert_eq!(plan.broadcast_payload(), Some(&7));
        assert_eq!(plan.dest_count(4), 4);
        assert_eq!(plan.payload_allocs(), 1);
    }

    #[test]
    fn unicast_serves_only_listed_destinations() {
        let plan = SendPlan::unicast(vec![(p(1), 10u64), (p(3), 30)]);
        assert_eq!(plan.message_for(p(1)), Some(&10));
        assert_eq!(plan.message_for(p(3)), Some(&30));
        assert_eq!(plan.message_for(p(0)), None);
        assert_eq!(plan.broadcast_payload(), None);
        assert_eq!(plan.dest_count(4), 2);
        assert_eq!(plan.payload_allocs(), 2);
    }

    #[test]
    fn silent_serves_nobody() {
        let plan: SendPlan<u64> = SendPlan::silent();
        assert!(plan.is_silent());
        assert_eq!(plan.message_for(p(0)), None);
        assert_eq!(plan.dest_count(9), 0);
        assert_eq!(plan.payload_allocs(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_unicast_destination_rejected() {
        let _ = SendPlan::unicast(vec![(p(1), 1u64), (p(1), 2)]);
    }

    #[test]
    fn cloning_a_broadcast_shares_the_payload() {
        let plan = SendPlan::broadcast(vec![1u64, 2, 3]);
        let copy = plan.clone();
        let (a, b) = match (&plan, &copy) {
            (SendPlan::Broadcast(a), SendPlan::Broadcast(b)) => (a, b),
            _ => unreachable!(),
        };
        assert!(Arc::ptr_eq(a, b), "clone must not copy the payload");
    }

    #[test]
    fn outbox_delivery_respects_ho_and_destinations() {
        let plans = vec![
            SendPlan::broadcast(100u64), // p0 broadcasts
            SendPlan::to(p(0), 200),     // p1 unicasts to p0 only
            SendPlan::silent(),          // p2 silent
        ];
        let outbox = Outbox::from_plans(plans);
        assert_eq!(outbox.len(), 3);
        assert_eq!(outbox.payload_allocs(), 2);

        // p0 hears everyone: gets p0's broadcast and p1's unicast. The
        // unicast delivery is the round's only deep clone.
        let mut mb = Mailbox::empty();
        assert_eq!(outbox.deliver_into(p(0), ProcessSet::full(3), &mut mb), 1);
        assert_eq!(mb.senders(), ProcessSet::from_indices([0, 1]));
        assert_eq!(mb.from(p(1)), Some(&200));

        // p1 hears everyone but only the broadcast addresses it — shared,
        // so zero deep clones.
        let mut mb = Mailbox::empty();
        assert_eq!(outbox.deliver_into(p(1), ProcessSet::full(3), &mut mb), 0);
        assert_eq!(mb.senders(), ProcessSet::from_indices([0]));

        // HO restriction masks the broadcast.
        let mut mb = Mailbox::empty();
        assert_eq!(
            outbox.deliver_into(p(1), ProcessSet::from_indices([1, 2]), &mut mb),
            0
        );
        assert!(mb.is_empty());
    }

    #[test]
    fn broadcast_delivery_shares_one_payload_across_recipients() {
        let outbox = Outbox::from_plans(vec![SendPlan::broadcast(vec![9u8; 64])]);
        let mut boxes: Vec<Mailbox<Vec<u8>>> = (0..8).map(|_| Mailbox::empty()).collect();
        for (i, mb) in boxes.iter_mut().enumerate() {
            outbox.deliver_into(p(i), ProcessSet::full(1), mb);
        }
        // All eight mailboxes alias the same allocation.
        let firsts: Vec<*const Vec<u8>> = boxes
            .iter()
            .map(|mb| mb.from(p(0)).unwrap() as *const _)
            .collect();
        assert!(firsts.windows(2).all(|w| w[0] == w[1]));
    }
}
