//! Adversaries: generators of heard-of sets.
//!
//! In the HO model all benign faults — crashes, crash-recovery, send/receive
//! omission, link loss — manifest as *transmission faults*: `q ∉ HO(p, r)`.
//! An [`Adversary`] decides, round by round, which transmissions fail. The
//! [`RoundExecutor`](crate::executor::RoundExecutor) asks the adversary for
//! the HO assignment of each round, which makes fault classes SP, ST, DP and
//! DT (§2.2) all expressible with the same machinery.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// A generator of heard-of assignments.
pub trait Adversary {
    /// The HO sets for round `r`: element `p` of the returned vector is
    /// `HO(p, r)` — the set of processes whose round-`r` message reaches `p`.
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet>;
}

impl<A: Adversary + ?Sized> Adversary for &mut A {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        (**self).ho_sets(r, n)
    }
}

impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        (**self).ho_sets(r, n)
    }
}

/// No transmission faults: `HO(p, r) = Π` for every `p` and `r`
/// (the fault-free "nice run").
#[derive(Clone, Copy, Debug, Default)]
pub struct FullDelivery;

impl Adversary for FullDelivery {
    fn ho_sets(&mut self, _r: Round, n: usize) -> Vec<ProcessSet> {
        vec![ProcessSet::full(n); n]
    }
}

/// Replays an explicit script of HO assignments; after the script is
/// exhausted, delivers everything.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<Vec<ProcessSet>>,
}

impl Scripted {
    /// Round `r` uses `script[r - 1]`; rounds past the end use full delivery.
    #[must_use]
    pub fn new(script: Vec<Vec<ProcessSet>>) -> Self {
        Scripted { script }
    }
}

impl Adversary for Scripted {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        self.script
            .get((r.get() - 1) as usize)
            .cloned()
            .unwrap_or_else(|| vec![ProcessSet::full(n); n])
    }
}

/// Independent per-transmission loss: each `(q → p)` transmission with
/// `q ≠ p` fails with probability `loss`; processes always hear themselves.
///
/// This is the DT (dynamic/transient) fault class in its purest form.
#[derive(Clone, Debug)]
pub struct RandomLoss {
    loss: f64,
    rng: SmallRng,
}

impl RandomLoss {
    /// Loss probability `loss ∈ [0, 1]`, deterministic under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    #[must_use]
    pub fn new(loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        RandomLoss {
            loss,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomLoss {
    fn ho_sets(&mut self, _r: Round, n: usize) -> Vec<ProcessSet> {
        (0..n)
            .map(|p| {
                let mut ho = ProcessSet::singleton(ProcessId::new(p));
                for q in 0..n {
                    if q != p && !self.rng.gen_bool(self.loss) {
                        ho.insert(ProcessId::new(q));
                    }
                }
                ho
            })
            .collect()
    }
}

/// Permanent crashes (the SP fault class / crash-stop model): once process
/// `q`'s crash round is reached, `q` sends no more messages, so `q` drops out
/// of every HO set.
///
/// A crashed process still "receives": in the HO model a crashed process is
/// indistinguishable from one that receives all messages but sends none
/// (§3.2), so `HO(crashed, r)` is kept equal to the live set.
#[derive(Clone, Debug)]
pub struct CrashStop {
    /// `crash_round[q] = Some(r)` — `q` sends nothing from round `r` on.
    crash_round: Vec<Option<Round>>,
}

impl CrashStop {
    /// Builds the schedule; `crashes` maps process index to its crash round.
    #[must_use]
    pub fn new(n: usize, crashes: &[(usize, Round)]) -> Self {
        let mut crash_round = vec![None; n];
        for &(q, r) in crashes {
            crash_round[q] = Some(r);
        }
        CrashStop { crash_round }
    }

    /// Processes still sending in round `r`.
    #[must_use]
    pub fn alive(&self, r: Round) -> ProcessSet {
        self.crash_round
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none_or(|cr| r < cr))
            .map(|(q, _)| ProcessId::new(q))
            .collect()
    }
}

impl Adversary for CrashStop {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        debug_assert_eq!(n, self.crash_round.len());
        let alive = self.alive(r);
        vec![alive; n]
    }
}

/// Crash–recovery (the DT fault class): processes are *down* during
/// scheduled round intervals. A down process sends nothing and receives
/// nothing (`HO = ∅`); everyone else simply does not hear it. After the
/// interval it resumes — with its state intact at this layer, since the HO
/// abstraction pushes recovery handling into the implementation layer (§3.3).
#[derive(Clone, Debug)]
pub struct CrashRecovery {
    /// `down[q]` = list of inclusive round intervals during which `q` is down.
    down: Vec<Vec<(Round, Round)>>,
}

impl CrashRecovery {
    /// Builds the schedule; `outages` maps process index to `(from, to)`
    /// inclusive round intervals.
    #[must_use]
    pub fn new(n: usize, outages: &[(usize, Round, Round)]) -> Self {
        let mut down = vec![Vec::new(); n];
        for &(q, a, b) in outages {
            assert!(a <= b, "outage interval must be ordered");
            down[q].push((a, b));
        }
        CrashRecovery { down }
    }

    /// Whether `q` is down in round `r`.
    #[must_use]
    pub fn is_down(&self, q: ProcessId, r: Round) -> bool {
        self.down[q.index()].iter().any(|&(a, b)| a <= r && r <= b)
    }
}

impl Adversary for CrashRecovery {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        let up: ProcessSet = (0..n)
            .map(ProcessId::new)
            .filter(|&q| !self.is_down(q, r))
            .collect();
        (0..n)
            .map(|p| {
                if self.is_down(ProcessId::new(p), r) {
                    ProcessSet::empty()
                } else {
                    up
                }
            })
            .collect()
    }
}

/// A static network partition: processes only hear members of their own
/// block. Consensus-breaking if two blocks both exceed the algorithm's
/// quorum; used by the safety tests to show OTR never violates agreement
/// even then.
#[derive(Clone, Debug)]
pub struct Partition {
    blocks: Vec<ProcessSet>,
}

impl Partition {
    /// Builds a partition from blocks; blocks must be disjoint.
    ///
    /// # Panics
    ///
    /// Panics if two blocks overlap.
    #[must_use]
    pub fn new(blocks: Vec<ProcessSet>) -> Self {
        let mut seen = ProcessSet::empty();
        for b in &blocks {
            assert!(seen.intersection(*b).is_empty(), "blocks must be disjoint");
            seen = seen.union(*b);
        }
        Partition { blocks }
    }

    fn block_of(&self, p: ProcessId) -> ProcessSet {
        self.blocks
            .iter()
            .copied()
            .find(|b| b.contains(p))
            .unwrap_or_else(|| ProcessSet::singleton(p))
    }
}

impl Adversary for Partition {
    fn ho_sets(&mut self, _r: Round, n: usize) -> Vec<ProcessSet> {
        (0..n).map(|p| self.block_of(ProcessId::new(p))).collect()
    }
}

/// The system alternating between *bad* and *good* periods at the HO level:
/// rounds `1..=bad_rounds` have adversarial (random-loss) HO sets, from round
/// `bad_rounds + 1` on every process hears exactly `good_set`.
///
/// After the switch the trace satisfies `P_su(good_set, bad_rounds+1, ∞)`,
/// hence `P2_otr(good_set)` and (for `|good_set| > 2n/3`) `P_otr^restr`.
#[derive(Clone, Debug)]
pub struct EventuallyGood {
    bad_rounds: u64,
    good_set: ProcessSet,
    chaos: RandomLoss,
}

impl EventuallyGood {
    /// `bad_rounds` rounds of chaos with the given loss rate, then uniform
    /// delivery over `good_set` forever.
    #[must_use]
    pub fn new(bad_rounds: u64, good_set: ProcessSet, loss: f64, seed: u64) -> Self {
        EventuallyGood {
            bad_rounds,
            good_set,
            chaos: RandomLoss::new(loss, seed),
        }
    }
}

impl Adversary for EventuallyGood {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        if r.get() <= self.bad_rounds {
            self.chaos.ho_sets(r, n)
        } else {
            (0..n)
                .map(|p| {
                    if self.good_set.contains(ProcessId::new(p)) {
                        self.good_set
                    } else {
                        // Processes outside Π0 get whatever; give them Π0 too
                        // so the unrestricted P_otr also eventually holds.
                        self.good_set
                    }
                })
                .collect()
        }
    }
}

/// Guarantees a non-empty kernel every round while dropping as much as
/// possible: one pivot process (rotating each round) is heard by everybody;
/// every other transmission fails independently with probability `loss`.
///
/// This is the weakest environment in which `UniformVoting` is live
/// (`P_nek`), and a stress test for OTR's safety.
#[derive(Clone, Debug)]
pub struct KernelOnly {
    loss: f64,
    rng: SmallRng,
}

impl KernelOnly {
    /// Loss probability for non-pivot transmissions.
    #[must_use]
    pub fn new(loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        KernelOnly {
            loss,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for KernelOnly {
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        let pivot = ProcessId::new(((r.get() - 1) % n as u64) as usize);
        (0..n)
            .map(|p| {
                let mut ho = ProcessSet::singleton(pivot);
                ho.insert(ProcessId::new(p));
                for q in 0..n {
                    let q = ProcessId::new(q);
                    if q != pivot && q.index() != p && !self.rng.gen_bool(self.loss) {
                        ho.insert(q);
                    }
                }
                ho
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn record(adv: &mut impl Adversary, n: usize, rounds: u64) -> Trace {
        let mut t = Trace::new(n);
        for r in 1..=rounds {
            t.push_round(adv.ho_sets(Round(r), n));
        }
        t
    }

    #[test]
    fn full_delivery_hears_everyone() {
        let t = record(&mut FullDelivery, 4, 3);
        for (r, hos) in t.iter() {
            for &ho in hos {
                assert_eq!(ho, ProcessSet::full(4), "round {r}");
            }
        }
    }

    #[test]
    fn random_loss_keeps_self() {
        let mut adv = RandomLoss::new(0.9, 42);
        let t = record(&mut adv, 8, 20);
        for (r, hos) in t.iter() {
            for (p, &ho) in hos.iter().enumerate() {
                assert!(ho.contains(ProcessId::new(p)), "round {r} process {p}");
            }
        }
    }

    #[test]
    fn random_loss_deterministic_under_seed() {
        let a = record(&mut RandomLoss::new(0.5, 7), 5, 10);
        let b = record(&mut RandomLoss::new(0.5, 7), 5, 10);
        for r in 1..=10 {
            assert_eq!(a.round(Round(r)), b.round(Round(r)));
        }
    }

    #[test]
    fn crash_stop_removes_sender_permanently() {
        let mut adv = CrashStop::new(4, &[(2, Round(3))]);
        let t = record(&mut adv, 4, 5);
        // Before round 3: everyone heard.
        assert_eq!(t.ho(ProcessId::new(0), Round(2)), ProcessSet::full(4));
        // From round 3 on: p2 gone from every HO set.
        for r in 3..=5 {
            for p in 0..4 {
                assert!(!t
                    .ho(ProcessId::new(p), Round(r))
                    .contains(ProcessId::new(2)));
            }
        }
    }

    #[test]
    fn crash_recovery_outage_is_transient() {
        let mut adv = CrashRecovery::new(3, &[(1, Round(2), Round(3))]);
        let t = record(&mut adv, 3, 5);
        // During the outage p1 hears nothing and is heard by nobody.
        assert!(t.ho(ProcessId::new(1), Round(2)).is_empty());
        assert!(!t
            .ho(ProcessId::new(0), Round(3))
            .contains(ProcessId::new(1)));
        // After recovery p1 is back.
        assert!(t
            .ho(ProcessId::new(0), Round(4))
            .contains(ProcessId::new(1)));
        assert_eq!(t.ho(ProcessId::new(1), Round(4)), ProcessSet::full(3));
    }

    #[test]
    fn partition_isolates_blocks() {
        let a = ProcessSet::from_indices([0, 1]);
        let b = ProcessSet::from_indices([2, 3]);
        let mut adv = Partition::new(vec![a, b]);
        let t = record(&mut adv, 4, 2);
        assert_eq!(t.ho(ProcessId::new(0), Round(1)), a);
        assert_eq!(t.ho(ProcessId::new(3), Round(1)), b);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_blocks_rejected() {
        let _ = Partition::new(vec![
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([1, 2]),
        ]);
    }

    #[test]
    fn eventually_good_becomes_uniform() {
        use crate::predicate::{P2Otr, Potr, Predicate};
        let pi0 = ProcessSet::from_indices([0, 1, 2]);
        let mut adv = EventuallyGood::new(5, pi0, 0.8, 3);
        let t = record(&mut adv, 4, 8);
        assert!(P2Otr::new(pi0).holds(&t));
        assert!(Potr.holds(&t));
    }

    #[test]
    fn kernel_only_has_nonempty_kernel() {
        use crate::predicate::{NonEmptyKernel, Predicate};
        let mut adv = KernelOnly::new(0.95, 11);
        let t = record(&mut adv, 6, 30);
        assert!(NonEmptyKernel.holds(&t));
    }
}
