//! Adversaries: generators of heard-of sets.
//!
//! In the HO model all benign faults — crashes, crash-recovery, send/receive
//! omission, link loss — manifest as *transmission faults*: `q ∉ HO(p, r)`.
//! An [`Adversary`] decides, round by round, which transmissions fail. The
//! [`RoundExecutor`](crate::executor::RoundExecutor) asks the adversary for
//! the HO assignment of each round, which makes fault classes SP, ST, DP and
//! DT (§2.2) all expressible with the same machinery.
//!
//! ## The scratch-buffer contract
//!
//! The primary method, [`Adversary::fill_ho_sets`], writes the round's HO
//! assignment into a caller-owned `&mut [ProcessSet]` scratch slice: the
//! universe size is the slice length, every slot must be overwritten, and
//! nothing is allocated — the executor reuses one scratch slice for the
//! whole run. The allocating [`Adversary::ho_sets`] is a derived
//! convenience for tests and examples.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// A loss probability as a `2⁻⁶⁴` fixed-point threshold:
/// `next_u64() < threshold` holds with probability `threshold / 2⁶⁴`.
/// One raw draw and an integer compare per transmission — the lossy
/// adversaries sample `n²` of these per round, so the float-free form
/// matters. `loss = 0` is exactly "never", `loss = 1` is capped at
/// `1 − 2⁻⁶⁴` (indistinguishable in any finite run).
#[derive(Clone, Copy, Debug)]
struct LossThreshold(u64);

impl LossThreshold {
    fn new(loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        LossThreshold(if loss >= 1.0 {
            u64::MAX
        } else {
            (loss * (u64::MAX as f64)) as u64
        })
    }

    fn sample(self, rng: &mut SmallRng) -> bool {
        rng.next_u64() < self.0
    }
}

/// A generator of heard-of assignments.
pub trait Adversary {
    /// Writes the HO sets for round `r` into `ho`: slot `p` becomes
    /// `HO(p, r)` — the set of processes whose round-`r` message reaches
    /// `p`. The universe size is `n = ho.len()`; implementations must
    /// overwrite every slot (stale contents from the previous round are
    /// otherwise carried over).
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]);

    /// The HO sets for round `r` as a freshly allocated vector — a
    /// convenience wrapper over [`Adversary::fill_ho_sets`] for callers off
    /// the hot path.
    fn ho_sets(&mut self, r: Round, n: usize) -> Vec<ProcessSet> {
        let mut ho = vec![ProcessSet::empty(); n];
        self.fill_ho_sets(r, &mut ho);
        ho
    }
}

impl<A: Adversary + ?Sized> Adversary for &mut A {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        (**self).fill_ho_sets(r, ho);
    }
}

impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        (**self).fill_ho_sets(r, ho);
    }
}

/// No transmission faults: `HO(p, r) = Π` for every `p` and `r`
/// (the fault-free "nice run").
#[derive(Clone, Copy, Debug, Default)]
pub struct FullDelivery;

impl Adversary for FullDelivery {
    fn fill_ho_sets(&mut self, _r: Round, ho: &mut [ProcessSet]) {
        ho.fill(ProcessSet::full(ho.len()));
    }
}

/// Replays an explicit script of HO assignments; after the script is
/// exhausted, delivers everything.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<Vec<ProcessSet>>,
}

impl Scripted {
    /// Round `r` uses `script[r - 1]`; rounds past the end use full delivery.
    #[must_use]
    pub fn new(script: Vec<Vec<ProcessSet>>) -> Self {
        Scripted { script }
    }
}

impl Adversary for Scripted {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        match self.script.get((r.get() - 1) as usize) {
            Some(row) => {
                assert_eq!(row.len(), ho.len(), "scripted round has wrong width");
                ho.copy_from_slice(row);
            }
            None => ho.fill(ProcessSet::full(ho.len())),
        }
    }
}

/// Independent per-transmission loss: each `(q → p)` transmission with
/// `q ≠ p` fails with probability `loss`; processes always hear themselves.
///
/// This is the DT (dynamic/transient) fault class in its purest form.
#[derive(Clone, Debug)]
pub struct RandomLoss {
    loss: LossThreshold,
    rng: SmallRng,
}

impl RandomLoss {
    /// Loss probability `loss ∈ [0, 1]`, deterministic under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    #[must_use]
    pub fn new(loss: f64, seed: u64) -> Self {
        RandomLoss {
            loss: LossThreshold::new(loss),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomLoss {
    fn fill_ho_sets(&mut self, _r: Round, ho: &mut [ProcessSet]) {
        let n = ho.len();
        for (p, slot) in ho.iter_mut().enumerate() {
            let mut set = ProcessSet::singleton(ProcessId::new(p));
            for q in 0..n {
                if q != p && !self.loss.sample(&mut self.rng) {
                    set.insert(ProcessId::new(q));
                }
            }
            *slot = set;
        }
    }
}

/// Permanent crashes (the SP fault class / crash-stop model): once process
/// `q`'s crash round is reached, `q` sends no more messages, so `q` drops out
/// of every HO set.
///
/// A crashed process still "receives": in the HO model a crashed process is
/// indistinguishable from one that receives all messages but sends none
/// (§3.2), so `HO(crashed, r)` is kept equal to the live set.
#[derive(Clone, Debug)]
pub struct CrashStop {
    /// `crash_round[q] = Some(r)` — `q` sends nothing from round `r` on.
    crash_round: Vec<Option<Round>>,
}

impl CrashStop {
    /// Builds the schedule; `crashes` maps process index to its crash round.
    #[must_use]
    pub fn new(n: usize, crashes: &[(usize, Round)]) -> Self {
        let mut crash_round = vec![None; n];
        for &(q, r) in crashes {
            crash_round[q] = Some(r);
        }
        CrashStop { crash_round }
    }

    /// Processes still sending in round `r`.
    #[must_use]
    pub fn alive(&self, r: Round) -> ProcessSet {
        self.crash_round
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none_or(|cr| r < cr))
            .map(|(q, _)| ProcessId::new(q))
            .collect()
    }
}

impl Adversary for CrashStop {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        debug_assert_eq!(ho.len(), self.crash_round.len());
        let alive = self.alive(r);
        ho.fill(alive);
    }
}

/// Crash–recovery (the DT fault class): processes are *down* during
/// scheduled round intervals. A down process sends nothing and receives
/// nothing (`HO = ∅`); everyone else simply does not hear it. After the
/// interval it resumes — with its state intact at this layer, since the HO
/// abstraction pushes recovery handling into the implementation layer (§3.3).
#[derive(Clone, Debug)]
pub struct CrashRecovery {
    /// `down[q]` = list of inclusive round intervals during which `q` is down.
    down: Vec<Vec<(Round, Round)>>,
}

impl CrashRecovery {
    /// Builds the schedule; `outages` maps process index to `(from, to)`
    /// inclusive round intervals.
    #[must_use]
    pub fn new(n: usize, outages: &[(usize, Round, Round)]) -> Self {
        let mut down = vec![Vec::new(); n];
        for &(q, a, b) in outages {
            assert!(a <= b, "outage interval must be ordered");
            down[q].push((a, b));
        }
        CrashRecovery { down }
    }

    /// Whether `q` is down in round `r`.
    #[must_use]
    pub fn is_down(&self, q: ProcessId, r: Round) -> bool {
        self.down[q.index()].iter().any(|&(a, b)| a <= r && r <= b)
    }
}

impl Adversary for CrashRecovery {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        let n = ho.len();
        let up: ProcessSet = (0..n)
            .map(ProcessId::new)
            .filter(|&q| !self.is_down(q, r))
            .collect();
        for (p, slot) in ho.iter_mut().enumerate() {
            *slot = if self.is_down(ProcessId::new(p), r) {
                ProcessSet::empty()
            } else {
                up
            };
        }
    }
}

/// A static network partition: processes only hear members of their own
/// block. Consensus-breaking if two blocks both exceed the algorithm's
/// quorum; used by the safety tests to show OTR never violates agreement
/// even then.
#[derive(Clone, Debug)]
pub struct Partition {
    blocks: Vec<ProcessSet>,
    /// Per-process block cache, built lazily for the universe size of the
    /// first `fill_ho_sets` call (the partition is static, so every round
    /// after that is a plain copy).
    assignment: Vec<ProcessSet>,
}

impl Partition {
    /// Builds a partition from blocks; blocks must be disjoint.
    ///
    /// # Panics
    ///
    /// Panics if two blocks overlap.
    #[must_use]
    pub fn new(blocks: Vec<ProcessSet>) -> Self {
        let mut seen = ProcessSet::empty();
        for b in &blocks {
            assert!(seen.intersection(*b).is_empty(), "blocks must be disjoint");
            seen = seen.union(*b);
        }
        Partition {
            blocks,
            assignment: Vec::new(),
        }
    }

    fn block_of(&self, p: ProcessId) -> ProcessSet {
        self.blocks
            .iter()
            .copied()
            .find(|b| b.contains(p))
            .unwrap_or_else(|| ProcessSet::singleton(p))
    }
}

impl Adversary for Partition {
    fn fill_ho_sets(&mut self, _r: Round, ho: &mut [ProcessSet]) {
        if self.assignment.len() != ho.len() {
            self.assignment = (0..ho.len())
                .map(|p| self.block_of(ProcessId::new(p)))
                .collect();
        }
        ho.copy_from_slice(&self.assignment);
    }
}

/// The system alternating between *bad* and *good* periods at the HO level:
/// rounds `1..=bad_rounds` have adversarial (random-loss) HO sets, from round
/// `bad_rounds + 1` on every process hears exactly `good_set`.
///
/// After the switch the trace satisfies `P_su(good_set, bad_rounds+1, ∞)`,
/// hence `P2_otr(good_set)` and (for `|good_set| > 2n/3`) `P_otr^restr`.
#[derive(Clone, Debug)]
pub struct EventuallyGood {
    bad_rounds: u64,
    good_set: ProcessSet,
    chaos: RandomLoss,
}

impl EventuallyGood {
    /// `bad_rounds` rounds of chaos with the given loss rate, then uniform
    /// delivery over `good_set` forever.
    #[must_use]
    pub fn new(bad_rounds: u64, good_set: ProcessSet, loss: f64, seed: u64) -> Self {
        EventuallyGood {
            bad_rounds,
            good_set,
            chaos: RandomLoss::new(loss, seed),
        }
    }
}

impl Adversary for EventuallyGood {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        if r.get() <= self.bad_rounds {
            self.chaos.fill_ho_sets(r, ho);
        } else {
            // Processes outside Π0 get whatever; give them Π0 too so the
            // unrestricted P_otr also eventually holds.
            ho.fill(self.good_set);
        }
    }
}

/// Guarantees a non-empty kernel every round while dropping as much as
/// possible: one pivot process (rotating each round) is heard by everybody;
/// every other transmission fails independently with probability `loss`.
///
/// This is the weakest environment in which `UniformVoting` is live
/// (`P_nek`), and a stress test for OTR's safety.
#[derive(Clone, Debug)]
pub struct KernelOnly {
    loss: LossThreshold,
    rng: SmallRng,
}

impl KernelOnly {
    /// Loss probability for non-pivot transmissions.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    #[must_use]
    pub fn new(loss: f64, seed: u64) -> Self {
        KernelOnly {
            loss: LossThreshold::new(loss),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for KernelOnly {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        let n = ho.len();
        let pivot = ProcessId::new(((r.get() - 1) % n as u64) as usize);
        for (p, slot) in ho.iter_mut().enumerate() {
            let mut set = ProcessSet::singleton(pivot);
            set.insert(ProcessId::new(p));
            for q in 0..n {
                let q = ProcessId::new(q);
                if q != pivot && q.index() != p && !self.loss.sample(&mut self.rng) {
                    set.insert(q);
                }
            }
            *slot = set;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    /// Records `rounds` rounds through the scratch-slice path, reusing one
    /// buffer the way the executor does.
    fn record(adv: &mut impl Adversary, n: usize, rounds: u64) -> Trace {
        let mut t = Trace::new(n);
        let mut ho = vec![ProcessSet::empty(); n];
        for r in 1..=rounds {
            adv.fill_ho_sets(Round(r), &mut ho);
            t.record_round(&ho);
        }
        t
    }

    #[test]
    fn full_delivery_hears_everyone() {
        let t = record(&mut FullDelivery, 4, 3);
        for (r, hos) in t.iter() {
            for &ho in hos {
                assert_eq!(ho, ProcessSet::full(4), "round {r}");
            }
        }
    }

    #[test]
    fn random_loss_keeps_self() {
        let mut adv = RandomLoss::new(0.9, 42);
        let t = record(&mut adv, 8, 20);
        for (r, hos) in t.iter() {
            for (p, &ho) in hos.iter().enumerate() {
                assert!(ho.contains(ProcessId::new(p)), "round {r} process {p}");
            }
        }
    }

    #[test]
    fn random_loss_deterministic_under_seed() {
        let a = record(&mut RandomLoss::new(0.5, 7), 5, 10);
        let b = record(&mut RandomLoss::new(0.5, 7), 5, 10);
        for r in 1..=10 {
            assert_eq!(a.round(Round(r)), b.round(Round(r)));
        }
    }

    #[test]
    fn allocating_view_matches_fill() {
        // The derived ho_sets must be the same assignment fill_ho_sets
        // writes (same RNG stream consumption).
        let mut a = RandomLoss::new(0.4, 9);
        let mut b = RandomLoss::new(0.4, 9);
        let mut scratch = vec![ProcessSet::empty(); 6];
        for r in 1..=10 {
            a.fill_ho_sets(Round(r), &mut scratch);
            assert_eq!(b.ho_sets(Round(r), 6), scratch);
        }
    }

    #[test]
    fn fill_overwrites_stale_slots() {
        // A scratch slice carrying the previous round's sets must be fully
        // overwritten by every adversary.
        let mut scratch = vec![ProcessSet::full(4); 4];
        CrashRecovery::new(4, &[(2, Round(1), Round(5))]).fill_ho_sets(Round(1), &mut scratch);
        assert!(scratch[2].is_empty());
        assert!(!scratch[0].contains(ProcessId::new(2)));
    }

    #[test]
    fn crash_stop_removes_sender_permanently() {
        let mut adv = CrashStop::new(4, &[(2, Round(3))]);
        let t = record(&mut adv, 4, 5);
        // Before round 3: everyone heard.
        assert_eq!(t.ho(ProcessId::new(0), Round(2)), ProcessSet::full(4));
        // From round 3 on: p2 gone from every HO set.
        for r in 3..=5 {
            for p in 0..4 {
                assert!(!t
                    .ho(ProcessId::new(p), Round(r))
                    .contains(ProcessId::new(2)));
            }
        }
    }

    #[test]
    fn crash_recovery_outage_is_transient() {
        let mut adv = CrashRecovery::new(3, &[(1, Round(2), Round(3))]);
        let t = record(&mut adv, 3, 5);
        // During the outage p1 hears nothing and is heard by nobody.
        assert!(t.ho(ProcessId::new(1), Round(2)).is_empty());
        assert!(!t
            .ho(ProcessId::new(0), Round(3))
            .contains(ProcessId::new(1)));
        // After recovery p1 is back.
        assert!(t
            .ho(ProcessId::new(0), Round(4))
            .contains(ProcessId::new(1)));
        assert_eq!(t.ho(ProcessId::new(1), Round(4)), ProcessSet::full(3));
    }

    #[test]
    fn partition_isolates_blocks() {
        let a = ProcessSet::from_indices([0, 1]);
        let b = ProcessSet::from_indices([2, 3]);
        let mut adv = Partition::new(vec![a, b]);
        let t = record(&mut adv, 4, 2);
        assert_eq!(t.ho(ProcessId::new(0), Round(1)), a);
        assert_eq!(t.ho(ProcessId::new(3), Round(1)), b);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_blocks_rejected() {
        let _ = Partition::new(vec![
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([1, 2]),
        ]);
    }

    #[test]
    fn eventually_good_becomes_uniform() {
        use crate::predicate::{P2Otr, Potr, Predicate};
        let pi0 = ProcessSet::from_indices([0, 1, 2]);
        let mut adv = EventuallyGood::new(5, pi0, 0.8, 3);
        let t = record(&mut adv, 4, 8);
        assert!(P2Otr::new(pi0).holds(&t));
        assert!(Potr.holds(&t));
    }

    #[test]
    fn kernel_only_has_nonempty_kernel() {
        use crate::predicate::{NonEmptyKernel, Predicate};
        let mut adv = KernelOnly::new(0.95, 11);
        let t = record(&mut adv, 6, 30);
        assert!(NonEmptyKernel.holds(&t));
    }
}
