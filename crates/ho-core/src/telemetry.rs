//! Flight recorder + metrics: zero-alloc tracing for both execution layers.
//!
//! Observability with the same contract as [`RoundObserver`]
//! (`crate::observer`): **inactive costs nothing**. A [`Telemetry`] handle
//! is either *off* — a null pointer, every record call one predictable
//! branch — or *on*, in which case it owns
//!
//! * a [`FlightRecorder`]: a fixed-capacity ring buffer of typed, `Copy`
//!   [`Event`]s stamped with round / sim-time / process. When the ring
//!   wraps, the oldest events are overwritten and the drop is *counted*
//!   ([`TelemetrySummary::events_dropped`]) — truncation is visible in
//!   every report, never silent. On a safety violation or late predicate
//!   window the harness drains the ring into a self-contained forensic
//!   JSON artifact (see `ho-harness`).
//! * a [`Metrics`] registry: allocation-free per-[`EventKind`] counters
//!   and per-[`Phase`] log2-bucket latency histograms fed by scoped span
//!   timers ([`Telemetry::clock`] / [`Telemetry::span`]), giving the
//!   per-phase time breakdown (HO-set fill / send / delivery / predicate
//!   monitoring / oracle) behind the `telemetry` section of
//!   `BENCH_sweep.json`.
//!
//! Everything is preallocated at [`Telemetry::on`]; recording in steady
//! state performs **zero** heap allocations (proved alongside the round
//! loop in `tests/alloc_steady_state.rs`), and a recorder-on run is
//! bit-identical to a recorder-off run (`tests/telemetry_equivalence.rs`)
//! because telemetry only ever *reads* the execution it observes.
//!
//! Span timestamps are raw ticks: `rdtsc` cycles on x86_64, monotonic
//! nanoseconds elsewhere. Reports therefore present per-phase *shares* of
//! the total, which are unit-agnostic, rather than absolute times.
//!
//! Phase spans are **sampled** — one round in [`SPAN_SAMPLE_PERIOD`] — so
//! the clock reads stay a rounding error against the round loop itself. A
//! sweep still collects thousands of samples per phase, and because the
//! sample grid (round number) is independent of phase behaviour, the
//! per-phase shares are unbiased.

/// What happened — the typed payload of one recorded [`Event`].
///
/// Variants carry at most a couple of machine words so the whole event
/// stays `Copy` and the ring buffer stays a flat preallocated array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A round began on the executor (model layer: one per global round).
    RoundStart,
    /// A process decided for the first time.
    Decide,
    /// The flow-control lease timeout re-opened slots to contention
    /// (rsm layer; `takeovers` = cumulative count after this round).
    LeaseTakeover {
        /// Cumulative lease takeovers after this round.
        takeovers: u64,
    },
    /// Catch-up backfill entries were delivered into mailboxes
    /// (rsm layer; `entries` = how many arrived this round).
    BackfillEntry {
        /// Backfill entries delivered this round.
        entries: u64,
    },
    /// Admission backpressure deferred client arrivals
    /// (rsm layer; `deferred` = how many this round).
    DeferredAdmission {
        /// Arrivals deferred this round.
        deferred: u64,
    },
    /// A contact-plan period boundary changed the link schedule
    /// (sim layer).
    ContactPhaseChange,
    /// The discrete-event scheduler dispatched an event
    /// (sim layer; `queue_depth` = pending events after the pop).
    SchedulerDispatch {
        /// Pending events after this dispatch.
        queue_depth: u64,
    },
    /// A predicate monitor found its window (`witness_round` = the first
    /// round of the witnessing window).
    PredicateWitness {
        /// First round of the witnessing window.
        witness_round: u64,
    },
    /// A process crashed (sim layer).
    ProcessCrash,
    /// A crashed process recovered (sim layer).
    ProcessRecover,
    /// The oracle flagged a safety violation — usually the last event
    /// before the harness drains the ring.
    ViolationFlagged,
}

/// How many [`EventKind`] variants exist (the counter-registry width).
pub const EVENT_KINDS: usize = 11;

impl EventKind {
    /// The counter-registry slot for this kind.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            EventKind::RoundStart => 0,
            EventKind::Decide => 1,
            EventKind::LeaseTakeover { .. } => 2,
            EventKind::BackfillEntry { .. } => 3,
            EventKind::DeferredAdmission { .. } => 4,
            EventKind::ContactPhaseChange => 5,
            EventKind::SchedulerDispatch { .. } => 6,
            EventKind::PredicateWitness { .. } => 7,
            EventKind::ProcessCrash => 8,
            EventKind::ProcessRecover => 9,
            EventKind::ViolationFlagged => 10,
        }
    }

    /// Stable snake_case name used in reports and forensic artifacts.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RoundStart => "round_start",
            EventKind::Decide => "decide",
            EventKind::LeaseTakeover { .. } => "lease_takeover",
            EventKind::BackfillEntry { .. } => "backfill_entry",
            EventKind::DeferredAdmission { .. } => "deferred_admission",
            EventKind::ContactPhaseChange => "contact_phase_change",
            EventKind::SchedulerDispatch { .. } => "scheduler_dispatch",
            EventKind::PredicateWitness { .. } => "predicate_witness",
            EventKind::ProcessCrash => "process_crash",
            EventKind::ProcessRecover => "process_recover",
            EventKind::ViolationFlagged => "violation_flagged",
        }
    }

    /// The kind's scalar detail (count, depth, witness round), if it
    /// carries one — what forensic artifacts serialize as `detail`.
    #[must_use]
    pub fn detail(&self) -> Option<u64> {
        match *self {
            EventKind::LeaseTakeover { takeovers } => Some(takeovers),
            EventKind::BackfillEntry { entries } => Some(entries),
            EventKind::DeferredAdmission { deferred } => Some(deferred),
            EventKind::SchedulerDispatch { queue_depth } => Some(queue_depth),
            EventKind::PredicateWitness { witness_round } => Some(witness_round),
            _ => None,
        }
    }

    /// The name of every kind, in registry order (for summary tables).
    #[must_use]
    pub fn names() -> [&'static str; EVENT_KINDS] {
        [
            "round_start",
            "decide",
            "lease_takeover",
            "backfill_entry",
            "deferred_admission",
            "contact_phase_change",
            "scheduler_dispatch",
            "predicate_witness",
            "process_crash",
            "process_recover",
            "violation_flagged",
        ]
    }
}

/// One flight-recorder entry: a [`EventKind`] stamped with where and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// The round the event belongs to (0 when the layer has no round yet).
    pub round: u64,
    /// Simulation time (sim layer) or the round as a real (model layer).
    pub time: f64,
    /// The process concerned, or [`Event::ALL`] for whole-system events.
    pub process: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Sentinel process id for events that concern the whole system.
    pub const ALL: u32 = u32::MAX;
}

impl Default for Event {
    fn default() -> Self {
        Event {
            round: 0,
            time: 0.0,
            process: Event::ALL,
            kind: EventKind::RoundStart,
        }
    }
}

/// Default ring capacity: deep enough to hold the last ~K rounds of a
/// busy scenario, small enough to live comfortably in a worker scratch.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// Phase spans are timed on every round divisible by this (power of
/// two, so the check is a mask). See [`Telemetry::spans_this_round`].
pub const SPAN_SAMPLE_PERIOD: u64 = 8;

/// A fixed-capacity ring buffer of [`Event`]s. Preallocated once; pushing
/// never allocates. When full, the oldest event is overwritten and the
/// overwrite is counted — [`FlightRecorder::events_dropped`] makes the
/// truncation visible in reports.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    /// Next write position.
    next: usize,
    /// Live events (≤ capacity).
    len: usize,
    /// Total events ever pushed (≥ len).
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a flight recorder needs at least one slot");
        FlightRecorder {
            buf: vec![Event::default(); capacity],
            next: 0,
            len: 0,
            recorded: 0,
        }
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Live events currently in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever recorded (including overwritten ones).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring wrap-around — recorded but no longer held.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.recorded - self.len as u64
    }

    /// Appends an event, overwriting the oldest when full. Never
    /// allocates.
    #[inline]
    pub fn push(&mut self, event: Event) {
        self.buf[self.next] = event;
        self.next += 1;
        if self.next == self.buf.len() {
            self.next = 0;
        }
        if self.len < self.buf.len() {
            self.len += 1;
        }
        self.recorded += 1;
    }

    /// The held events in chronological order (oldest first) — what a
    /// forensic dump drains.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let start = (self.next + self.buf.len() - self.len) % self.buf.len();
        self.buf[start..]
            .iter()
            .chain(&self.buf[..start])
            .take(self.len)
    }

    /// Empties the ring, retaining the allocation (scenario-to-scenario
    /// reuse in sweep workers).
    pub fn clear(&mut self) {
        self.next = 0;
        self.len = 0;
        self.recorded = 0;
    }
}

/// An executor phase with its own span timer and latency histogram —
/// the five stages of `RoundExecutor::step_observed`, in loop order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// The adversary (or predicate implementation) fills the HO sets.
    HoFill = 0,
    /// `S_p^r`: plan recollection and payload construction.
    Send = 1,
    /// Fan-out of plans into mailboxes.
    Deliver = 2,
    /// HO-row build + trace/observer (predicate monitoring).
    Monitor = 3,
    /// `T_p^r` transitions plus the consensus oracle.
    Oracle = 4,
}

/// How many [`Phase`] variants exist.
pub const PHASES: usize = 5;

/// log2 histogram buckets per phase (bucket `b` holds spans with
/// `floor(log2(ticks)) == b - 1`; bucket 0 holds zero-tick spans, bucket
/// 64 the `≥ 2^63`-tick tail).
pub const HIST_BUCKETS: usize = 65;

impl Phase {
    /// Stable snake_case name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Phase::HoFill => "ho_fill",
            Phase::Send => "send",
            Phase::Deliver => "deliver",
            Phase::Monitor => "monitor",
            Phase::Oracle => "oracle",
        }
    }

    /// Every phase, in loop order.
    #[must_use]
    pub fn all() -> [Phase; PHASES] {
        [
            Phase::HoFill,
            Phase::Send,
            Phase::Deliver,
            Phase::Monitor,
            Phase::Oracle,
        ]
    }
}

/// The allocation-free metrics registry: per-kind event counters and
/// per-phase span totals + log2 latency histograms. Plain inline arrays —
/// creating one performs a single allocation (inside [`Telemetry::on`]'s
/// box) and updating it performs none.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Events recorded, by [`EventKind::index`].
    pub kind_counts: [u64; EVENT_KINDS],
    /// Total ticks spent per phase.
    pub phase_ticks: [u64; PHASES],
    /// Spans closed per phase.
    pub phase_spans: [u64; PHASES],
    /// log2-bucketed span durations per phase.
    pub phase_hist: [[u64; HIST_BUCKETS]; PHASES],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            kind_counts: [0; EVENT_KINDS],
            phase_ticks: [0; PHASES],
            phase_spans: [0; PHASES],
            phase_hist: [[0; HIST_BUCKETS]; PHASES],
        }
    }
}

impl Metrics {
    /// The log2 bucket for a span of `ticks` (bucket 0 = zero ticks).
    #[must_use]
    pub fn bucket(ticks: u64) -> usize {
        (64 - ticks.leading_zeros()) as usize
    }

    /// Records one closed span.
    #[inline]
    pub fn observe_span(&mut self, phase: Phase, ticks: u64) {
        let p = phase as usize;
        self.phase_ticks[p] += ticks;
        self.phase_spans[p] += 1;
        self.phase_hist[p][Self::bucket(ticks)] += 1;
    }

    /// Zeroes every counter and histogram.
    pub fn clear(&mut self) {
        *self = Metrics::default();
    }
}

/// Raw timestamp for span timers: `rdtsc` on x86_64 (a handful of cycles,
/// no syscall), monotonic nanoseconds elsewhere.
#[cfg(target_arch = "x86_64")]
#[inline]
#[must_use]
pub fn now_ticks() -> u64 {
    // Safe: RDTSC is unprivileged and has no memory effects.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Raw timestamp for span timers (portable fallback): nanoseconds since
/// the first call.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
#[must_use]
pub fn now_ticks() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// The recorder + metrics pair a [`Telemetry`] handle owns when on.
#[derive(Clone, Debug)]
pub struct TelemetryInner {
    /// The event ring.
    pub recorder: FlightRecorder,
    /// The counter/histogram registry.
    pub metrics: Metrics,
}

/// A no-op-able handle to the flight recorder and metrics registry.
///
/// The default ([`Telemetry::off`]) holds nothing: `is_on()` is a null
/// check, every `record`/`span` call is one branch, and the handle is a
/// single machine word — the *inactive costs nothing* contract of
/// [`RoundObserver`](crate::observer::RoundObserver), applied to
/// telemetry. [`Telemetry::on`] allocates the ring and registry once;
/// from then on recording is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Box<TelemetryInner>>,
}

impl Telemetry {
    /// The null handle: nothing is recorded, nothing is allocated.
    #[must_use]
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// An active handle with the default ring capacity.
    #[must_use]
    pub fn on() -> Self {
        Telemetry::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// An active handle with a ring of `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Box::new(TelemetryInner {
                recorder: FlightRecorder::with_capacity(capacity),
                metrics: Metrics::default(),
            })),
        }
    }

    /// Whether recording is active.
    #[inline]
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether round `round`'s phase spans should be timed. Spans are
    /// sampled — one round in [`SPAN_SAMPLE_PERIOD`] — so the per-round
    /// clock reads cost a fraction of a percent instead of double-digit
    /// overhead on sub-microsecond rounds; `false` always when off.
    #[inline]
    #[must_use]
    pub fn spans_this_round(&self, round: u64) -> bool {
        self.inner.is_some() && round.is_multiple_of(SPAN_SAMPLE_PERIOD)
    }

    /// Clears the ring and registry, retaining all allocations — the
    /// scenario-to-scenario reset in sweep workers. A no-op when off.
    pub fn reset(&mut self) {
        if let Some(inner) = &mut self.inner {
            inner.recorder.clear();
            inner.metrics.clear();
        }
    }

    /// Records one event (and bumps its kind counter). One branch when
    /// off; never allocates.
    #[inline]
    pub fn record(&mut self, round: u64, time: f64, process: u32, kind: EventKind) {
        if let Some(inner) = &mut self.inner {
            inner.metrics.kind_counts[kind.index()] += 1;
            inner.recorder.push(Event {
                round,
                time,
                process,
                kind,
            });
        }
    }

    /// Opens a span: the current tick count, or 0 when off (so an
    /// inactive handle never even reads the clock).
    #[inline]
    #[must_use]
    pub fn clock(&self) -> u64 {
        if self.inner.is_some() {
            now_ticks()
        } else {
            0
        }
    }

    /// Closes a span opened at `start` against `phase` and opens the
    /// next one: returns the closing timestamp so consecutive phases
    /// chain with one clock read each. A no-op (returning 0) when off.
    #[inline]
    pub fn span(&mut self, phase: Phase, start: u64) -> u64 {
        match &mut self.inner {
            Some(inner) => {
                let now = now_ticks();
                inner.metrics.observe_span(phase, now.saturating_sub(start));
                now
            }
            None => 0,
        }
    }

    /// The live recorder + registry, if on.
    #[must_use]
    pub fn inner(&self) -> Option<&TelemetryInner> {
        self.inner.as_deref()
    }

    /// The held events in chronological order (empty iterator when off).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter().flat_map(|inner| inner.recorder.iter())
    }

    /// A `Copy` digest of the run — what verdicts carry. `None` when off.
    #[must_use]
    pub fn summary(&self) -> Option<TelemetrySummary> {
        self.inner.as_ref().map(|inner| TelemetrySummary {
            events_recorded: inner.recorder.events_recorded(),
            events_dropped: inner.recorder.events_dropped(),
            kind_counts: inner.metrics.kind_counts,
            phase_ticks: inner.metrics.phase_ticks,
            phase_spans: inner.metrics.phase_spans,
        })
    }
}

/// The `Copy` digest of one run's telemetry: event totals by kind plus
/// the per-phase time breakdown. This is a *diagnostic* — like
/// `SimStats`' queue-mechanics fields it must never participate in
/// equivalence comparisons (span ticks are wall-clock noise).
#[derive(Clone, Copy, Debug, Default)]
pub struct TelemetrySummary {
    /// Total events recorded (including overwritten ones).
    pub events_recorded: u64,
    /// Events lost to ring wrap — visible truncation, per cell.
    pub events_dropped: u64,
    /// Events by [`EventKind::index`].
    pub kind_counts: [u64; EVENT_KINDS],
    /// Ticks per [`Phase`].
    pub phase_ticks: [u64; PHASES],
    /// Spans per [`Phase`].
    pub phase_spans: [u64; PHASES],
}

impl TelemetrySummary {
    /// Folds another run's digest into this one (cell aggregation).
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
        for (a, b) in self.kind_counts.iter_mut().zip(&other.kind_counts) {
            *a += b;
        }
        for (a, b) in self.phase_ticks.iter_mut().zip(&other.phase_ticks) {
            *a += b;
        }
        for (a, b) in self.phase_spans.iter_mut().zip(&other.phase_spans) {
            *a += b;
        }
    }

    /// Ticks across all phases.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.phase_ticks.iter().sum()
    }

    /// The share of total ticks a phase took (0 when nothing was timed).
    #[must_use]
    pub fn phase_share(&self, phase: Phase) -> f64 {
        let total = self.total_ticks();
        if total == 0 {
            0.0
        } else {
            self.phase_ticks[phase as usize] as f64 / total as f64
        }
    }

    /// The count recorded for one event kind.
    #[must_use]
    pub fn count(&self, kind: &EventKind) -> u64 {
        self.kind_counts[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let mut t = Telemetry::off();
        assert!(!t.is_on());
        t.record(1, 1.0, 0, EventKind::RoundStart);
        assert_eq!(t.clock(), 0);
        assert_eq!(t.span(Phase::Send, 0), 0);
        assert!(t.summary().is_none());
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut rec = FlightRecorder::with_capacity(4);
        for r in 0..6u64 {
            rec.push(Event {
                round: r,
                time: r as f64,
                process: 0,
                kind: EventKind::RoundStart,
            });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.events_recorded(), 6);
        assert_eq!(rec.events_dropped(), 2);
        // Oldest two were overwritten; the rest drain chronologically.
        let rounds: Vec<u64> = rec.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 3, 4, 5]);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.events_dropped(), 0);
        assert_eq!(rec.capacity(), 4);
    }

    #[test]
    fn spans_feed_the_histograms() {
        let mut t = Telemetry::with_capacity(8);
        let t0 = t.clock();
        let t1 = t.span(Phase::HoFill, t0);
        assert!(t1 >= t0);
        let _ = t.span(Phase::Send, t1);
        let s = t.summary().expect("on");
        assert_eq!(s.phase_spans[Phase::HoFill as usize], 1);
        assert_eq!(s.phase_spans[Phase::Send as usize], 1);
        assert_eq!(s.phase_spans.iter().sum::<u64>(), 2);
        let inner = t.inner().expect("on");
        let hist_total: u64 = inner.metrics.phase_hist[Phase::HoFill as usize]
            .iter()
            .sum();
        assert_eq!(hist_total, 1);
        // Shares over all phases sum to 1 when anything was timed (or
        // all zero when the clock was too coarse to advance).
        let share_sum: f64 = Phase::all().iter().map(|p| s.phase_share(*p)).sum();
        assert!(share_sum == 0.0 || (share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log2_buckets_are_monotone() {
        assert_eq!(Metrics::bucket(0), 0);
        assert_eq!(Metrics::bucket(1), 1);
        assert_eq!(Metrics::bucket(2), 2);
        assert_eq!(Metrics::bucket(3), 2);
        assert_eq!(Metrics::bucket(4), 3);
        assert_eq!(Metrics::bucket(u64::MAX), 64);
        assert!(Metrics::bucket(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn kind_registry_is_consistent() {
        let kinds = [
            EventKind::RoundStart,
            EventKind::Decide,
            EventKind::LeaseTakeover { takeovers: 1 },
            EventKind::BackfillEntry { entries: 2 },
            EventKind::DeferredAdmission { deferred: 3 },
            EventKind::ContactPhaseChange,
            EventKind::SchedulerDispatch { queue_depth: 4 },
            EventKind::PredicateWitness { witness_round: 5 },
            EventKind::ProcessCrash,
            EventKind::ProcessRecover,
            EventKind::ViolationFlagged,
        ];
        assert_eq!(kinds.len(), EVENT_KINDS);
        let names = EventKind::names();
        for kind in &kinds {
            assert_eq!(names[kind.index()], kind.name());
        }
        // Indices are a bijection onto 0..EVENT_KINDS.
        let mut seen = [false; EVENT_KINDS];
        for kind in &kinds {
            assert!(!seen[kind.index()], "duplicate index for {kind:?}");
            seen[kind.index()] = true;
        }
        assert_eq!(kinds[2].detail(), Some(1));
        assert_eq!(kinds[0].detail(), None);
    }

    #[test]
    fn summaries_merge_per_field() {
        let mut t = Telemetry::with_capacity(8);
        t.record(1, 1.0, 0, EventKind::RoundStart);
        t.record(1, 1.0, 1, EventKind::Decide);
        let a = t.summary().unwrap();
        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged.events_recorded, 2 * a.events_recorded);
        assert_eq!(merged.count(&EventKind::Decide), 2);
        assert_eq!(merged.count(&EventKind::RoundStart), 2);
    }

    #[test]
    fn reset_retains_capacity_and_zeroes_counts() {
        let mut t = Telemetry::with_capacity(4);
        for r in 0..9u64 {
            t.record(r, r as f64, 0, EventKind::RoundStart);
        }
        assert_eq!(t.summary().unwrap().events_dropped, 5);
        t.reset();
        let s = t.summary().unwrap();
        assert_eq!(s.events_recorded, 0);
        assert_eq!(s.events_dropped, 0);
        assert_eq!(s.kind_counts, [0; EVENT_KINDS]);
        assert!(t.is_on());
    }
}
