//! The partial vector of messages received in a round.
//!
//! At the end of round `r`, process `p` makes a state transition according to
//! `T_p^r(μ⃗, s_p)`, where `μ⃗` is the partial vector of messages received by
//! `p` in round `r`. [`Mailbox`] is that vector; its *support* (the set of
//! senders) is the heard-of set `HO(p, r)`.
//!
//! Two representation choices serve the hot paths:
//!
//! * **Shared payloads** — an entry holds either an owned message or a
//!   reference-counted one ([`Mailbox::push_shared`]). Broadcast rounds
//!   deliver one `Arc` per recipient instead of one deep clone per
//!   recipient, which is what makes the [`SendPlan`](crate::send_plan)
//!   kernel `O(n)` in payload allocations per round.
//! * **Sorted sender index** — entries stay in arrival order (the paper's
//!   reception-order semantics), but a side index sorted by sender makes
//!   [`Mailbox::from`] and the duplicate-sender check `O(log n)` instead of
//!   a linear scan. Predicate evaluation calls `from` millions of times in
//!   the benches.

use std::ops::Deref;
use std::sync::Arc;

use crate::process::{ProcessId, ProcessSet};

/// A message payload: owned (unicast) or shared (broadcast delivery).
#[derive(Clone)]
enum Payload<M> {
    Owned(M),
    Shared(Arc<M>),
}

impl<M> Deref for Payload<M> {
    type Target = M;
    fn deref(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(m) => m,
        }
    }
}

impl<M: std::fmt::Debug> std::fmt::Debug for Payload<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// The messages received by one process in one round.
///
/// The mailbox preserves sender identity; `HO(p, r)` is [`Mailbox::senders`].
/// Every accessor that the paper's transition functions need — counting
/// occurrences of a value, finding the smallest received value, quorum tests
/// — is provided here so that algorithm code reads like the pseudo-code.
#[derive(Clone, Debug)]
pub struct Mailbox<M> {
    /// `(sender, message)` in arrival order.
    entries: Vec<(ProcessId, Payload<M>)>,
    /// Indices into `entries`, sorted by sender id (the lookup index).
    sorted: Vec<u32>,
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox {
            entries: Vec::new(),
            sorted: Vec::new(),
        }
    }
}

impl<M> Mailbox<M> {
    /// An empty mailbox (a round in which `p` heard of nobody; the predicate
    /// `P_otr` explicitly allows such rounds).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a mailbox from `(sender, message)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same sender appears twice: rounds are communication
    /// closed, so a process hears of each peer at most once per round.
    #[must_use]
    pub fn from_entries(entries: Vec<(ProcessId, M)>) -> Self {
        let mut mb = Mailbox::empty();
        for (q, m) in entries {
            mb.push(q, m);
        }
        mb
    }

    /// Position of `sender` in the sorted index: `Ok(pos)` if present,
    /// `Err(pos)` with the insertion point otherwise.
    fn index_of(&self, sender: ProcessId) -> Result<usize, usize> {
        self.sorted
            .binary_search_by_key(&sender, |&i| self.entries[i as usize].0)
    }

    fn push_payload(&mut self, sender: ProcessId, payload: Payload<M>) {
        match self.index_of(sender) {
            Ok(_) => panic!("duplicate sender {sender} in mailbox"),
            Err(pos) => {
                self.entries.push((sender, payload));
                self.sorted.insert(pos, (self.entries.len() - 1) as u32);
            }
        }
    }

    /// Adds an owned message from `sender`.
    ///
    /// # Panics
    ///
    /// Panics if a message from `sender` is already present.
    pub fn push(&mut self, sender: ProcessId, message: M) {
        self.push_payload(sender, Payload::Owned(message));
    }

    /// Adds a shared message from `sender` — how broadcast plans deliver:
    /// every recipient's mailbox holds the same reference-counted payload,
    /// so a broadcast costs one allocation regardless of fan-out.
    ///
    /// # Panics
    ///
    /// Panics if a message from `sender` is already present.
    pub fn push_shared(&mut self, sender: ProcessId, message: Arc<M>) {
        self.push_payload(sender, Payload::Shared(message));
    }

    /// The heard-of set: the support of the partial vector.
    #[must_use]
    pub fn senders(&self) -> ProcessSet {
        self.entries.iter().map(|(q, _)| *q).collect()
    }

    /// Number of messages received, `|HO(p, r)|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no message was received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The message received from `q`, if any (binary search over the sorted
    /// sender index).
    #[must_use]
    pub fn from(&self, q: ProcessId) -> Option<&M> {
        self.index_of(q)
            .ok()
            .map(|pos| &*self.entries[self.sorted[pos] as usize].1)
    }

    /// Iterates over `(sender, message)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.entries.iter().map(|(q, m)| (*q, &**m))
    }

    /// Iterates over the received messages only.
    pub fn messages(&self) -> impl Iterator<Item = &M> {
        self.entries.iter().map(|(_, m)| &**m)
    }

    /// Maps every message, keeping senders.
    #[must_use]
    pub fn map<N>(&self, mut f: impl FnMut(&M) -> N) -> Mailbox<N> {
        Mailbox {
            entries: self
                .entries
                .iter()
                .map(|(q, m)| (*q, Payload::Owned(f(m))))
                .collect(),
            // Senders and arrival order are unchanged, so the index carries
            // over verbatim.
            sorted: self.sorted.clone(),
        }
    }

    /// Keeps only the messages whose *sender* satisfies the filter.
    #[must_use]
    pub fn filter_senders(&self, keep: ProcessSet) -> Mailbox<M>
    where
        M: Clone,
    {
        let mut mb = Mailbox::empty();
        for (q, m) in &self.entries {
            if keep.contains(*q) {
                mb.push_payload(*q, m.clone());
            }
        }
        mb
    }
}

impl<M: Ord> Mailbox<M> {
    /// The smallest received message (used by OneThirdRule's
    /// "smallest `x_q` received" rule).
    #[must_use]
    pub fn min_message(&self) -> Option<&M> {
        self.messages().min()
    }
}

impl<M: PartialEq> Mailbox<M> {
    /// Number of received messages equal to `value`.
    #[must_use]
    pub fn count_equal(&self, value: &M) -> usize {
        self.messages().filter(|m| *m == value).count()
    }

    /// Whether strictly more than `threshold` received messages equal
    /// `value` (the paper's "more than 2n/3 values received are equal to x").
    #[must_use]
    pub fn has_quorum_for(&self, value: &M, threshold: usize) -> bool {
        self.count_equal(value) > threshold
    }
}

impl<M: Ord + Clone> Mailbox<M> {
    /// The most frequent received message; ties are broken towards the
    /// smallest message so the result is deterministic.
    #[must_use]
    pub fn mode(&self) -> Option<M> {
        let mut sorted: Vec<&M> = self.messages().collect();
        sorted.sort();
        let mut best: Option<(&M, usize)> = None;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            let count = j - i;
            let better = match best {
                None => true,
                Some((_, c)) => count > c,
            };
            if better {
                best = Some((sorted[i], count));
            }
            i = j;
        }
        best.map(|(m, _)| m.clone())
    }
}

impl<M> FromIterator<(ProcessId, M)> for Mailbox<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        Mailbox::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn senders_is_support() {
        let mb: Mailbox<u32> = [(p(0), 7), (p(2), 9)].into_iter().collect();
        assert_eq!(mb.senders(), ProcessSet::from_indices([0, 2]));
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn from_returns_message() {
        let mb: Mailbox<u32> = [(p(0), 7), (p(2), 9)].into_iter().collect();
        assert_eq!(mb.from(p(2)), Some(&9));
        assert_eq!(mb.from(p(1)), None);
    }

    #[test]
    fn from_finds_out_of_order_senders() {
        // Arrival order is not sender order; the sorted index must still
        // resolve every sender.
        let mb: Mailbox<u32> = [(p(5), 50), (p(1), 10), (p(3), 30), (p(0), 0)]
            .into_iter()
            .collect();
        for (q, v) in [(0, 0), (1, 10), (3, 30), (5, 50)] {
            assert_eq!(mb.from(p(q)), Some(&v));
        }
        assert_eq!(mb.from(p(2)), None);
        assert_eq!(mb.from(p(6)), None);
        // Arrival order preserved for iteration.
        let order: Vec<usize> = mb.iter().map(|(q, _)| q.index()).collect();
        assert_eq!(order, vec![5, 1, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate sender")]
    fn duplicate_sender_rejected() {
        let _ = Mailbox::from_entries(vec![(p(0), 1u32), (p(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate sender")]
    fn duplicate_shared_sender_rejected() {
        let mut mb = Mailbox::empty();
        mb.push_shared(p(0), Arc::new(1u32));
        mb.push_shared(p(0), Arc::new(2u32));
    }

    #[test]
    fn shared_and_owned_entries_mix() {
        let mut mb = Mailbox::empty();
        let shared = Arc::new(7u32);
        mb.push_shared(p(1), Arc::clone(&shared));
        mb.push(p(0), 9);
        assert_eq!(mb.from(p(1)), Some(&7));
        assert_eq!(mb.from(p(0)), Some(&9));
        assert_eq!(mb.count_equal(&7), 1);
        // The shared entry aliases the original allocation.
        assert!(std::ptr::eq(mb.from(p(1)).unwrap(), shared.as_ref()));
    }

    #[test]
    fn count_and_quorum() {
        let mb: Mailbox<u32> = [(p(0), 5), (p(1), 5), (p(2), 8)].into_iter().collect();
        assert_eq!(mb.count_equal(&5), 2);
        assert!(mb.has_quorum_for(&5, 1));
        assert!(!mb.has_quorum_for(&5, 2));
    }

    #[test]
    fn min_message() {
        let mb: Mailbox<u32> = [(p(0), 5), (p(1), 3)].into_iter().collect();
        assert_eq!(mb.min_message(), Some(&3));
        assert_eq!(Mailbox::<u32>::empty().min_message(), None);
    }

    #[test]
    fn mode_breaks_ties_to_smallest() {
        let mb: Mailbox<u32> = [(p(0), 5), (p(1), 3), (p(2), 5), (p(3), 3)]
            .into_iter()
            .collect();
        assert_eq!(mb.mode(), Some(3));
    }

    #[test]
    fn filter_senders_restricts() {
        let mb: Mailbox<u32> = [(p(0), 1), (p(1), 2), (p(2), 3)].into_iter().collect();
        let kept = mb.filter_senders(ProcessSet::from_indices([1, 2]));
        assert_eq!(kept.senders(), ProcessSet::from_indices([1, 2]));
        assert_eq!(kept.from(p(0)), None);
        assert_eq!(kept.from(p(2)), Some(&3));
    }

    #[test]
    fn map_preserves_senders() {
        let mb: Mailbox<u32> = [(p(0), 1), (p(1), 2)].into_iter().collect();
        let doubled = mb.map(|m| m * 2);
        assert_eq!(doubled.from(p(1)), Some(&4));
    }
}
