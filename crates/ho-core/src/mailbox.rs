//! The partial vector of messages received in a round.
//!
//! At the end of round `r`, process `p` makes a state transition according to
//! `T_p^r(μ⃗, s_p)`, where `μ⃗` is the partial vector of messages received by
//! `p` in round `r`. [`Mailbox`] is that vector; its *support* (the set of
//! senders) is the heard-of set `HO(p, r)`.
//!
//! Three representation choices serve the hot paths:
//!
//! * **Shared payloads** — an entry holds either an owned message or a
//!   reference-counted one ([`Mailbox::push_shared`]). Broadcast rounds
//!   deliver one `Arc` per recipient instead of one deep clone per
//!   recipient, which is what makes the [`SendPlan`](crate::send_plan)
//!   kernel `O(n)` in payload allocations per round.
//! * **The round table** — the executor's delivery path attaches *one*
//!   reference-counted table of the whole round's plans per mailbox and
//!   records the broadcast senders as a bitset. A broadcast round then
//!   costs one refcount bump and one bitset store per *recipient* — no
//!   per-message entry at all; reads resolve `table[q]`'s payload on the
//!   fly. The n² per-delivery work was the sweep's single largest cost.
//! * **Sorted sender index** — explicit entries stay in arrival order (the
//!   paper's reception-order semantics), but a side index sorted by sender
//!   makes [`Mailbox::from`] and the duplicate-sender check `O(log n)`
//!   instead of a linear scan, and deliveries in ascending sender order
//!   append without searching at all. Predicate evaluation calls `from`
//!   millions of times in the benches.

use std::fmt;
use std::sync::Arc;

use crate::pool::PooledPayload;
use crate::process::{ProcessId, ProcessSet};
use crate::send_plan::SendPlan;

/// The error of [`Mailbox::try_push`]: a message from this sender is
/// already present (rounds are communication closed, so a process hears of
/// each peer at most once per round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DuplicateSender(pub ProcessId);

impl fmt::Display for DuplicateSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duplicate sender {} in mailbox", self.0)
    }
}

impl std::error::Error for DuplicateSender {}

/// An explicitly stored message payload: owned (unicast and test
/// construction), shared (broadcast delivery through
/// [`Mailbox::push_shared`]), or a generation-stamped pool handle
/// ([`Mailbox::push_pooled`] — how the simulator's Algorithms 2/3 hand
/// payloads they held across rounds to the transition function without a
/// deep clone). Table-delivered broadcasts store no payload at all — only
/// a bit in the mailbox's `from_table` set.
#[derive(Clone, Debug)]
enum Payload<M> {
    Owned(M),
    Shared(Arc<M>),
    Pooled(PooledPayload<M>),
}

impl<M> Payload<M> {
    fn get(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(m) => m,
            Payload::Pooled(m) => m,
        }
    }
}

/// The messages received by one process in one round.
///
/// The mailbox preserves sender identity; `HO(p, r)` is [`Mailbox::senders`].
/// Every accessor that the paper's transition functions need — counting
/// occurrences of a value, finding the smallest received value, quorum tests
/// — is provided here so that algorithm code reads like the pseudo-code.
///
/// Messages arrive either as explicit entries (owned or `Arc`-shared) or
/// through the *round table*: a shared vector of the round's send plans,
/// with the table-delivered senders recorded as a bitset. Iteration order
/// is arrival order for explicit entries; when both representations are
/// populated (the executor's delivery path, which pushes in ascending
/// sender order), iteration merges the two streams by sender id — which
/// *is* arrival order there.
#[derive(Clone)]
pub struct Mailbox<M> {
    /// `(sender, message)` in arrival order (explicit deliveries only).
    entries: Vec<(ProcessId, Payload<M>)>,
    /// Indices into `entries`, sorted by sender id (the lookup index).
    sorted: Vec<u32>,
    /// The round's plan table, shared with every recipient of the round.
    table: Option<Arc<Vec<SendPlan<M>>>>,
    /// Senders whose broadcast was delivered through the table: the
    /// message from `q` is `table[q].broadcast_payload()`.
    from_table: ProcessSet,
    /// Owned payloads retired by [`Mailbox::clear`], kept for
    /// [`Mailbox::push_trusted_recycled`] to `clone_from` into — unicast
    /// delivery's answer to the broadcast path's recycled `Arc`s.
    spare_payloads: Vec<M>,
}

/// How many retired owned payloads a [`Mailbox`] keeps for reuse: a round
/// delivers at most one message per sender, so one spare per possible
/// sender covers every round shape.
const SPARE_PAYLOADS: usize = crate::process::MAX_PROCESSES;

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox {
            entries: Vec::new(),
            sorted: Vec::new(),
            table: None,
            from_table: ProcessSet::empty(),
            spare_payloads: Vec::new(),
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Mailbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<M> Mailbox<M> {
    /// An empty mailbox (a round in which `p` heard of nobody; the predicate
    /// `P_otr` explicitly allows such rounds).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// An empty mailbox pre-sized for `n` possible senders — a round
    /// delivers at most one message per sender, so a capacity-`n` mailbox
    /// never grows. The executor allocates its per-process mailboxes this
    /// way: without it, a lossy run re-allocates whenever some round's
    /// delivery count first exceeds every earlier round's.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Mailbox {
            entries: Vec::with_capacity(n),
            sorted: Vec::with_capacity(n),
            table: None,
            from_table: ProcessSet::empty(),
            spare_payloads: Vec::with_capacity(n),
        }
    }

    /// Builds a mailbox from `(sender, message)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same sender appears twice: rounds are communication
    /// closed, so a process hears of each peer at most once per round.
    #[must_use]
    pub fn from_entries(entries: Vec<(ProcessId, M)>) -> Self {
        let mut mb = Mailbox::empty();
        for (q, m) in entries {
            mb.push(q, m);
        }
        mb
    }

    /// Position of `sender` in the sorted index: `Ok(pos)` if present,
    /// `Err(pos)` with the insertion point otherwise.
    fn index_of(&self, sender: ProcessId) -> Result<usize, usize> {
        self.sorted
            .binary_search_by_key(&sender, |&i| self.entries[i as usize].0)
    }

    /// The message `q` delivered through the round table, if any.
    fn table_message(&self, q: ProcessId) -> Option<&M> {
        if !self.from_table.contains(q) {
            return None;
        }
        Some(
            self.table
                .as_ref()
                .expect("table senders recorded without an attached table")[q.index()]
            .broadcast_payload()
            .expect("table sender must reference a broadcast plan"),
        )
    }

    fn try_push_payload(
        &mut self,
        sender: ProcessId,
        payload: Payload<M>,
    ) -> Result<(), DuplicateSender> {
        if self.from_table.contains(sender) {
            return Err(DuplicateSender(sender));
        }
        match self.index_of(sender) {
            Ok(_) => Err(DuplicateSender(sender)),
            Err(pos) => {
                self.insert_at(pos, sender, payload);
                Ok(())
            }
        }
    }

    /// Inserts without the duplicate check — the executor's hot path, where
    /// the `Outbox` delivery loop already guarantees one message per sender
    /// (each sender appears once in the HO set and each plan addresses a
    /// destination at most once). The invariant is still enforced in debug
    /// builds.
    fn push_payload_trusted(&mut self, sender: ProcessId, payload: Payload<M>) {
        debug_assert!(
            !self.from_table.contains(sender),
            "duplicate sender {sender} in mailbox"
        );
        // The delivery loop iterates senders in ascending order, so the
        // overwhelmingly common case appends past the current maximum —
        // no binary search, no index shift.
        let max_so_far = self.sorted.last().map(|&i| self.entries[i as usize].0);
        if max_so_far.is_none_or(|max| max < sender) {
            self.entries.push((sender, payload));
            self.sorted.push((self.entries.len() - 1) as u32);
            return;
        }
        let pos = match self.index_of(sender) {
            Err(pos) => pos,
            Ok(pos) => {
                debug_assert!(false, "duplicate sender {sender} in mailbox");
                pos
            }
        };
        self.insert_at(pos, sender, payload);
    }

    fn insert_at(&mut self, pos: usize, sender: ProcessId, payload: Payload<M>) {
        self.entries.push((sender, payload));
        self.sorted.insert(pos, (self.entries.len() - 1) as u32);
    }

    /// Empties the mailbox while retaining the entry and sorted-index
    /// capacity — what lets the executor reuse one mailbox per process
    /// across every round instead of re-allocating `n` mailboxes per round.
    /// Releases the round table so the outbox can recycle its buffers, and
    /// retires owned payloads into the spare pool so the next round's
    /// unicast deliveries can [`Clone::clone_from`] into them instead of
    /// constructing fresh ones.
    pub fn clear(&mut self) {
        for (_, payload) in self.entries.drain(..) {
            if self.spare_payloads.len() >= SPARE_PAYLOADS {
                break;
            }
            if let Payload::Owned(m) = payload {
                self.spare_payloads.push(m);
            }
        }
        self.sorted.clear();
        self.table = None;
        self.from_table = ProcessSet::empty();
    }

    /// Adds an owned message from `sender`, rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateSender`] if a message from `sender` is already
    /// present.
    pub fn try_push(&mut self, sender: ProcessId, message: M) -> Result<(), DuplicateSender> {
        self.try_push_payload(sender, Payload::Owned(message))
    }

    /// Adds a shared message from `sender`, rejecting duplicates
    /// (see [`Mailbox::push_shared`]).
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateSender`] if a message from `sender` is already
    /// present.
    pub fn try_push_shared(
        &mut self,
        sender: ProcessId,
        message: Arc<M>,
    ) -> Result<(), DuplicateSender> {
        self.try_push_payload(sender, Payload::Shared(message))
    }

    /// Adds an owned message from `sender`.
    ///
    /// This is the pseudo-code-fidelity entry point: like the paper's
    /// communication-closed rounds, it treats a duplicate sender as an
    /// impossibility and panics. Fallible callers use [`Mailbox::try_push`].
    ///
    /// # Panics
    ///
    /// Panics if a message from `sender` is already present.
    pub fn push(&mut self, sender: ProcessId, message: M) {
        if let Err(e) = self.try_push(sender, message) {
            panic!("{e}");
        }
    }

    /// Adds a shared message from `sender` — how broadcast plans deliver:
    /// every recipient's mailbox holds the same reference-counted payload,
    /// so a broadcast costs one allocation regardless of fan-out.
    ///
    /// # Panics
    ///
    /// Panics if a message from `sender` is already present.
    pub fn push_shared(&mut self, sender: ProcessId, message: Arc<M>) {
        if let Err(e) = self.try_push_shared(sender, message) {
            panic!("{e}");
        }
    }

    /// Adds a pool-handle message from `sender` — the simulator's delivery
    /// path: the recipient keeps the generation-stamped handle it received,
    /// so every later read (including this mailbox's) is checked against
    /// slot recycling.
    ///
    /// # Panics
    ///
    /// Panics if a message from `sender` is already present.
    pub fn push_pooled(&mut self, sender: ProcessId, message: PooledPayload<M>) {
        if let Err(e) = self.try_push_payload(sender, Payload::Pooled(message)) {
            panic!("{e}");
        }
    }

    /// Hot-path owned insert: duplicate senders are a caller bug, checked
    /// only by a debug assertion (see [`Outbox`](crate::send_plan::Outbox)).
    #[cfg(test)]
    pub(crate) fn push_trusted(&mut self, sender: ProcessId, message: M) {
        self.push_payload_trusted(sender, Payload::Owned(message));
    }

    /// Hot-path owned insert that *clones from* `source`, reusing a payload
    /// retired by [`Mailbox::clear`] when one is available: the clone goes
    /// through [`Clone::clone_from`], which reuses the retired payload's
    /// heap for types that implement it (`Vec`, `String`, nested
    /// containers). Returns whether a retired payload was reused. Duplicate
    /// senders are a caller bug (debug-asserted), as in
    /// [`Mailbox::push_trusted`].
    pub(crate) fn push_trusted_recycled(&mut self, sender: ProcessId, source: &M) -> bool
    where
        M: Clone,
    {
        match self.spare_payloads.pop() {
            Some(mut payload) => {
                payload.clone_from(source);
                self.push_payload_trusted(sender, Payload::Owned(payload));
                true
            }
            None => {
                self.push_payload_trusted(sender, Payload::Owned(source.clone()));
                false
            }
        }
    }

    /// Binds this mailbox to the round's shared plan table and records
    /// `senders` as delivered through it: the message from each `q` in
    /// `senders` is `table[q].broadcast_payload()`. One refcount bump and
    /// one bitset store per recipient per round — the whole point.
    ///
    /// Callers guarantee that every sender in `senders` has a broadcast
    /// plan in `table` and does not collide with explicit entries (debug
    /// asserted). A mailbox fed from *two different* outboxes cannot share
    /// both tables; the second delivery falls back to per-entry shared
    /// pushes (correct, just not O(1)).
    pub(crate) fn deliver_table(&mut self, table: Arc<Vec<SendPlan<M>>>, senders: ProcessSet) {
        if let Some(bound) = &self.table {
            if !Arc::ptr_eq(bound, &table) {
                // Cold path: a second outbox delivering into the same
                // mailbox within one round. Materialise these broadcasts
                // as ordinary shared entries instead of rebinding (which
                // would resolve the earlier senders against the wrong
                // plans). `push_shared` keeps the duplicate-sender panic.
                for q in senders.iter() {
                    match &table[q.index()] {
                        SendPlan::Broadcast(m) => self.push_pooled(q, m.clone()),
                        _ => unreachable!("table senders must reference broadcast plans"),
                    }
                }
                return;
            }
        }
        debug_assert!(
            senders.iter().all(|q| table[q.index()].is_broadcast()),
            "table senders must reference broadcast plans"
        );
        debug_assert!(
            senders
                .iter()
                .all(|q| self.index_of(q).is_err() && !self.from_table.contains(q)),
            "duplicate sender in mailbox"
        );
        self.table = Some(table);
        self.from_table = self.from_table.union(senders);
    }

    /// The heard-of set: the support of the partial vector.
    #[must_use]
    pub fn senders(&self) -> ProcessSet {
        let explicit: ProcessSet = self.entries.iter().map(|(q, _)| *q).collect();
        explicit.union(self.from_table)
    }

    /// Number of messages received, `|HO(p, r)|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len() + self.from_table.len()
    }

    /// Whether no message was received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.from_table.is_empty()
    }

    /// The message received from `q`, if any (bitset probe for
    /// table-delivered broadcasts, binary search over the sorted sender
    /// index otherwise).
    #[must_use]
    pub fn from(&self, q: ProcessId) -> Option<&M> {
        if let Some(m) = self.table_message(q) {
            return Some(m);
        }
        self.index_of(q).ok().map(|pos| {
            let (_, payload) = &self.entries[self.sorted[pos] as usize];
            payload.get()
        })
    }

    /// Iterates over `(sender, message)` pairs in arrival order (explicit
    /// entries and table-delivered broadcasts merged by sender id — which
    /// is arrival order on the executor's delivery path).
    pub fn iter(&self) -> MailboxIter<'_, M> {
        MailboxIter {
            entries: &self.entries,
            entry_pos: 0,
            table: self.table.as_deref().map_or(&[], Vec::as_slice),
            table_left: self.from_table,
        }
    }

    /// Iterates over the received messages only.
    pub fn messages(&self) -> impl Iterator<Item = &M> + Clone {
        self.iter().map(|(_, m)| m)
    }

    /// Maps every message, keeping senders.
    #[must_use]
    pub fn map<N>(&self, mut f: impl FnMut(&M) -> N) -> Mailbox<N> {
        let mut mb = Mailbox::empty();
        for (q, m) in self.iter() {
            // iter() yields each sender exactly once, so trusted is sound.
            mb.push_payload_trusted(q, Payload::Owned(f(m)));
        }
        mb
    }

    /// Keeps only the messages whose *sender* satisfies the filter.
    #[must_use]
    pub fn filter_senders(&self, keep: ProcessSet) -> Mailbox<M>
    where
        M: Clone,
    {
        let mut mb = Mailbox::empty();
        mb.from_table = self.from_table.intersection(keep);
        if !mb.from_table.is_empty() {
            // Only carry the round table when a table-delivered sender
            // actually survives the filter — a stray table reference keeps
            // every payload alive and blocks the outbox's Arc reuse.
            mb.table = self.table.clone();
        }
        for (q, m) in &self.entries {
            if keep.contains(*q) {
                // Senders are unique here because they were unique in `self`.
                mb.push_payload_trusted(*q, m.clone());
            }
        }
        mb
    }
}

/// Iterator over a [`Mailbox`]'s `(sender, message)` pairs: explicit
/// entries in arrival order, merged with table-delivered senders in
/// ascending sender order.
pub struct MailboxIter<'m, M> {
    entries: &'m [(ProcessId, Payload<M>)],
    entry_pos: usize,
    /// The round table (empty slice when none attached).
    table: &'m [SendPlan<M>],
    table_left: ProcessSet,
}

// Manual impl: deriving would wrongly require `M: Clone` for what is a
// shared-reference cursor.
impl<M> Clone for MailboxIter<'_, M> {
    fn clone(&self) -> Self {
        MailboxIter {
            entries: self.entries,
            entry_pos: self.entry_pos,
            table: self.table,
            table_left: self.table_left,
        }
    }
}

impl<'m, M> MailboxIter<'m, M> {
    #[inline]
    fn take_table(&mut self, t: ProcessId) -> (ProcessId, &'m M) {
        // `t` is always the minimum of `table_left` here.
        self.table_left.drop_min();
        let m = self.table[t.index()]
            .broadcast_payload()
            .expect("table sender must reference a broadcast plan");
        (t, m)
    }
}

impl<'m, M> Iterator for MailboxIter<'m, M> {
    type Item = (ProcessId, &'m M);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        // The two single-stream cases are the hot paths: broadcast rounds
        // are table-only, manual/unicast mailboxes are entries-only. The
        // genuine merge only runs for mixed broadcast+unicast rounds.
        if self.table_left.is_empty() {
            let (q, m) = self.entries.get(self.entry_pos)?;
            self.entry_pos += 1;
            return Some((*q, m.get()));
        }
        match self.entries.get(self.entry_pos) {
            None => {
                let t = self.table_left.min().expect("non-empty");
                Some(self.take_table(t))
            }
            Some((q, m)) => {
                let t = self.table_left.min().expect("non-empty");
                if *q < t {
                    self.entry_pos += 1;
                    Some((*q, m.get()))
                } else {
                    Some(self.take_table(t))
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.entries.len() - self.entry_pos + self.table_left.len();
        (left, Some(left))
    }
}

impl<M: Ord> Mailbox<M> {
    /// The smallest received message (used by OneThirdRule's
    /// "smallest `x_q` received" rule).
    #[must_use]
    pub fn min_message(&self) -> Option<&M> {
        self.messages().min()
    }
}

impl<M: PartialEq> Mailbox<M> {
    /// Number of received messages equal to `value`.
    #[must_use]
    pub fn count_equal(&self, value: &M) -> usize {
        self.messages().filter(|m| *m == value).count()
    }

    /// Whether strictly more than `threshold` received messages equal
    /// `value` (the paper's "more than 2n/3 values received are equal to x").
    #[must_use]
    pub fn has_quorum_for(&self, value: &M, threshold: usize) -> bool {
        self.count_equal(value) > threshold
    }
}

impl<M: Ord + Clone> Mailbox<M> {
    /// The most frequent received message; ties are broken towards the
    /// smallest message so the result is deterministic.
    ///
    /// Runs a pairwise `O(|HO|²)` count instead of collect-and-sort: the
    /// mailbox holds at most `n` messages and this sits in the transition
    /// functions' hot loop, where avoiding the scratch allocation (and the
    /// sort) wins for every realistic `n`.
    #[must_use]
    pub fn mode(&self) -> Option<M> {
        self.mode_with_count().map(|(m, _)| m)
    }

    /// [`Mailbox::mode`] together with its multiplicity — one pass serves
    /// callers that need both (OneThirdRule's update *and* decision rules).
    #[must_use]
    pub fn mode_with_count(&self) -> Option<(M, usize)> {
        // Resolve every payload once into a stack buffer, then count
        // pairwise over the bare references — the quadratic part must not
        // pay the table-resolution cost per access. The buffer covers
        // every realistic system size; larger mailboxes spill to a sorted
        // heap buffer, `O(|HO| log |HO|)` up to `MAX_PROCESSES` entries.
        const STACK: usize = 16;
        if self.len() <= STACK {
            let mut resolved: [Option<&M>; STACK] = [None; STACK];
            let mut k = 0;
            for m in self.messages() {
                resolved[k] = Some(m);
                k += 1;
            }
            return Self::mode_of(resolved[..k].iter().flatten().copied());
        }
        self.mode_spilled()
    }

    /// The past-the-stack-buffer path of [`Mailbox::mode_with_count`]:
    /// spill the message refs to a `MAX_PROCESSES`-sized stack buffer
    /// (senders are distinct process ids, so a mailbox can never exceed
    /// it), sort, and count runs — still allocation-free, like the whole
    /// round hot loop. The first run of maximal length wins, which is
    /// exactly the pairwise fold's tie-break (ties go to the smallest
    /// message) because sorted order visits values ascending.
    fn mode_spilled(&self) -> Option<(M, usize)> {
        let mut spilled: [Option<&M>; crate::process::MAX_PROCESSES] =
            [None; crate::process::MAX_PROCESSES];
        let mut k = 0;
        for m in self.messages() {
            spilled[k] = Some(m);
            k += 1;
        }
        // Every slot in ..k is Some, and Option's ordering agrees with the
        // payloads' ordering on all-Some slices.
        spilled[..k].sort_unstable();
        let mut best: Option<(&M, usize)> = None;
        let mut i = 0;
        while i < k {
            let run_start = i;
            while i < k && spilled[i] == spilled[run_start] {
                i += 1;
            }
            let count = i - run_start;
            if best.is_none_or(|(_, bc)| count > bc) {
                best = Some((spilled[run_start].expect("filled slot"), count));
            }
        }
        best.map(|(m, c)| (m.clone(), c))
    }

    /// The pairwise mode/count fold over an iterable of message refs.
    fn mode_of<'m, I>(messages: I) -> Option<(M, usize)>
    where
        I: Iterator<Item = &'m M> + Clone,
        M: 'm,
    {
        let mut best: Option<(&M, usize)> = None;
        for m in messages.clone() {
            if let Some((bm, _)) = best {
                // Already counted this value (and a recount cannot beat
                // itself) — the common case once an algorithm converges
                // and every message is equal.
                if m == bm {
                    continue;
                }
            }
            let count = messages.clone().filter(|x| *x == m).count();
            let better = match best {
                None => true,
                Some((bm, bc)) => count > bc || (count == bc && m < bm),
            };
            if better {
                best = Some((m, count));
            }
        }
        best.map(|(m, c)| (m.clone(), c))
    }
}

impl<M> FromIterator<(ProcessId, M)> for Mailbox<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        Mailbox::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn senders_is_support() {
        let mb: Mailbox<u32> = [(p(0), 7), (p(2), 9)].into_iter().collect();
        assert_eq!(mb.senders(), ProcessSet::from_indices([0, 2]));
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn from_returns_message() {
        let mb: Mailbox<u32> = [(p(0), 7), (p(2), 9)].into_iter().collect();
        assert_eq!(mb.from(p(2)), Some(&9));
        assert_eq!(mb.from(p(1)), None);
    }

    #[test]
    fn from_finds_out_of_order_senders() {
        // Arrival order is not sender order; the sorted index must still
        // resolve every sender.
        let mb: Mailbox<u32> = [(p(5), 50), (p(1), 10), (p(3), 30), (p(0), 0)]
            .into_iter()
            .collect();
        for (q, v) in [(0, 0), (1, 10), (3, 30), (5, 50)] {
            assert_eq!(mb.from(p(q)), Some(&v));
        }
        assert_eq!(mb.from(p(2)), None);
        assert_eq!(mb.from(p(6)), None);
        // Arrival order preserved for iteration.
        let order: Vec<usize> = mb.iter().map(|(q, _)| q.index()).collect();
        assert_eq!(order, vec![5, 1, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate sender")]
    fn duplicate_sender_rejected() {
        let _ = Mailbox::from_entries(vec![(p(0), 1u32), (p(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate sender")]
    fn duplicate_shared_sender_rejected() {
        let mut mb = Mailbox::empty();
        mb.push_shared(p(0), Arc::new(1u32));
        mb.push_shared(p(0), Arc::new(2u32));
    }

    #[test]
    fn shared_and_owned_entries_mix() {
        let mut mb = Mailbox::empty();
        let shared = Arc::new(7u32);
        mb.push_shared(p(1), Arc::clone(&shared));
        mb.push(p(0), 9);
        assert_eq!(mb.from(p(1)), Some(&7));
        assert_eq!(mb.from(p(0)), Some(&9));
        assert_eq!(mb.count_equal(&7), 1);
        // The shared entry aliases the original allocation.
        assert!(std::ptr::eq(mb.from(p(1)).unwrap(), shared.as_ref()));
    }

    #[test]
    fn table_delivery_is_readable_through_every_accessor() {
        // Senders 0 and 2 broadcast via the table; 1 unicasts explicitly.
        let table = Arc::new(vec![
            SendPlan::broadcast(10u32),
            SendPlan::to(p(9), 11),
            SendPlan::broadcast(12),
        ]);
        let mut mb = Mailbox::empty();
        mb.deliver_table(Arc::clone(&table), ProcessSet::from_indices([0, 2]));
        mb.push_trusted(p(1), 11);
        assert_eq!(mb.len(), 3);
        assert!(!mb.is_empty());
        assert_eq!(mb.senders(), ProcessSet::from_indices([0, 1, 2]));
        assert_eq!(mb.from(p(0)), Some(&10));
        assert_eq!(mb.from(p(1)), Some(&11));
        assert_eq!(mb.from(p(2)), Some(&12));
        assert_eq!(mb.from(p(3)), None);
        // Merged iteration is ascending by sender here.
        let pairs: Vec<(usize, u32)> = mb.iter().map(|(q, m)| (q.index(), *m)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 11), (2, 12)]);
        assert_eq!(mb.min_message(), Some(&10));
        assert_eq!(mb.mode_with_count(), Some((10, 1)));
        assert_eq!(mb.count_equal(&12), 1);
        // The table payload is aliased, not cloned.
        assert!(std::ptr::eq(
            mb.from(p(0)).unwrap(),
            table[0].broadcast_payload().unwrap()
        ));
        // map/filter preserve table-delivered messages.
        assert_eq!(mb.map(|m| m + 1).from(p(2)), Some(&13));
        let kept = mb.filter_senders(ProcessSet::from_indices([1, 2]));
        assert_eq!(kept.senders(), ProcessSet::from_indices([1, 2]));
        assert_eq!(kept.from(p(2)), Some(&12));
        // try_push sees table senders as duplicates.
        let mut mb2 = mb.clone();
        assert_eq!(mb2.try_push(p(0), 99), Err(DuplicateSender(p(0))));
        // clear releases the table.
        mb2.clear();
        assert!(mb2.is_empty());
        assert_eq!(mb2.from(p(0)), None);
    }

    #[test]
    fn second_round_table_falls_back_to_shared_entries() {
        // Delivering from two different outboxes into one mailbox must not
        // rebind the table (the first senders would resolve against the
        // wrong plans); the second delivery materialises shared entries.
        let table_a = Arc::new(vec![SendPlan::broadcast(10u32), SendPlan::Silent]);
        let table_b = Arc::new(vec![SendPlan::Silent, SendPlan::broadcast(21u32)]);
        let mut mb = Mailbox::empty();
        mb.deliver_table(Arc::clone(&table_a), ProcessSet::from_indices([0]));
        mb.deliver_table(Arc::clone(&table_b), ProcessSet::from_indices([1]));
        assert_eq!(mb.from(p(0)), Some(&10), "first table still authoritative");
        assert_eq!(mb.from(p(1)), Some(&21), "second delivery readable");
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.senders(), ProcessSet::from_indices([0, 1]));
        // The fallback aliases table B's payload rather than cloning it.
        assert!(std::ptr::eq(
            mb.from(p(1)).unwrap(),
            table_b[1].broadcast_payload().unwrap()
        ));
    }

    #[test]
    fn filter_senders_drops_unused_round_table() {
        let table = Arc::new(vec![SendPlan::broadcast(5u32)]);
        let mut mb = Mailbox::empty();
        mb.deliver_table(Arc::clone(&table), ProcessSet::from_indices([0]));
        mb.push_trusted(p(1), 6);
        // Filtering away every table sender must not retain the table.
        let kept = mb.filter_senders(ProcessSet::from_indices([1]));
        assert!(kept.table.is_none());
        assert_eq!(kept.from(p(1)), Some(&6));
        // Filtering that keeps a table sender carries it.
        let kept = mb.filter_senders(ProcessSet::from_indices([0]));
        assert!(kept.table.is_some());
        assert_eq!(kept.from(p(0)), Some(&5));
    }

    #[test]
    fn try_push_reports_duplicates_without_panicking() {
        let mut mb = Mailbox::empty();
        assert_eq!(mb.try_push(p(0), 1u32), Ok(()));
        assert_eq!(mb.try_push(p(0), 2), Err(DuplicateSender(p(0))));
        assert_eq!(
            mb.try_push_shared(p(0), Arc::new(3)),
            Err(DuplicateSender(p(0)))
        );
        // The rejected pushes left the mailbox untouched.
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.from(p(0)), Some(&1));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut mb = Mailbox::empty();
        for i in 0..8 {
            mb.push(p(i), i as u32);
        }
        let entries_cap = mb.entries.capacity();
        let sorted_cap = mb.sorted.capacity();
        mb.clear();
        assert!(mb.is_empty());
        assert_eq!(mb.senders(), ProcessSet::empty());
        assert_eq!(mb.entries.capacity(), entries_cap);
        assert_eq!(mb.sorted.capacity(), sorted_cap);
        // Reusable after clearing.
        mb.push(p(3), 99);
        assert_eq!(mb.from(p(3)), Some(&99));
    }

    #[test]
    fn count_and_quorum() {
        let mb: Mailbox<u32> = [(p(0), 5), (p(1), 5), (p(2), 8)].into_iter().collect();
        assert_eq!(mb.count_equal(&5), 2);
        assert!(mb.has_quorum_for(&5, 1));
        assert!(!mb.has_quorum_for(&5, 2));
    }

    #[test]
    fn min_message() {
        let mb: Mailbox<u32> = [(p(0), 5), (p(1), 3)].into_iter().collect();
        assert_eq!(mb.min_message(), Some(&3));
        assert_eq!(Mailbox::<u32>::empty().min_message(), None);
    }

    #[test]
    fn mode_breaks_ties_to_smallest() {
        let mb: Mailbox<u32> = [(p(0), 5), (p(1), 3), (p(2), 5), (p(3), 3)]
            .into_iter()
            .collect();
        assert_eq!(mb.mode(), Some(3));
    }

    #[test]
    fn mode_handles_large_mailboxes_past_the_stack_buffer() {
        // 20 senders (> the 16-slot stack buffer): the sort-based spilled
        // path must agree with the buffered one.
        let mb: Mailbox<u32> = (0..20).map(|i| (p(i), (i % 3) as u32)).collect();
        assert_eq!(mb.mode_with_count(), Some((0, 7)));
    }

    #[test]
    fn spilled_mode_breaks_ties_to_smallest() {
        // 24 senders, values 0..=3 six times each: a four-way tie that the
        // sorted run-scan must break towards 0.
        let mb: Mailbox<u32> = (0..24).map(|i| (p(i), (i % 4) as u32)).collect();
        assert_eq!(mb.mode_with_count(), Some((0, 6)));
    }

    /// The reference implementation: count every value, max count, ties to
    /// the smallest value.
    fn naive_mode(values: &[u64]) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for &v in values {
            let count = values.iter().filter(|x| **x == v).count();
            let better = match best {
                None => true,
                Some((bv, bc)) => count > bc || (count == bc && v < bv),
            };
            if better {
                best = Some((v, count));
            }
        }
        best
    }

    #[test]
    fn mode_matches_naive_counter_up_to_max_processes() {
        // Randomized equivalence across both paths (stack-buffered ≤ 16,
        // sorted spill above) for every size the bitset supports.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..300 {
            let n = 1 + (next() % crate::process::MAX_PROCESSES as u64) as usize;
            // Small domains force heavy ties; larger ones force singletons.
            let domain = 1 + next() % 9;
            let mb: Mailbox<u64> = (0..n).map(|i| (p(i), next() % domain)).collect();
            let values: Vec<u64> = mb.messages().copied().collect();
            assert_eq!(
                mb.mode_with_count(),
                naive_mode(&values),
                "trial {trial}, n = {n}, domain = {domain}"
            );
        }
        // Pin both boundary sizes explicitly.
        for n in [16, 17, 128] {
            let mb: Mailbox<u64> = (0..n).map(|i| (p(i), next() % 4)).collect();
            let values: Vec<u64> = mb.messages().copied().collect();
            assert_eq!(mb.mode_with_count(), naive_mode(&values), "n = {n}");
        }
    }

    #[test]
    fn filter_senders_restricts() {
        let mb: Mailbox<u32> = [(p(0), 1), (p(1), 2), (p(2), 3)].into_iter().collect();
        let kept = mb.filter_senders(ProcessSet::from_indices([1, 2]));
        assert_eq!(kept.senders(), ProcessSet::from_indices([1, 2]));
        assert_eq!(kept.from(p(0)), None);
        assert_eq!(kept.from(p(2)), Some(&3));
    }

    #[test]
    fn map_preserves_senders() {
        let mb: Mailbox<u32> = [(p(0), 1), (p(1), 2)].into_iter().collect();
        let doubled = mb.map(|m| m * 2);
        assert_eq!(doubled.from(p(1)), Some(&4));
    }
}
