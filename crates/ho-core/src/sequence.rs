//! Repeated consensus: a replicated log built from consensus instances.
//!
//! The paper's opening line: *"Consensus is related to replication and
//! appears when implementing atomic broadcast, group membership, etc."*
//! [`RepeatedConsensus`] is that construction in the HO model: an infinite
//! sequence of consensus *slots*, each decided by a fresh instance of any
//! [`HoAlgorithm`], multiplexed over the same rounds.
//!
//! Processes may be in different slots (a process that missed a slot's
//! quorum lags behind); every message therefore carries the sender's
//! decided prefix, so laggards catch up by adopting it — safe because
//! agreement makes all decided prefixes of a slot identical. The per-slot
//! liveness guarantee is inherited: slot `k` decides whenever the
//! underlying algorithm's predicate holds over the rounds in which the
//! deciding processes ran slot `k`.

use std::fmt;

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::process::ProcessId;
use crate::round::Round;
use crate::send_plan::SendPlan;

/// Supplies the proposal of process `p` for slot `slot` (the "client
/// commands" being ordered).
pub trait ProposalSource<V> {
    /// The value `p` proposes for `slot`.
    fn proposal(&self, p: ProcessId, slot: u64) -> V;
}

impl<V, F: Fn(ProcessId, u64) -> V> ProposalSource<V> for F {
    fn proposal(&self, p: ProcessId, slot: u64) -> V {
        self(p, slot)
    }
}

/// Repeated consensus over an inner HO algorithm.
///
/// The `Value` of the combinator is the decided **log prefix**; a process
/// "decides" in the consensus sense only at slot granularity, exposed via
/// [`RcState::log`]. The executor-facing `decision()` reports the *first*
/// slot's decision, so a `RoundExecutor` can still drive it and check
/// safety per slot 0; richer inspection goes through the state.
pub struct RepeatedConsensus<A, S> {
    inner: A,
    proposals: S,
}

impl<A: HoAlgorithm, S: ProposalSource<A::Value>> RepeatedConsensus<A, S> {
    /// Creates the combinator from an inner algorithm instance and a
    /// proposal source.
    #[must_use]
    pub fn new(inner: A, proposals: S) -> Self {
        RepeatedConsensus { inner, proposals }
    }

    /// The inner algorithm.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

/// A slot-tagged message: the sender's slot, its decided prefix, and the
/// inner message of its current slot.
#[derive(Clone, Debug)]
pub struct RcMessage<M, V> {
    /// The sender's current slot.
    pub slot: u64,
    /// The sender's decided log prefix (`prefix[k]` decided slot `k`).
    pub prefix: Vec<V>,
    /// The inner round message for the sender's slot.
    pub payload: Option<M>,
}

/// Per-process state: the decided log plus the running instance.
pub struct RcState<A: HoAlgorithm> {
    /// Decided values, one per completed slot.
    log: Vec<A::Value>,
    /// Current slot index (`== log.len()`).
    slot: u64,
    /// The running instance's state.
    inner: A::State,
}

impl<A: HoAlgorithm> RcState<A> {
    /// The decided log prefix.
    #[must_use]
    pub fn log(&self) -> &[A::Value] {
        &self.log
    }

    /// The slot currently being decided.
    #[must_use]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The inner state of the running instance.
    #[must_use]
    pub fn inner(&self) -> &A::State {
        &self.inner
    }
}

impl<A: HoAlgorithm> Clone for RcState<A> {
    fn clone(&self) -> Self {
        RcState {
            log: self.log.clone(),
            slot: self.slot,
            inner: self.inner.clone(),
        }
    }
}

impl<A: HoAlgorithm> fmt::Debug for RcState<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RcState")
            .field("log", &self.log)
            .field("slot", &self.slot)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<A, S> RepeatedConsensus<A, S>
where
    A: HoAlgorithm,
    S: ProposalSource<A::Value>,
{
    /// Starts the instance for `state.slot`, feeding it `p`'s proposal.
    fn start_slot(&self, p: ProcessId, state: &mut RcState<A>) {
        let v = self.proposals.proposal(p, state.slot);
        state.inner = self.inner.init(p, v);
    }

    /// Adopts a longer decided prefix learned from a peer. Agreement of the
    /// inner algorithm makes any two prefixes consistent on their common
    /// length, so adopting the longer one is safe; the running instance is
    /// re-initialized for the next undecided slot.
    fn catch_up(&self, p: ProcessId, state: &mut RcState<A>, prefix: &[A::Value]) {
        if prefix.len() > state.log.len() {
            debug_assert!(
                state.log.iter().zip(prefix).all(|(a, b)| a == b),
                "divergent decided prefixes — inner agreement violated"
            );
            state.log = prefix.to_vec();
            state.slot = state.log.len() as u64;
            self.start_slot(p, state);
        }
    }
}

impl<A, S> HoAlgorithm for RepeatedConsensus<A, S>
where
    A: HoAlgorithm,
    S: ProposalSource<A::Value>,
{
    type State = RcState<A>;
    type Message = RcMessage<A::Message, A::Value>;
    type Value = A::Value;

    fn n(&self) -> usize {
        self.inner.n()
    }

    /// `initial_value` is the proposal for slot 0 *only if* the proposal
    /// source does not override it; by convention the source is consulted
    /// for every slot including 0, and `initial_value` is ignored. Pass
    /// any value (e.g. `proposals.proposal(p, 0)`).
    fn init(&self, p: ProcessId, _initial_value: A::Value) -> RcState<A> {
        let mut state = RcState {
            log: Vec::new(),
            slot: 0,
            inner: self.inner.init(p, self.proposals.proposal(p, 0)),
        };
        // start_slot re-inits identically; kept for clarity.
        self.start_slot(p, &mut state);
        state
    }

    fn send(
        &self,
        r: Round,
        p: ProcessId,
        state: &RcState<A>,
    ) -> SendPlan<RcMessage<A::Message, A::Value>> {
        // The prefix piggybacks on *every* destination (laggards must be
        // able to catch up), so the combinator always fans out to all of Π;
        // the inner plan only decides the per-destination payload.
        match self.inner.send(self.slot_round(r, state), p, &state.inner) {
            SendPlan::Broadcast(m) => SendPlan::broadcast(RcMessage {
                slot: state.slot,
                prefix: state.log.clone(),
                payload: Some((*m).clone()),
            }),
            SendPlan::Silent => SendPlan::broadcast(RcMessage {
                slot: state.slot,
                prefix: state.log.clone(),
                payload: None,
            }),
            SendPlan::Unicast(pairs) => SendPlan::unicast(
                (0..self.n())
                    .map(ProcessId::new)
                    .map(|q| {
                        let payload = pairs.iter().find(|(d, _)| *d == q).map(|(_, m)| m.clone());
                        (
                            q,
                            RcMessage {
                                slot: state.slot,
                                prefix: state.log.clone(),
                                payload,
                            },
                        )
                    })
                    .collect(),
            ),
        }
    }

    fn transition(
        &self,
        r: Round,
        p: ProcessId,
        state: &mut RcState<A>,
        mb: &Mailbox<RcMessage<A::Message, A::Value>>,
    ) {
        // 1. Catch up on any longer prefix heard.
        let best: Option<&RcMessage<A::Message, A::Value>> =
            mb.messages().max_by_key(|m| m.prefix.len());
        if let Some(m) = best {
            let prefix = m.prefix.clone();
            self.catch_up(p, state, &prefix);
        }
        // 2. Feed same-slot payloads to the running instance.
        let mut inner_mb = Mailbox::empty();
        for (q, m) in mb.iter() {
            if m.slot == state.slot {
                if let Some(payload) = &m.payload {
                    inner_mb.push(q, payload.clone());
                }
            }
        }
        self.inner
            .transition(self.slot_round(r, state), p, &mut state.inner, &inner_mb);
        // 3. On decision: append and open the next slot.
        if let Some(v) = self.inner.decision(&state.inner) {
            state.log.push(v);
            state.slot += 1;
            self.start_slot(p, state);
        }
    }

    fn decision(&self, state: &RcState<A>) -> Option<A::Value> {
        state.log.first().cloned()
    }
}

impl<A, S> RepeatedConsensus<A, S>
where
    A: HoAlgorithm,
    S: ProposalSource<A::Value>,
{
    /// The round number fed to the inner instance. Slots start at
    /// different global rounds on different processes, so inner round
    /// numbers cannot be global; we use a per-slot virtual round derived
    /// from the global round (inner algorithms in this crate only use the
    /// round for phase arithmetic, which needs consistency *within* a
    /// mailbox — guaranteed because only same-slot messages are fed).
    fn slot_round(&self, r: Round, _state: &RcState<A>) -> Round {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{EventuallyGood, FullDelivery, RandomLoss};
    use crate::algorithms::OneThirdRule;
    use crate::executor::RoundExecutor;
    use crate::process::ProcessSet;

    /// Process p proposes `100·slot + p` for each slot.
    fn proposals(p: ProcessId, slot: u64) -> u64 {
        100 * slot + p.index() as u64
    }

    fn make(n: usize) -> RepeatedConsensus<OneThirdRule, fn(ProcessId, u64) -> u64> {
        RepeatedConsensus::new(OneThirdRule::new(n), proposals as fn(ProcessId, u64) -> u64)
    }

    type Rc = RepeatedConsensus<OneThirdRule, fn(ProcessId, u64) -> u64>;

    fn logs(exec: &RoundExecutor<Rc>) -> Vec<Vec<u64>> {
        exec.states().iter().map(|s| s.log().to_vec()).collect()
    }

    #[test]
    fn log_grows_one_slot_per_two_rounds_when_nice() {
        let n = 4;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        exec.run(&mut FullDelivery, 20).unwrap();
        for log in logs(&exec) {
            // 20 rounds / 2 rounds per OTR decision = 10 slots.
            assert_eq!(log.len(), 10, "{log:?}");
            // Slot k decides min proposal = 100k + 0.
            for (k, v) in log.iter().enumerate() {
                assert_eq!(*v, 100 * k as u64);
            }
        }
    }

    #[test]
    fn logs_are_prefix_consistent_under_loss() {
        let n = 5;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        let mut adv = RandomLoss::new(0.35, 9);
        exec.run(&mut adv, 120).unwrap();
        let all = logs(&exec);
        // Prefix consistency: any two logs agree on their common prefix.
        for a in &all {
            for b in &all {
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common]);
            }
        }
        // And progress happened despite 35% loss.
        assert!(all.iter().any(|l| l.len() >= 3), "{all:?}");
    }

    #[test]
    fn laggards_catch_up_after_partition_heals() {
        let n = 4;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        // p3 isolated for 12 rounds while the quorum {0,1,2} decides slots.
        let quorum = ProcessSet::from_indices(0..3);
        let mut adv = crate::adversary::Scripted::new(vec![
            vec![
                quorum,
                quorum,
                quorum,
                ProcessSet::from_indices([3]),
            ];
            12
        ]);
        exec.run(&mut adv, 12).unwrap();
        let before = logs(&exec);
        assert!(before[0].len() >= 4);
        assert_eq!(before[3].len(), 0, "p3 learned nothing while isolated");
        // Partition heals: p3 adopts the whole prefix within a round.
        exec.run(&mut FullDelivery, 2).unwrap();
        let after = logs(&exec);
        assert!(after[3].len() >= before[0].len(), "{after:?}");
    }

    #[test]
    fn executor_decision_view_is_slot_zero() {
        let n = 4;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        let mut adv = EventuallyGood::new(4, ProcessSet::full(n), 0.6, 3);
        exec.run(&mut adv, 12).unwrap();
        // The executor's consensus checker saw slot-0 decisions only; all
        // equal 0 (min proposal of slot 0).
        for d in exec.decisions().into_iter().flatten() {
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn state_accessors() {
        let n = 3;
        let alg = make(n);
        let st = alg.init(ProcessId::new(1), 0);
        assert_eq!(st.slot(), 0);
        assert!(st.log().is_empty());
        let _ = st.inner();
        let _ = format!("{st:?}");
        let cloned = st.clone();
        assert_eq!(cloned.slot(), 0);
    }
}
