//! The Heard-Of algorithm abstraction.
//!
//! An HO algorithm (paper, §3.1) comprises for each round `r` and process `p`
//! a *sending function* `S_p^r` and a *transition function* `T_p^r`. At the
//! beginning of a round every process sends messages according to `S_p^r`;
//! at the end of the round it makes a state transition according to
//! `T_p^r(μ⃗, s_p)` where `μ⃗` is the partial vector of received messages.
//!
//! The sending function is expressed as a per-round [`SendPlan`] — produced
//! **once** per process per round — rather than one call per destination.
//! The per-destination view ([`HoAlgorithm::message`]) and the broadcast
//! view ([`HoAlgorithm::broadcast_message`]) are derived from the plan, so
//! algorithms state *how their messages fan out* exactly once and every
//! machine consumes that single statement.
//!
//! The same trait drives three different "machines":
//!
//! * the round-synchronous [`RoundExecutor`](crate::executor::RoundExecutor),
//!   where an [`Adversary`](crate::adversary::Adversary) picks the HO sets;
//! * the [`P_k → P_su` translation](crate::translation), which wraps one
//!   `HoAlgorithm` into another;
//! * the system-level predicate implementations (Algorithms 2 and 3 of the
//!   paper, in the `ho-predicates` crate), which thread `S_p^r`'s plan
//!   payload into their wire messages from inside a partially synchronous
//!   message-passing simulation.

use std::fmt;

use crate::mailbox::Mailbox;
use crate::process::ProcessId;
use crate::round::Round;
use crate::send_plan::{PlanSlot, SendPlan};

/// A Heard-Of algorithm: per-round sending and transition functions.
///
/// Implementations are *stateless* descriptions of the algorithm; per-process
/// state lives in `Self::State` and is owned by whichever machine executes
/// the algorithm. This mirrors the paper's separation between the algorithm
/// `A = ⟨S_p^r, T_p^r⟩` and its runs.
pub trait HoAlgorithm {
    /// Per-process state `s_p`.
    type State: Clone + fmt::Debug;
    /// Round messages.
    type Message: Clone + fmt::Debug;
    /// The consensus value domain (initial values and decisions).
    type Value: Clone + fmt::Debug + Ord;

    /// Number of processes `n = |Π|` this instance is configured for.
    fn n(&self) -> usize;

    /// Initial state of process `p` with initial value `v_p`.
    fn init(&self, p: ProcessId, initial_value: Self::Value) -> Self::State;

    /// The sending function `S_p^r` in closed form: how `p`'s round-`r`
    /// messages fan out, evaluated once per round.
    ///
    /// Broadcast algorithms (such as OneThirdRule) return
    /// [`SendPlan::Broadcast`]; coordinator-based algorithms (such as
    /// LastVoting) return [`SendPlan::Unicast`] or [`SendPlan::Silent`] in
    /// the point-to-point rounds.
    fn send(&self, r: Round, p: ProcessId, state: &Self::State) -> SendPlan<Self::Message>;

    /// The scratch-buffer form of `S_p^r`: writes the round's plan through
    /// a [`PlanSlot`], which recycles the payload buffers of `p`'s previous
    /// plans. Returns the number of payload buffers reused in place.
    ///
    /// The default delegates to [`HoAlgorithm::send`] and never reuses.
    /// Algorithms on the hot path override this with the slot's in-place
    /// writers ([`PlanSlot::broadcast`], [`PlanSlot::unicast_to`],
    /// [`PlanSlot::silent`]) so that steady-state rounds allocate nothing;
    /// the override must produce exactly the plan `send` would.
    fn send_into(
        &self,
        r: Round,
        p: ProcessId,
        state: &Self::State,
        slot: &mut PlanSlot<'_, Self::Message>,
    ) -> u64 {
        slot.set(self.send(r, p, state));
        0
    }

    /// The per-destination view of `S_p^r`: the message `p` sends to `q` in
    /// round `r`, or `None` if the round's plan addresses no message to `q`.
    ///
    /// Derived from [`HoAlgorithm::send`]; kept for tests and analysis
    /// code. Execution machines consume the plan directly — calling this in
    /// a loop over destinations re-introduces the `O(n²)` clone the plan
    /// exists to avoid.
    fn message(
        &self,
        r: Round,
        p: ProcessId,
        state: &Self::State,
        q: ProcessId,
    ) -> Option<Self::Message> {
        self.send(r, p, state).message_for(q).cloned()
    }

    /// The transition function `T_p^r`: updates `state` given the partial
    /// vector of messages received in round `r`.
    fn transition(
        &self,
        r: Round,
        p: ProcessId,
        state: &mut Self::State,
        mailbox: &Mailbox<Self::Message>,
    );

    /// The decision of `p`, if it has decided.
    ///
    /// Decisions are irrevocable: once `Some(v)`, this must return `Some(v)`
    /// forever. The executors assert this.
    fn decision(&self, state: &Self::State) -> Option<Self::Value>;

    /// The broadcast view of `S_p^r`: the message `p` sends to *everybody*
    /// in round `r`, if the round is a broadcast round. The system-level
    /// simulators use this to model a broadcast send step (one step for all
    /// destinations, as provided by e.g. UDP-multicast — see §4.1 of the
    /// paper).
    ///
    /// Derived from [`HoAlgorithm::send`]: `Some` exactly when the plan is
    /// a [`SendPlan::Broadcast`].
    fn broadcast_message(
        &self,
        r: Round,
        p: ProcessId,
        state: &Self::State,
    ) -> Option<Self::Message> {
        self.send(r, p, state).broadcast_payload().cloned()
    }
}

/// Blanket helper methods available on every [`HoAlgorithm`].
pub trait HoAlgorithmExt: HoAlgorithm {
    /// Runs the "skipped rounds" rule of Algorithms 2 and 3: applies
    /// `T_p^{r'}(∅, s_p)` for every round `r'` in `[from, to)`.
    ///
    /// When the system-level layer jumps from round `r_p` to `next_r_p`, the
    /// transition function is executed with an empty message set for every
    /// intermediate round (line 21 of Algorithm 2).
    fn apply_empty_rounds(&self, p: ProcessId, state: &mut Self::State, from: Round, to: Round) {
        let mut r = from;
        while r < to {
            self.transition(r, p, state, &Mailbox::empty());
            r = r.next();
        }
    }
}

impl<A: HoAlgorithm + ?Sized> HoAlgorithmExt for A {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessSet;

    /// A toy algorithm that counts how many rounds it has executed and
    /// decides its own initial value after three rounds.
    struct CountThree;

    #[derive(Clone, Debug)]
    struct CountState {
        v: u64,
        rounds: u64,
        heard: Vec<ProcessSet>,
    }

    impl HoAlgorithm for CountThree {
        type State = CountState;
        type Message = u64;
        type Value = u64;

        fn n(&self) -> usize {
            3
        }

        fn init(&self, _p: ProcessId, v: u64) -> CountState {
            CountState {
                v,
                rounds: 0,
                heard: Vec::new(),
            }
        }

        fn send(&self, _r: Round, _p: ProcessId, state: &CountState) -> SendPlan<u64> {
            SendPlan::broadcast(state.v)
        }

        fn transition(
            &self,
            _r: Round,
            _p: ProcessId,
            state: &mut CountState,
            mailbox: &Mailbox<u64>,
        ) {
            state.rounds += 1;
            state.heard.push(mailbox.senders());
        }

        fn decision(&self, state: &CountState) -> Option<u64> {
            (state.rounds >= 3).then_some(state.v)
        }
    }

    #[test]
    fn apply_empty_rounds_runs_each_intermediate_round() {
        let alg = CountThree;
        let p = ProcessId::new(0);
        let mut s = alg.init(p, 42);
        // Jump from round 2 to round 5: rounds 2, 3, 4 run with ∅.
        alg.apply_empty_rounds(p, &mut s, Round(2), Round(5));
        assert_eq!(s.rounds, 3);
        assert!(s.heard.iter().all(|h| h.is_empty()));
        assert_eq!(alg.decision(&s), Some(42));
    }

    #[test]
    fn apply_empty_rounds_noop_when_range_empty() {
        let alg = CountThree;
        let p = ProcessId::new(0);
        let mut s = alg.init(p, 7);
        alg.apply_empty_rounds(p, &mut s, Round(5), Round(5));
        assert_eq!(s.rounds, 0);
        assert_eq!(alg.decision(&s), None);
    }

    #[test]
    fn derived_views_follow_the_plan() {
        let alg = CountThree;
        let p = ProcessId::new(1);
        let s = alg.init(p, 9);
        // Broadcast plan → both derived views see the payload.
        assert_eq!(alg.broadcast_message(Round(1), p, &s), Some(9));
        assert_eq!(alg.message(Round(1), p, &s, ProcessId::new(0)), Some(9));
        assert_eq!(alg.message(Round(1), p, &s, ProcessId::new(2)), Some(9));
    }
}
