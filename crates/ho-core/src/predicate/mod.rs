//! Communication predicates as first-class values.
//!
//! A communication predicate `P` (paper, §3.1) is a predicate over the
//! collection of heard-of sets `(HO(p, r))_{p∈Π, r>0}` of a run. A problem is
//! solved by a *pair* `⟨A, P⟩` of an HO algorithm and a communication
//! predicate: the predicate is the interface between the algorithmic layer
//! and the predicate implementation layer (Figure 1).
//!
//! Predicates here evaluate against finite [`Trace`]s. Universally
//! quantified predicates (e.g. "every round has a majority HO set") are
//! checked on every recorded round; existentially quantified predicates
//! (e.g. `P_otr`) are *witnessed* by the prefix — `false` means "no witness
//! yet", which is the right reading for liveness properties.
//!
//! The module is organised as:
//!
//! * this file — the [`Predicate`] trait and logical combinators;
//! * `paper` — the predicates of the paper: `P_otr`, `P_otr^restr`
//!   (Table 1), `P_su`, `P_k`, `P2_otr`, `P1/1_otr` (§4.2) plus the
//!   classics `P_majority` and `P_nek`;
//! * `witness` — searches that return *where* a predicate holds, used by
//!   the measurement harness to locate `r0` and `Π0`.

mod paper;
mod quantified;
mod witness;

pub use paper::{
    Kernel, MajorityEachRound, NonEmptyKernel, P11Otr, P2Otr, Potr, PotrRestricted, SpaceUniform,
};
pub use quantified::{KernelWindow, SpaceUniformWindow};
pub use witness::{
    find_kernel_runs, find_otr_witness, find_p11otr_witness, find_p2otr_witness,
    find_restricted_otr_witness, find_space_uniform_runs, uniform_candidates, RoundRun,
};

use crate::trace::Trace;

/// A communication predicate over heard-of traces.
pub trait Predicate {
    /// Whether the (finite prefix) trace satisfies / witnesses the predicate.
    fn holds(&self, trace: &Trace) -> bool;

    /// A human-readable rendition, used by the experiment tables.
    fn describe(&self) -> String;

    /// `self ∧ other`.
    fn and<Q: Predicate + Sized>(self, other: Q) -> And<Self, Q>
    where
        Self: Sized,
    {
        And(self, other)
    }

    /// `self ∨ other`.
    fn or<Q: Predicate + Sized>(self, other: Q) -> Or<Self, Q>
    where
        Self: Sized,
    {
        Or(self, other)
    }

    /// `¬self`.
    fn not(self) -> Not<Self>
    where
        Self: Sized,
    {
        Not(self)
    }
}

impl<P: Predicate + ?Sized> Predicate for &P {
    fn holds(&self, trace: &Trace) -> bool {
        (**self).holds(trace)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<P: Predicate + ?Sized> Predicate for Box<P> {
    fn holds(&self, trace: &Trace) -> bool {
        (**self).holds(trace)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Conjunction of two predicates.
#[derive(Clone, Debug)]
pub struct And<P, Q>(pub P, pub Q);

impl<P: Predicate, Q: Predicate> Predicate for And<P, Q> {
    fn holds(&self, trace: &Trace) -> bool {
        self.0.holds(trace) && self.1.holds(trace)
    }
    fn describe(&self) -> String {
        format!("({}) ∧ ({})", self.0.describe(), self.1.describe())
    }
}

/// Disjunction of two predicates.
#[derive(Clone, Debug)]
pub struct Or<P, Q>(pub P, pub Q);

impl<P: Predicate, Q: Predicate> Predicate for Or<P, Q> {
    fn holds(&self, trace: &Trace) -> bool {
        self.0.holds(trace) || self.1.holds(trace)
    }
    fn describe(&self) -> String {
        format!("({}) ∨ ({})", self.0.describe(), self.1.describe())
    }
}

/// Negation of a predicate.
#[derive(Clone, Debug)]
pub struct Not<P>(pub P);

impl<P: Predicate> Predicate for Not<P> {
    fn holds(&self, trace: &Trace) -> bool {
        !self.0.holds(trace)
    }
    fn describe(&self) -> String {
        format!("¬({})", self.0.describe())
    }
}

/// The always-true predicate (the asynchronous system: no guarantee at all).
#[derive(Clone, Copy, Debug, Default)]
pub struct True;

impl Predicate for True {
    fn holds(&self, _trace: &Trace) -> bool {
        true
    }
    fn describe(&self) -> String {
        "true".to_owned()
    }
}

/// A predicate from a closure, for ad-hoc experiment conditions.
pub struct FnPredicate<F> {
    f: F,
    name: String,
}

impl<F: Fn(&Trace) -> bool> FnPredicate<F> {
    /// Wraps `f` with a display `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnPredicate {
            f,
            name: name.into(),
        }
    }
}

impl<F: Fn(&Trace) -> bool> Predicate for FnPredicate<F> {
    fn holds(&self, trace: &Trace) -> bool {
        (self.f)(trace)
    }
    fn describe(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessSet;

    fn empty_round_trace(n: usize, rounds: usize) -> Trace {
        let mut t = Trace::new(n);
        for _ in 0..rounds {
            t.push_round(vec![ProcessSet::empty(); n]);
        }
        t
    }

    #[test]
    fn combinators() {
        let t = empty_round_trace(3, 1);
        assert!(True.holds(&t));
        assert!(!True.not().holds(&t));
        assert!(True.and(True).holds(&t));
        assert!(!True.and(True.not()).holds(&t));
        assert!(True.not().or(True).holds(&t));
    }

    #[test]
    fn fn_predicate() {
        let p = FnPredicate::new("at least 2 rounds", |t: &Trace| t.rounds() >= 2);
        assert!(!p.holds(&empty_round_trace(3, 1)));
        assert!(p.holds(&empty_round_trace(3, 2)));
        assert_eq!(p.describe(), "at least 2 rounds");
    }

    #[test]
    fn describe_composes() {
        let d = True.and(True.not()).describe();
        assert_eq!(d, "(true) ∧ (¬(true))");
    }

    #[test]
    fn boxed_predicate_object_safe() {
        let p: Box<dyn Predicate> = Box::new(True);
        assert!(p.holds(&empty_round_trace(2, 1)));
    }
}
