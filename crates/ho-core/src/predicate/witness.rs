//! Witness search: *where* does a predicate hold in a trace?
//!
//! The measurement harness (experiments E3–E8) does not only need a yes/no
//! answer; it needs the witnessing round `r0` and set `Π0` to compute, e.g.,
//! how long after the start of a good period the first space-uniform round
//! appears. These functions return those witnesses.

use crate::process::ProcessSet;
use crate::round::Round;
use crate::trace::Trace;

/// A maximal run of consecutive rounds `[from, to]` satisfying some
/// per-round property.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundRun {
    /// First round of the run.
    pub from: Round,
    /// Last round of the run (inclusive).
    pub to: Round,
}

impl RoundRun {
    /// Number of rounds in the run.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.to.get() - self.from.get() + 1
    }

    /// Runs are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Collects maximal runs of consecutive rounds where `round_holds` is true.
fn runs_where(trace: &Trace, mut round_holds: impl FnMut(Round) -> bool) -> Vec<RoundRun> {
    let mut out = Vec::new();
    let mut start: Option<Round> = None;
    for r in 1..=trace.rounds() {
        let r = Round(r);
        if round_holds(r) {
            start.get_or_insert(r);
        } else if let Some(s) = start.take() {
            out.push(RoundRun {
                from: s,
                to: Round(r.get() - 1),
            });
        }
    }
    if let Some(s) = start {
        out.push(RoundRun {
            from: s,
            to: Round(trace.rounds()),
        });
    }
    out
}

/// Maximal runs of rounds that are space uniform over `scope` with
/// `HO(p, r) = scope` (i.e. rounds satisfying `P_su(scope, r, r)`).
#[must_use]
pub fn find_space_uniform_runs(trace: &Trace, scope: ProcessSet) -> Vec<RoundRun> {
    runs_where(trace, |r| scope.iter().all(|p| trace.ho(p, r) == scope))
}

/// Maximal runs of rounds satisfying `P_k(scope, r, r)`
/// (every `p ∈ scope` hears of at least `scope`).
#[must_use]
pub fn find_kernel_runs(trace: &Trace, scope: ProcessSet) -> Vec<RoundRun> {
    runs_where(trace, |r| {
        scope.iter().all(|p| trace.ho(p, r).is_superset(scope))
    })
}

/// The candidate sets `Π0` for a restricted space-uniform round `r`:
/// sets `S = HO(p, r)` such that every `q ∈ S` has `HO(q, r) = S`.
///
/// Any `Π0` witnessing `∀p ∈ Π0 : HO(p, r) = Π0` must be the HO set of one
/// of its own members, so scanning `{HO(p, r) : p ∈ Π}` is exhaustive.
#[must_use]
pub fn uniform_candidates(trace: &Trace, r: Round) -> Vec<ProcessSet> {
    let mut cands: Vec<ProcessSet> = Vec::new();
    for (_, hos) in trace.iter().filter(|(rr, _)| *rr == r) {
        for &s in hos {
            if s.is_empty() || cands.contains(&s) {
                continue;
            }
            if s.iter().all(|q| trace.ho(q, r) == s) {
                cands.push(s);
            }
        }
    }
    cands
}

/// A witness `(r0, Π0)` for `P_otr` (Table 1, eq. 1), if the trace contains
/// one.
#[must_use]
pub fn find_otr_witness(trace: &Trace) -> Option<(Round, ProcessSet)> {
    let n = trace.n();
    'rounds: for (r0, hos) in trace.iter() {
        let pi0 = hos[0];
        if 3 * pi0.len() <= 2 * n {
            continue;
        }
        if !hos.iter().all(|&h| h == pi0) {
            continue;
        }
        // Second conjunct: ∀p ∈ Π, ∃rp > r0 : |HO(p, rp)| > 2n/3.
        for p in ProcessSet::full(n).iter() {
            let mut found = false;
            for rp in (r0.get() + 1)..=trace.rounds() {
                if 3 * trace.ho(p, Round(rp)).len() > 2 * n {
                    found = true;
                    break;
                }
            }
            if !found {
                continue 'rounds;
            }
        }
        return Some((r0, pi0));
    }
    None
}

/// A witness `(r0, Π0)` for `P_otr^restr` (Table 1, eq. 2), if any.
#[must_use]
pub fn find_restricted_otr_witness(trace: &Trace) -> Option<(Round, ProcessSet)> {
    let n = trace.n();
    for r0 in 1..=trace.rounds() {
        let r0 = Round(r0);
        'cands: for pi0 in uniform_candidates(trace, r0) {
            if 3 * pi0.len() <= 2 * n {
                continue;
            }
            // ∀p ∈ Π0, ∃rp > r0 : HO(p, rp) ⊇ Π0.
            for p in pi0.iter() {
                let mut found = false;
                for rp in (r0.get() + 1)..=trace.rounds() {
                    if trace.ho(p, Round(rp)).is_superset(pi0) {
                        found = true;
                        break;
                    }
                }
                if !found {
                    continue 'cands;
                }
            }
            return Some((r0, pi0));
        }
    }
    None
}

/// The witnessing round `r0` of `P2_otr(scope)`: a round satisfying
/// `P_su(scope, r0, r0)` immediately followed by a round satisfying
/// `P_k(scope, r0+1, r0+1)`.
#[must_use]
pub fn find_p2otr_witness(trace: &Trace, scope: ProcessSet) -> Option<Round> {
    if scope.is_empty() {
        return None;
    }
    for r0 in 1..trace.rounds() {
        let r0 = Round(r0);
        let su = scope.iter().all(|p| trace.ho(p, r0) == scope);
        if !su {
            continue;
        }
        let k = scope
            .iter()
            .all(|p| trace.ho(p, r0.next()).is_superset(scope));
        if k {
            return Some(r0);
        }
    }
    None
}

/// The witnessing rounds `(r0, r1)` of `P1/1_otr(scope)`: a space-uniform
/// round `r0` and a *later* kernel round `r1 > r0`.
#[must_use]
pub fn find_p11otr_witness(trace: &Trace, scope: ProcessSet) -> Option<(Round, Round)> {
    if scope.is_empty() {
        return None;
    }
    for r0 in 1..trace.rounds() {
        let r0 = Round(r0);
        let su = scope.iter().all(|p| trace.ho(p, r0) == scope);
        if !su {
            continue;
        }
        for r1 in (r0.get() + 1)..=trace.rounds() {
            let r1 = Round(r1);
            if scope.iter().all(|p| trace.ho(p, r1).is_superset(scope)) {
                return Some((r0, r1));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(idx: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(idx.iter().copied())
    }

    fn trace_with(rows: Vec<Vec<ProcessSet>>) -> Trace {
        let n = rows[0].len();
        let mut t = Trace::new(n);
        for row in rows {
            t.push_round(row);
        }
        t
    }

    #[test]
    fn space_uniform_runs_found() {
        let pi0 = set(&[0, 1, 2]);
        let junk = vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])];
        let uni = vec![pi0, pi0, pi0, set(&[3])];
        let t = trace_with(vec![junk.clone(), uni.clone(), uni, junk]);
        let runs = find_space_uniform_runs(&t, pi0);
        assert_eq!(
            runs,
            vec![RoundRun {
                from: Round(2),
                to: Round(3)
            }]
        );
        assert_eq!(runs[0].len(), 2);
    }

    #[test]
    fn kernel_runs_include_supersets() {
        let pi0 = set(&[0, 1]);
        let all = set(&[0, 1, 2]);
        let t = trace_with(vec![vec![all, pi0, set(&[2])], vec![set(&[0]), pi0, all]]);
        let runs = find_kernel_runs(&t, pi0);
        assert_eq!(
            runs,
            vec![RoundRun {
                from: Round(1),
                to: Round(1)
            }]
        );
    }

    #[test]
    fn uniform_candidates_exhaustive() {
        // Two disjoint uniform cliques in the same round.
        let a = set(&[0, 1]);
        let b = set(&[2, 3]);
        let t = trace_with(vec![vec![a, a, b, b]]);
        let cands = uniform_candidates(&t, Round(1));
        assert!(cands.contains(&a));
        assert!(cands.contains(&b));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn otr_witness_location() {
        let pi0 = set(&[0, 1, 2]);
        let t = trace_with(vec![
            vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])],
            vec![pi0, pi0, pi0, pi0],
            vec![pi0, pi0, pi0, pi0],
        ]);
        let (r0, w) = find_otr_witness(&t).expect("witness");
        assert_eq!(r0, Round(2));
        assert_eq!(w, pi0);
    }

    #[test]
    fn otr_witness_needs_followup_round() {
        // Uniform round exists but nobody hears > 2n/3 afterwards.
        let pi0 = set(&[0, 1, 2]);
        let t = trace_with(vec![
            vec![pi0, pi0, pi0, pi0],
            vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])],
        ]);
        assert!(find_otr_witness(&t).is_none());
    }

    #[test]
    fn p2otr_witness_needs_adjacent_kernel() {
        let pi0 = set(&[0, 1, 2]);
        let junk = vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])];
        let uni = vec![pi0, pi0, pi0, set(&[3])];
        let t = trace_with(vec![uni.clone(), junk, uni.clone(), uni]);
        assert_eq!(find_p2otr_witness(&t, pi0), Some(Round(3)));
        assert_eq!(find_p11otr_witness(&t, pi0), Some((Round(1), Round(3))));
    }

    #[test]
    fn empty_scope_has_no_witness() {
        let t = trace_with(vec![vec![set(&[0]), set(&[1])]]);
        assert_eq!(find_p2otr_witness(&t, ProcessSet::empty()), None);
        assert_eq!(find_p11otr_witness(&t, ProcessSet::empty()), None);
    }
}
