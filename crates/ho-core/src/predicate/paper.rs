//! The communication predicates of the paper.
//!
//! Table 1 defines the two predicates paired with the OneThirdRule
//! algorithm:
//!
//! ```text
//! P_otr       :: ∃r0 > 0, ∃Π0, |Π0| > 2n/3 :
//!                  (∀p ∈ Π  : HO(p, r0) = Π0) ∧
//!                  (∀p ∈ Π,  ∃rp > r0 : |HO(p, rp)| > 2n/3)
//!
//! P_otr^restr :: ∃r0 > 0, ∃Π0, |Π0| > 2n/3 :
//!                  (∀p ∈ Π0 : HO(p, r0) = Π0) ∧
//!                  (∀p ∈ Π0, ∃rp > r0 : HO(p, rp) ⊇ Π0)
//! ```
//!
//! Section 4.2 defines the building blocks the implementation layer provides:
//!
//! ```text
//! P_su(Π0, r1, r2)  :: ∀p ∈ Π0, ∀r ∈ [r1, r2] : HO(p, r) = Π0
//! P_k (Π0, r1, r2)  :: ∀p ∈ Π0, ∀r ∈ [r1, r2] : HO(p, r) ⊇ Π0
//! P2_otr(Π0)        :: ∃r0 > 0 : P_su(Π0, r0, r0) ∧ P_k(Π0, r0+1, r0+1)
//! P1/1_otr(Π0)      :: ∃r0 > 0, ∃r1 > r0 : P_su(Π0, r0, r0) ∧ P_k(Π0, r1, r1)
//! ```
//!
//! and the paper notes `(∃Π0, |Π0|>2n/3 : P2_otr(Π0)) ⇒ P_otr^restr`, same
//! for `P1/1_otr` — property-tested in this crate's test suite.

use super::witness;
use super::Predicate;
use crate::process::ProcessSet;
use crate::round::Round;
use crate::trace::Trace;

/// `∀r > 0, ∀p ∈ Π : |HO(p, r)| > n/2` — the "majority every round"
/// predicate used as an introductory example in §3.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct MajorityEachRound;

impl Predicate for MajorityEachRound {
    fn holds(&self, trace: &Trace) -> bool {
        let n = trace.n();
        trace
            .iter()
            .all(|(_, hos)| hos.iter().all(|ho| 2 * ho.len() > n))
    }
    fn describe(&self) -> String {
        "∀r>0, ∀p∈Π : |HO(p,r)| > n/2".to_owned()
    }
}

/// `∀r > 0 : K(r) ≠ ∅` — every round has a non-empty kernel; the class of
/// predicates within which \[CBS06\] identifies the weakest one for consensus.
/// `UniformVoting` is live under this predicate.
#[derive(Clone, Copy, Debug, Default)]
pub struct NonEmptyKernel;

impl Predicate for NonEmptyKernel {
    fn holds(&self, trace: &Trace) -> bool {
        let all = ProcessSet::full(trace.n());
        trace.iter().all(|(r, _)| !trace.kernel(r, all).is_empty())
    }
    fn describe(&self) -> String {
        "∀r>0 : ∩_{p∈Π} HO(p,r) ≠ ∅".to_owned()
    }
}

/// `P_su(Π0, r1, r2)`: rounds `r1..=r2` are *space uniform* over `Π0` — every
/// process in `Π0` hears of exactly `Π0`.
#[derive(Clone, Copy, Debug)]
pub struct SpaceUniform {
    /// The subset `Π0` over which uniformity must hold.
    pub scope: ProcessSet,
    /// First round of the window.
    pub from: Round,
    /// Last round of the window (inclusive).
    pub to: Round,
}

impl SpaceUniform {
    /// `P_su(scope, from, to)`.
    #[must_use]
    pub fn new(scope: ProcessSet, from: Round, to: Round) -> Self {
        SpaceUniform { scope, from, to }
    }
}

impl Predicate for SpaceUniform {
    fn holds(&self, trace: &Trace) -> bool {
        if self.to.get() > trace.rounds() {
            return false;
        }
        let mut r = self.from;
        while r <= self.to {
            if !self.scope.iter().all(|p| trace.ho(p, r) == self.scope) {
                return false;
            }
            r = r.next();
        }
        true
    }
    fn describe(&self) -> String {
        format!(
            "P_su({:?}, {}, {}) :: ∀p∈Π0, ∀r∈[r1,r2] : HO(p,r) = Π0",
            self.scope, self.from, self.to
        )
    }
}

/// `P_k(Π0, r1, r2)`: in rounds `r1..=r2`, every process in `Π0` hears of at
/// least `Π0` (`Π0` is in the kernel of those rounds).
#[derive(Clone, Copy, Debug)]
pub struct Kernel {
    /// The subset `Π0` that must be heard by all of `Π0`.
    pub scope: ProcessSet,
    /// First round of the window.
    pub from: Round,
    /// Last round of the window (inclusive).
    pub to: Round,
}

impl Kernel {
    /// `P_k(scope, from, to)`.
    #[must_use]
    pub fn new(scope: ProcessSet, from: Round, to: Round) -> Self {
        Kernel { scope, from, to }
    }
}

impl Predicate for Kernel {
    fn holds(&self, trace: &Trace) -> bool {
        if self.to.get() > trace.rounds() {
            return false;
        }
        let mut r = self.from;
        while r <= self.to {
            if !self
                .scope
                .iter()
                .all(|p| trace.ho(p, r).is_superset(self.scope))
            {
                return false;
            }
            r = r.next();
        }
        true
    }
    fn describe(&self) -> String {
        format!(
            "P_k({:?}, {}, {}) :: ∀p∈Π0, ∀r∈[r1,r2] : HO(p,r) ⊇ Π0",
            self.scope, self.from, self.to
        )
    }
}

/// `P_otr` (Table 1, eq. 1): the predicate paired with OneThirdRule for the
/// *unrestricted* termination condition (all of `Π` decides).
#[derive(Clone, Copy, Debug, Default)]
pub struct Potr;

impl Predicate for Potr {
    fn holds(&self, trace: &Trace) -> bool {
        witness::find_otr_witness(trace).is_some()
    }
    fn describe(&self) -> String {
        "P_otr :: ∃r0,∃Π0,|Π0|>2n/3 : (∀p∈Π: HO(p,r0)=Π0) ∧ (∀p∈Π,∃rp>r0: |HO(p,rp)|>2n/3)"
            .to_owned()
    }
}

/// `P_otr^restr` (Table 1, eq. 2): the scope-restricted variant — only
/// processes in `Π0` are required to hear uniformly and to later hear of a
/// superset of `Π0`; only they are guaranteed to decide (Theorem 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct PotrRestricted;

impl Predicate for PotrRestricted {
    fn holds(&self, trace: &Trace) -> bool {
        witness::find_restricted_otr_witness(trace).is_some()
    }
    fn describe(&self) -> String {
        "P_otr^restr :: ∃r0,∃Π0,|Π0|>2n/3 : (∀p∈Π0: HO(p,r0)=Π0) ∧ (∀p∈Π0,∃rp>r0: HO(p,rp)⊇Π0)"
            .to_owned()
    }
}

/// `P2_otr(Π0)`: one space-uniform round immediately followed by a kernel
/// round. This is what one sufficiently long good period provides (§4.2).
#[derive(Clone, Copy, Debug)]
pub struct P2Otr {
    /// The synchronous subset `Π0 = π0`.
    pub scope: ProcessSet,
}

impl P2Otr {
    /// `P2_otr(scope)`.
    #[must_use]
    pub fn new(scope: ProcessSet) -> Self {
        P2Otr { scope }
    }
}

impl Predicate for P2Otr {
    fn holds(&self, trace: &Trace) -> bool {
        witness::find_p2otr_witness(trace, self.scope).is_some()
    }
    fn describe(&self) -> String {
        format!(
            "P2_otr({:?}) :: ∃r0 : P_su(Π0,r0,r0) ∧ P_k(Π0,r0+1,r0+1)",
            self.scope
        )
    }
}

/// `P1/1_otr(Π0)`: one space-uniform round and one later (not necessarily
/// adjacent) kernel round. Two shorter good periods suffice (Corollary 4).
#[derive(Clone, Copy, Debug)]
pub struct P11Otr {
    /// The synchronous subset `Π0 = π0`.
    pub scope: ProcessSet,
}

impl P11Otr {
    /// `P1/1_otr(scope)`.
    #[must_use]
    pub fn new(scope: ProcessSet) -> Self {
        P11Otr { scope }
    }
}

impl Predicate for P11Otr {
    fn holds(&self, trace: &Trace) -> bool {
        witness::find_p11otr_witness(trace, self.scope).is_some()
    }
    fn describe(&self) -> String {
        format!(
            "P1/1_otr({:?}) :: ∃r0, ∃r1>r0 : P_su(Π0,r0,r0) ∧ P_k(Π0,r1,r1)",
            self.scope
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(idx: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(idx.iter().copied())
    }

    /// n = 4; Π0 = {0,1,2} (|Π0| = 3 > 8/3).
    fn uniform_then_kernel_trace() -> Trace {
        let pi0 = set(&[0, 1, 2]);
        let mut t = Trace::new(4);
        // Round 1: garbage.
        t.push_round(vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])]);
        // Round 2: space uniform over Π0 for all of Π.
        t.push_round(vec![pi0, pi0, pi0, pi0]);
        // Round 3: kernel round (supersets of Π0), also |HO| > 2n/3.
        t.push_round(vec![set(&[0, 1, 2, 3]), pi0, pi0, pi0]);
        t
    }

    #[test]
    fn majority_each_round() {
        let mut t = Trace::new(3);
        t.push_round(vec![set(&[0, 1]), set(&[1, 2]), set(&[0, 2])]);
        assert!(MajorityEachRound.holds(&t));
        t.push_round(vec![set(&[0]), set(&[1, 2]), set(&[0, 2])]);
        assert!(!MajorityEachRound.holds(&t));
    }

    #[test]
    fn non_empty_kernel() {
        let mut t = Trace::new(3);
        t.push_round(vec![set(&[0, 1]), set(&[1, 2]), set(&[1])]);
        assert!(NonEmptyKernel.holds(&t)); // kernel = {1}
        t.push_round(vec![set(&[0]), set(&[1]), set(&[2])]);
        assert!(!NonEmptyKernel.holds(&t));
    }

    #[test]
    fn space_uniform_window() {
        let t = uniform_then_kernel_trace();
        let pi0 = set(&[0, 1, 2]);
        assert!(SpaceUniform::new(pi0, Round(2), Round(2)).holds(&t));
        assert!(!SpaceUniform::new(pi0, Round(1), Round(2)).holds(&t));
        // Round 3 is a kernel round but NOT space uniform (p0 hears of p3).
        assert!(!SpaceUniform::new(pi0, Round(3), Round(3)).holds(&t));
        // Window beyond the trace is not witnessed.
        assert!(!SpaceUniform::new(pi0, Round(4), Round(4)).holds(&t));
    }

    #[test]
    fn kernel_window() {
        let t = uniform_then_kernel_trace();
        let pi0 = set(&[0, 1, 2]);
        assert!(Kernel::new(pi0, Round(2), Round(3)).holds(&t));
        assert!(!Kernel::new(pi0, Round(1), Round(3)).holds(&t));
    }

    #[test]
    fn space_uniform_implies_kernel() {
        // P_su ⇒ P_k (noted right after the definitions in §4.2).
        let t = uniform_then_kernel_trace();
        let pi0 = set(&[0, 1, 2]);
        for r in 1..=t.rounds() {
            let su = SpaceUniform::new(pi0, Round(r), Round(r)).holds(&t);
            let k = Kernel::new(pi0, Round(r), Round(r)).holds(&t);
            assert!(!su || k, "P_su must imply P_k at round {r}");
        }
    }

    #[test]
    fn p2otr_and_p11otr_witnessed() {
        let t = uniform_then_kernel_trace();
        let pi0 = set(&[0, 1, 2]);
        assert!(P2Otr::new(pi0).holds(&t));
        assert!(P11Otr::new(pi0).holds(&t));
    }

    #[test]
    fn p2otr_requires_adjacency() {
        let pi0 = set(&[0, 1, 2]);
        let mut t = Trace::new(4);
        t.push_round(vec![pi0, pi0, pi0, pi0]); // uniform
        t.push_round(vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])]); // bad
        t.push_round(vec![pi0, pi0, pi0, set(&[3])]); // kernel for Π0
        assert!(!P2Otr::new(pi0).holds(&t));
        assert!(
            P11Otr::new(pi0).holds(&t),
            "non-adjacent rounds suffice for P1/1"
        );
    }

    #[test]
    fn potr_full_requires_all_of_pi() {
        // Round 2 is uniform for all of Π and |HO| > 2n/3 later for all.
        let pi0 = set(&[0, 1, 2]);
        let t = uniform_then_kernel_trace();
        assert!(Potr.holds(&t));
        // If process 3 never gets uniform round, restricted still holds.
        let mut t2 = Trace::new(4);
        t2.push_round(vec![pi0, pi0, pi0, set(&[3])]);
        t2.push_round(vec![pi0, pi0, pi0, set(&[3])]);
        assert!(!Potr.holds(&t2), "p3's HO differs at every round");
        assert!(PotrRestricted.holds(&t2));
    }

    #[test]
    fn p2otr_implies_restricted_otr() {
        // (∃Π0, |Π0|>2n/3 : P2_otr(Π0)) ⇒ P_otr^restr.
        let t = uniform_then_kernel_trace();
        let pi0 = set(&[0, 1, 2]);
        assert!(P2Otr::new(pi0).holds(&t));
        assert!(PotrRestricted.holds(&t));
    }

    #[test]
    fn small_pi0_rejected() {
        // |Π0| = 2 is not > 2n/3 for n = 4.
        let pi0 = set(&[0, 1]);
        let mut t = Trace::new(4);
        t.push_round(vec![pi0, pi0, pi0, pi0]);
        t.push_round(vec![pi0, pi0, pi0, pi0]);
        assert!(!Potr.holds(&t));
        assert!(!PotrRestricted.holds(&t));
    }
}
