//! Existentially quantified window predicates.
//!
//! The §4.2 predicates `P_su(Π0, r1, r2)` / `P_k(Π0, r1, r2)` pin concrete
//! rounds; what the implementation layer actually *delivers* is their
//! existential closure — "some `x`-round window satisfying the property
//! exists". These predicates close the gap, making statements like
//! "`Algorithm 2 implements ∃ρ0: P_su(π0, ρ0, ρ0+1)`" expressible as
//! first-class values (they are the trace-level counterpart of the
//! measurement harness's `find_*_window` searches).

use super::witness::{find_kernel_runs, find_space_uniform_runs};
use super::Predicate;
use crate::process::ProcessSet;
use crate::trace::Trace;

/// `∃ρ0 : P_su(Π0, ρ0, ρ0+x−1)` — some `x` consecutive rounds are space
/// uniform over `scope`.
#[derive(Clone, Copy, Debug)]
pub struct SpaceUniformWindow {
    /// The subset `Π0`.
    pub scope: ProcessSet,
    /// Window width `x ≥ 1`.
    pub width: u64,
}

impl SpaceUniformWindow {
    /// `∃ρ0: P_su(scope, ρ0, ρ0+width−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(scope: ProcessSet, width: u64) -> Self {
        assert!(width >= 1, "window width must be positive");
        SpaceUniformWindow { scope, width }
    }
}

impl Predicate for SpaceUniformWindow {
    fn holds(&self, trace: &Trace) -> bool {
        find_space_uniform_runs(trace, self.scope)
            .iter()
            .any(|run| run.len() >= self.width)
    }
    fn describe(&self) -> String {
        format!("∃ρ0 : P_su({:?}, ρ0, ρ0+{}−1)", self.scope, self.width)
    }
}

/// `∃ρ0 : P_k(Π0, ρ0, ρ0+x−1)` — some `x` consecutive kernel rounds exist
/// for `scope`.
#[derive(Clone, Copy, Debug)]
pub struct KernelWindow {
    /// The subset `Π0`.
    pub scope: ProcessSet,
    /// Window width `x ≥ 1`.
    pub width: u64,
}

impl KernelWindow {
    /// `∃ρ0: P_k(scope, ρ0, ρ0+width−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(scope: ProcessSet, width: u64) -> Self {
        assert!(width >= 1, "window width must be positive");
        KernelWindow { scope, width }
    }
}

impl Predicate for KernelWindow {
    fn holds(&self, trace: &Trace) -> bool {
        find_kernel_runs(trace, self.scope)
            .iter()
            .any(|run| run.len() >= self.width)
    }
    fn describe(&self) -> String {
        format!("∃ρ0 : P_k({:?}, ρ0, ρ0+{}−1)", self.scope, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(idx: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(idx.iter().copied())
    }

    fn trace_with(rows: Vec<Vec<ProcessSet>>) -> Trace {
        let n = rows[0].len();
        let mut t = Trace::new(n);
        for row in rows {
            t.push_round(row);
        }
        t
    }

    #[test]
    fn window_found_when_wide_enough() {
        let pi0 = set(&[0, 1]);
        let junk = vec![set(&[0]), set(&[1]), set(&[2])];
        let uni = vec![pi0, pi0, set(&[2])];
        let t = trace_with(vec![junk.clone(), uni.clone(), uni, junk]);
        assert!(SpaceUniformWindow::new(pi0, 1).holds(&t));
        assert!(SpaceUniformWindow::new(pi0, 2).holds(&t));
        assert!(!SpaceUniformWindow::new(pi0, 3).holds(&t));
    }

    #[test]
    fn kernel_window_accepts_supersets() {
        let pi0 = set(&[0, 1]);
        let all = set(&[0, 1, 2]);
        let t = trace_with(vec![vec![all, pi0, set(&[2])], vec![pi0, all, pi0]]);
        assert!(KernelWindow::new(pi0, 2).holds(&t));
        assert!(!SpaceUniformWindow::new(pi0, 2).holds(&t));
    }

    #[test]
    fn uniform_window_implies_kernel_window() {
        // P_su ⇒ P_k lifts through the existential closure.
        let pi0 = set(&[0, 1, 2]);
        let t = trace_with(vec![vec![pi0, pi0, pi0], vec![pi0, pi0, pi0]]);
        for w in 1..=2 {
            if SpaceUniformWindow::new(pi0, w).holds(&t) {
                assert!(KernelWindow::new(pi0, w).holds(&t));
            }
        }
    }

    #[test]
    fn windows_must_be_consecutive() {
        let pi0 = set(&[0, 1]);
        let junk = vec![set(&[0]), set(&[1])];
        let uni = vec![pi0, pi0];
        let t = trace_with(vec![uni.clone(), junk, uni]);
        assert!(!SpaceUniformWindow::new(pi0, 2).holds(&t), "non-adjacent");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = SpaceUniformWindow::new(set(&[0]), 0);
    }
}
