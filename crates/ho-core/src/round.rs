//! Round numbers.
//!
//! The Heard-Of model is a *communication-closed* round model: a message sent
//! in round `r` is either received in round `r` or never. Rounds are numbered
//! from 1, as in the paper (`r > 0`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A round number (`r ≥ 1`; `Round(0)` is used as the "before the first
/// round" sentinel by executors).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(pub u64);

impl Round {
    /// The first round of an execution.
    pub const FIRST: Round = Round(1);

    /// Returns the next round, `r + 1`.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The raw round number.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The phase this round belongs to when rounds are grouped into phases of
    /// `per_phase` rounds (1-based), together with the 0-based offset within
    /// the phase.
    ///
    /// Used by multi-round-per-phase algorithms such as `LastVoting` and by
    /// the `P_k → P_su` translation, where a macro-round spans `f + 1` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `per_phase == 0` or `self` is the round-0 sentinel.
    #[must_use]
    pub fn phase(self, per_phase: u64) -> (u64, u64) {
        assert!(per_phase > 0, "phase length must be positive");
        assert!(self.0 > 0, "round 0 has no phase");
        ((self.0 - 1) / per_phase + 1, (self.0 - 1) % per_phase)
    }

    /// Whether this round is the last round of its phase, i.e.
    /// `r ≡ 0 (mod per_phase)` in the paper's notation.
    #[must_use]
    pub fn is_phase_end(self, per_phase: u64) -> bool {
        self.0 > 0 && self.0.is_multiple_of(per_phase)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(r: u64) -> Self {
        Round(r)
    }
}

impl Add<u64> for Round {
    type Output = Round;
    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u64> for Round {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u64;
    fn sub(self, rhs: Round) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_increments() {
        assert_eq!(Round::FIRST.next(), Round(2));
    }

    #[test]
    fn phase_grouping() {
        // Phases of 3 rounds: r1,r2,r3 -> phase 1; r4,r5,r6 -> phase 2.
        assert_eq!(Round(1).phase(3), (1, 0));
        assert_eq!(Round(3).phase(3), (1, 2));
        assert_eq!(Round(4).phase(3), (2, 0));
        assert_eq!(Round(6).phase(3), (2, 2));
    }

    #[test]
    fn phase_end_matches_mod() {
        // r ≡ 0 (mod f+1) marks the last round of a macro-round.
        let f = 2;
        assert!(!Round(1).is_phase_end(f + 1));
        assert!(!Round(2).is_phase_end(f + 1));
        assert!(Round(3).is_phase_end(f + 1));
        assert!(Round(6).is_phase_end(f + 1));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Round(5) + 2, Round(7));
        assert_eq!(Round(7) - Round(5), 2);
        let mut r = Round(1);
        r += 3;
        assert_eq!(r, Round(4));
    }
}
