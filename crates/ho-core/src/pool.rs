//! The generation-stamped payload pool.
//!
//! Broadcast payloads are reference counted: one allocation fans out to any
//! number of recipients ([`SendPlan`](crate::send_plan::SendPlan)). In the
//! round-synchronous executor, recipients release their references before
//! the next round's plans are collected, so a displaced payload is reusable
//! almost immediately. In the *system-level* simulator this is false:
//! Algorithms 2 and 3 store received payloads until the round they belong
//! to finishes, which may be many wall-clock rounds after the send — the
//! executor's "take it back if it is unique right now" trick (PR 3's
//! `ArcPool`) silently dropped every such payload and allocated fresh.
//!
//! [`PayloadPool`] generalizes that pool to payloads held *across* rounds:
//!
//! * retired handles are **retained even while recipients still share
//!   them** — the pool simply waits until the last recipient lets go;
//! * every slot carries a monotonic **generation**: rewriting a slot (only
//!   possible once its reference count proves no recipient still holds the
//!   old generation — debug-asserted) bumps the generation, and every read
//!   through a [`PooledPayload`] handle debug-asserts that the slot still
//!   carries the generation the handle was issued for. A use-after-recycle
//!   bug is therefore a loud assertion failure, not silent corruption.
//!
//! The pool is deliberately dumb about *which* slot to hand out: it scans
//! its retired list for the first uniquely owned slot. Retired lists are
//! small (bounded by how many payloads are simultaneously alive, itself
//! bounded by payload lifetime in rounds), so the scan is a few refcount
//! loads in practice.

use std::fmt;
use std::sync::Arc;

/// One pooled payload allocation: the value plus the monotonic generation
/// stamp that detects rewrites.
///
/// Slots are only ever mutated through [`PooledPayload::try_rewrite`] /
/// [`PayloadPool::take_unique`], both of which require the `Arc` to be
/// uniquely owned — so a shared slot is immutable and a handle's generation
/// check can never race.
#[derive(Debug)]
pub struct PayloadSlot<M> {
    generation: u64,
    value: M,
}

/// A reference-counted handle to a [`PayloadSlot`], stamped with the
/// generation it was issued for.
///
/// Cloning bumps the reference count (this is how a broadcast fans out to
/// `n` recipients for free); dereferencing debug-asserts the slot still
/// holds this handle's generation.
pub struct PooledPayload<M> {
    slot: Arc<PayloadSlot<M>>,
    generation: u64,
}

impl<M> PooledPayload<M> {
    /// A fresh, pool-less payload (generation 0). This is what
    /// [`SendPlan::broadcast`](crate::send_plan::SendPlan::broadcast) uses
    /// on cold paths; hot paths allocate through a [`PayloadPool`] instead.
    #[must_use]
    pub fn new(value: M) -> Self {
        PooledPayload {
            slot: Arc::new(PayloadSlot {
                generation: 0,
                value,
            }),
            generation: 0,
        }
    }

    /// The generation this handle was issued for.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether two handles share the same slot allocation.
    #[must_use]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.slot, &b.slot)
    }

    /// The slot address (for allocation-identity assertions in tests).
    #[must_use]
    pub fn as_ptr(&self) -> *const M {
        &self.slot.value
    }

    /// Whether this handle is the only reference to its slot — i.e. no
    /// recipient still holds the payload and a rewrite would succeed.
    #[must_use]
    pub fn is_unique(&mut self) -> bool {
        Arc::get_mut(&mut self.slot).is_some()
    }

    /// Rewrites the slot in place if this handle is the only reference to
    /// it, bumping the generation; returns whether the rewrite happened.
    /// The uniqueness check is exactly the proof that no recipient still
    /// holds the old generation.
    pub fn try_rewrite(&mut self, write: impl FnOnce(&mut M)) -> bool {
        match Arc::get_mut(&mut self.slot) {
            Some(slot) => {
                debug_assert_eq!(
                    slot.generation, self.generation,
                    "rewriting through a stale handle"
                );
                slot.generation += 1;
                write(&mut slot.value);
                self.generation = slot.generation;
                true
            }
            None => false,
        }
    }
}

impl<M> std::ops::Deref for PooledPayload<M> {
    type Target = M;

    fn deref(&self) -> &M {
        debug_assert_eq!(
            self.slot.generation, self.generation,
            "pooled payload was rewritten while this handle was live"
        );
        &self.slot.value
    }
}

impl<M> Clone for PooledPayload<M> {
    fn clone(&self) -> Self {
        PooledPayload {
            slot: Arc::clone(&self.slot),
            generation: self.generation,
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for PooledPayload<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Handles compare by payload value (the generation is an implementation
/// detail of the pooling, not of the message).
impl<M: PartialEq> PartialEq for PooledPayload<M> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<M: Eq> Eq for PooledPayload<M> {}

/// How many retired handles a [`PayloadPool`] retains by default. Demand is
/// bounded by how many payloads are simultaneously alive — the payload
/// lifetime in rounds for the simulator's programs, one rotation for the
/// executor's shape-alternating coordinators.
const DEFAULT_RETAINED: usize = 32;

/// A pool of retired payload slots, reused once their recipients let go.
///
/// Unlike PR 3's `ArcPool` (which dropped any retired payload that was
/// still shared when probed), retiring a still-shared handle *parks* it:
/// the pool holds its own reference and [`PayloadPool::take_unique`] skips
/// it until the recipients' references drain away. That is what makes the
/// pool work for the simulator, where Algorithms 2 and 3 hold received
/// payloads across rounds.
#[derive(Debug)]
pub struct PayloadPool<M> {
    retired: Vec<PooledPayload<M>>,
    capacity: usize,
}

// Cloning a pool shares its parked slots: both pools see them reusable
// only once every handle — including the sibling pool's — lets go. Only
// relevant for cloning whole step machines that embed a pool.
impl<M> Clone for PayloadPool<M> {
    fn clone(&self) -> Self {
        PayloadPool {
            retired: self.retired.clone(),
            capacity: self.capacity,
        }
    }
}

impl<M> Default for PayloadPool<M> {
    fn default() -> Self {
        PayloadPool {
            retired: Vec::new(),
            capacity: DEFAULT_RETAINED,
        }
    }
}

impl<M> PayloadPool<M> {
    /// An empty pool with the default retention capacity.
    #[must_use]
    pub fn new() -> Self {
        PayloadPool::default()
    }

    /// An empty pool retaining at most `capacity` retired handles.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        PayloadPool {
            retired: Vec::new(),
            capacity,
        }
    }

    /// Number of retired handles currently parked in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.retired.len()
    }

    /// Whether the pool holds no retired handles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.retired.is_empty()
    }

    /// Parks a displaced handle for later reuse. Shared handles are kept —
    /// they become reusable when their recipients drop their references. A
    /// full pool drops the incoming handle (the slot then dies with its
    /// last recipient).
    pub fn retire(&mut self, handle: PooledPayload<M>) {
        if self.retired.len() < self.capacity {
            self.retired.push(handle);
        }
    }

    /// Takes a uniquely owned slot out of the pool, rewrites it in place
    /// (bumping its generation), and returns a handle for the new
    /// generation. Returns `None` — without allocating or dropping
    /// anything — when every parked slot is still shared.
    pub fn take_rewrite(&mut self, write: impl FnOnce(&mut M)) -> Option<PooledPayload<M>> {
        let idx = self
            .retired
            .iter_mut()
            .position(|h| Arc::get_mut(&mut h.slot).is_some())?;
        let mut handle = self.retired.swap_remove(idx);
        let rewritten = handle.try_rewrite(write);
        debug_assert!(rewritten, "slot was unique at the position probe");
        Some(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handle_reads_back() {
        let h = PooledPayload::new(41u64);
        assert_eq!(*h, 41);
        assert_eq!(h.generation(), 0);
    }

    #[test]
    fn clone_shares_the_slot() {
        let a = PooledPayload::new(vec![1u8, 2, 3]);
        let b = a.clone();
        assert!(PooledPayload::ptr_eq(&a, &b));
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn rewrite_requires_uniqueness_and_bumps_generation() {
        let mut a = PooledPayload::new(1u64);
        let b = a.clone();
        assert!(!a.try_rewrite(|_| unreachable!("b still holds the slot")));
        drop(b);
        assert!(a.try_rewrite(|v| *v = 2));
        assert_eq!(*a, 2);
        assert_eq!(a.generation(), 1);
    }

    #[test]
    fn pool_parks_shared_handles_until_they_drain() {
        let mut pool = PayloadPool::new();
        let a = PooledPayload::new(10u64);
        let held = a.clone();
        pool.retire(a);
        assert_eq!(pool.len(), 1);
        // Still shared: nothing reusable, and the handle is NOT dropped.
        assert!(pool.take_rewrite(|_| ()).is_none());
        assert_eq!(pool.len(), 1, "shared handles are parked, not dropped");
        // The recipient lets go: the slot comes back with a new generation.
        drop(held);
        let b = pool.take_rewrite(|v| *v = 20).expect("slot drained");
        assert_eq!(*b, 20);
        assert_eq!(b.generation(), 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_reuses_the_same_allocation() {
        let mut pool = PayloadPool::new();
        let a = PooledPayload::new(1u64);
        let ptr = a.as_ptr();
        pool.retire(a);
        let b = pool.take_rewrite(|v| *v = 2).unwrap();
        assert_eq!(b.as_ptr(), ptr, "no new allocation");
    }

    #[test]
    fn full_pool_drops_the_incoming_handle() {
        let mut pool = PayloadPool::with_capacity(1);
        pool.retire(PooledPayload::new(1u64));
        pool.retire(PooledPayload::new(2u64));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rewritten while this handle was live")]
    fn stale_handle_read_is_caught() {
        // Forge the failure mode the generation stamp exists to catch: a
        // handle whose slot was rewritten behind its back. (Normal pool use
        // cannot get here — rewrites require uniqueness.)
        let mut a = PooledPayload::new(1u64);
        let stale = PooledPayload {
            slot: Arc::clone(&a.slot),
            generation: a.generation,
        };
        // Drop `stale`'s refcount contribution by leaking a raw copy of the
        // metadata instead: simulate by rewriting after manually restoring
        // uniqueness.
        let forged_gen = stale.generation;
        drop(stale);
        assert!(a.try_rewrite(|v| *v = 2));
        let stale = PooledPayload {
            slot: Arc::clone(&a.slot),
            generation: forged_gen,
        };
        let _ = *stale; // debug-asserts
    }
}
