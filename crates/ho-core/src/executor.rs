//! The round-synchronous HO machine.
//!
//! [`RoundExecutor`] runs an [`HoAlgorithm`] round by round against an
//! [`Adversary`] that chooses the heard-of sets, records the resulting
//! [`Trace`], and checks the consensus safety properties after every round.
//!
//! This is the *model-level* executor: rounds are a global synchronous loop
//! and transmission faults are exactly the adversary's choices. The
//! *system-level* execution — where rounds have to be built out of timed
//! send/receive steps in good periods — lives in the `ho-predicates` crate.

use crate::adversary::Adversary;
use crate::algorithm::HoAlgorithm;
use crate::consensus::{ConsensusChecker, ConsensusViolation};
use crate::mailbox::Mailbox;
use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;
use crate::send_plan::Outbox;
use crate::trace::Trace;

/// Message-cost accounting for a run: what the send phase actually
/// allocated, against what the pre-plan per-destination scheme would have
/// cloned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Payload allocations performed under the plan kernel: plan
    /// construction (one per broadcast, one per unicast pair) plus the
    /// per-recipient deep clones of delivered unicast messages. Broadcast
    /// deliveries share the constructed payload, which is what makes
    /// broadcast rounds `O(n)` here versus `O(n²)` under the legacy
    /// scheme; unicast rounds gain nothing from sharing and cost about
    /// the same in both schemes.
    pub payload_allocs: u64,
    /// Messages delivered into mailboxes (shared or owned).
    pub delivered: u64,
}

impl MessageStats {
    /// What the legacy per-destination `message()` scheme would have deep-
    /// cloned: one payload per delivered message — `O(n²)` per broadcast
    /// round.
    #[must_use]
    pub fn legacy_clones(&self) -> u64 {
        self.delivered
    }
}

/// Why a run stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError<V> {
    /// A consensus safety property was violated (this indicates a bug in the
    /// algorithm under test — the executor never masks it).
    Violation(ConsensusViolation<V>),
    /// The round budget was exhausted before the goal was reached.
    MaxRoundsExceeded {
        /// The budget that was exhausted.
        max_rounds: u64,
        /// How many processes had decided when we gave up.
        decided: usize,
    },
}

impl<V: std::fmt::Debug> std::fmt::Display for RunError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Violation(v) => write!(f, "{v}"),
            RunError::MaxRoundsExceeded {
                max_rounds,
                decided,
            } => write!(
                f,
                "goal not reached within {max_rounds} rounds ({decided} processes decided)"
            ),
        }
    }
}

impl<V: std::fmt::Debug> std::error::Error for RunError<V> {}

impl<V> From<ConsensusViolation<V>> for RunError<V> {
    fn from(v: ConsensusViolation<V>) -> Self {
        RunError::Violation(v)
    }
}

/// Runs an HO algorithm round by round under an adversary.
pub struct RoundExecutor<A: HoAlgorithm> {
    alg: A,
    states: Vec<A::State>,
    trace: Trace,
    checker: ConsensusChecker<A::Value>,
    round: Round,
    msg_stats: MessageStats,
}

impl<A: HoAlgorithm> RoundExecutor<A> {
    /// Creates an executor with one process per initial value.
    ///
    /// # Panics
    ///
    /// Panics if `initial_values.len() != alg.n()`.
    #[must_use]
    pub fn new(alg: A, initial_values: Vec<A::Value>) -> Self {
        assert_eq!(
            initial_values.len(),
            alg.n(),
            "need one initial value per process"
        );
        let states = initial_values
            .iter()
            .enumerate()
            .map(|(p, v)| alg.init(ProcessId::new(p), v.clone()))
            .collect();
        let n = initial_values.len();
        RoundExecutor {
            alg,
            states,
            trace: Trace::new(n),
            checker: ConsensusChecker::new(initial_values),
            round: Round(0),
            msg_stats: MessageStats::default(),
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.alg.n()
    }

    /// The algorithm under execution.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The last completed round (`Round(0)` before the first).
    #[must_use]
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// The recorded heard-of trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-process states (read-only).
    #[must_use]
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// The consensus checker (decisions observed so far).
    #[must_use]
    pub fn checker(&self) -> &ConsensusChecker<A::Value> {
        &self.checker
    }

    /// Current decisions, indexed by process.
    #[must_use]
    pub fn decisions(&self) -> Vec<Option<A::Value>> {
        self.states.iter().map(|s| self.alg.decision(s)).collect()
    }

    /// Message-cost accounting across all rounds run so far.
    #[must_use]
    pub fn message_stats(&self) -> MessageStats {
        self.msg_stats
    }

    /// Executes one round with the HO sets chosen by `adversary`.
    ///
    /// The effective `HO(p, r)` recorded in the trace is the *support of the
    /// mailbox*: the adversary authorises a transmission `q → p`, but if
    /// `S_q^r` produces no message for `p`, then `q ∉ HO(p, r)`.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError::Violation`] if the round broke a consensus
    /// safety property.
    pub fn step(&mut self, adversary: &mut impl Adversary) -> Result<Round, RunError<A::Value>> {
        let n = self.n();
        let r = self.round.next();
        let assignment = adversary.ho_sets(r, n);
        assert_eq!(assignment.len(), n, "adversary must cover all processes");

        // Sending phase: S_q^r evaluated once per process on the
        // *pre-round* states, then fanned out per the HO assignment.
        // Broadcast payloads are shared, not cloned per destination.
        let outbox = Outbox::collect(&self.alg, r, &self.states);
        self.msg_stats.payload_allocs += outbox.payload_allocs();
        let mut mailboxes: Vec<Mailbox<A::Message>> = (0..n).map(|_| Mailbox::empty()).collect();
        for (p, allowed) in assignment.iter().enumerate() {
            // Unicast deliveries deep-clone per recipient; count them so
            // payload_allocs is the kernel's true allocation cost.
            self.msg_stats.payload_allocs +=
                outbox.deliver_into(ProcessId::new(p), *allowed, &mut mailboxes[p]);
        }
        self.msg_stats.delivered += mailboxes.iter().map(|mb| mb.len() as u64).sum::<u64>();

        // Record the effective HO sets.
        let ho: Vec<ProcessSet> = mailboxes.iter().map(Mailbox::senders).collect();
        self.trace.push_round(ho);

        // Transition phase: T_p^r.
        for (p, mailbox) in mailboxes.iter().enumerate() {
            let pid = ProcessId::new(p);
            self.alg.transition(r, pid, &mut self.states[p], mailbox);
            let decision = self.alg.decision(&self.states[p]);
            self.checker.observe(pid, r, decision.as_ref())?;
        }

        self.round = r;
        Ok(r)
    }

    /// Runs exactly `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Propagates safety violations.
    pub fn run(
        &mut self,
        adversary: &mut impl Adversary,
        rounds: u64,
    ) -> Result<(), RunError<A::Value>> {
        for _ in 0..rounds {
            self.step(adversary)?;
        }
        Ok(())
    }

    /// Runs until every process in `scope` has decided, or the budget runs
    /// out. Returns the round by which all of `scope` had decided.
    ///
    /// # Errors
    ///
    /// [`RunError::MaxRoundsExceeded`] if termination is not reached within
    /// `max_rounds`; [`RunError::Violation`] on safety violations.
    pub fn run_until_decided_in(
        &mut self,
        scope: ProcessSet,
        adversary: &mut impl Adversary,
        max_rounds: u64,
    ) -> Result<Round, RunError<A::Value>> {
        while !self.checker.terminated(scope) {
            if self.round.get() >= max_rounds {
                return Err(RunError::MaxRoundsExceeded {
                    max_rounds,
                    decided: self.checker.decided().len(),
                });
            }
            self.step(adversary)?;
        }
        Ok(self
            .checker
            .last_decision_round(scope)
            .expect("scope terminated"))
    }

    /// Runs until *all* processes decide ([`RoundExecutor::run_until_decided_in`] with
    /// `scope = Π`).
    ///
    /// # Errors
    ///
    /// See [`RoundExecutor::run_until_decided_in`].
    pub fn run_until_all_decided(
        &mut self,
        adversary: &mut impl Adversary,
        max_rounds: u64,
    ) -> Result<Round, RunError<A::Value>> {
        self.run_until_decided_in(ProcessSet::full(self.n()), adversary, max_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FullDelivery, Scripted};

    /// Decide your own value after `k` rounds — enough to exercise the
    /// executor plumbing without algorithmic complexity.
    struct DecideOwnAfter {
        n: usize,
        k: u64,
    }

    #[derive(Clone, Debug)]
    struct St {
        v: u64,
        rounds: u64,
        heard_total: usize,
    }

    impl HoAlgorithm for DecideOwnAfter {
        type State = St;
        type Message = u64;
        type Value = u64;

        fn n(&self) -> usize {
            self.n
        }
        fn init(&self, _p: ProcessId, v: u64) -> St {
            St {
                v,
                rounds: 0,
                heard_total: 0,
            }
        }
        fn send(&self, _r: Round, _p: ProcessId, s: &St) -> crate::send_plan::SendPlan<u64> {
            crate::send_plan::SendPlan::broadcast(s.v)
        }
        fn transition(&self, _r: Round, _p: ProcessId, s: &mut St, mb: &Mailbox<u64>) {
            s.rounds += 1;
            s.heard_total += mb.len();
        }
        fn decision(&self, s: &St) -> Option<u64> {
            // All processes share initial value in these tests, so this is
            // agreement-safe.
            (s.rounds >= self.k).then_some(s.v)
        }
    }

    #[test]
    fn runs_and_records_trace() {
        let alg = DecideOwnAfter { n: 3, k: 2 };
        let mut exec = RoundExecutor::new(alg, vec![7, 7, 7]);
        let r = exec
            .run_until_all_decided(&mut FullDelivery, 10)
            .expect("decides");
        assert_eq!(r, Round(2));
        assert_eq!(exec.trace().rounds(), 2);
        assert_eq!(exec.decisions(), vec![Some(7), Some(7), Some(7)]);
    }

    #[test]
    fn max_rounds_enforced() {
        let alg = DecideOwnAfter { n: 2, k: 100 };
        let mut exec = RoundExecutor::new(alg, vec![1, 1]);
        let err = exec
            .run_until_all_decided(&mut FullDelivery, 5)
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::MaxRoundsExceeded { max_rounds: 5, .. }
        ));
    }

    #[test]
    fn trace_reflects_adversary() {
        let alg = DecideOwnAfter { n: 2, k: 10 };
        let mut exec = RoundExecutor::new(alg, vec![1, 1]);
        let script = vec![vec![
            ProcessSet::from_indices([0]),
            ProcessSet::from_indices([0, 1]),
        ]];
        let mut adv = Scripted::new(script);
        exec.step(&mut adv).unwrap();
        assert_eq!(
            exec.trace().ho(ProcessId::new(0), Round(1)),
            ProcessSet::from_indices([0])
        );
        assert_eq!(
            exec.trace().ho(ProcessId::new(1), Round(1)),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn ho_is_mailbox_support_not_adversary_grant() {
        /// Sends only to destination 0.
        struct OnlyToZero;
        impl HoAlgorithm for OnlyToZero {
            type State = u64;
            type Message = u64;
            type Value = u64;
            fn n(&self) -> usize {
                2
            }
            fn init(&self, _p: ProcessId, v: u64) -> u64 {
                v
            }
            fn send(&self, _r: Round, _p: ProcessId, s: &u64) -> crate::send_plan::SendPlan<u64> {
                crate::send_plan::SendPlan::to(ProcessId::new(0), *s)
            }
            fn transition(&self, _r: Round, _p: ProcessId, _s: &mut u64, _mb: &Mailbox<u64>) {}
            fn decision(&self, _s: &u64) -> Option<u64> {
                None
            }
        }
        let mut exec = RoundExecutor::new(OnlyToZero, vec![1, 2]);
        exec.step(&mut FullDelivery).unwrap();
        // p1 received nothing even though the adversary allowed everything.
        assert_eq!(
            exec.trace().ho(ProcessId::new(1), Round(1)),
            ProcessSet::empty()
        );
        assert_eq!(
            exec.trace().ho(ProcessId::new(0), Round(1)),
            ProcessSet::full(2)
        );
    }

    #[test]
    fn broadcast_rounds_allocate_o_n_payloads() {
        let alg = DecideOwnAfter { n: 4, k: 100 };
        let mut exec = RoundExecutor::new(alg, vec![1; 4]);
        exec.run(&mut FullDelivery, 10).unwrap();
        let stats = exec.message_stats();
        // One payload per broadcaster per round — O(n), not O(n²).
        assert_eq!(stats.payload_allocs, 4 * 10);
        // All n² transmissions are still delivered…
        assert_eq!(stats.delivered, 16 * 10);
        // …which is exactly what the per-destination scheme would clone.
        assert_eq!(stats.legacy_clones(), 160);
    }

    #[test]
    fn state_access() {
        let alg = DecideOwnAfter { n: 2, k: 1 };
        let mut exec = RoundExecutor::new(alg, vec![3, 3]);
        exec.run(&mut FullDelivery, 1).unwrap();
        assert_eq!(exec.states()[0].heard_total, 2);
        assert_eq!(exec.current_round(), Round(1));
        assert_eq!(exec.n(), 2);
    }
}
