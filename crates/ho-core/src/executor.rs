//! The round-synchronous HO machine.
//!
//! [`RoundExecutor`] runs an [`HoAlgorithm`] round by round against an
//! [`Adversary`] that chooses the heard-of sets, records the resulting
//! [`Trace`], and checks the consensus safety properties after every round.
//!
//! This is the *model-level* executor: rounds are a global synchronous loop
//! and transmission faults are exactly the adversary's choices. The
//! *system-level* execution — where rounds have to be built out of timed
//! send/receive steps in good periods — lives in the `ho-predicates` crate.
//!
//! ## The allocation-free round loop
//!
//! Every per-round buffer is persistent: the mailboxes [`Mailbox::clear`]
//! (retaining capacity) instead of being re-created, the [`Outbox`]
//! recollects plans in place (recycling broadcast payload `Arc`s once their
//! recipients have dropped them), the adversary writes into a reused
//! scratch slice, and the trace row is copied out of a reused buffer — or,
//! under [`TraceMode::Off`], never materialised at all. In steady state a
//! broadcast round performs **zero** heap allocations
//! (see `tests/alloc_steady_state.rs`).

use crate::adversary::Adversary;
use crate::algorithm::HoAlgorithm;
use crate::consensus::{ConsensusChecker, ConsensusViolation};
use crate::mailbox::Mailbox;
use crate::observer::{NullObserver, RoundObserver};
use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;
use crate::send_plan::Outbox;
use crate::telemetry::{Event, EventKind, Phase, Telemetry};
use crate::trace::{Trace, TraceMode};

/// Message-cost accounting for a run: what the send phase actually
/// allocated, against what the pre-plan per-destination scheme would have
/// cloned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Payload constructions performed under the plan kernel: plan
    /// construction (one per broadcast, one per unicast pair) plus the
    /// per-recipient deep clones of delivered unicast messages. Broadcast
    /// deliveries share the constructed payload, which is what makes
    /// broadcast rounds `O(n)` here versus `O(n²)` under the legacy
    /// scheme; unicast rounds gain nothing from sharing and cost about
    /// the same in both schemes.
    pub payload_allocs: u64,
    /// How many of those constructions were written into recycled payload
    /// buffers and therefore touched the allocator *zero* times
    /// (see [`PlanSlot`](crate::send_plan::PlanSlot)). Fresh heap
    /// allocations are `payload_allocs − payload_reuses`.
    pub payload_reuses: u64,
    /// Messages delivered into mailboxes (shared or owned).
    pub delivered: u64,
}

/// The type-independent round buffers of a [`RoundExecutor`] — the
/// adversary's HO scratch slice and the trace-row scratch. Recovered with
/// [`RoundExecutor::into_scratch`] and passed to the next executor via
/// [`RoundExecutor::with_scratch`], so a sweep worker reuses them across
/// scenarios (the message-typed buffers — mailboxes, outbox — cannot cross
/// algorithm types and stay internal).
#[derive(Debug, Default)]
pub struct RoundScratch {
    ho: Vec<ProcessSet>,
    row: Vec<ProcessSet>,
}

impl MessageStats {
    /// What the legacy per-destination `message()` scheme would have deep-
    /// cloned: one payload per delivered message — `O(n²)` per broadcast
    /// round.
    #[must_use]
    pub fn legacy_clones(&self) -> u64 {
        self.delivered
    }

    /// Payload constructions that actually hit the allocator:
    /// `payload_allocs − payload_reuses`.
    #[must_use]
    pub fn fresh_allocs(&self) -> u64 {
        self.payload_allocs - self.payload_reuses
    }

    /// Folds another accounting into this one. Both execution machines —
    /// the round-synchronous executor and the system-level simulator —
    /// report this struct, so reports aggregate the two layers uniformly.
    pub fn merge(&mut self, other: &MessageStats) {
        self.payload_allocs += other.payload_allocs;
        self.payload_reuses += other.payload_reuses;
        self.delivered += other.delivered;
    }
}

/// Why a run stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError<V> {
    /// A consensus safety property was violated (this indicates a bug in the
    /// algorithm under test — the executor never masks it).
    Violation(ConsensusViolation<V>),
    /// The round budget was exhausted before the goal was reached.
    MaxRoundsExceeded {
        /// The budget that was exhausted.
        max_rounds: u64,
        /// How many processes had decided when we gave up.
        decided: usize,
    },
}

impl<V: std::fmt::Debug> std::fmt::Display for RunError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Violation(v) => write!(f, "{v}"),
            RunError::MaxRoundsExceeded {
                max_rounds,
                decided,
            } => write!(
                f,
                "goal not reached within {max_rounds} rounds ({decided} processes decided)"
            ),
        }
    }
}

impl<V: std::fmt::Debug> std::error::Error for RunError<V> {}

impl<V> From<ConsensusViolation<V>> for RunError<V> {
    fn from(v: ConsensusViolation<V>) -> Self {
        RunError::Violation(v)
    }
}

/// Runs an HO algorithm round by round under an adversary.
pub struct RoundExecutor<A: HoAlgorithm> {
    alg: A,
    states: Vec<A::State>,
    trace: Trace,
    checker: ConsensusChecker<A::Value>,
    round: Round,
    msg_stats: MessageStats,
    // Persistent round buffers — cleared and refilled every round, never
    // re-created (see the module docs).
    mailboxes: Vec<Mailbox<A::Message>>,
    outbox: Outbox<A::Message>,
    scratch: RoundScratch,
    // The flight recorder + metrics registry. Off by default: a null
    // check per record site, zero cost when inactive (the same contract
    // as RoundObserver). See `crate::telemetry`.
    telemetry: Telemetry,
}

impl<A: HoAlgorithm> RoundExecutor<A> {
    /// Creates an executor with one process per initial value, recording
    /// the full trace.
    ///
    /// # Panics
    ///
    /// Panics if `initial_values.len() != alg.n()`.
    #[must_use]
    pub fn new(alg: A, initial_values: Vec<A::Value>) -> Self {
        Self::with_trace_mode(alg, initial_values, TraceMode::Full)
    }

    /// Creates an executor with the given trace retention mode.
    /// [`TraceMode::Off`] is the sweep configuration: HO statistics stay
    /// exact but no row is ever materialised, and the per-round support
    /// sets are never even computed.
    ///
    /// # Panics
    ///
    /// Panics if `initial_values.len() != alg.n()`.
    #[must_use]
    pub fn with_trace_mode(alg: A, initial_values: Vec<A::Value>, mode: TraceMode) -> Self {
        Self::with_scratch(alg, initial_values, mode, RoundScratch::default())
    }

    /// Like [`RoundExecutor::with_trace_mode`], seeded with round buffers
    /// recovered from a previous executor ([`RoundExecutor::into_scratch`])
    /// so back-to-back scenarios skip the warm-up allocations.
    ///
    /// # Panics
    ///
    /// Panics if `initial_values.len() != alg.n()`.
    #[must_use]
    pub fn with_scratch(
        alg: A,
        initial_values: Vec<A::Value>,
        mode: TraceMode,
        mut scratch: RoundScratch,
    ) -> Self {
        assert_eq!(
            initial_values.len(),
            alg.n(),
            "need one initial value per process"
        );
        let states: Vec<A::State> = initial_values
            .iter()
            .enumerate()
            .map(|(p, v)| alg.init(ProcessId::new(p), v.clone()))
            .collect();
        let n = initial_values.len();
        scratch.ho.clear();
        scratch.ho.resize(n, ProcessSet::empty());
        scratch.row.clear();
        RoundExecutor {
            alg,
            states,
            trace: Trace::with_mode(n, mode),
            checker: ConsensusChecker::new(initial_values),
            round: Round(0),
            msg_stats: MessageStats::default(),
            mailboxes: (0..n).map(|_| Mailbox::with_capacity(n)).collect(),
            outbox: Outbox::default(),
            scratch,
            telemetry: Telemetry::off(),
        }
    }

    /// Installs a [`Telemetry`] handle (flight recorder + metrics). Pass
    /// [`Telemetry::off`] to disable; an off handle keeps the round loop
    /// bit-identical and effectively free of telemetry cost.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The executor's telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The executor's telemetry handle, mutably — how embedding layers
    /// (the log driver, the harness) record their own events into the
    /// same ring.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Removes and returns the telemetry handle (for scratch reuse by
    /// the next scenario), leaving the executor off.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.telemetry)
    }

    /// Recovers the type-independent round buffers for reuse by the next
    /// scenario's executor.
    #[must_use]
    pub fn into_scratch(self) -> RoundScratch {
        self.scratch
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.alg.n()
    }

    /// The algorithm under execution.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The last completed round (`Round(0)` before the first).
    #[must_use]
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// The recorded heard-of trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-process states (read-only).
    #[must_use]
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// The consensus checker (decisions observed so far).
    #[must_use]
    pub fn checker(&self) -> &ConsensusChecker<A::Value> {
        &self.checker
    }

    /// Current decisions, indexed by process.
    #[must_use]
    pub fn decisions(&self) -> Vec<Option<A::Value>> {
        self.states.iter().map(|s| self.alg.decision(s)).collect()
    }

    /// Message-cost accounting across all rounds run so far.
    #[must_use]
    pub fn message_stats(&self) -> MessageStats {
        self.msg_stats
    }

    /// Executes one round with the HO sets chosen by `adversary`.
    ///
    /// The effective `HO(p, r)` recorded in the trace is the *support of the
    /// mailbox*: the adversary authorises a transmission `q → p`, but if
    /// `S_q^r` produces no message for `p`, then `q ∉ HO(p, r)`.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError::Violation`] if the round broke a consensus
    /// safety property.
    pub fn step(&mut self, adversary: &mut impl Adversary) -> Result<Round, RunError<A::Value>> {
        self.step_observed(adversary, &mut NullObserver)
    }

    /// [`RoundExecutor::step`] with a streaming [`RoundObserver`]: the
    /// observer receives the round's effective HO sets right after
    /// delivery, *whatever the trace retention mode* — this is how
    /// predicate monitors run under [`TraceMode::Off`] without a retained
    /// trace. While the observer is [`active`](RoundObserver::active) the
    /// HO row is built into the executor's reused scratch buffer, so an
    /// allocation-free observer keeps the whole round loop allocation-free.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError::Violation`] if the round broke a consensus
    /// safety property.
    pub fn step_observed(
        &mut self,
        adversary: &mut impl Adversary,
        observer: &mut impl RoundObserver,
    ) -> Result<Round, RunError<A::Value>> {
        let r = self.round.next();
        let tel_on = self.telemetry.is_on();
        if tel_on {
            self.telemetry
                .record(r.get(), r.get() as f64, Event::ALL, EventKind::RoundStart);
        }
        // Phase spans are sampled (see `telemetry::SPAN_SAMPLE_PERIOD`):
        // rounds run in fractions of a microsecond, so timing every one
        // would make the clock reads the dominant telemetry cost.
        let timed = self.telemetry.spans_this_round(r.get());
        let mut span = if timed { self.telemetry.clock() } else { 0 };
        // The adversary writes into the executor's scratch slice; the
        // universe size is the slice length, so coverage is structural.
        adversary.fill_ho_sets(r, &mut self.scratch.ho);
        if timed {
            span = self.telemetry.span(Phase::HoFill, span);
        }

        // Clear last round's mailboxes *before* recollecting plans: this
        // drops the recipients' shared payload references, making the
        // broadcast `Arc`s uniquely owned and therefore reusable.
        for mb in &mut self.mailboxes {
            mb.clear();
        }

        // Sending phase: S_q^r evaluated once per process on the
        // *pre-round* states, then fanned out per the HO assignment.
        // Broadcast payloads are shared, not cloned per destination.
        self.msg_stats.payload_reuses += self.outbox.recollect(&self.alg, r, &self.states);
        self.msg_stats.payload_allocs += self.outbox.payload_allocs();
        if timed {
            span = self.telemetry.span(Phase::Send, span);
        }
        for (p, mb) in self.mailboxes.iter_mut().enumerate() {
            // Unicast deliveries deep-clone per recipient; count them so
            // payload_allocs is the kernel's true construction cost, and
            // count the clones served from the mailbox's retired payloads
            // as reuses.
            let delivery = self
                .outbox
                .deliver_into(ProcessId::new(p), self.scratch.ho[p], mb);
            self.msg_stats.payload_allocs += delivery.clones;
            self.msg_stats.payload_reuses += delivery.recycled;
        }
        self.msg_stats.delivered += self.mailboxes.iter().map(|mb| mb.len() as u64).sum::<u64>();
        if timed {
            span = self.telemetry.span(Phase::Deliver, span);
        }

        // Record the effective HO sets — but compute the support sets only
        // when the trace's retention mode stores rows or an observer is
        // listening; otherwise the statistics need just the mailbox sizes.
        if self.trace.wants_rows() || observer.active() {
            self.scratch.row.clear();
            self.scratch
                .row
                .extend(self.mailboxes.iter().map(Mailbox::senders));
            // Under TraceMode::Off this records statistics only.
            self.trace.record_round(&self.scratch.row);
            if observer.active() {
                observer.observe_round(r, &self.scratch.row);
            }
        } else {
            self.trace
                .note_round(self.mailboxes.iter().map(Mailbox::len));
        }
        if timed {
            span = self.telemetry.span(Phase::Monitor, span);
        }

        // Transition phase: T_p^r.
        for (p, mailbox) in self.mailboxes.iter().enumerate() {
            let pid = ProcessId::new(p);
            // With telemetry on, note first decisions (the extra
            // `decision` read is gated so the off path is unchanged).
            let was_decided = tel_on && self.alg.decision(&self.states[p]).is_some();
            self.alg.transition(r, pid, &mut self.states[p], mailbox);
            let decision = self.alg.decision(&self.states[p]);
            if tel_on && !was_decided && decision.is_some() {
                self.telemetry
                    .record(r.get(), r.get() as f64, p as u32, EventKind::Decide);
            }
            if let Err(violation) = self.checker.observe(pid, r, decision.as_ref()) {
                self.telemetry.record(
                    r.get(),
                    r.get() as f64,
                    p as u32,
                    EventKind::ViolationFlagged,
                );
                return Err(violation.into());
            }
        }
        if timed {
            self.telemetry.span(Phase::Oracle, span);
        }

        self.round = r;
        Ok(r)
    }

    /// Runs exactly `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Propagates safety violations.
    pub fn run(
        &mut self,
        adversary: &mut impl Adversary,
        rounds: u64,
    ) -> Result<(), RunError<A::Value>> {
        self.run_observed(adversary, rounds, &mut NullObserver)
    }

    /// Runs exactly `rounds` rounds with a streaming [`RoundObserver`]
    /// (see [`RoundExecutor::step_observed`]).
    ///
    /// # Errors
    ///
    /// Propagates safety violations.
    pub fn run_observed(
        &mut self,
        adversary: &mut impl Adversary,
        rounds: u64,
        observer: &mut impl RoundObserver,
    ) -> Result<(), RunError<A::Value>> {
        for _ in 0..rounds {
            self.step_observed(adversary, observer)?;
        }
        Ok(())
    }

    /// Runs until every process in `scope` has decided, or the budget runs
    /// out. Returns the round by which all of `scope` had decided.
    ///
    /// # Errors
    ///
    /// [`RunError::MaxRoundsExceeded`] if termination is not reached within
    /// `max_rounds`; [`RunError::Violation`] on safety violations.
    pub fn run_until_decided_in(
        &mut self,
        scope: ProcessSet,
        adversary: &mut impl Adversary,
        max_rounds: u64,
    ) -> Result<Round, RunError<A::Value>> {
        self.run_until_decided_in_observed(scope, adversary, max_rounds, &mut NullObserver)
    }

    /// [`RoundExecutor::run_until_decided_in`] with a streaming
    /// [`RoundObserver`] (see [`RoundExecutor::step_observed`]).
    ///
    /// # Errors
    ///
    /// See [`RoundExecutor::run_until_decided_in`].
    pub fn run_until_decided_in_observed(
        &mut self,
        scope: ProcessSet,
        adversary: &mut impl Adversary,
        max_rounds: u64,
        observer: &mut impl RoundObserver,
    ) -> Result<Round, RunError<A::Value>> {
        while !self.checker.terminated(scope) {
            if self.round.get() >= max_rounds {
                return Err(RunError::MaxRoundsExceeded {
                    max_rounds,
                    decided: self.checker.decided().len(),
                });
            }
            self.step_observed(adversary, observer)?;
        }
        Ok(self
            .checker
            .last_decision_round(scope)
            .expect("scope terminated"))
    }

    /// Runs until *all* processes decide ([`RoundExecutor::run_until_decided_in`] with
    /// `scope = Π`).
    ///
    /// # Errors
    ///
    /// See [`RoundExecutor::run_until_decided_in`].
    pub fn run_until_all_decided(
        &mut self,
        adversary: &mut impl Adversary,
        max_rounds: u64,
    ) -> Result<Round, RunError<A::Value>> {
        self.run_until_decided_in(ProcessSet::full(self.n()), adversary, max_rounds)
    }

    /// [`RoundExecutor::run_until_all_decided`] with a streaming
    /// [`RoundObserver`] (see [`RoundExecutor::step_observed`]).
    ///
    /// # Errors
    ///
    /// See [`RoundExecutor::run_until_decided_in`].
    pub fn run_until_all_decided_observed(
        &mut self,
        adversary: &mut impl Adversary,
        max_rounds: u64,
        observer: &mut impl RoundObserver,
    ) -> Result<Round, RunError<A::Value>> {
        self.run_until_decided_in_observed(
            ProcessSet::full(self.n()),
            adversary,
            max_rounds,
            observer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FullDelivery, Scripted};

    /// Decide your own value after `k` rounds — enough to exercise the
    /// executor plumbing without algorithmic complexity.
    struct DecideOwnAfter {
        n: usize,
        k: u64,
    }

    #[derive(Clone, Debug)]
    struct St {
        v: u64,
        rounds: u64,
        heard_total: usize,
    }

    impl HoAlgorithm for DecideOwnAfter {
        type State = St;
        type Message = u64;
        type Value = u64;

        fn n(&self) -> usize {
            self.n
        }
        fn init(&self, _p: ProcessId, v: u64) -> St {
            St {
                v,
                rounds: 0,
                heard_total: 0,
            }
        }
        fn send(&self, _r: Round, _p: ProcessId, s: &St) -> crate::send_plan::SendPlan<u64> {
            crate::send_plan::SendPlan::broadcast(s.v)
        }
        fn transition(&self, _r: Round, _p: ProcessId, s: &mut St, mb: &Mailbox<u64>) {
            s.rounds += 1;
            s.heard_total += mb.len();
        }
        fn decision(&self, s: &St) -> Option<u64> {
            // All processes share initial value in these tests, so this is
            // agreement-safe.
            (s.rounds >= self.k).then_some(s.v)
        }
    }

    #[test]
    fn runs_and_records_trace() {
        let alg = DecideOwnAfter { n: 3, k: 2 };
        let mut exec = RoundExecutor::new(alg, vec![7, 7, 7]);
        let r = exec
            .run_until_all_decided(&mut FullDelivery, 10)
            .expect("decides");
        assert_eq!(r, Round(2));
        assert_eq!(exec.trace().rounds(), 2);
        assert_eq!(exec.decisions(), vec![Some(7), Some(7), Some(7)]);
    }

    #[test]
    fn max_rounds_enforced() {
        let alg = DecideOwnAfter { n: 2, k: 100 };
        let mut exec = RoundExecutor::new(alg, vec![1, 1]);
        let err = exec
            .run_until_all_decided(&mut FullDelivery, 5)
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::MaxRoundsExceeded { max_rounds: 5, .. }
        ));
    }

    #[test]
    fn trace_reflects_adversary() {
        let alg = DecideOwnAfter { n: 2, k: 10 };
        let mut exec = RoundExecutor::new(alg, vec![1, 1]);
        let script = vec![vec![
            ProcessSet::from_indices([0]),
            ProcessSet::from_indices([0, 1]),
        ]];
        let mut adv = Scripted::new(script);
        exec.step(&mut adv).unwrap();
        assert_eq!(
            exec.trace().ho(ProcessId::new(0), Round(1)),
            ProcessSet::from_indices([0])
        );
        assert_eq!(
            exec.trace().ho(ProcessId::new(1), Round(1)),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn ho_is_mailbox_support_not_adversary_grant() {
        /// Sends only to destination 0.
        struct OnlyToZero;
        impl HoAlgorithm for OnlyToZero {
            type State = u64;
            type Message = u64;
            type Value = u64;
            fn n(&self) -> usize {
                2
            }
            fn init(&self, _p: ProcessId, v: u64) -> u64 {
                v
            }
            fn send(&self, _r: Round, _p: ProcessId, s: &u64) -> crate::send_plan::SendPlan<u64> {
                crate::send_plan::SendPlan::to(ProcessId::new(0), *s)
            }
            fn transition(&self, _r: Round, _p: ProcessId, _s: &mut u64, _mb: &Mailbox<u64>) {}
            fn decision(&self, _s: &u64) -> Option<u64> {
                None
            }
        }
        let mut exec = RoundExecutor::new(OnlyToZero, vec![1, 2]);
        exec.step(&mut FullDelivery).unwrap();
        // p1 received nothing even though the adversary allowed everything.
        assert_eq!(
            exec.trace().ho(ProcessId::new(1), Round(1)),
            ProcessSet::empty()
        );
        assert_eq!(
            exec.trace().ho(ProcessId::new(0), Round(1)),
            ProcessSet::full(2)
        );
    }

    #[test]
    fn broadcast_rounds_allocate_o_n_payloads() {
        let alg = DecideOwnAfter { n: 4, k: 100 };
        let mut exec = RoundExecutor::new(alg, vec![1; 4]);
        exec.run(&mut FullDelivery, 10).unwrap();
        let stats = exec.message_stats();
        // One payload per broadcaster per round — O(n), not O(n²).
        assert_eq!(stats.payload_allocs, 4 * 10);
        // All n² transmissions are still delivered…
        assert_eq!(stats.delivered, 16 * 10);
        // …which is exactly what the per-destination scheme would clone.
        assert_eq!(stats.legacy_clones(), 160);
    }

    #[test]
    fn broadcast_payloads_are_recycled_after_the_first_round() {
        // DecideOwnAfter is a broadcast algorithm but does not override
        // send_into, so nothing is reused...
        let mut exec = RoundExecutor::new(DecideOwnAfter { n: 4, k: 100 }, vec![1; 4]);
        exec.run(&mut FullDelivery, 10).unwrap();
        assert_eq!(exec.message_stats().payload_reuses, 0);
        // ...while OneThirdRule writes through the slot: from round 2 on,
        // every broadcast payload lands in round 1's recycled Arc.
        use crate::algorithms::OneThirdRule;
        let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![1u64, 2, 3, 4]);
        exec.run(&mut FullDelivery, 10).unwrap();
        let stats = exec.message_stats();
        assert_eq!(stats.payload_allocs, 4 * 10);
        assert_eq!(stats.payload_reuses, 4 * 9, "all rounds after the first");
        assert_eq!(stats.fresh_allocs(), 4);
    }

    #[test]
    fn trace_mode_off_keeps_stats_but_no_rows() {
        use crate::trace::TraceMode;
        let alg = DecideOwnAfter { n: 3, k: 2 };
        let mut exec = RoundExecutor::with_trace_mode(alg, vec![7, 7, 7], TraceMode::Off);
        let r = exec
            .run_until_all_decided(&mut FullDelivery, 10)
            .expect("decides");
        assert_eq!(r, Round(2));
        assert_eq!(exec.trace().rounds(), 2);
        assert_eq!(exec.trace().retained_rounds(), 0);
        assert_eq!(exec.trace().transmission_faults(), 0);
        assert_eq!(exec.decisions(), vec![Some(7), Some(7), Some(7)]);
    }

    #[test]
    fn trace_mode_window_retains_the_suffix() {
        use crate::trace::TraceMode;
        let alg = DecideOwnAfter { n: 2, k: 100 };
        let mut exec = RoundExecutor::with_trace_mode(alg, vec![1, 1], TraceMode::Window(3));
        exec.run(&mut FullDelivery, 8).unwrap();
        let t = exec.trace();
        assert_eq!(t.rounds(), 8);
        assert_eq!(t.retained_rounds(), 3);
        assert_eq!(t.first_retained_round(), Round(6));
        assert_eq!(t.ho(ProcessId::new(0), Round(8)), ProcessSet::full(2));
    }

    #[test]
    fn scratch_round_trips_between_scenarios() {
        let alg = DecideOwnAfter { n: 4, k: 2 };
        let mut exec = RoundExecutor::new(alg, vec![3; 4]);
        exec.run(&mut FullDelivery, 3).unwrap();
        let scratch = exec.into_scratch();
        // A smaller follow-up scenario reuses the buffers.
        let alg = DecideOwnAfter { n: 2, k: 2 };
        let mut exec =
            RoundExecutor::with_scratch(alg, vec![5; 2], crate::trace::TraceMode::Off, scratch);
        exec.run(&mut FullDelivery, 3).unwrap();
        assert_eq!(exec.decisions(), vec![Some(5), Some(5)]);
    }

    #[test]
    fn state_access() {
        let alg = DecideOwnAfter { n: 2, k: 1 };
        let mut exec = RoundExecutor::new(alg, vec![3, 3]);
        exec.run(&mut FullDelivery, 1).unwrap();
        assert_eq!(exec.states()[0].heard_total, 2);
        assert_eq!(exec.current_round(), Round(1));
        assert_eq!(exec.n(), 2);
    }
}
