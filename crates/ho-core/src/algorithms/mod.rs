//! Consensus algorithms expressed in the HO model.
//!
//! * [`OneThirdRule`] — Algorithm 1 of the paper; solves consensus with
//!   `P_otr` (Theorem 1) and, restricted to `Π0`, with `P_otr^restr`
//!   (Theorem 2).
//! * [`UniformVoting`] — from the companion HO-model paper \[CBS06\]; safe
//!   under any HO assignment, live when every round has a non-empty kernel
//!   and some round is space-uniform.
//! * [`LastVoting`] — the Paxos-like coordinated algorithm of \[CBS06\],
//!   included because the paper repeatedly contrasts communication
//!   predicates with Paxos's implicit liveness conditions (§1, §5).
//!
//! All three satisfy consensus *safety* under **every** HO assignment — the
//! property-based tests in `tests/` hammer exactly that invariant.

mod last_voting;
mod one_third_rule;
mod uniform_voting;

pub use last_voting::{LastVoting, LastVotingMessage, LastVotingState};
pub use one_third_rule::{OneThirdRule, OtrState};
pub use uniform_voting::{UniformVoting, UvMessage, UvState};
