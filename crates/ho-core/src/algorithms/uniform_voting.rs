//! The *UniformVoting* algorithm from the companion HO-model paper \[CBS06\].
//!
//! UniformVoting is the HO rendition of a two-phase voting scheme: phases of
//! two rounds, where the first round levels estimates and casts votes and
//! the second round confirms them. Its correctness predicate is
//!
//! ```text
//! P_uv :: (∀r : K(r) ≠ ∅)  ∧  (∃φ : both rounds of phase φ are space uniform)
//! ```
//!
//! Unlike OneThirdRule, the non-empty-kernel conjunct is needed for
//! **safety**, not only liveness: with an empty kernel, two disjoint groups
//! can each see unanimous (but different) values, cast conflicting votes,
//! and decide differently — see the `agreement_needs_nonempty_kernels`
//! test. Under `P_nek` any two voters of a round share a witness, so all
//! votes of a phase agree. The non-empty-kernel class is exactly the class
//! within which \[CBS06\] identifies the weakest predicate for consensus; we
//! include the algorithm to exercise predicates other than `P_otr`.
//!
//! ```text
//! Initialization: x_p ← v_p ; vote_p ← ?
//! Round r = 2φ − 1:
//!   S: send ⟨x_p⟩ to all
//!   T: x_p ← smallest x̄ received
//!      if all values received are equal to x̄ then vote_p ← x̄
//! Round r = 2φ:
//!   S: send ⟨x_p, vote_p⟩ to all
//!   T: if some vote v ≠ ? received then x_p ← v (smallest such)
//!      if all received votes equal v ≠ ? then DECIDE(v)
//!      vote_p ← ?
//! ```

use std::marker::PhantomData;

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::process::ProcessId;
use crate::round::Round;
use crate::send_plan::SendPlan;

/// UniformVoting over `n` processes.
#[derive(Clone, Copy, Debug)]
pub struct UniformVoting<V = u64> {
    n: usize,
    _values: PhantomData<fn() -> V>,
}

impl<V> UniformVoting<V> {
    /// UniformVoting over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        UniformVoting {
            n,
            _values: PhantomData,
        }
    }
}

/// Message of a UniformVoting round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UvMessage<V> {
    /// First round of a phase: the current estimate.
    Estimate(V),
    /// Second round of a phase: estimate and optional vote.
    Vote(V, Option<V>),
}

/// Per-process state of UniformVoting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UvState<V> {
    /// Current estimate `x_p`.
    pub x: V,
    /// Current vote (`?` = `None`).
    pub vote: Option<V>,
    /// The decision, once taken.
    pub decision: Option<V>,
}

impl<V: Clone + std::fmt::Debug + Ord> HoAlgorithm for UniformVoting<V> {
    type State = UvState<V>;
    type Message = UvMessage<V>;
    type Value = V;

    fn n(&self) -> usize {
        self.n
    }

    fn init(&self, _p: ProcessId, initial_value: V) -> UvState<V> {
        UvState {
            x: initial_value,
            vote: None,
            decision: None,
        }
    }

    fn send(&self, r: Round, _p: ProcessId, state: &UvState<V>) -> SendPlan<UvMessage<V>> {
        if r.get() % 2 == 1 {
            SendPlan::broadcast(UvMessage::Estimate(state.x.clone()))
        } else {
            SendPlan::broadcast(UvMessage::Vote(state.x.clone(), state.vote.clone()))
        }
    }

    fn send_into(
        &self,
        r: Round,
        _p: ProcessId,
        state: &UvState<V>,
        slot: &mut crate::send_plan::PlanSlot<'_, UvMessage<V>>,
    ) -> u64 {
        // Same plans as `send`, written through the reusable slot.
        if r.get() % 2 == 1 {
            slot.broadcast(UvMessage::Estimate(state.x.clone()))
        } else {
            slot.broadcast(UvMessage::Vote(state.x.clone(), state.vote.clone()))
        }
    }

    fn transition(
        &self,
        r: Round,
        _p: ProcessId,
        state: &mut UvState<V>,
        mb: &Mailbox<UvMessage<V>>,
    ) {
        // Both branches fold over the mailbox directly (no scratch vector):
        // one pass finds the minimum, a second checks unanimity against it.
        fn estimate<V>(m: &UvMessage<V>) -> &V {
            match m {
                UvMessage::Estimate(v) => v,
                UvMessage::Vote(..) => unreachable!("odd rounds carry estimates"),
            }
        }
        fn vote<V>(m: &UvMessage<V>) -> Option<&V> {
            match m {
                UvMessage::Vote(_, v) => v.as_ref(),
                UvMessage::Estimate(_) => unreachable!("even rounds carry votes"),
            }
        }
        if r.get() % 2 == 1 {
            // Levelling round: adopt the smallest estimate heard; vote if
            // unanimous.
            if let Some(min) = mb.messages().map(estimate).min() {
                if mb.messages().map(estimate).all(|v| v == min) {
                    state.vote = Some(min.clone());
                }
                state.x = min.clone();
            }
        } else {
            // Confirmation round.
            let all_voted = !mb.is_empty() && mb.messages().all(|m| vote(m).is_some());
            if let Some(min_vote) = mb.messages().filter_map(vote).min() {
                if all_voted
                    && mb.messages().filter_map(vote).all(|v| v == min_vote)
                    && state.decision.is_none()
                {
                    state.decision = Some(min_vote.clone());
                }
                state.x = min_vote.clone();
            }
            state.vote = None;
        }
    }

    fn decision(&self, state: &UvState<V>) -> Option<V> {
        state.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FullDelivery, KernelOnly, Scripted};
    use crate::executor::RoundExecutor;
    use crate::process::ProcessSet;

    #[test]
    fn unanimous_inputs_decide_in_one_phase() {
        let mut exec = RoundExecutor::new(UniformVoting::new(4), vec![1u64, 1, 1, 1]);
        let r = exec.run_until_all_decided(&mut FullDelivery, 10).unwrap();
        assert_eq!(r, Round(2), "phase 1 = rounds 1 and 2");
        assert!(exec.decisions().iter().all(|d| *d == Some(1)));
    }

    #[test]
    fn mixed_inputs_decide_in_two_phases() {
        // Phase 1 levels every estimate to the minimum (no unanimous round-1
        // values → no votes); phase 2 votes unanimously and decides.
        let mut exec = RoundExecutor::new(UniformVoting::new(4), vec![3u64, 1, 4, 1]);
        let r = exec.run_until_all_decided(&mut FullDelivery, 10).unwrap();
        assert_eq!(r, Round(4), "phase 2 = rounds 3 and 4");
        assert!(exec.decisions().iter().all(|d| *d == Some(1)));
    }

    #[test]
    fn safety_under_kernel_preserving_loss() {
        // Safety requires P_nek: KernelOnly guarantees a pivot heard by
        // everyone each round while dropping aggressively otherwise.
        let mut adv = KernelOnly::new(0.9, 17);
        let mut exec = RoundExecutor::new(UniformVoting::new(5), vec![5u64, 3, 9, 0, 7]);
        exec.run(&mut adv, 300).expect("no safety violation");
    }

    #[test]
    fn agreement_needs_nonempty_kernels() {
        // The counterexample (found by the property tests) that shows why
        // P_nek is part of UniformVoting's *safety* predicate: two disjoint
        // groups see unanimous-but-different values, vote differently, and
        // decide differently.
        use crate::executor::RunError;
        let a = ProcessSet::from_indices([0, 1]);
        let b = ProcessSet::from_indices([2, 3]);
        let mut adv = Scripted::new(vec![
            vec![a, a, b, b], // round 1: empty kernel → conflicting votes
            vec![a, a, b, b], // round 2: each group confirms its own vote
        ]);
        let mut exec = RoundExecutor::new(UniformVoting::new(4), vec![1u64, 1, 2, 2]);
        let err = exec.run(&mut adv, 2).unwrap_err();
        assert!(matches!(err, RunError::Violation(_)), "got {err}");
    }

    #[test]
    fn live_under_kernel_then_uniform() {
        // Kernel-only chaos, then full delivery: decision follows.
        let mut chaos = KernelOnly::new(0.7, 23);
        let mut exec = RoundExecutor::new(UniformVoting::new(4), vec![8u64, 2, 6, 4]);
        exec.run(&mut chaos, 9).unwrap();
        let r = exec.run_until_all_decided(&mut FullDelivery, 30).unwrap();
        assert!(r <= Round(9 + 4), "two uniform phases at most");
    }

    #[test]
    fn no_decision_without_unanimous_votes() {
        // Split the first (odd) round so votes differ / are missing; the
        // even round then must not decide.
        let a = ProcessSet::from_indices([0, 1]);
        let b = ProcessSet::from_indices([2, 3]);
        let mut adv = Scripted::new(vec![
            vec![a, a, b, b], // round 1: two cliques, different minima
            vec![
                ProcessSet::full(4),
                ProcessSet::full(4),
                ProcessSet::full(4),
                ProcessSet::full(4),
            ], // round 2: votes conflict → no decision
        ]);
        let mut exec = RoundExecutor::new(UniformVoting::new(4), vec![1u64, 1, 2, 2]);
        exec.run(&mut adv, 2).unwrap();
        assert!(exec.decisions().iter().all(Option::is_none));
        // But estimates converged to the smallest vote (1) — next uniform
        // phase decides 1.
        let r = exec.run_until_all_decided(&mut FullDelivery, 10).unwrap();
        assert_eq!(r, Round(4));
        assert!(exec.decisions().iter().all(|d| *d == Some(1)));
    }

    #[test]
    fn empty_mailbox_keeps_state() {
        let alg = UniformVoting::new(3);
        let mut st = alg.init(ProcessId::new(0), 5u64);
        alg.transition(Round(1), ProcessId::new(0), &mut st, &Mailbox::empty());
        assert_eq!(st.x, 5);
        assert_eq!(st.vote, None);
        alg.transition(Round(2), ProcessId::new(0), &mut st, &Mailbox::empty());
        assert_eq!(st.decision, None);
    }
}
