//! Algorithm 1 of the paper: the *OneThirdRule* algorithm.
//!
//! ```text
//! Initialization: x_p ← v_p
//! Round r:
//!   S_p^r: send ⟨x_p⟩ to all processes
//!   T_p^r: if |HO(p, r)| > 2n/3 then
//!            if the values received, except at most ⌊n/3⌋, are equal to x̄
//!              then x_p ← x̄
//!              else x_p ← smallest x_q received
//!          if more than 2n/3 values received are equal to x̄ then DECIDE(x̄)
//! ```
//!
//! The algorithm never violates integrity or agreement, under *any* HO
//! assignment; the predicate `P_otr` (Table 1) ensures termination
//! (Theorem 1). Rounds in which no messages are received are harmless.

use std::marker::PhantomData;

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::process::ProcessId;
use crate::round::Round;
use crate::send_plan::SendPlan;

/// The OneThirdRule consensus algorithm over values `V`.
///
/// `V` is any totally ordered value domain ("smallest `x_q` received" needs
/// `Ord`). The algorithm is parameterised only by `n`.
#[derive(Clone, Copy, Debug)]
pub struct OneThirdRule<V = u64> {
    n: usize,
    _values: PhantomData<fn() -> V>,
}

impl<V> OneThirdRule<V> {
    /// OneThirdRule over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        OneThirdRule {
            n,
            _values: PhantomData,
        }
    }

    /// The update threshold: `|HO| > 2n/3`, i.e. `3·|HO| > 2n`.
    #[must_use]
    pub fn update_quorum(&self, heard: usize) -> bool {
        3 * heard > 2 * self.n
    }

    /// "All received values except at most ⌊n/3⌋ equal `x̄`":
    /// `count(x̄) ≥ received − ⌊n/3⌋`.
    #[must_use]
    pub fn almost_all(&self, count: usize, received: usize) -> bool {
        count + self.n / 3 >= received
    }
}

/// Per-process state of OneThirdRule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtrState<V> {
    /// The current estimate `x_p`.
    pub x: V,
    /// The decision, once taken (irrevocable).
    pub decision: Option<V>,
}

impl<V: Clone + std::fmt::Debug + Ord> HoAlgorithm for OneThirdRule<V> {
    type State = OtrState<V>;
    type Message = V;
    type Value = V;

    fn n(&self) -> usize {
        self.n
    }

    fn init(&self, _p: ProcessId, initial_value: V) -> OtrState<V> {
        OtrState {
            x: initial_value,
            decision: None,
        }
    }

    fn send(&self, _r: Round, _p: ProcessId, state: &OtrState<V>) -> SendPlan<V> {
        // `send ⟨x_p⟩ to all processes`: one shared payload per round.
        SendPlan::broadcast(state.x.clone())
    }

    fn send_into(
        &self,
        _r: Round,
        _p: ProcessId,
        state: &OtrState<V>,
        slot: &mut crate::send_plan::PlanSlot<'_, V>,
    ) -> u64 {
        // Same plan as `send`, written through the reusable slot.
        slot.broadcast(state.x.clone())
    }

    fn transition(&self, _r: Round, _p: ProcessId, state: &mut OtrState<V>, mb: &Mailbox<V>) {
        // One mode computation serves both the update and the decision
        // rule — this runs once per process per round and dominates the
        // sweep's hot loop.
        let Some((mode, count)) = mb.mode_with_count() else {
            return;
        };
        if self.update_quorum(mb.len()) {
            // The most frequent value; unique whenever the "almost all" test
            // passes (two values can't both miss at most ⌊n/3⌋ of > 2n/3
            // messages).
            if self.almost_all(count, mb.len()) {
                state.x = mode.clone();
            } else {
                state.x = mb.min_message().expect("non-empty").clone();
            }
        }
        // Decide on > 2n/3 *identical* values (line 12); this implies the
        // |HO| > 2n/3 guard, so checking independently is equivalent.
        if 3 * count > 2 * self.n && state.decision.is_none() {
            state.decision = Some(mode);
        }
    }

    fn decision(&self, state: &OtrState<V>) -> Option<V> {
        state.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        CrashRecovery, CrashStop, FullDelivery, Partition, RandomLoss, Scripted,
    };
    use crate::executor::RoundExecutor;
    use crate::process::ProcessSet;

    #[test]
    fn nice_run_decides_min_in_two_rounds() {
        // Round 1: everyone adopts the smallest value; round 2: everyone
        // sees > 2n/3 identical values and decides.
        let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![3u64, 1, 2, 9]);
        let r = exec.run_until_all_decided(&mut FullDelivery, 10).unwrap();
        assert_eq!(r, Round(2));
        assert!(exec.decisions().iter().all(|d| *d == Some(1)));
    }

    #[test]
    fn unanimous_initial_values_decide_in_one_round() {
        let mut exec = RoundExecutor::new(OneThirdRule::new(3), vec![5u64, 5, 5]);
        let r = exec.run_until_all_decided(&mut FullDelivery, 10).unwrap();
        assert_eq!(r, Round(1));
    }

    #[test]
    fn empty_rounds_are_harmless() {
        // P_otr allows rounds in which no messages are received.
        let n = 4;
        let silent = vec![ProcessSet::empty(); n];
        let mut adv = Scripted::new(vec![silent.clone(), silent.clone(), silent]);
        let mut exec = RoundExecutor::new(OneThirdRule::new(n), vec![3u64, 1, 2, 9]);
        exec.run(&mut adv, 3).unwrap();
        assert!(exec.decisions().iter().all(Option::is_none));
        // After the silence, a nice period still decides.
        let r = exec.run_until_all_decided(&mut FullDelivery, 10).unwrap();
        assert_eq!(r, Round(5));
    }

    #[test]
    fn safety_under_heavy_loss() {
        let mut adv = RandomLoss::new(0.6, 99);
        let mut exec = RoundExecutor::new(OneThirdRule::new(7), vec![4u64, 2, 6, 1, 5, 3, 0]);
        // May or may not decide, but must never violate safety (step returns
        // Err on violation).
        exec.run(&mut adv, 200).expect("no safety violation");
    }

    #[test]
    fn safety_under_partition() {
        // Two blocks of 3 in n = 7: neither reaches the 2n/3 quorum of 5, so
        // nobody decides — and certainly nobody disagrees.
        let mut adv = Partition::new(vec![
            ProcessSet::from_indices([0, 1, 2]),
            ProcessSet::from_indices([3, 4, 5, 6]),
        ]);
        let mut exec = RoundExecutor::new(OneThirdRule::new(7), vec![1u64, 1, 1, 2, 2, 2, 2]);
        exec.run(&mut adv, 50).expect("no violation");
        assert!(exec.decisions()[..3].iter().all(Option::is_none));
        // The 4-block has only 4 < 2·7/3 + ε members… 3·4 = 12 ≤ 14, no decision.
        assert!(exec.decisions().iter().all(Option::is_none));
    }

    #[test]
    fn crash_stop_with_enough_survivors_decides() {
        // n = 4, one crash leaves 3 > 2·4/3 alive: survivors decide.
        let mut adv = CrashStop::new(4, &[(3, Round(1))]);
        let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![3u64, 1, 2, 0]);
        let scope = ProcessSet::from_indices([0, 1, 2]);
        let r = exec.run_until_decided_in(scope, &mut adv, 20).unwrap();
        assert!(r <= Round(3));
        // 0 crashed before sending anything; min surviving value is 1.
        assert_eq!(exec.decisions()[0], Some(1));
    }

    #[test]
    fn crash_recovery_is_transparent() {
        // §3.3: without any changes OTR works in the crash-recovery model.
        let mut adv = CrashRecovery::new(4, &[(0, Round(1), Round(3))]);
        let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![9u64, 4, 7, 5]);
        let r = exec.run_until_all_decided(&mut adv, 20).unwrap();
        // p0 is down rounds 1–3 and decides after recovering.
        assert!(r >= Round(4));
        let d = exec.decisions();
        assert!(d.iter().all(|v| *v == d[0]));
    }

    #[test]
    fn decision_threshold_is_strictly_greater() {
        // n = 3: hearing exactly 2 = 2n/3 identical values must NOT decide.
        let alg = OneThirdRule::new(3);
        let mut st = alg.init(ProcessId::new(0), 1u64);
        let mb: Mailbox<u64> = [(ProcessId::new(0), 1), (ProcessId::new(1), 1)]
            .into_iter()
            .collect();
        alg.transition(Round(1), ProcessId::new(0), &mut st, &mb);
        assert_eq!(st.decision, None, "2 of n=3 is not > 2n/3");
        // Three identical values do decide.
        let mb: Mailbox<u64> = [
            (ProcessId::new(0), 1),
            (ProcessId::new(1), 1),
            (ProcessId::new(2), 1),
        ]
        .into_iter()
        .collect();
        alg.transition(Round(2), ProcessId::new(0), &mut st, &mb);
        assert_eq!(st.decision, Some(1));
    }

    #[test]
    fn almost_all_rule_adopts_majority_value() {
        // n = 4, hears 3 messages [7, 7, 1]: except at most ⌊4/3⌋ = 1 all
        // equal 7 → adopt 7 (not min).
        let alg = OneThirdRule::new(4);
        let mut st = alg.init(ProcessId::new(0), 9u64);
        let mb: Mailbox<u64> = [
            (ProcessId::new(0), 7),
            (ProcessId::new(1), 7),
            (ProcessId::new(2), 1),
        ]
        .into_iter()
        .collect();
        alg.transition(Round(1), ProcessId::new(0), &mut st, &mb);
        assert_eq!(st.x, 7);
    }

    #[test]
    fn mixed_values_adopt_min() {
        // n = 4, hears [7, 3, 1]: no value covers all-but-⌊n/3⌋ → min = 1.
        let alg = OneThirdRule::new(4);
        let mut st = alg.init(ProcessId::new(0), 9u64);
        let mb: Mailbox<u64> = [
            (ProcessId::new(0), 7),
            (ProcessId::new(1), 3),
            (ProcessId::new(2), 1),
        ]
        .into_iter()
        .collect();
        alg.transition(Round(1), ProcessId::new(0), &mut st, &mb);
        assert_eq!(st.x, 1);
    }

    #[test]
    fn below_quorum_keeps_estimate() {
        let alg = OneThirdRule::new(4);
        let mut st = alg.init(ProcessId::new(0), 9u64);
        let mb: Mailbox<u64> = [(ProcessId::new(1), 1), (ProcessId::new(2), 1)]
            .into_iter()
            .collect();
        alg.transition(Round(1), ProcessId::new(0), &mut st, &mb);
        assert_eq!(st.x, 9, "2 of n=4 is not > 2n/3; estimate unchanged");
    }

    #[test]
    fn decision_is_stable_once_taken() {
        let mut exec = RoundExecutor::new(OneThirdRule::new(3), vec![2u64, 2, 2]);
        exec.run_until_all_decided(&mut FullDelivery, 5).unwrap();
        // Further chaotic rounds cannot shake the decision (checker would
        // report Revoked).
        let mut adv = RandomLoss::new(0.5, 1);
        exec.run(&mut adv, 50).expect("decision stays put");
        assert!(exec.decisions().iter().all(|d| *d == Some(2)));
    }
}
