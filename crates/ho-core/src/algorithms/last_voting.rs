//! The *LastVoting* algorithm from \[CBS06\] — Paxos in the HO model.
//!
//! The paper (§1, §5) points out that Paxos's tolerance of message loss
//! cannot be expressed naturally with failure detectors, while in the HO
//! model its liveness condition is a clean communication predicate.
//! LastVoting is the HO rendition of Paxos: phases of four rounds with a
//! rotating coordinator.
//!
//! ```text
//! Initialization: x_p ← v_p ; ts_p ← 0
//! Round r = 4φ−3:                     (estimates to the coordinator)
//!   S: send ⟨x_p, ts_p⟩ to coord(φ)
//!   T (coord, > n/2 received): vote ← x̄ with the largest ts; commit ← true
//! Round r = 4φ−2:                     (the coordinator's vote)
//!   S (coord, if commit): send ⟨vote⟩ to all
//!   T: if vote v received from coord(φ): x_p ← v ; ts_p ← φ
//! Round r = 4φ−1:                     (acknowledgements)
//!   S (if ts_p = φ): send ⟨ack⟩ to coord(φ)
//!   T (coord, > n/2 acks): ready ← true
//! Round r = 4φ:                       (the decision)
//!   S (coord, if ready): send ⟨vote⟩ to all
//!   T: if vote v received from coord(φ): DECIDE(v)
//!      commit ← false ; ready ← false
//! ```
//!
//! Liveness needs one phase `φ0` in which the coordinator hears a majority
//! in rounds `4φ0−3` and `4φ0−1` and is heard by everyone (to be decided) in
//! rounds `4φ0−2` and `4φ0`; safety needs nothing.

use std::marker::PhantomData;

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::process::ProcessId;
use crate::round::Round;
use crate::send_plan::SendPlan;

/// LastVoting (HO Paxos) over `n` processes.
#[derive(Clone, Copy, Debug)]
pub struct LastVoting<V = u64> {
    n: usize,
    _values: PhantomData<fn() -> V>,
}

impl<V> LastVoting<V> {
    /// LastVoting over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        LastVoting {
            n,
            _values: PhantomData,
        }
    }

    /// The coordinator of phase `φ` (rotating, as the paper's rotating
    /// coordinator pattern).
    #[must_use]
    pub fn coord(&self, phase: u64) -> ProcessId {
        ProcessId::new(((phase - 1) % self.n as u64) as usize)
    }

    fn majority(&self, k: usize) -> bool {
        2 * k > self.n
    }
}

/// Messages of LastVoting rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LastVotingMessage<V> {
    /// `⟨x_p, ts_p⟩`, sent to the coordinator in round `4φ−3`.
    Estimate(V, u64),
    /// The coordinator's vote, rounds `4φ−2` and `4φ`.
    Vote(V),
    /// Acknowledgement that `ts_p = φ`, round `4φ−1`.
    Ack,
}

/// Per-process state of LastVoting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LastVotingState<V> {
    /// Current estimate `x_p`.
    pub x: V,
    /// Timestamp of the last coordinator adoption (`0` = initial value).
    pub ts: u64,
    /// Coordinator: the vote of the current phase.
    pub vote: Option<V>,
    /// Coordinator: whether the vote is committed.
    pub commit: bool,
    /// Coordinator: whether a majority acknowledged the vote.
    pub ready: bool,
    /// The decision, once taken.
    pub decision: Option<V>,
}

impl<V: Clone + std::fmt::Debug + Ord> HoAlgorithm for LastVoting<V> {
    type State = LastVotingState<V>;
    type Message = LastVotingMessage<V>;
    type Value = V;

    fn n(&self) -> usize {
        self.n
    }

    fn init(&self, _p: ProcessId, initial_value: V) -> LastVotingState<V> {
        LastVotingState {
            x: initial_value,
            ts: 0,
            vote: None,
            commit: false,
            ready: false,
            decision: None,
        }
    }

    fn send(
        &self,
        r: Round,
        p: ProcessId,
        state: &LastVotingState<V>,
    ) -> SendPlan<LastVotingMessage<V>> {
        let (phase, offset) = r.phase(4);
        let coord = self.coord(phase);
        match offset {
            // 4φ−3: everybody unicasts its estimate to the coordinator.
            0 => SendPlan::to(
                coord,
                LastVotingMessage::Estimate(state.x.clone(), state.ts),
            ),
            // 4φ−2: the committed coordinator broadcasts its vote.
            1 if p == coord && state.commit => SendPlan::broadcast(LastVotingMessage::Vote(
                state.vote.clone().expect("committed"),
            )),
            // 4φ−1: processes that adopted this phase's vote ack it.
            2 if state.ts == phase => SendPlan::to(coord, LastVotingMessage::Ack),
            // 4φ: the ready coordinator broadcasts the decision vote.
            3 if p == coord && state.ready => {
                SendPlan::broadcast(LastVotingMessage::Vote(state.vote.clone().expect("ready")))
            }
            _ => SendPlan::silent(),
        }
    }

    fn send_into(
        &self,
        r: Round,
        p: ProcessId,
        state: &LastVotingState<V>,
        slot: &mut crate::send_plan::PlanSlot<'_, LastVotingMessage<V>>,
    ) -> u64 {
        // Same plans as `send`, written through the reusable slot. The
        // point-to-point rounds reuse the destination vector; the
        // coordinator's broadcast rounds reuse the payload `Arc` once the
        // recipients have dropped it.
        let (phase, offset) = r.phase(4);
        let coord = self.coord(phase);
        match offset {
            0 => slot.unicast_to(
                coord,
                LastVotingMessage::Estimate(state.x.clone(), state.ts),
            ),
            1 if p == coord && state.commit => slot.broadcast(LastVotingMessage::Vote(
                state.vote.clone().expect("committed"),
            )),
            2 if state.ts == phase => slot.unicast_to(coord, LastVotingMessage::Ack),
            3 if p == coord && state.ready => {
                slot.broadcast(LastVotingMessage::Vote(state.vote.clone().expect("ready")))
            }
            _ => {
                slot.silent();
                0
            }
        }
    }

    fn transition(
        &self,
        r: Round,
        p: ProcessId,
        state: &mut LastVotingState<V>,
        mb: &Mailbox<LastVotingMessage<V>>,
    ) {
        let (phase, offset) = r.phase(4);
        let coord = self.coord(phase);
        match offset {
            0 => {
                if p == coord {
                    // The estimate with the largest timestamp; ties break to
                    // the smallest value for determinism. One fold, no
                    // scratch vector.
                    let mut count = 0usize;
                    let mut best: Option<(&V, u64)> = None;
                    for m in mb.messages() {
                        if let LastVotingMessage::Estimate(v, ts) = m {
                            count += 1;
                            let better = match best {
                                None => true,
                                Some((bv, bts)) => *ts > bts || (*ts == bts && v < bv),
                            };
                            if better {
                                best = Some((v, *ts));
                            }
                        }
                    }
                    if self.majority(count) {
                        let (v, _) = best.expect("majority implies non-empty");
                        state.vote = Some(v.clone());
                        state.commit = true;
                    }
                }
            }
            1 => {
                if let Some(LastVotingMessage::Vote(v)) = mb.from(coord) {
                    state.x = v.clone();
                    state.ts = phase;
                }
            }
            2 => {
                if p == coord {
                    let acks = mb
                        .messages()
                        .filter(|m| matches!(m, LastVotingMessage::Ack))
                        .count();
                    if self.majority(acks) {
                        state.ready = true;
                    }
                }
            }
            3 => {
                if let Some(LastVotingMessage::Vote(v)) = mb.from(coord) {
                    if state.decision.is_none() {
                        state.decision = Some(v.clone());
                    }
                }
                state.commit = false;
                state.ready = false;
            }
            _ => unreachable!("offset < 4"),
        }
    }

    fn decision(&self, state: &LastVotingState<V>) -> Option<V> {
        state.decision.clone()
    }

    // The derived `broadcast_message` view is `Some` exactly in the
    // coordinator rounds 4φ−2 and 4φ (the only broadcast plans above) —
    // LastVoting is not a broadcast algorithm in rounds 4φ−3 and 4φ−1.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashStop, FullDelivery, RandomLoss, Scripted};
    use crate::executor::RoundExecutor;
    use crate::process::ProcessSet;

    #[test]
    fn nice_run_decides_in_one_phase() {
        let mut exec = RoundExecutor::new(LastVoting::new(3), vec![30u64, 10, 20]);
        let r = exec.run_until_all_decided(&mut FullDelivery, 20).unwrap();
        assert_eq!(r, Round(4));
        // Phase-1 coordinator is p0; all timestamps are 0, ties break to the
        // smallest value.
        assert!(exec.decisions().iter().all(|d| *d == Some(10)));
    }

    #[test]
    fn coordinator_rotates() {
        let alg = LastVoting::<u64>::new(3);
        assert_eq!(alg.coord(1), ProcessId::new(0));
        assert_eq!(alg.coord(2), ProcessId::new(1));
        assert_eq!(alg.coord(3), ProcessId::new(2));
        assert_eq!(alg.coord(4), ProcessId::new(0));
    }

    #[test]
    fn tolerates_coordinator_crash() {
        // p0 (phase-1 coordinator) crashes immediately; phase 2 has
        // coordinator p1 and a live majority of 2 out of 3... n = 3 needs
        // majority 2: p1, p2 survive. Decision in phase 2.
        let mut adv = CrashStop::new(3, &[(0, Round(1))]);
        let mut exec = RoundExecutor::new(LastVoting::new(3), vec![5u64, 7, 9]);
        let scope = ProcessSet::from_indices([1, 2]);
        let r = exec.run_until_decided_in(scope, &mut adv, 40).unwrap();
        assert_eq!(r, Round(8), "phase 2 ends at round 8");
        assert_eq!(exec.decisions()[1], Some(7));
    }

    #[test]
    fn message_loss_delays_but_never_endangers() {
        let mut adv = RandomLoss::new(0.3, 5);
        let mut exec = RoundExecutor::new(LastVoting::new(5), vec![4u64, 8, 1, 9, 2]);
        // Paxos under loss: decision may be postponed for many phases but
        // safety holds throughout (executor checks every round).
        exec.run(&mut adv, 400).expect("no safety violation");
    }

    #[test]
    fn locked_value_wins_later_phases() {
        // Phase 1: coordinator p0 commits vote and p0+p1 adopt ts=1, but the
        // decision round is cut for everyone. Phase 2 (coord p1) must then
        // re-propose the ts=1 value, not its own.
        let all = ProcessSet::full(3);
        let none = ProcessSet::empty();
        let mut script = vec![
            vec![all, all, all],    // 4φ−3: estimates reach p0
            vec![all, all, all],    // 4φ−2: vote reaches all (ts := 1)
            vec![all, all, all],    // 4φ−1: acks reach p0 (ready)
            vec![none, none, none], // 4φ: decision messages all lost
        ];
        // Phase 2 runs nicely.
        script.extend(vec![vec![all, all, all]; 4]);
        let mut adv = Scripted::new(script);
        let mut exec = RoundExecutor::new(LastVoting::new(3), vec![30u64, 10, 20]);
        let r = exec.run_until_all_decided(&mut adv, 8).unwrap();
        assert_eq!(r, Round(8));
        // Value locked in phase 1 is the smallest estimate, 10.
        assert!(exec.decisions().iter().all(|d| *d == Some(10)));
    }

    #[test]
    fn no_majority_no_progress_but_safe() {
        // Coordinator only ever hears itself: no commit, no decision.
        let solo: Vec<ProcessSet> = (0..3).map(|p| ProcessSet::from_indices([p])).collect();
        let mut adv = Scripted::new(vec![solo; 12]);
        let mut exec = RoundExecutor::new(LastVoting::new(3), vec![1u64, 2, 3]);
        exec.run(&mut adv, 12).unwrap();
        assert!(exec.decisions().iter().all(Option::is_none));
    }
}
