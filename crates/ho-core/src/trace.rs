//! Heard-of traces: the collection `(HO(p, r))_{p∈Π, r>0}` of a run.
//!
//! Communication predicates (§3.1) are expressed over these collections.
//! A [`Trace`] records one HO set per process per executed round; the
//! [`predicate`](crate::predicate) module evaluates predicates against it.

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// The heard-of sets of a (finite prefix of a) run.
///
/// `Trace` indexes rounds from 1 as the paper does. A finite trace can only
/// ever *witness* an existential predicate (such as `P_otr`) — predicates
/// quantify over infinite runs, so "false on this prefix" means "not yet".
#[derive(Clone, Debug, Default)]
pub struct Trace {
    n: usize,
    /// `rounds[r - 1][p]` = `HO(p, r)`.
    rounds: Vec<Vec<ProcessSet>>,
}

impl Trace {
    /// An empty trace over `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Trace {
            n,
            rounds: Vec::new(),
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of recorded rounds; rounds `1..=len` are available.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Whether no round has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Records the HO sets of the next round; `ho[p]` is `HO(p, r)`.
    ///
    /// # Panics
    ///
    /// Panics if `ho.len() != n`.
    pub fn push_round(&mut self, ho: Vec<ProcessSet>) {
        assert_eq!(ho.len(), self.n, "one HO set per process required");
        self.rounds.push(ho);
    }

    /// `HO(p, r)`.
    ///
    /// # Panics
    ///
    /// Panics if round `r` has not been recorded.
    #[must_use]
    pub fn ho(&self, p: ProcessId, r: Round) -> ProcessSet {
        self.round(r)[p.index()]
    }

    /// All HO sets of round `r`, indexed by process.
    ///
    /// # Panics
    ///
    /// Panics if round `r` has not been recorded (`r` is 1-based).
    #[must_use]
    pub fn round(&self, r: Round) -> &[ProcessSet] {
        assert!(
            r.get() >= 1 && r.get() <= self.rounds(),
            "round {r} not recorded"
        );
        &self.rounds[(r.get() - 1) as usize]
    }

    /// Iterates over recorded rounds as `(round, ho_sets)`.
    pub fn iter(&self) -> impl Iterator<Item = (Round, &[ProcessSet])> {
        self.rounds
            .iter()
            .enumerate()
            .map(|(i, ho)| (Round(i as u64 + 1), ho.as_slice()))
    }

    /// The *kernel* of round `r` restricted to `scope`:
    /// `K_scope(r) = ∩_{p ∈ scope} HO(p, r)` — the set of processes heard by
    /// every process in `scope` at round `r`.
    ///
    /// With `scope = Π` this is the kernel `K(r)` of \[CBS06\]. The restricted
    /// form is what Lemma C.1 of the paper uses.
    #[must_use]
    pub fn kernel(&self, r: Round, scope: ProcessSet) -> ProcessSet {
        let mut k = ProcessSet::full(self.n);
        for p in scope.iter() {
            k = k.intersection(self.ho(p, r));
        }
        k
    }

    /// The kernel of a round range `[r1, r2]` restricted to `scope`
    /// (`K_Π0(R)` in Appendix C).
    #[must_use]
    pub fn kernel_range(&self, r1: Round, r2: Round, scope: ProcessSet) -> ProcessSet {
        let mut k = ProcessSet::full(self.n);
        let mut r = r1;
        while r <= r2 {
            k = k.intersection(self.kernel(r, scope));
            r = r.next();
        }
        k
    }

    /// Whether round `r` is *space uniform* over `scope`: all processes in
    /// `scope` have the same HO set.
    #[must_use]
    pub fn is_space_uniform(&self, r: Round, scope: ProcessSet) -> bool {
        let mut members = scope.iter();
        let Some(first) = members.next() else {
            return true;
        };
        let ho0 = self.ho(first, r);
        members.all(|p| self.ho(p, r) == ho0)
    }

    /// Total number of *transmission faults* in the trace: over all rounds
    /// and processes, the transmissions that did not arrive
    /// (`Σ_{r,p} (n − |HO(p, r)|)` — the §2.3 fault count).
    #[must_use]
    pub fn transmission_faults(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|row| row.iter().map(|ho| (self.n - ho.len()) as u64))
            .sum()
    }

    /// The fraction of transmissions that arrived, in `[0, 1]`
    /// (1.0 for an empty trace).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        let total = (self.rounds.len() * self.n * self.n) as u64;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.transmission_faults() as f64 / total as f64
    }

    /// A sub-trace containing rounds `from..=to` (renumbered from 1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ from ≤ to ≤ rounds()`.
    #[must_use]
    pub fn restrict(&self, from: Round, to: Round) -> Trace {
        assert!(
            from.get() >= 1 && from <= to && to.get() <= self.rounds(),
            "invalid round range"
        );
        Trace {
            n: self.n,
            rounds: self.rounds[(from.get() - 1) as usize..=(to.get() - 1) as usize].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> Trace {
        // 3 processes, 2 rounds.
        let mut t = Trace::new(3);
        t.push_round(vec![
            ProcessSet::from_indices([0, 1, 2]),
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([1, 2]),
        ]);
        t.push_round(vec![
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([0, 1]),
        ]);
        t
    }

    #[test]
    fn records_and_reads_ho_sets() {
        let t = t3();
        assert_eq!(t.rounds(), 2);
        assert_eq!(
            t.ho(ProcessId::new(1), Round(1)),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn kernel_is_intersection() {
        let t = t3();
        // Round 1 kernel over all three processes: {1}.
        assert_eq!(
            t.kernel(Round(1), ProcessSet::full(3)),
            ProcessSet::from_indices([1])
        );
        // Restricted to {0, 1}: {0, 1}.
        assert_eq!(
            t.kernel(Round(1), ProcessSet::from_indices([0, 1])),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn kernel_range_intersects_rounds() {
        let t = t3();
        assert_eq!(
            t.kernel_range(Round(1), Round(2), ProcessSet::full(3)),
            ProcessSet::from_indices([1])
        );
    }

    #[test]
    fn space_uniformity() {
        let t = t3();
        assert!(!t.is_space_uniform(Round(1), ProcessSet::full(3)));
        assert!(t.is_space_uniform(Round(2), ProcessSet::full(3)));
        // Trivially uniform over the empty scope.
        assert!(t.is_space_uniform(Round(1), ProcessSet::empty()));
    }

    #[test]
    #[should_panic(expected = "not recorded")]
    fn unrecorded_round_panics() {
        let t = t3();
        let _ = t.round(Round(3));
    }

    #[test]
    #[should_panic(expected = "one HO set per process")]
    fn wrong_width_rejected() {
        let mut t = Trace::new(3);
        t.push_round(vec![ProcessSet::empty()]);
    }

    #[test]
    fn transmission_fault_accounting() {
        let t = t3();
        // Round 1: 0 + 1 + 1 = 2 faults; round 2: 1 + 1 + 1 = 3 faults.
        assert_eq!(t.transmission_faults(), 5);
        let total = 2.0 * 9.0;
        assert!((t.delivery_ratio() - (total - 5.0) / total).abs() < 1e-12);
        assert_eq!(Trace::new(3).delivery_ratio(), 1.0);
    }

    #[test]
    fn restrict_renumbers_rounds() {
        let t = t3();
        let sub = t.restrict(Round(2), Round(2));
        assert_eq!(sub.rounds(), 1);
        assert_eq!(
            sub.ho(ProcessId::new(0), Round(1)),
            t.ho(ProcessId::new(0), Round(2))
        );
    }

    #[test]
    #[should_panic(expected = "invalid round range")]
    fn restrict_checks_bounds() {
        let _ = t3().restrict(Round(2), Round(9));
    }
}
