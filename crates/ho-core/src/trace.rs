//! Heard-of traces: the collection `(HO(p, r))_{p∈Π, r>0}` of a run.
//!
//! Communication predicates (§3.1) are expressed over these collections.
//! A [`Trace`] records one HO set per process per executed round; the
//! [`predicate`](crate::predicate) module evaluates predicates against it.
//!
//! ## Retention modes
//!
//! Recording every round is only useful when somebody reads the rows back.
//! The sweep harness runs hundreds of thousands of rounds whose HO sets are
//! never inspected, and the predicate machines only ever look at a bounded
//! suffix. [`TraceMode`] picks the retention policy:
//!
//! * [`TraceMode::Full`] — keep every round (the default; what predicate
//!   evaluation over whole runs needs).
//! * [`TraceMode::Window`] — keep only the last `k` rounds; evicted row
//!   buffers are recycled, so steady-state recording allocates nothing.
//! * [`TraceMode::Off`] — keep no rows at all, only the running HO
//!   statistics (round count, transmission faults, delivery ratio), which
//!   stay exact in every mode.

use std::collections::VecDeque;

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// How many evicted row buffers [`Trace`] keeps around for reuse.
const SPARE_ROWS: usize = 8;

/// Which rounds a [`Trace`] retains (statistics are kept in every mode).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Retain every recorded round.
    #[default]
    Full,
    /// Retain only the most recent `k` rounds (`k ≥ 1`); older rows are
    /// evicted and their buffers recycled.
    Window(usize),
    /// Retain no rows; only the running statistics are maintained.
    Off,
}

/// The heard-of sets of a (finite prefix of a) run.
///
/// `Trace` indexes rounds from 1 as the paper does. A finite trace can only
/// ever *witness* an existential predicate (such as `P_otr`) — predicates
/// quantify over infinite runs, so "false on this prefix" means "not yet".
///
/// Under [`TraceMode::Window`] or [`TraceMode::Off`] only a suffix (or
/// nothing) of the recorded rounds is retained; accessing an evicted round
/// panics. [`Trace::rounds`] and the fault statistics always cover the
/// *whole* recorded run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    n: usize,
    mode: TraceMode,
    /// The retained rows, oldest first; `rows[i]` is round
    /// `first_retained_round() + i` and `rows[i][p]` = `HO(p, r)`.
    rows: VecDeque<Vec<ProcessSet>>,
    /// Recycled row buffers (capacity-retaining, bounded by [`SPARE_ROWS`]).
    spare: Vec<Vec<ProcessSet>>,
    /// Total rounds recorded, retained or not.
    total: u64,
    /// Running transmission-fault count over all recorded rounds.
    faults: u64,
}

impl Trace {
    /// An empty trace over `n` processes retaining every round.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Trace::with_mode(n, TraceMode::Full)
    }

    /// An empty trace over `n` processes with the given retention mode.
    ///
    /// # Panics
    ///
    /// Panics on `TraceMode::Window(0)` — a window must span at least one
    /// round.
    #[must_use]
    pub fn with_mode(n: usize, mode: TraceMode) -> Self {
        if let TraceMode::Window(k) = mode {
            assert!(k >= 1, "window must retain at least one round");
        }
        Trace {
            n,
            mode,
            rows: VecDeque::new(),
            spare: Vec::new(),
            total: 0,
            faults: 0,
        }
    }

    /// The retention mode.
    #[must_use]
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Whether this trace retains rows at all (`false` under
    /// [`TraceMode::Off`]). Callers on the hot path skip computing HO sets
    /// when this is `false` and report per-process counts via
    /// [`Trace::note_round`] instead.
    #[must_use]
    pub fn wants_rows(&self) -> bool {
        !matches!(self.mode, TraceMode::Off)
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of recorded rounds (retained or not).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.total
    }

    /// Number of rounds currently retained; rounds
    /// `first_retained_round()..=rounds()` are available.
    #[must_use]
    pub fn retained_rounds(&self) -> u64 {
        self.rows.len() as u64
    }

    /// The first round still retained (`Round(1)` under `Full`;
    /// `rounds() + 1` when nothing is retained).
    #[must_use]
    pub fn first_retained_round(&self) -> Round {
        Round(self.total - self.rows.len() as u64 + 1)
    }

    /// Whether no round has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Accounts a row's statistics and retains it per the mode.
    fn commit_row(&mut self, row: Vec<ProcessSet>) {
        match self.mode {
            TraceMode::Off => self.recycle(row),
            TraceMode::Full => self.rows.push_back(row),
            TraceMode::Window(k) => {
                self.rows.push_back(row);
                while self.rows.len() > k {
                    let evicted = self.rows.pop_front().expect("len > k ≥ 1");
                    self.recycle(evicted);
                }
            }
        }
    }

    fn recycle(&mut self, mut row: Vec<ProcessSet>) {
        if self.spare.len() < SPARE_ROWS {
            row.clear();
            self.spare.push(row);
        }
    }

    fn account(&mut self, heard: impl IntoIterator<Item = usize>) -> usize {
        let mut covered = 0;
        for h in heard {
            self.faults += (self.n - h) as u64;
            covered += 1;
        }
        self.total += 1;
        covered
    }

    /// Records the HO sets of the next round; `ho[p]` is `HO(p, r)`.
    ///
    /// # Panics
    ///
    /// Panics if `ho.len() != n`.
    pub fn push_round(&mut self, ho: Vec<ProcessSet>) {
        assert_eq!(ho.len(), self.n, "one HO set per process required");
        self.account(ho.iter().map(|h| h.len()));
        self.commit_row(ho);
    }

    /// Records the HO sets of the next round by copying from a caller-owned
    /// slice — the allocation-free path: under [`TraceMode::Window`] the
    /// copy lands in a recycled row buffer, under [`TraceMode::Off`] only
    /// the statistics are updated.
    ///
    /// # Panics
    ///
    /// Panics if `ho.len() != n`.
    pub fn record_round(&mut self, ho: &[ProcessSet]) {
        assert_eq!(ho.len(), self.n, "one HO set per process required");
        self.account(ho.iter().map(|h| h.len()));
        if matches!(self.mode, TraceMode::Off) {
            return;
        }
        let mut row = self.spare.pop().unwrap_or_default();
        row.clear();
        row.extend_from_slice(ho);
        self.commit_row(row);
    }

    /// Records a round's *statistics only* from per-process heard counts
    /// (`|HO(p, r)|`), without materialising any HO set. This is the
    /// [`TraceMode::Off`] hot path: support sets are never computed.
    ///
    /// # Panics
    ///
    /// Panics if the iterator does not yield exactly `n` counts, or if the
    /// trace retains rows (the round would silently go missing from them).
    pub fn note_round(&mut self, heard: impl IntoIterator<Item = usize>) {
        assert!(
            !self.wants_rows(),
            "note_round is statistics-only; this trace retains rows"
        );
        let covered = self.account(heard);
        assert_eq!(covered, self.n, "one heard-count per process required");
    }

    /// `HO(p, r)`.
    ///
    /// # Panics
    ///
    /// Panics if round `r` has not been recorded or is no longer retained.
    #[must_use]
    pub fn ho(&self, p: ProcessId, r: Round) -> ProcessSet {
        self.round(r)[p.index()]
    }

    /// All HO sets of round `r`, indexed by process.
    ///
    /// # Panics
    ///
    /// Panics if round `r` has not been recorded (`r` is 1-based) or has
    /// been evicted by the retention mode.
    #[must_use]
    pub fn round(&self, r: Round) -> &[ProcessSet] {
        assert!(
            r.get() >= 1 && r.get() <= self.total,
            "round {r} not recorded"
        );
        let first = self.first_retained_round();
        assert!(
            r >= first,
            "round {r} evicted by {:?} (first retained: {first})",
            self.mode
        );
        &self.rows[(r.get() - first.get()) as usize]
    }

    /// Iterates over the *retained* rounds as `(round, ho_sets)`.
    pub fn iter(&self) -> impl Iterator<Item = (Round, &[ProcessSet])> {
        let first = self.first_retained_round().get();
        self.rows
            .iter()
            .enumerate()
            .map(move |(i, ho)| (Round(first + i as u64), ho.as_slice()))
    }

    /// The *kernel* of round `r` restricted to `scope`:
    /// `K_scope(r) = ∩_{p ∈ scope} HO(p, r)` — the set of processes heard by
    /// every process in `scope` at round `r`.
    ///
    /// With `scope = Π` this is the kernel `K(r)` of \[CBS06\]. The restricted
    /// form is what Lemma C.1 of the paper uses.
    #[must_use]
    pub fn kernel(&self, r: Round, scope: ProcessSet) -> ProcessSet {
        let mut k = ProcessSet::full(self.n);
        for p in scope.iter() {
            k = k.intersection(self.ho(p, r));
        }
        k
    }

    /// The kernel of a round range `[r1, r2]` restricted to `scope`
    /// (`K_Π0(R)` in Appendix C).
    #[must_use]
    pub fn kernel_range(&self, r1: Round, r2: Round, scope: ProcessSet) -> ProcessSet {
        let mut k = ProcessSet::full(self.n);
        let mut r = r1;
        while r <= r2 {
            k = k.intersection(self.kernel(r, scope));
            r = r.next();
        }
        k
    }

    /// Whether round `r` is *space uniform* over `scope`: all processes in
    /// `scope` have the same HO set.
    #[must_use]
    pub fn is_space_uniform(&self, r: Round, scope: ProcessSet) -> bool {
        let mut members = scope.iter();
        let Some(first) = members.next() else {
            return true;
        };
        let ho0 = self.ho(first, r);
        members.all(|p| self.ho(p, r) == ho0)
    }

    /// Total number of *transmission faults* in the trace: over all rounds
    /// and processes, the transmissions that did not arrive
    /// (`Σ_{r,p} (n − |HO(p, r)|)` — the §2.3 fault count).
    ///
    /// Maintained as a running counter, so it covers *every* recorded
    /// round in every [`TraceMode`] — including rounds whose rows were
    /// evicted or never retained.
    #[must_use]
    pub fn transmission_faults(&self) -> u64 {
        self.faults
    }

    /// The fraction of transmissions that arrived, in `[0, 1]`
    /// (1.0 for an empty trace). Like [`Trace::transmission_faults`], exact
    /// in every retention mode.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.total * (self.n * self.n) as u64;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.faults as f64 / total as f64
    }

    /// A sub-trace containing rounds `from..=to` (renumbered from 1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ from ≤ to ≤ rounds()` and the range is still
    /// retained.
    #[must_use]
    pub fn restrict(&self, from: Round, to: Round) -> Trace {
        assert!(
            from.get() >= 1 && from <= to && to.get() <= self.total,
            "invalid round range"
        );
        let first = self.first_retained_round();
        assert!(
            from >= first,
            "round {from} evicted by {:?} (first retained: {first})",
            self.mode
        );
        let lo = (from.get() - first.get()) as usize;
        let hi = (to.get() - first.get()) as usize;
        let rows: Vec<Vec<ProcessSet>> = self.rows.range(lo..=hi).cloned().collect();
        let faults = rows
            .iter()
            .flat_map(|row| row.iter().map(|ho| (self.n - ho.len()) as u64))
            .sum();
        Trace {
            n: self.n,
            mode: TraceMode::Full,
            rows: rows.into(),
            spare: Vec::new(),
            total: (to.get() - from.get()) + 1,
            faults,
        }
    }

    /// The retained suffix as a standalone [`TraceMode::Full`] trace,
    /// renumbered from 1 — what windowed predicate evaluation runs on.
    ///
    /// # Panics
    ///
    /// Panics if nothing is retained.
    #[must_use]
    pub fn retained(&self) -> Trace {
        assert!(
            !self.rows.is_empty(),
            "no rounds retained under {:?}",
            self.mode
        );
        self.restrict(self.first_retained_round(), Round(self.total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> Trace {
        // 3 processes, 2 rounds.
        let mut t = Trace::new(3);
        t.push_round(vec![
            ProcessSet::from_indices([0, 1, 2]),
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([1, 2]),
        ]);
        t.push_round(vec![
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([0, 1]),
        ]);
        t
    }

    #[test]
    fn records_and_reads_ho_sets() {
        let t = t3();
        assert_eq!(t.rounds(), 2);
        assert_eq!(
            t.ho(ProcessId::new(1), Round(1)),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn kernel_is_intersection() {
        let t = t3();
        // Round 1 kernel over all three processes: {1}.
        assert_eq!(
            t.kernel(Round(1), ProcessSet::full(3)),
            ProcessSet::from_indices([1])
        );
        // Restricted to {0, 1}: {0, 1}.
        assert_eq!(
            t.kernel(Round(1), ProcessSet::from_indices([0, 1])),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn kernel_range_intersects_rounds() {
        let t = t3();
        assert_eq!(
            t.kernel_range(Round(1), Round(2), ProcessSet::full(3)),
            ProcessSet::from_indices([1])
        );
    }

    #[test]
    fn space_uniformity() {
        let t = t3();
        assert!(!t.is_space_uniform(Round(1), ProcessSet::full(3)));
        assert!(t.is_space_uniform(Round(2), ProcessSet::full(3)));
        // Trivially uniform over the empty scope.
        assert!(t.is_space_uniform(Round(1), ProcessSet::empty()));
    }

    #[test]
    #[should_panic(expected = "not recorded")]
    fn unrecorded_round_panics() {
        let t = t3();
        let _ = t.round(Round(3));
    }

    #[test]
    #[should_panic(expected = "one HO set per process")]
    fn wrong_width_rejected() {
        let mut t = Trace::new(3);
        t.push_round(vec![ProcessSet::empty()]);
    }

    #[test]
    fn transmission_fault_accounting() {
        let t = t3();
        // Round 1: 0 + 1 + 1 = 2 faults; round 2: 1 + 1 + 1 = 3 faults.
        assert_eq!(t.transmission_faults(), 5);
        let total = 2.0 * 9.0;
        assert!((t.delivery_ratio() - (total - 5.0) / total).abs() < 1e-12);
        assert_eq!(Trace::new(3).delivery_ratio(), 1.0);
    }

    #[test]
    fn restrict_renumbers_rounds() {
        let t = t3();
        let sub = t.restrict(Round(2), Round(2));
        assert_eq!(sub.rounds(), 1);
        assert_eq!(
            sub.ho(ProcessId::new(0), Round(1)),
            t.ho(ProcessId::new(0), Round(2))
        );
    }

    #[test]
    #[should_panic(expected = "invalid round range")]
    fn restrict_checks_bounds() {
        let _ = t3().restrict(Round(2), Round(9));
    }

    fn row(k: usize, n: usize) -> Vec<ProcessSet> {
        // Distinguishable rows: process 0 hears {0..=k mod n}, others Π.
        let mut r = vec![ProcessSet::full(n); n];
        r[0] = ProcessSet::from_indices(0..=(k % n));
        r
    }

    #[test]
    fn window_retains_suffix_and_keeps_stats_exact() {
        let n = 3;
        let mut full = Trace::new(n);
        let mut win = Trace::with_mode(n, TraceMode::Window(2));
        for k in 0..5 {
            full.push_round(row(k, n));
            win.record_round(&row(k, n));
        }
        assert_eq!(win.rounds(), 5);
        assert_eq!(win.retained_rounds(), 2);
        assert_eq!(win.first_retained_round(), Round(4));
        // Retained rows match the full trace, with original numbering.
        for r in [Round(4), Round(5)] {
            assert_eq!(win.round(r), full.round(r));
        }
        // Statistics cover evicted rounds too.
        assert_eq!(win.transmission_faults(), full.transmission_faults());
        assert!((win.delivery_ratio() - full.delivery_ratio()).abs() < 1e-12);
        // The retained suffix round-trips through restrict/retained.
        let suffix = win.retained();
        assert_eq!(suffix.rounds(), 2);
        assert_eq!(suffix.round(Round(1)), full.round(Round(4)));
    }

    #[test]
    #[should_panic(expected = "evicted")]
    fn evicted_round_panics() {
        let mut t = Trace::with_mode(2, TraceMode::Window(1));
        t.push_round(vec![ProcessSet::full(2); 2]);
        t.push_round(vec![ProcessSet::full(2); 2]);
        let _ = t.round(Round(1));
    }

    #[test]
    fn off_mode_keeps_running_stats_only() {
        let n = 4;
        let mut t = Trace::with_mode(n, TraceMode::Off);
        assert!(!t.wants_rows());
        t.note_round([4, 3, 2, 4]);
        t.note_round([4, 4, 4, 4]);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.retained_rounds(), 0);
        assert_eq!(t.transmission_faults(), 3);
        assert_eq!(t.first_retained_round(), Round(3));
        // record_round also works (stats only).
        t.record_round(&[ProcessSet::full(n); 4]);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.transmission_faults(), 3);
    }

    #[test]
    #[should_panic(expected = "statistics-only")]
    fn note_round_rejected_when_rows_retained() {
        let mut t = Trace::new(2);
        t.note_round([2, 2]);
    }

    #[test]
    #[should_panic(expected = "one heard-count per process")]
    fn note_round_checks_width() {
        let mut t = Trace::with_mode(3, TraceMode::Off);
        t.note_round([3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_window_rejected() {
        let _ = Trace::with_mode(2, TraceMode::Window(0));
    }

    #[test]
    fn iter_numbers_retained_rounds() {
        let mut t = Trace::with_mode(2, TraceMode::Window(2));
        for k in 0..4 {
            t.record_round(&row(k, 2));
        }
        let rounds: Vec<u64> = t.iter().map(|(r, _)| r.get()).collect();
        assert_eq!(rounds, vec![3, 4]);
    }

    #[test]
    fn window_recycles_row_buffers() {
        // Steady-state windowed recording reuses evicted buffers: the spare
        // pool never grows past the bound and rows keep their capacity.
        let mut t = Trace::with_mode(2, TraceMode::Window(3));
        for k in 0..100 {
            t.record_round(&row(k, 2));
        }
        assert_eq!(t.retained_rounds(), 3);
        assert!(t.spare.len() <= SPARE_ROWS);
    }
}
