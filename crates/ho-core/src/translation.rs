//! The `P_k → P_su` translation (Algorithms 4 and 7, Theorem 8).
//!
//! `f + 1` rounds satisfying `P_k(Π0, ·, ·)` (with `|Π0| = n − f`) can be
//! turned into **one macro-round** satisfying `P_su(Π0, ·, ·)`, provided
//! `n > 2f`. The construction relays everything heard:
//!
//! ```text
//! Variables: Listen_p = Π ; Known_p = {⟨S_p^R(s_p), p⟩}
//! Round r:
//!   S: send ⟨Known_p⟩ to all
//!   T: Listen_p ← Listen_p ∩ {q | ⟨Known_q⟩ received}
//!      if r ≢ 0 (mod f+1):
//!        Known_p ← Known_p ∪ ⋃_{q ∈ Listen_p} Known_q
//!      else:
//!        NewHO_p ← {s | ⟨−, s⟩ ∈ Known_q for n−f processes q ∈ Listen_p}
//!        apply inner T_p^R with the messages of NewHO_p
//!        Listen_p ← Π ; Known_p ← {⟨S_p^{R+1}(s_p), p⟩}
//! ```
//!
//! [`Translated`] is the generic combinator: it wraps any *broadcast* HO
//! algorithm `A` and yields an HO algorithm whose round `r` is micro-round
//! `r` of the translation and whose macro-round `R = ⌈r/(f+1)⌉` runs `A`.

use crate::algorithm::HoAlgorithm;
use crate::mailbox::Mailbox;
use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;
use crate::send_plan::SendPlan;

/// The `P_k → P_su` translation of a broadcast HO algorithm.
///
/// The inner algorithm must be a *broadcast* algorithm (the same message to
/// every destination, like OneThirdRule); the translation relays these
/// messages wholesale, which only makes sense when the message does not
/// depend on the destination.
///
/// # Erratum: `f + 1` vs `f + 2` rounds
///
/// As printed in the paper, a macro-round spans `f + 1` rounds — `f` relay
/// rounds followed by the counting round. Our reproduction found rare
/// counterexamples at `n = 2f + 1`: a process `s ∉ Π0` can enter the
/// `Known` set of exactly one `Π0` member in the *last* relay round, and
/// the `n − f` voucher threshold is then met at processes that also listen
/// to the (up to `f`) co-kernel processes but missed at processes that do
/// not — breaking space uniformity (Lemma C.5's "known at `r_{f+1}` ⇒
/// heard by `r_f`" step fails; see `tests/translation_erratum.rs`).
/// [`Translated::corrected`] uses `f + 2` rounds (`f + 1` relay rounds),
/// which restores the all-or-nothing property: a value reaching its first
/// `Π0` member only in relay round `f + 1` would need `f + 1` distinct
/// relays outside `Π0`, but only `f` exist. [`Translated::new`] stays
/// faithful to the paper.
#[derive(Clone, Copy, Debug)]
pub struct Translated<A> {
    inner: A,
    f: usize,
    relay_rounds: u64,
}

impl<A: HoAlgorithm> Translated<A> {
    /// Wraps `inner`, tolerating `f` transmission-faulty processes per
    /// macro-round (`|Π0| = n − f`), with the paper's `f + 1` rounds per
    /// macro-round (`f` relay rounds — see the erratum note on the type).
    ///
    /// # Panics
    ///
    /// Panics unless `n > 2f` (required by Theorem 8).
    #[must_use]
    pub fn new(inner: A, f: usize) -> Self {
        assert!(inner.n() > 2 * f, "translation requires n > 2f");
        Translated {
            inner,
            f,
            relay_rounds: f as u64,
        }
    }

    /// The corrected translation: `f + 2` rounds per macro-round (`f + 1`
    /// relay rounds), for which space uniformity is exact (see the erratum
    /// note on the type).
    ///
    /// # Panics
    ///
    /// Panics unless `n > 2f`.
    #[must_use]
    pub fn corrected(inner: A, f: usize) -> Self {
        assert!(inner.n() > 2 * f, "translation requires n > 2f");
        Translated {
            inner,
            f,
            relay_rounds: f as u64 + 1,
        }
    }

    /// Rounds per macro-round: `f + 1` for [`Translated::new`], `f + 2` for
    /// [`Translated::corrected`].
    #[must_use]
    pub fn rounds_per_macro(&self) -> u64 {
        self.relay_rounds + 1
    }

    /// The wrapped algorithm.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The number of micro-rounds needed to execute `macro_rounds` inner
    /// rounds.
    #[must_use]
    pub fn micro_rounds_for(&self, macro_rounds: u64) -> u64 {
        macro_rounds * self.rounds_per_macro()
    }
}

/// State of the translation: the inner state plus the relay bookkeeping.
pub struct TranslatedState<A: HoAlgorithm> {
    /// Inner algorithm state `s_p`.
    pub inner: A::State,
    /// `Listen_p`: processes still listened to in this macro-round.
    pub listen: ProcessSet,
    /// `Known_p`: the `⟨message, origin⟩` pairs collected this macro-round.
    pub known: Vec<(ProcessId, A::Message)>,
    /// `NewHO_p` of the last completed macro-round (for analysis: Theorem 8
    /// is checked against these sets).
    pub last_new_ho: Option<ProcessSet>,
}

// Manual impls: deriving would wrongly require `A: Clone + Debug` instead of
// bounds on the associated types (which the trait already guarantees).
impl<A: HoAlgorithm> Clone for TranslatedState<A> {
    fn clone(&self) -> Self {
        TranslatedState {
            inner: self.inner.clone(),
            listen: self.listen,
            known: self.known.clone(),
            last_new_ho: self.last_new_ho,
        }
    }
}

impl<A: HoAlgorithm> std::fmt::Debug for TranslatedState<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranslatedState")
            .field("inner", &self.inner)
            .field("listen", &self.listen)
            .field("known", &self.known)
            .field("last_new_ho", &self.last_new_ho)
            .finish()
    }
}

impl<A: HoAlgorithm> TranslatedState<A> {
    fn knows(&self, s: ProcessId) -> bool {
        self.known.iter().any(|(q, _)| *q == s)
    }

    fn add_known(&mut self, s: ProcessId, m: A::Message) {
        if !self.knows(s) {
            self.known.push((s, m));
        }
    }
}

impl<A: HoAlgorithm> HoAlgorithm for Translated<A> {
    type State = TranslatedState<A>;
    type Message = Vec<(ProcessId, A::Message)>;
    type Value = A::Value;

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn init(&self, p: ProcessId, initial_value: A::Value) -> Self::State {
        let inner = self.inner.init(p, initial_value);
        let known = self
            .inner
            .broadcast_message(Round(1), p, &inner)
            .map(|m| vec![(p, m)])
            .unwrap_or_default();
        TranslatedState {
            inner,
            listen: ProcessSet::full(self.n()),
            known,
            last_new_ho: None,
        }
    }

    fn send(&self, _r: Round, _p: ProcessId, state: &Self::State) -> SendPlan<Self::Message> {
        // `send ⟨Known_p⟩ to all`: Known_p is O(n)-sized, so sharing one
        // payload per round (instead of cloning it per destination) takes a
        // relay round from O(n³) copied words down to O(n²).
        SendPlan::broadcast(state.known.clone())
    }

    fn send_into(
        &self,
        _r: Round,
        _p: ProcessId,
        state: &Self::State,
        slot: &mut crate::send_plan::PlanSlot<'_, Self::Message>,
    ) -> u64 {
        // Same plan as `send`; `clone_into` additionally reuses the payload
        // vector's capacity when the slot hands back a unique buffer.
        slot.broadcast_with(|| state.known.clone(), |buf| state.known.clone_into(buf))
    }

    fn transition(
        &self,
        r: Round,
        p: ProcessId,
        state: &mut Self::State,
        mb: &Mailbox<Self::Message>,
    ) {
        let per = self.rounds_per_macro();
        // Listen_p ← Listen_p ∩ {q | ⟨Known_q⟩ received}.
        state.listen = state.listen.intersection(mb.senders());

        if !r.is_phase_end(per) {
            // Relay: union in everything heard from still-listened senders.
            for (q, known_q) in mb.iter() {
                if state.listen.contains(q) {
                    for (s, m) in known_q {
                        state.add_known(*s, m.clone());
                    }
                }
            }
        } else {
            let (macro_round, _) = r.phase(per);
            let n = self.n();
            // NewHO_p: origins vouched for by ≥ n − f listened senders.
            let mut counts = vec![0usize; n];
            let mut payload: Vec<Option<A::Message>> = vec![None; n];
            for (q, known_q) in mb.iter() {
                if !state.listen.contains(q) {
                    continue;
                }
                let mut seen_from_q = ProcessSet::empty();
                for (s, m) in known_q {
                    if !seen_from_q.contains(*s) {
                        seen_from_q.insert(*s);
                        counts[s.index()] += 1;
                        payload[s.index()].get_or_insert_with(|| m.clone());
                    }
                }
            }
            let mut new_ho = ProcessSet::empty();
            let mut inner_mb = Mailbox::empty();
            for s in 0..n {
                if counts[s] >= n - self.f {
                    let sid = ProcessId::new(s);
                    new_ho.insert(sid);
                    inner_mb.push(
                        sid,
                        payload[s].clone().expect("counted origin has a payload"),
                    );
                }
            }
            state.last_new_ho = Some(new_ho);
            // Inner transition for macro-round R, then reset for R + 1.
            self.inner
                .transition(Round(macro_round), p, &mut state.inner, &inner_mb);
            state.listen = ProcessSet::full(n);
            state.known = self
                .inner
                .broadcast_message(Round(macro_round + 1), p, &state.inner)
                .map(|m| vec![(p, m)])
                .unwrap_or_default();
        }
    }

    fn decision(&self, state: &Self::State) -> Option<A::Value> {
        self.inner.decision(&state.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Adversary, FullDelivery, RandomLoss};
    use crate::algorithms::OneThirdRule;
    use crate::executor::RoundExecutor;

    /// Drops a rotating set of `f` senders each micro-round, so every round
    /// still satisfies `P_k(Π0, r, r)` for the surviving `Π0`… but only if
    /// the survivors form a fixed kernel. For the Theorem-8 test we keep a
    /// *fixed* Π0 = {f..n} and let the first `f` processes be unreliable.
    struct KernelAdversary {
        pi0: ProcessSet,
        chaos: RandomLoss,
    }

    impl Adversary for KernelAdversary {
        fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
            self.chaos.fill_ho_sets(r, ho);
            for (p, slot) in ho.iter_mut().enumerate() {
                if self.pi0.contains(ProcessId::new(p)) {
                    // Processes in Π0 hear at least Π0 (P_k), plus noise.
                    *slot = self.pi0.union(*slot);
                }
            }
        }
    }

    #[test]
    fn translated_otr_decides_under_full_delivery() {
        let alg = Translated::new(OneThirdRule::new(4), 1);
        let mut exec = RoundExecutor::new(alg, vec![3u64, 1, 4, 1]);
        let r = exec.run_until_all_decided(&mut FullDelivery, 20).unwrap();
        // Two macro-rounds of f+1 = 2 micro-rounds each.
        assert_eq!(r, Round(4));
        assert!(exec.decisions().iter().all(|d| *d == Some(1)));
    }

    #[test]
    fn theorem8_kernel_rounds_yield_uniform_macro_round() {
        // n = 5, f = 2: Π0 = {2, 3, 4}. Micro rounds satisfy P_k(Π0, ·, ·);
        // every completed macro-round must have NewHO_p identical (= some
        // superset of Π0) across all p ∈ Π0.
        let n = 5;
        let f = 2;
        let pi0 = ProcessSet::from_indices(f..n);
        let alg = Translated::new(OneThirdRule::new(n), f);
        let mut exec = RoundExecutor::new(alg, vec![9u64, 8, 3, 5, 7]);
        let mut adv = KernelAdversary {
            pi0,
            chaos: RandomLoss::new(0.6, 42),
        };
        for _ in 0..4 * (f as u64 + 1) {
            exec.step(&mut adv).unwrap();
            // At each macro-round boundary, compare NewHO across Π0.
            let news: Vec<ProcessSet> = pi0
                .iter()
                .filter_map(|p| exec.states()[p.index()].last_new_ho)
                .collect();
            if news.len() == pi0.len() {
                let first = news[0];
                assert!(
                    news.iter().all(|h| *h == first),
                    "macro-round not space-uniform over Π0: {news:?}"
                );
                assert!(first.is_superset(pi0), "NewHO must contain Π0");
            }
        }
    }

    #[test]
    fn micro_round_accounting() {
        let alg = Translated::new(OneThirdRule::<u64>::new(7), 3);
        assert_eq!(alg.rounds_per_macro(), 4);
        assert_eq!(alg.micro_rounds_for(5), 20);
        assert_eq!(alg.inner().n(), 7);
    }

    #[test]
    #[should_panic(expected = "n > 2f")]
    fn rejects_too_large_f() {
        let _ = Translated::new(OneThirdRule::<u64>::new(4), 2);
    }

    #[test]
    fn safety_under_random_loss() {
        let alg = Translated::new(OneThirdRule::new(5), 1);
        let mut exec = RoundExecutor::new(alg, vec![4u64, 2, 8, 6, 0]);
        let mut adv = RandomLoss::new(0.5, 3);
        exec.run(&mut adv, 120).expect("no safety violation");
    }

    #[test]
    fn listen_shrinks_within_macro_round_and_resets() {
        let n = 3;
        let alg = Translated::new(OneThirdRule::new(n), 1); // 2 micro-rounds
        let mut exec = RoundExecutor::new(alg, vec![1u64, 2, 3]);
        // Micro-round 1: p0 hears only p0 → Listen_0 = {0}.
        let mut adv = crate::adversary::Scripted::new(vec![
            vec![
                ProcessSet::from_indices([0]),
                ProcessSet::full(n),
                ProcessSet::full(n),
            ],
            vec![ProcessSet::full(n); n],
        ]);
        exec.step(&mut adv).unwrap();
        assert_eq!(exec.states()[0].listen, ProcessSet::from_indices([0]));
        // Micro-round 2 ends the macro-round: Listen resets to Π.
        exec.step(&mut adv).unwrap();
        assert_eq!(exec.states()[0].listen, ProcessSet::full(n));
    }
}
