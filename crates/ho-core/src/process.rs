//! Process identifiers and sets of processes.
//!
//! The Heard-Of model is defined over a fixed set of processes
//! `Π = {p_1, …, p_n}`. We represent a process as a dense index
//! ([`ProcessId`]) and a subset of `Π` as a bitset ([`ProcessSet`]),
//! which makes the heard-of sets `HO(p, r)` cheap to store, compare and
//! intersect — predicates evaluate millions of them in the benches.

use std::fmt;

/// Maximum number of processes supported by [`ProcessSet`].
///
/// The bitset is backed by a `u128`; the paper's experiments never need more
/// than a few dozen processes.
pub const MAX_PROCESSES: usize = 128;

/// A process identifier: a dense index in `0..n`.
///
/// The paper writes processes as `p, q ∈ Π`; we identify `Π` with
/// `{0, …, n−1}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} exceeds MAX_PROCESSES ({MAX_PROCESSES})"
        );
        ProcessId(index as u32)
    }

    /// Returns the dense index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId::new(index)
    }
}

/// A subset of the process universe `Π`, stored as a bitset.
///
/// Heard-of sets, kernels, and the synchronous subset `π0` of a good period
/// are all `ProcessSet`s. The universe size `n` is *not* stored; operations
/// that need it (such as [`ProcessSet::complement`]) take it as a parameter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ProcessSet {
    bits: u128,
}

impl ProcessSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        ProcessSet { bits: 0 }
    }

    /// The full set `Π = {0, …, n−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_PROCESSES, "n = {n} exceeds MAX_PROCESSES");
        if n == MAX_PROCESSES {
            ProcessSet { bits: u128::MAX }
        } else {
            ProcessSet {
                bits: (1u128 << n) - 1,
            }
        }
    }

    /// The singleton set `{p}`.
    #[must_use]
    pub fn singleton(p: ProcessId) -> Self {
        ProcessSet {
            bits: 1u128 << p.index(),
        }
    }

    /// Builds a set from an iterator of process ids.
    // Shadows the `FromIterator` impl below on purpose: call sites read
    // `ProcessSet::from_iter(..)` without needing the trait in scope.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }

    /// Builds a set from dense indices.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        ProcessSet::from_iter(iter.into_iter().map(ProcessId::new))
    }

    /// Returns the set `{0, …, k−1}` of the first `k` processes.
    #[must_use]
    pub fn first(k: usize) -> Self {
        ProcessSet::full(k)
    }

    /// Number of processes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Whether `p` is a member.
    #[must_use]
    pub fn contains(self, p: ProcessId) -> bool {
        self.bits & (1u128 << p.index()) != 0
    }

    /// Inserts `p` into the set.
    pub fn insert(&mut self, p: ProcessId) {
        self.bits |= 1u128 << p.index();
    }

    /// Removes `p` from the set.
    pub fn remove(&mut self, p: ProcessId) {
        self.bits &= !(1u128 << p.index());
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & !other.bits,
        }
    }

    /// Complement with respect to a universe of `n` processes
    /// (the paper's `π̄0 = Π \ π0`).
    #[must_use]
    pub fn complement(self, n: usize) -> ProcessSet {
        ProcessSet::full(n).difference(self)
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Whether `self ⊇ other`.
    #[must_use]
    pub fn is_superset(self, other: ProcessSet) -> bool {
        other.is_subset(self)
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = ProcessId> {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(ProcessId::new(i))
            }
        })
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn min(self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            Some(ProcessId::new(self.bits.trailing_zeros() as usize))
        }
    }

    /// Removes the smallest member (no-op on the empty set). One
    /// `bits & (bits − 1)` — cheaper than [`ProcessSet::remove`]'s variable
    /// 128-bit shift, which matters to iteration-style consumers.
    pub fn drop_min(&mut self) {
        self.bits &= self.bits.wrapping_sub(1);
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        ProcessSet::from_iter(iter)
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Box<dyn Iterator<Item = ProcessId>>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_contains() {
        let p = ProcessId::new(3);
        let s = ProcessSet::singleton(p);
        assert!(s.contains(p));
        assert!(!s.contains(ProcessId::new(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_set_has_n_members() {
        for n in [0, 1, 5, 64, 127, 128] {
            let s = ProcessSet::full(n);
            assert_eq!(s.len(), n);
            for i in 0..n {
                assert!(s.contains(ProcessId::new(i)));
            }
        }
    }

    #[test]
    fn union_intersection_difference() {
        let a = ProcessSet::from_indices([0, 1, 2]);
        let b = ProcessSet::from_indices([2, 3]);
        assert_eq!(a.union(b), ProcessSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ProcessSet::from_indices([2]));
        assert_eq!(a.difference(b), ProcessSet::from_indices([0, 1]));
    }

    #[test]
    fn complement_respects_universe() {
        let a = ProcessSet::from_indices([0, 2]);
        assert_eq!(a.complement(4), ProcessSet::from_indices([1, 3]));
    }

    #[test]
    fn subset_superset() {
        let a = ProcessSet::from_indices([1, 2]);
        let b = ProcessSet::from_indices([0, 1, 2, 3]);
        assert!(a.is_subset(b));
        assert!(b.is_superset(a));
        assert!(!b.is_subset(a));
        assert!(ProcessSet::empty().is_subset(a));
    }

    #[test]
    fn iter_in_order() {
        let a = ProcessSet::from_indices([5, 1, 9]);
        let v: Vec<usize> = a.iter().map(ProcessId::index).collect();
        assert_eq!(v, vec![1, 5, 9]);
    }

    #[test]
    fn min_member() {
        assert_eq!(ProcessSet::empty().min(), None);
        assert_eq!(
            ProcessSet::from_indices([7, 3]).min(),
            Some(ProcessId::new(3))
        );
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::empty();
        s.insert(ProcessId::new(10));
        assert!(s.contains(ProcessId::new(10)));
        s.remove(ProcessId::new(10));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PROCESSES")]
    fn process_id_bound_checked() {
        let _ = ProcessId::new(MAX_PROCESSES);
    }

    #[test]
    fn debug_format() {
        let s = ProcessSet::from_indices([0, 2]);
        assert_eq!(format!("{s:?}"), "{p0,p2}");
    }
}
