//! Contact plans: deterministic schedules of directed link up/down
//! intervals — the DTN-style disruption the memoryless fault zoo
//! (crash, lossy, partition) cannot express.
//!
//! A [`ContactPlan`] is a pure function from `(seed, n, round)` to a
//! connectivity [`Phase`]: which directed links carry messages in that
//! round. The same spec drives both execution layers:
//!
//! * the round-synchronous layer through [`ContactPlanAdversary`]
//!   (scratch-buffer [`Adversary`], zero allocations per round), and
//! * the real-valued-time layer through `ho-sim`'s link schedule, which
//!   maps simulation time onto plan rounds and consults
//!   [`ContactPlan::link_up`] at every transmission.
//!
//! Every plan ends in a *guaranteed-good* suffix: from
//! [`ContactPlan::good_from`] on, all links are permanently up. That
//! round is the reference point for graceful-degradation metrics — how
//! late predicate windows arrive, and how long a reconnecting replica
//! takes to catch up — and the bound the CI smoke job enforces.
//!
//! All plan decisions (block rotation, contact pairs, the dark replica)
//! derive from [`contact_seed`], a SplitMix64-style stream split that is
//! golden-pinned in `tests/rsm_properties.rs` so plans stay reproducible
//! across refactors, like `shard_seed`.

use crate::adversary::Adversary;
use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// Derives the decision stream for one contact-plan choice point: `salt`
/// names the choice (cycle index, window index, a role constant), `seed`
/// is the scenario seed. SplitMix64-style finalizer; the constants are
/// load-bearing — golden-pinned, do not change.
#[must_use]
pub fn contact_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .rotate_left(17)
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt naming the store-and-forward dark-replica choice.
const DARK_REPLICA_SALT: u64 = 0x5af0;

/// The connectivity of one round under a contact plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Every directed link is up.
    AllUp,
    /// An episodic partition: links are up only within each block.
    Blocks {
        /// One side of the split.
        a: ProcessSet,
        /// The other side (`b = Π \ a`).
        b: ProcessSet,
    },
    /// A contact window: links are up only among `set`; every process
    /// outside it is dark for the round.
    Contact {
        /// The processes currently in contact.
        set: ProcessSet,
    },
    /// A store-and-forward gap: all links touching `dark` are down; the
    /// rest of the system is fully connected.
    Isolated {
        /// The dark process.
        dark: ProcessId,
    },
}

impl Phase {
    /// Whether the directed link `from → to` carries messages in this
    /// phase. Self-delivery (`from == to`) is always up.
    #[must_use]
    pub fn link_up(self, from: ProcessId, to: ProcessId) -> bool {
        if from == to {
            return true;
        }
        match self {
            Phase::AllUp => true,
            Phase::Blocks { a, .. } => a.contains(from) == a.contains(to),
            Phase::Contact { set } => set.contains(from) && set.contains(to),
            Phase::Isolated { dark } => from != dark && to != dark,
        }
    }
}

/// A seed-deterministic schedule of directed link up/down intervals.
///
/// All intervals are in *plan rounds* (1-based); the sim layer maps
/// real-valued time onto them with a fixed round length. Every variant
/// ends in permanent full connectivity at [`ContactPlan::good_from`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContactPlan {
    /// Episodic partitions: `cycles` cycles of `dark` rounds split into
    /// two blocks (membership rotated per cycle by the seed stream)
    /// followed by `bright` fully-connected rounds; then permanently up.
    Episodic {
        /// Partitioned rounds per cycle.
        dark: u32,
        /// Fully-connected rounds per cycle.
        bright: u32,
        /// Number of dark/bright cycles before the good suffix.
        cycles: u32,
    },
    /// Rotating contact windows: for `windows` windows of `window`
    /// rounds each, only a seed-chosen pair of processes is in contact
    /// (everyone else is dark); then permanently up.
    Rotating {
        /// Rounds per contact window.
        window: u32,
        /// Number of windows before the good suffix.
        windows: u32,
    },
    /// A store-and-forward gap: one seed-chosen replica is dark for
    /// rounds `1..=dark` — it hears only itself and nobody hears it —
    /// while the rest of the system stays fully connected; then the
    /// replica reconnects for good and bounded backfill is its only
    /// path back to the log frontier.
    StoreAndForward {
        /// Length of the dark prefix in rounds.
        dark: u32,
    },
}

impl ContactPlan {
    /// The connectivity phase of plan round `round` (1-based) in a
    /// system of `n` processes, under `seed`. Pure and allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — a one-process system has no links to
    /// schedule.
    #[must_use]
    pub fn phase(&self, seed: u64, n: usize, round: u64) -> Phase {
        assert!(n >= 2, "contact plans need at least two processes");
        if round >= self.good_from() {
            return Phase::AllUp;
        }
        match *self {
            ContactPlan::Episodic { dark, bright, .. } => {
                let period = u64::from(dark) + u64::from(bright);
                let cycle = (round - 1) / period;
                let pos = (round - 1) % period;
                if pos >= u64::from(dark) {
                    return Phase::AllUp;
                }
                // Rotate which processes share a block every cycle: the
                // shifted index decides the side, so membership drifts
                // through the whole ring as cycles pass.
                let rot = (contact_seed(seed, cycle) % n as u64) as usize;
                let half = n.div_ceil(2);
                let a = ProcessSet::from_indices((0..n).filter(|&p| (p + rot) % n < half));
                Phase::Blocks {
                    a,
                    b: a.complement(n),
                }
            }
            ContactPlan::Rotating { window, .. } => {
                let w = (round - 1) / u64::from(window);
                let k = contact_seed(seed, w);
                let a = (k % n as u64) as usize;
                let b = (a + 1 + ((k >> 32) % (n as u64 - 1)) as usize) % n;
                Phase::Contact {
                    set: ProcessSet::from_indices([a, b]),
                }
            }
            ContactPlan::StoreAndForward { .. } => Phase::Isolated {
                dark: self.dark_replica(seed, n),
            },
        }
    }

    /// Whether the directed link `from → to` is up in plan round
    /// `round` — the one-spec chokepoint both execution layers consult.
    #[must_use]
    pub fn link_up(&self, seed: u64, n: usize, round: u64, from: ProcessId, to: ProcessId) -> bool {
        self.phase(seed, n, round).link_up(from, to)
    }

    /// The first round of the permanent fully-connected suffix — the
    /// plan's *guaranteed-good* point. Degradation metrics (predicate
    /// lateness, catch-up latency) are measured from here.
    #[must_use]
    pub fn good_from(&self) -> u64 {
        match *self {
            ContactPlan::Episodic {
                dark,
                bright,
                cycles,
            } => {
                let period = u64::from(dark) + u64::from(bright);
                // The last cycle's bright rounds already run connected,
                // so the suffix starts right after its dark prefix.
                (u64::from(cycles).saturating_sub(1)) * period + u64::from(dark) + 1
            }
            ContactPlan::Rotating { window, windows } => u64::from(window) * u64::from(windows) + 1,
            ContactPlan::StoreAndForward { dark } => u64::from(dark) + 1,
        }
    }

    /// The store-and-forward dark replica under `seed` (seed-chosen so
    /// no process index is structurally privileged across the grid).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn dark_replica(&self, seed: u64, n: usize) -> ProcessId {
        assert!(n > 0, "empty system");
        ProcessId::new((contact_seed(seed, DARK_REPLICA_SALT) % n as u64) as usize)
    }

    /// Counts dark process-rounds over `1..=rounds`: pairs `(p, r)` in
    /// which `p`'s only contact is itself (it hears nobody and nobody
    /// hears it) — the graceful-degradation denominator reported per
    /// plan in `BENCH_sweep.json`.
    #[must_use]
    pub fn dark_rounds(&self, seed: u64, n: usize, rounds: u64) -> u64 {
        let mut dark = 0;
        for r in 1..=rounds {
            match self.phase(seed, n, r) {
                Phase::AllUp | Phase::Blocks { .. } => {}
                Phase::Contact { set } => dark += (n - set.len()) as u64,
                Phase::Isolated { .. } => dark += 1,
            }
        }
        dark
    }

    /// A short, dot-free label for scenario ids (`.` never appears, so
    /// contact-plan ids stay grep- and filesystem-safe).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ContactPlan::Episodic {
                dark,
                bright,
                cycles,
            } => format!("contact_episodic_d{dark}b{bright}c{cycles}"),
            ContactPlan::Rotating { window, windows } => {
                format!("contact_rotating_w{window}x{windows}")
            }
            ContactPlan::StoreAndForward { dark } => format!("contact_store_forward_d{dark}"),
        }
    }
}

/// The round-synchronous implementation of a [`ContactPlan`]: an
/// [`Adversary`] whose HO sets are exactly the processes with an up link
/// into each destination. Pure per-round arithmetic over `Copy` bitsets
/// — zero allocations in steady state (counting-allocator proven in
/// `tests/alloc_steady_state.rs`).
#[derive(Clone, Copy, Debug)]
pub struct ContactPlanAdversary {
    plan: ContactPlan,
    seed: u64,
}

impl ContactPlanAdversary {
    /// An adversary executing `plan` under `seed`.
    #[must_use]
    pub fn new(plan: ContactPlan, seed: u64) -> Self {
        ContactPlanAdversary { plan, seed }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> ContactPlan {
        self.plan
    }
}

impl Adversary for ContactPlanAdversary {
    fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
        let n = ho.len();
        match self.plan.phase(self.seed, n, r.get()) {
            Phase::AllUp => ho.fill(ProcessSet::full(n)),
            Phase::Blocks { a, b } => {
                for (p, slot) in ho.iter_mut().enumerate() {
                    *slot = if a.contains(ProcessId::new(p)) { a } else { b };
                }
            }
            Phase::Contact { set } => {
                for (p, slot) in ho.iter_mut().enumerate() {
                    let p = ProcessId::new(p);
                    *slot = if set.contains(p) {
                        set
                    } else {
                        ProcessSet::singleton(p)
                    };
                }
            }
            Phase::Isolated { dark } => {
                let mut up = ProcessSet::full(n);
                up.remove(dark);
                for (p, slot) in ho.iter_mut().enumerate() {
                    let p = ProcessId::new(p);
                    *slot = if p == dark {
                        ProcessSet::singleton(p)
                    } else {
                        up
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(plan: ContactPlan, seed: u64, n: usize, r: u64) -> Vec<ProcessSet> {
        ContactPlanAdversary::new(plan, seed).ho_sets(Round(r), n)
    }

    #[test]
    fn episodic_alternates_partition_and_full_delivery() {
        let plan = ContactPlan::Episodic {
            dark: 3,
            bright: 2,
            cycles: 2,
        };
        // Dark rounds: two disjoint blocks covering Π, each hearing
        // itself only.
        for r in [1, 3, 6, 8] {
            let ho = fill(plan, 42, 4, r);
            let Phase::Blocks { a, b } = plan.phase(42, 4, r) else {
                panic!("round {r} must be partitioned");
            };
            assert_eq!(a.union(b), ProcessSet::full(4));
            assert!(a.intersection(b).is_empty());
            for (p, &set) in ho.iter().enumerate() {
                assert!(set == a || set == b);
                assert!(set.contains(ProcessId::new(p)));
            }
        }
        // Bright rounds and the good suffix: full delivery.
        for r in [4, 5, 9, 10, 11, 500] {
            assert!(
                fill(plan, 42, 4, r)
                    .iter()
                    .all(|&s| s == ProcessSet::full(4)),
                "round {r} must be fully connected"
            );
        }
        assert_eq!(plan.good_from(), 9, "last dark round is 8");
    }

    #[test]
    fn episodic_blocks_rotate_between_cycles() {
        let plan = ContactPlan::Episodic {
            dark: 4,
            bright: 2,
            cycles: 8,
        };
        let phases: Vec<Phase> = (0..8).map(|c| plan.phase(7, 5, c * 6 + 1)).collect();
        assert!(
            phases.windows(2).any(|w| w[0] != w[1]),
            "block membership must drift across cycles: {phases:?}"
        );
    }

    #[test]
    fn rotating_contact_isolates_everyone_else() {
        let plan = ContactPlan::Rotating {
            window: 5,
            windows: 4,
        };
        for r in 1..=20 {
            let ho = fill(plan, 9, 6, r);
            let Phase::Contact { set } = plan.phase(9, 6, r) else {
                panic!("round {r} is within the rotation");
            };
            assert_eq!(set.len(), 2, "contact pairs");
            for (p, &s) in ho.iter().enumerate() {
                let p = ProcessId::new(p);
                if set.contains(p) {
                    assert_eq!(s, set);
                } else {
                    assert_eq!(s, ProcessSet::singleton(p), "round {r}: {p} is dark");
                }
            }
        }
        assert_eq!(plan.good_from(), 21);
        assert!(fill(plan, 9, 6, 21)
            .iter()
            .all(|&s| s == ProcessSet::full(6)));
        // The pair rotates with the seed stream.
        let pair = |r| match plan.phase(9, 6, r) {
            Phase::Contact { set } => set,
            _ => unreachable!(),
        };
        assert!(
            (1..4).any(|w| pair(w * 5 + 1) != pair(1)),
            "contact pair must rotate across windows"
        );
    }

    #[test]
    fn store_and_forward_darkens_exactly_one_replica() {
        let plan = ContactPlan::StoreAndForward { dark: 2000 };
        let d = plan.dark_replica(3, 4);
        for r in [1, 999, 2000] {
            let ho = fill(plan, 3, 4, r);
            assert_eq!(ho[d.index()], ProcessSet::singleton(d), "round {r}");
            for (p, &s) in ho.iter().enumerate() {
                if p != d.index() {
                    assert!(!s.contains(d), "round {r}: nobody hears {d}");
                    assert_eq!(s.len(), 3, "round {r}: the rest stay connected");
                }
            }
        }
        assert_eq!(plan.good_from(), 2001);
        assert!(fill(plan, 3, 4, 2001)
            .iter()
            .all(|&s| s == ProcessSet::full(4)));
        assert_eq!(plan.dark_rounds(3, 4, 2500), 2000);
    }

    #[test]
    fn dark_replica_choice_varies_with_the_seed() {
        let plan = ContactPlan::StoreAndForward { dark: 10 };
        let choices: Vec<ProcessId> = (0..16).map(|s| plan.dark_replica(s, 4)).collect();
        assert!(choices.windows(2).any(|w| w[0] != w[1]), "{choices:?}");
    }

    #[test]
    fn link_up_matches_the_adversary_ho_sets() {
        // The sim layer consults link_up; the model layer fills HO sets.
        // They must be two views of the same function.
        let plans = [
            ContactPlan::Episodic {
                dark: 3,
                bright: 2,
                cycles: 3,
            },
            ContactPlan::Rotating {
                window: 2,
                windows: 5,
            },
            ContactPlan::StoreAndForward { dark: 7 },
        ];
        for plan in plans {
            for seed in 0..4 {
                for r in 1..=18 {
                    let ho = fill(plan, seed, 5, r);
                    for (p, row) in ho.iter().enumerate() {
                        for q in 0..5 {
                            let expected = row.contains(ProcessId::new(q));
                            let got =
                                plan.link_up(seed, 5, r, ProcessId::new(q), ProcessId::new(p));
                            assert_eq!(expected, got, "{plan:?} seed {seed} r {r} {q}->{p}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fill_overwrites_stale_slots() {
        let mut scratch = vec![ProcessSet::full(4); 4];
        let plan = ContactPlan::Rotating {
            window: 4,
            windows: 2,
        };
        ContactPlanAdversary::new(plan, 1).fill_ho_sets(Round(1), &mut scratch);
        let Phase::Contact { set } = plan.phase(1, 4, 1) else {
            panic!("round 1 is a contact window");
        };
        for (p, &s) in scratch.iter().enumerate() {
            let p = ProcessId::new(p);
            if !set.contains(p) {
                assert_eq!(s, ProcessSet::singleton(p), "stale slot survived");
            }
        }
    }

    #[test]
    fn plans_are_deterministic_under_seed() {
        let plan = ContactPlan::Episodic {
            dark: 5,
            bright: 3,
            cycles: 4,
        };
        for r in 1..=40 {
            assert_eq!(fill(plan, 11, 7, r), fill(plan, 11, 7, r));
        }
        assert_ne!(
            (1..=20).map(|r| fill(plan, 11, 7, r)).collect::<Vec<_>>(),
            (1..=20).map(|r| fill(plan, 12, 7, r)).collect::<Vec<_>>(),
            "different seeds rotate differently"
        );
    }

    #[test]
    fn labels_are_dot_free_and_distinct() {
        let labels = [
            ContactPlan::Episodic {
                dark: 8,
                bright: 4,
                cycles: 3,
            }
            .label(),
            ContactPlan::Rotating {
                window: 4,
                windows: 6,
            }
            .label(),
            ContactPlan::StoreAndForward { dark: 40 }.label(),
        ];
        for l in &labels {
            assert!(!l.contains('.'), "{l}");
        }
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
