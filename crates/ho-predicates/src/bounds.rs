//! The closed-form good-period bounds of the paper.
//!
//! All formulas are in *normalized* units (`Φ− = 1`, so `φ = Φ+` and
//! `δ = Δ`); multiply by `Φ−` for real-time values. `x` counts rounds of the
//! target predicate window.
//!
//! | Result      | What it bounds |
//! |-------------|----------------|
//! | Theorem 3   | π0-down good period for `P_su(π0, ρ0, ρ0+x−1)` via Alg. 2 |
//! | Corollary 4 | π0-down good period(s) for `P2_otr` / `P1/1_otr` via Alg. 2 |
//! | Theorem 5   | *initial* good period for `P_su(π0, 1, x)` via Alg. 2 |
//! | Theorem 6   | π0-arbitrary good period for `P_k(π0, ρ0+1, ρ0+x)` via Alg. 3 |
//! | Theorem 7   | *initial* good period for `P_k(π0, 1, x)` via Alg. 3 |
//! | §4.2.2(c)   | π0-arbitrary good period for consensus via the full stack |

/// Parameters of the bounds: `n`, normalized `φ = Φ+/Φ−` and `δ = Δ/Φ−`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundParams {
    /// Number of processes.
    pub n: usize,
    /// Normalized process-speed bound `φ ≥ 1`.
    pub phi: f64,
    /// Normalized transmission delay `δ > 0`.
    pub delta: f64,
}

impl BoundParams {
    /// Creates bound parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1`, `φ ≥ 1`, `δ > 0`.
    #[must_use]
    pub fn new(n: usize, phi: f64, delta: f64) -> Self {
        assert!(
            n >= 1 && phi >= 1.0 && delta > 0.0,
            "invalid bound parameters"
        );
        BoundParams { n, phi, delta }
    }

    fn nf(&self) -> f64 {
        self.n as f64
    }

    /// Algorithm 2's receive-step budget per round: `⌈2δ + (n+2)φ⌉`
    /// (line 12 of Algorithm 2).
    #[must_use]
    pub fn alg2_timeout(&self) -> u64 {
        (2.0 * self.delta + (self.nf() + 2.0) * self.phi).ceil() as u64
    }

    /// Observation slack on top of the Theorem 3/5 bounds for Algorithm 2
    /// measurements: the theorems count message *reception*, but a harness
    /// observes `HO(p, r)` only when `T_p^r` executes — one Δ-delayed
    /// delivery plus a step later.
    #[must_use]
    pub fn alg2_slack(&self) -> f64 {
        self.delta + self.phi + 1.0
    }

    /// Observation slack on top of the Theorem 6/7 bounds for Algorithm 3
    /// measurements: the final transition trails the bound by one INIT
    /// exchange — post-timeout steps alternate receive / INIT-resend, up
    /// to `δ + (2n+2)φ`.
    #[must_use]
    pub fn alg3_slack(&self) -> f64 {
        self.delta + (2.0 * self.nf() + 2.0) * self.phi + 1.0
    }

    /// Algorithm 3's timeout `τ0 = 2δ + (2n+1)φ` (line 19 of Algorithm 3),
    /// in receive steps: `⌈τ0⌉`.
    #[must_use]
    pub fn alg3_timeout(&self) -> u64 {
        self.tau0().ceil() as u64
    }

    /// `τ0 = 2δ + (2n+1)φ` as a real value.
    #[must_use]
    pub fn tau0(&self) -> f64 {
        2.0 * self.delta + (2.0 * self.nf() + 1.0) * self.phi
    }

    /// **Theorem 3**: minimal length of a (non-initial) π0-down good period
    /// for `P_su(π0, ρ0, ρ0+x−1)` with Algorithm 2:
    /// `(x+1)(2δ+(n+2)φ+1)φ + δ + φ`.
    #[must_use]
    pub fn theorem3(&self, x: u64) -> f64 {
        let round = 2.0 * self.delta + (self.nf() + 2.0) * self.phi + 1.0;
        (x as f64 + 1.0) * round * self.phi + self.delta + self.phi
    }

    /// **Corollary 4**, first part: one π0-down good period implementing
    /// `P2_otr(π0)` — Theorem 3 with `x = 2`:
    /// `(6δ + 3nφ + 6φ + 3)φ + δ + φ`.
    #[must_use]
    pub fn corollary4_p2otr(&self) -> f64 {
        self.theorem3(2)
    }

    /// **Corollary 4**, second part: each of the *two* π0-down good periods
    /// implementing `P1/1_otr(π0)` — Theorem 3 with `x = 1`:
    /// `(4δ + 2nφ + 4φ + 2)φ + δ + φ`.
    #[must_use]
    pub fn corollary4_p11otr_each(&self) -> f64 {
        self.theorem3(1)
    }

    /// Total good time needed by the `P1/1_otr` route (two periods).
    #[must_use]
    pub fn corollary4_p11otr_total(&self) -> f64 {
        2.0 * self.corollary4_p11otr_each()
    }

    /// **Theorem 5**: minimal length of an *initial* π0-down good period
    /// for `P_su(π0, 1, x)` with Algorithm 2: `x(2δ+(n+2)φ+1)φ`.
    #[must_use]
    pub fn theorem5(&self, x: u64) -> f64 {
        let round = 2.0 * self.delta + (self.nf() + 2.0) * self.phi + 1.0;
        x as f64 * round * self.phi
    }

    /// The per-round cost of Algorithm 3 in a good period:
    /// `τ0·φ + δ + nφ + 2φ` (proof of Theorem 6).
    #[must_use]
    pub fn alg3_round_cost(&self) -> f64 {
        self.tau0() * self.phi + self.delta + self.nf() * self.phi + 2.0 * self.phi
    }

    /// **Theorem 6**: minimal length of a (non-initial) π0-arbitrary good
    /// period for `P_k(π0, ρ0+1, ρ0+x)` with Algorithm 3 (`f < n/2`):
    /// `(x+2)[(2δ+2nφ+φ)φ + δ + nφ + 2φ] + (2δ+2nφ+φ)φ`.
    #[must_use]
    pub fn theorem6(&self, x: u64) -> f64 {
        (x as f64 + 2.0) * self.alg3_round_cost() + self.tau0() * self.phi
    }

    /// **Theorem 7**: minimal length of an *initial* π0-arbitrary good
    /// period for `P_k(π0, 1, x)` with Algorithm 3:
    /// `(x−1)[τ0φ + δ + nφ + 2φ] + τ0φ + φ`.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    #[must_use]
    pub fn theorem7(&self, x: u64) -> f64 {
        assert!(x >= 1, "need at least one round");
        (x as f64 - 1.0) * self.alg3_round_cost() + self.tau0() * self.phi + self.phi
    }

    /// **§4.2.2(c)**: minimal π0-arbitrary good period for consensus via
    /// the full stack (Algorithm 3 + Algorithm 4 + OneThirdRule): `2f + 3`
    /// kernel rounds, i.e. `(2f+5)[τ0φ + δ + nφ + 2φ] + τ0φ`.
    #[must_use]
    pub fn full_stack(&self, f: usize) -> f64 {
        (2.0 * f as f64 + 5.0) * self.alg3_round_cost() + self.tau0() * self.phi
    }

    /// The "nice vs not-nice" ratio the paper highlights: Theorem 3 over
    /// Theorem 5 at the same `x` (≈ 3/2 for the relevant `x = 2`).
    #[must_use]
    pub fn nice_ratio(&self, x: u64) -> f64 {
        self.theorem3(x) / self.theorem5(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BoundParams {
        BoundParams::new(4, 1.0, 2.0)
    }

    #[test]
    fn theorem3_matches_expanded_form() {
        // (x+1)(2δ+(n+2)φ+1)φ + δ + φ with n=4, φ=1, δ=2, x=2:
        // 3·(4 + 6 + 1)·1 + 2 + 1 = 36.
        assert!((params().theorem3(2) - 36.0).abs() < 1e-12);
    }

    #[test]
    fn corollary4_expansions_agree() {
        // Corollary 4 states (6δ+3nφ+6φ+3)φ+δ+φ for P2_otr; check it equals
        // Theorem 3 at x = 2 for several parameter sets.
        for n in [3usize, 4, 7, 10] {
            for phi in [1.0, 1.5, 2.0] {
                for delta in [0.5, 2.0, 10.0] {
                    let p = BoundParams::new(n, phi, delta);
                    let lit =
                        (6.0 * delta + 3.0 * n as f64 * phi + 6.0 * phi + 3.0) * phi + delta + phi;
                    assert!((p.corollary4_p2otr() - lit).abs() < 1e-9);
                    let lit11 =
                        (4.0 * delta + 2.0 * n as f64 * phi + 4.0 * phi + 2.0) * phi + delta + phi;
                    assert!((p.corollary4_p11otr_each() - lit11).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn theorem5_is_x_rounds() {
        // x(2δ+(n+2)φ+1)φ = 2·11·1 = 22 for x=2.
        assert!((params().theorem5(2) - 22.0).abs() < 1e-12);
    }

    #[test]
    fn nice_ratio_is_about_three_halves() {
        // The paper: "a factor of approximately 3/2 between the two cases
        // for the relevant value x = 2".
        for n in [4usize, 7, 16] {
            let p = BoundParams::new(n, 1.0, 5.0);
            let r = p.nice_ratio(2);
            assert!(r > 1.4 && r < 1.7, "ratio {r} not ≈ 3/2");
        }
    }

    #[test]
    fn tau0_and_timeouts() {
        let p = params();
        assert!((p.tau0() - (4.0 + 9.0)).abs() < 1e-12);
        assert_eq!(p.alg3_timeout(), 13);
        assert_eq!(p.alg2_timeout(), 10); // 2·2 + 6·1 = 10
    }

    #[test]
    fn theorem6_grows_linearly_in_x() {
        let p = params();
        let d1 = p.theorem6(2) - p.theorem6(1);
        let d2 = p.theorem6(3) - p.theorem6(2);
        assert!((d1 - d2).abs() < 1e-9, "linear in x");
        assert!((d1 - p.alg3_round_cost()).abs() < 1e-9);
    }

    #[test]
    fn theorem7_below_theorem6() {
        // Initial good periods are cheaper than mid-run ones.
        let p = params();
        for x in 1..6 {
            assert!(p.theorem7(x) < p.theorem6(x));
        }
    }

    #[test]
    fn full_stack_grows_linearly_in_f() {
        let p = BoundParams::new(9, 1.0, 2.0);
        let d = p.full_stack(2) - p.full_stack(1);
        assert!((d - 2.0 * p.alg3_round_cost()).abs() < 1e-9);
    }

    #[test]
    fn p2otr_total_vs_p11otr_total_tradeoff() {
        // One long period (P2_otr) needs more *contiguous* good time than
        // either of the two shorter P1/1_otr periods, but less total.
        let p = params();
        assert!(p.corollary4_p2otr() > p.corollary4_p11otr_each());
        assert!(p.corollary4_p2otr() < p.corollary4_p11otr_total());
    }

    #[test]
    #[should_panic(expected = "invalid bound parameters")]
    fn rejects_bad_params() {
        let _ = BoundParams::new(0, 1.0, 1.0);
    }
}
