//! **Algorithm 3**: ensuring `P_k(π0, ·, ·)` in a *π0-arbitrary* good
//! period (requires `f < n/2`).
//!
//! ```text
//! Reception policy: highest round message from each process, round-robin
//! rp ← 1 ; next_rp ← 1 ; sp ← init_p            (rp, sp on stable storage)
//! while true:
//!   msg ← S_p^rp(sp) ; send ⟨ROUND, rp, msg⟩ to all
//!   i ← 0
//!   while next_rp = rp:
//!     receive a message
//!     if ⟨ROUND, msg, r′⟩ or ⟨INIT, msg, r′+1⟩ from q:
//!       store ⟨msg, r′, q⟩ ; if r′ > rp: next_rp ← r′
//!     if f+1 ⟨INIT, rp+1, −⟩ from distinct processes:
//!       next_rp ← max(rp + 1, next_rp)
//!     i ← i + 1
//!     if i ≥ 2δ + (2n+1)φ: send ⟨INIT, rp+1, msg⟩ to all
//!   R ← messages stored for round rp ; sp ← T_p^rp(R, sp)
//!   forall r′ ∈ [rp+1, next_rp−1]: sp ← T_p^{r′}(∅, sp)
//!   rp ← next_rp
//! ```
//!
//! Key differences from Byzantine clock synchronization (§4.2.2): a process
//! that merely *intends* to advance announces it with INIT; `f + 1` INIT
//! announcements — at least one from a correct process in `π0` — let
//! everyone advance, and a single ROUND message from a higher round drags a
//! late process forward immediately, giving fast synchronization at the
//! start of a good period.

use ho_core::algorithm::{HoAlgorithm, HoAlgorithmExt};
use ho_core::executor::MessageStats;
use ho_core::pool::PooledPayload;
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::round::Round;
use ho_core::Mailbox;
use ho_sim::program::{policy, Program, StepKind, WireMsg};

use crate::record::{BoundedLog, RoundLog, RoundRecord};
use crate::send_path::{fill_round_mailbox, SendPath};
use crate::StoredMsgs;

/// The wire format of Algorithm 3.
///
/// Payloads are the upper layer's [`SendPlan`](ho_core::SendPlan) broadcast
/// payloads, carried as generation-stamped pool handles
/// (see [`Alg2Msg`](crate::Alg2Msg)).
#[derive(Clone, Debug, PartialEq)]
pub enum Alg3Msg<M> {
    /// `⟨ROUND, r, msg⟩`: the sender is in round `r`; `msg` is the upper
    /// layer's round-`r` message.
    Round {
        /// The sender's round.
        round: u64,
        /// Upper-layer payload for `round`.
        payload: Option<PooledPayload<M>>,
    },
    /// `⟨INIT, ρ, msg⟩`: the sender wants to enter round `ρ`; `msg` is its
    /// round-`ρ−1` message (so an INIT also counts as a round-`ρ−1`
    /// message).
    Init {
        /// The round the sender wants to enter.
        round: u64,
        /// Upper-layer payload for `round − 1`.
        payload: Option<PooledPayload<M>>,
    },
}

impl<M> Alg3Msg<M> {
    /// Builds a ROUND message, wrapping the payload for shared fan-out.
    #[must_use]
    pub fn round(round: u64, payload: Option<M>) -> Self {
        Alg3Msg::Round {
            round,
            payload: payload.map(PooledPayload::new),
        }
    }

    /// Builds an INIT message, wrapping the payload for shared fan-out.
    #[must_use]
    pub fn init(round: u64, payload: Option<M>) -> Self {
        Alg3Msg::Init {
            round,
            payload: payload.map(PooledPayload::new),
        }
    }

    /// The round number used by the reception policy (the wire round).
    #[must_use]
    pub fn wire_round(&self) -> u64 {
        match self {
            Alg3Msg::Round { round, .. } | Alg3Msg::Init { round, .. } => *round,
        }
    }

    /// The round this message *contributes a payload to*: `r` for ROUND
    /// messages, `ρ − 1` for INIT messages.
    #[must_use]
    pub fn content_round(&self) -> u64 {
        match self {
            Alg3Msg::Round { round, .. } => *round,
            Alg3Msg::Init { round, .. } => round - 1,
        }
    }
}

#[derive(Clone, Debug)]
struct StableImage<S> {
    round: u64,
    state: S,
}

/// How often a stuck process re-announces its INIT once the timeout has
/// passed (ablation knob; the paper's pseudo-code re-announces on every
/// loop iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitResend {
    /// Re-announce after every receive step past the timeout (the paper's
    /// literal reading; guarantees an INIT lands within `τ0 + 1` steps of
    /// any point in a good period).
    #[default]
    EveryStep,
    /// Announce once per round only. Cheaper, but an INIT lost in a bad
    /// period is never replaced — rounds can wedge (see the `ablation`
    /// experiment).
    Once,
}

/// Which reception policy Algorithm 3 uses (ablation knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Alg3Policy {
    /// The paper's policy: highest round per process, round-robin over
    /// processes — no sender can starve another.
    #[default]
    RoundRobin,
    /// Algorithm 2's simpler policy. A process with a backlog of
    /// high-round messages can starve others (this is exactly why the
    /// paper gives Algorithm 3 its own policy).
    HighestFirst,
}

/// Algorithm 3 as a step [`Program`], wrapping any broadcast [`HoAlgorithm`].
#[derive(Clone, Debug)]
pub struct Alg3Program<A: HoAlgorithm> {
    alg: A,
    p: ProcessId,
    /// Resilience parameter (`|π0| = n − f`).
    f: usize,
    /// INIT quorum (defaults to `f + 1`).
    init_quorum: usize,
    /// Receive-step budget `⌈2δ + (2n+1)φ⌉` before INIT announcements.
    timeout: u64,
    /// INIT re-announcement policy.
    resend: InitResend,
    /// Reception policy.
    policy: Alg3Policy,
    /// Whether this round's INIT has been announced (for `InitResend::Once`).
    init_sent_this_round: bool,
    // ---- volatile ----
    state: A::State,
    round: u64,
    next_round: u64,
    msgs: StoredMsgs<A>,
    /// Distinct senders of `⟨INIT, ρ, −⟩` per target round `ρ > round`.
    init_senders: Vec<(u64, ProcessSet)>,
    i: u64,
    mode: Mode,
    recv_steps: u64,
    // ---- the unified send path (shared with `Alg2Program`) ----
    path: SendPath<A, Alg3Msg<A::Message>>,
    mailbox: Mailbox<A::Message>,
    // ---- stable ----
    stable: StableImage<A::State>,
    // ---- observability ----
    records: BoundedLog,
    crashes: u64,
    inits_sent: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    SendRound,
    Recv,
    SendInit,
}

impl<A: HoAlgorithm> Alg3Program<A> {
    /// Creates the program for process `p`.
    ///
    /// `f` is the resilience parameter (`|π0| = n − f`, `f < n/2`);
    /// `timeout` is `⌈2δ + (2n+1)φ⌉` receive steps
    /// (see [`BoundParams::alg3_timeout`](crate::bounds::BoundParams::alg3_timeout)).
    ///
    /// # Panics
    ///
    /// Panics unless `f < n/2` and `timeout ≥ 1`.
    #[must_use]
    pub fn new(alg: A, p: ProcessId, initial_value: A::Value, f: usize, timeout: u64) -> Self {
        assert!(2 * f < alg.n(), "Algorithm 3 requires f < n/2");
        assert!(timeout >= 1, "timeout must be at least one receive step");
        let state = alg.init(p, initial_value);
        Alg3Program {
            stable: StableImage {
                round: 1,
                state: state.clone(),
            },
            alg,
            p,
            f,
            init_quorum: f + 1,
            timeout,
            resend: InitResend::default(),
            policy: Alg3Policy::default(),
            init_sent_this_round: false,
            state,
            round: 1,
            next_round: 1,
            msgs: Vec::new(),
            init_senders: Vec::new(),
            i: 0,
            mode: Mode::SendRound,
            recv_steps: 0,
            path: SendPath::new(),
            mailbox: Mailbox::empty(),
            records: BoundedLog::new(),
            crashes: 0,
            inits_sent: 0,
        }
    }

    /// Caps the observability log at the last `window` executed rounds
    /// (see `Alg2Program::with_record_window`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_record_window(mut self, window: usize) -> Self {
        self.records.set_window(window);
        self
    }

    /// Sets the INIT re-announcement policy (ablation knob).
    #[must_use]
    pub fn with_resend(mut self, resend: InitResend) -> Self {
        self.resend = resend;
        self
    }

    /// Sets the reception policy (ablation knob).
    #[must_use]
    pub fn with_policy(mut self, policy: Alg3Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the INIT quorum (default `f + 1`; §5 notes that varying
    /// the quorums for INIT and ROUND messages goes back to [20, 24]).
    ///
    /// # Panics
    ///
    /// Panics if `quorum == 0`.
    #[must_use]
    pub fn with_init_quorum(mut self, quorum: usize) -> Self {
        assert!(quorum > 0, "INIT quorum must be positive");
        self.init_quorum = quorum;
        self
    }

    /// The upper-layer algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// Current upper-layer state `s_p`.
    #[must_use]
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// Current round `r_p`.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The resilience parameter `f` (`|π0| = n − f`).
    #[must_use]
    pub fn resilience(&self) -> usize {
        self.f
    }

    /// The INIT quorum in force (default `f + 1`).
    #[must_use]
    pub fn init_quorum(&self) -> usize {
        self.init_quorum
    }

    /// The upper layer's decision, if reached.
    #[must_use]
    pub fn decision(&self) -> Option<A::Value> {
        self.alg.decision(&self.state)
    }

    /// Number of crashes survived.
    #[must_use]
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }

    /// Number of INIT broadcasts sent.
    #[must_use]
    pub fn inits_sent(&self) -> u64 {
        self.inits_sent
    }

    fn note_init_sender(&mut self, target: u64, q: ProcessId) -> usize {
        if let Some((_, set)) = self.init_senders.iter_mut().find(|(r, _)| *r == target) {
            set.insert(q);
            return set.len();
        }
        self.init_senders.push((target, ProcessSet::singleton(q)));
        1
    }

    /// Evaluates `S_p^r` through the shared pool-backed send path and
    /// wraps it in the wire envelope — ROUND for the round broadcast,
    /// INIT for announcements. Both constructions land in recycled pool
    /// slots in steady state.
    fn emit_wire(&mut self, init: bool) -> StepKind<Alg3Msg<A::Message>> {
        let wire_round = if init { self.round + 1 } else { self.round };
        self.path.emit(
            &self.alg,
            Round(self.round),
            self.p,
            &self.state,
            |payload| {
                if init {
                    Alg3Msg::Init {
                        round: wire_round,
                        payload,
                    }
                } else {
                    Alg3Msg::Round {
                        round: wire_round,
                        payload,
                    }
                }
            },
        )
    }

    fn finish_round(&mut self) {
        debug_assert!(self.next_round > self.round);
        let r = self.round;
        fill_round_mailbox::<A>(&mut self.mailbox, &self.msgs, r);
        self.alg
            .transition(Round(r), self.p, &mut self.state, &self.mailbox);
        self.records.push(RoundRecord {
            round: r,
            ho: self.mailbox.senders(),
        });
        for r_skip in (r + 1)..self.next_round {
            self.alg
                .apply_empty_rounds(self.p, &mut self.state, Round(r_skip), Round(r_skip + 1));
            self.records.push(RoundRecord {
                round: r_skip,
                ho: ProcessSet::empty(),
            });
        }
        self.round = self.next_round;
        self.msgs.retain(|(_, mr, _)| *mr >= self.round);
        self.init_senders.retain(|(r, _)| *r > self.round);
        self.stable = StableImage {
            round: self.round,
            state: self.state.clone(),
        };
        self.mode = Mode::SendRound;
        self.i = 0;
        self.init_sent_this_round = false;
    }
}

impl<A: HoAlgorithm> Program for Alg3Program<A> {
    type Msg = Alg3Msg<A::Message>;

    fn next_step(&mut self) -> StepKind<Self::Msg> {
        match self.mode {
            Mode::SendRound => {
                self.mode = Mode::Recv;
                self.i = 0;
                self.emit_wire(false)
            }
            Mode::SendInit => {
                self.mode = Mode::Recv;
                self.inits_sent += 1;
                self.init_sent_this_round = true;
                self.emit_wire(true)
            }
            Mode::Recv => {
                self.recv_steps += 1;
                StepKind::Receive
            }
        }
    }

    fn select_message(&mut self, buffer: &[(ProcessId, WireMsg<Self::Msg>)]) -> Option<usize> {
        match self.policy {
            Alg3Policy::RoundRobin => {
                policy::round_robin_highest(buffer, self.recv_steps, self.alg.n(), |m| {
                    m.wire_round()
                })
            }
            Alg3Policy::HighestFirst => policy::highest_round_first(buffer, |m| m.wire_round()),
        }
    }

    fn on_receive(&mut self, message: Option<(ProcessId, WireMsg<Self::Msg>)>) {
        if let Some((q, m)) = message {
            let content = m.content_round();
            if content >= self.round {
                let payload = match &*m {
                    Alg3Msg::Round { payload, .. } | Alg3Msg::Init { payload, .. } => {
                        payload.clone()
                    }
                };
                // Store at most one payload per (round, sender).
                if !self.msgs.iter().any(|(s, mr, _)| *s == q && *mr == content) {
                    self.msgs.push((q, content, payload));
                }
            }
            if content > self.round {
                self.next_round = self.next_round.max(content);
            }
            if let Alg3Msg::Init { round: target, .. } = *m {
                if target > self.round {
                    let distinct = self.note_init_sender(target, q);
                    // Line 16: f + 1 INITs for rp + 1 advance the round.
                    if target == self.round + 1 && distinct >= self.init_quorum {
                        self.next_round = self.next_round.max(self.round + 1);
                    }
                }
            }
        }
        // Lines 18–20: count this receive step; from the timeout on, every
        // further loop iteration re-announces INIT (one send step each).
        self.i += 1;
        if self.next_round > self.round {
            self.finish_round();
        } else if self.i >= self.timeout
            && (self.resend == InitResend::EveryStep || !self.init_sent_this_round)
        {
            self.mode = Mode::SendInit;
        }
    }

    fn on_crash(&mut self) {
        self.crashes += 1;
    }

    fn on_recover(&mut self) {
        self.round = self.stable.round;
        self.state = self.stable.state.clone();
        self.next_round = self.round;
        self.msgs.clear();
        self.init_senders.clear();
        self.i = 0;
        self.mode = Mode::SendRound;
        self.init_sent_this_round = false;
    }

    fn discard_buffered(&self, m: &Self::Msg) -> bool {
        // A message whose *content* round is behind `rp` contributes
        // nothing (line 13 stores only `r′ ≥ rp`, and its INIT target — at
        // most content + 1 — cannot exceed `rp` either): drop it from the
        // buffer. Without this, every INIT re-announcement outlives its
        // round in the buffer and reception (one message per step) can
        // never catch up — unbounded memory and pinned payload slots.
        m.content_round() < self.round
    }

    fn message_stats(&self) -> MessageStats {
        self.path.stats()
    }
}

impl<A: HoAlgorithm> RoundLog for Alg3Program<A> {
    fn records(&self) -> &[RoundRecord] {
        self.records.records()
    }

    fn discarded(&self) -> u64 {
        self.records.discarded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::algorithms::OneThirdRule;
    use ho_sim::{GoodKind, Schedule, SimConfig, Simulator, TimePoint};

    use crate::bounds::BoundParams;
    use crate::record::SystemTrace;

    fn make_programs(
        n: usize,
        f: usize,
        timeout: u64,
        values: &[u64],
    ) -> Vec<Alg3Program<OneThirdRule>> {
        (0..n)
            .map(|p| {
                Alg3Program::new(
                    OneThirdRule::new(n),
                    ProcessId::new(p),
                    values[p],
                    f,
                    timeout,
                )
            })
            .collect()
    }

    /// The wire message a send step broadcasts, if the step was a send.
    fn sent(step: StepKind<Alg3Msg<u64>>) -> Option<Alg3Msg<u64>> {
        match step {
            StepKind::Send(plan) => plan.broadcast_payload().cloned(),
            StepKind::Receive => None,
        }
    }

    #[test]
    fn kernel_rounds_in_pi_arbitrary_good_period() {
        // n = 5, f = 2, π0 = {0, 1, 2}: kernel rounds over π0 must appear
        // even though {3, 4} are unrestricted (here: down by never being
        // in π0 and the arbitrary rules applying).
        let n = 5;
        let f = 2;
        let params = BoundParams::new(n, 1.0, 2.0);
        let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(5);
        let pi0 = ProcessSet::from_indices(0..3);
        let schedule = Schedule::always_good(pi0, GoodKind::PiArbitrary);
        let programs = make_programs(n, f, params.alg3_timeout(), &[9, 4, 7, 1, 2]);
        let mut sim = Simulator::new(cfg, schedule, programs);

        let found = sim.run_until(TimePoint::new(2000.0), |s| {
            let mut probe = SystemTrace::new(n);
            probe.observe(s.programs(), s.now().get());
            probe.find_kernel_window(pi0, 2, 0.0).is_some()
        });
        assert!(found, "P_k(π0, ·, ·) windows appear");
    }

    #[test]
    fn initial_good_period_meets_theorem7_shape() {
        // All of Π synchronous from t = 0: x kernel rounds complete within
        // the Theorem 7 bound (plus observation slack).
        let n = 4;
        let f = 1;
        let (phi, delta) = (1.0, 2.0);
        let params = BoundParams::new(n, phi, delta);
        let cfg = SimConfig::normalized(n, phi, delta);
        let pi0 = ProcessSet::full(n);
        let schedule = Schedule::always_good(pi0, GoodKind::PiArbitrary);
        let programs = make_programs(n, f, params.alg3_timeout(), &[3, 1, 4, 1]);
        let mut sim = Simulator::new(cfg, schedule, programs);

        let x = 3;
        let bound = params.theorem7(x);
        let achieved = sim.run_until(TimePoint::new(bound * 3.0), |s| {
            let mut probe = SystemTrace::new(n);
            probe.observe(s.programs(), s.now().get());
            probe.find_kernel_window(pi0, x, 0.0).is_some()
        });
        assert!(achieved);
        // Slack: the bound counts message *reception*; the harness observes
        // HO at the transition, one INIT exchange later (receive steps
        // alternate with INIT resends post-timeout: up to (2n+2)φ + δ).
        let slack = delta + (2.0 * n as f64 + 2.0) * phi + 1.0;
        assert!(
            sim.now().get() <= bound + slack + 1e-9,
            "achieved at {} > bound {} + slack {}",
            sim.now().get(),
            bound,
            slack
        );
    }

    #[test]
    fn init_quorum_advances_round() {
        let n = 5;
        let f = 2;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg3Program::new(alg, ProcessId::new(0), 5u64, f, 1000);
        let _ = prog.next_step(); // ROUND 1 broadcast
                                  // f + 1 = 3 distinct INITs for round 2 advance us to round 2.
        for q in 1..=3 {
            assert_eq!(prog.next_step(), StepKind::Receive);
            prog.on_receive(Some((
                ProcessId::new(q),
                WireMsg::Owned(Alg3Msg::init(2, Some(7u64))),
            )));
        }
        assert_eq!(prog.round(), 2);
        // The INITs also contributed round-1 payloads: HO(0, 1) = {1, 2, 3}.
        assert_eq!(prog.records()[0].ho, ProcessSet::from_indices([1, 2, 3]));
    }

    #[test]
    fn fewer_than_quorum_inits_do_not_advance() {
        let n = 5;
        let f = 2;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg3Program::new(alg, ProcessId::new(0), 5u64, f, 1000);
        let _ = prog.next_step();
        for q in 1..=2 {
            let _ = prog.next_step();
            prog.on_receive(Some((
                ProcessId::new(q),
                WireMsg::Owned(Alg3Msg::init(2, None)),
            )));
        }
        assert_eq!(prog.round(), 1, "2 < f+1 INITs");
        // Duplicate INIT from the same sender must not count twice.
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(2),
            WireMsg::Owned(Alg3Msg::init(2, None)),
        )));
        assert_eq!(prog.round(), 1, "duplicates don't reach the quorum");
    }

    #[test]
    fn higher_round_message_drags_forward() {
        let n = 5;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg3Program::new(alg, ProcessId::new(0), 5u64, 2, 1000);
        let _ = prog.next_step();
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(3),
            WireMsg::Owned(Alg3Msg::round(9, Some(1u64))),
        )));
        assert_eq!(prog.round(), 9, "ROUND message for r′ > rp jumps to r′");
    }

    #[test]
    fn timeout_triggers_init_resends() {
        let n = 3;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg3Program::new(alg, ProcessId::new(0), 5u64, 1, 2);
        let _ = prog.next_step(); // ROUND
                                  // Two empty receives reach the timeout → INIT; then the pattern
                                  // re-arms every receive step.
        let _ = prog.next_step();
        prog.on_receive(None);
        let _ = prog.next_step();
        prog.on_receive(None);
        match sent(prog.next_step()) {
            Some(Alg3Msg::Init { round, .. }) => assert_eq!(round, 2),
            other => panic!("expected INIT, got {other:?}"),
        }
        assert_eq!(prog.inits_sent(), 1);
        // Still stuck → receive, then INIT again.
        let _ = prog.next_step();
        prog.on_receive(None);
        assert!(matches!(sent(prog.next_step()), Some(Alg3Msg::Init { .. })));
        assert_eq!(prog.inits_sent(), 2);
    }

    #[test]
    fn recovery_restores_stable_round() {
        let n = 3;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg3Program::new(alg, ProcessId::new(0), 5u64, 1, 1000);
        let _ = prog.next_step();
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(1),
            WireMsg::Owned(Alg3Msg::round(4, Some(2u64))),
        )));
        assert_eq!(prog.round(), 4);
        prog.on_crash();
        prog.on_recover();
        assert_eq!(prog.round(), 4, "rp restored from stable storage");
        assert!(matches!(
            sent(prog.next_step()),
            Some(Alg3Msg::Round { round: 4, .. })
        ));
    }

    #[test]
    fn custom_init_quorum_of_one() {
        // With quorum 1, a single INIT advances the round (the quorum
        // variations §5 attributes to [20, 24]).
        let n = 5;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg3Program::new(alg, ProcessId::new(0), 5u64, 2, 1000).with_init_quorum(1);
        assert_eq!(prog.init_quorum(), 1);
        assert_eq!(prog.resilience(), 2);
        let _ = prog.next_step();
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(1),
            WireMsg::Owned(Alg3Msg::init(2, None)),
        )));
        assert_eq!(prog.round(), 2, "one INIT suffices at quorum 1");
    }

    #[test]
    fn oversized_init_quorum_disables_init_path() {
        let n = 5;
        let alg = OneThirdRule::new(n);
        let mut prog =
            Alg3Program::new(alg, ProcessId::new(0), 5u64, 2, 1000).with_init_quorum(n + 1);
        let _ = prog.next_step();
        for q in 1..n {
            let _ = prog.next_step();
            prog.on_receive(Some((
                ProcessId::new(q),
                WireMsg::Owned(Alg3Msg::init(2, None)),
            )));
        }
        assert_eq!(prog.round(), 1, "n INITs < n+1 quorum: stuck by design");
        // ROUND messages still drag forward.
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(1),
            WireMsg::Owned(Alg3Msg::round(2, None)),
        )));
        assert_eq!(prog.round(), 2);
    }

    #[test]
    fn resend_once_sends_single_init_per_round() {
        use crate::alg3::InitResend;
        let n = 3;
        let alg = OneThirdRule::new(n);
        let mut prog =
            Alg3Program::new(alg, ProcessId::new(0), 5u64, 1, 2).with_resend(InitResend::Once);
        let _ = prog.next_step(); // ROUND
        for _ in 0..10 {
            match prog.next_step() {
                StepKind::Receive => prog.on_receive(None),
                StepKind::Send(plan) => assert!(
                    matches!(plan.broadcast_payload(), Some(Alg3Msg::Init { .. })),
                    "unexpected plan {plan:?}"
                ),
            }
        }
        assert_eq!(prog.inits_sent(), 1, "exactly one INIT per round");
    }

    #[test]
    fn wire_and_content_rounds() {
        let m: Alg3Msg<u64> = Alg3Msg::Init {
            round: 5,
            payload: None,
        };
        assert_eq!(m.wire_round(), 5);
        assert_eq!(m.content_round(), 4);
        let m: Alg3Msg<u64> = Alg3Msg::Round {
            round: 5,
            payload: None,
        };
        assert_eq!(m.content_round(), 5);
    }
}
