//! Observability: what the predicate layer actually delivered.
//!
//! The implementation programs (Algorithms 2 and 3) log a [`RoundRecord`]
//! every time they execute the transition function of a round — with the
//! support of the message set they handed to `T_p^r`, i.e. the *effective*
//! `HO(p, r)`. The [`SystemTrace`] assembles these per-process logs into an
//! `ho_core::Trace` so the model-level predicates (`P_su`, `P_k`, `P2_otr`,
//! …) can be evaluated against a system-level run, and stamps each record
//! with simulation time so the measurement harness can locate *when* a
//! predicate window was achieved.

use ho_core::process::{ProcessId, ProcessSet};
use ho_core::trace::Trace;

/// One executed round at one process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundRecord {
    /// The round whose transition function ran.
    pub round: u64,
    /// The support of the message set passed to `T_p^r` (empty for skipped
    /// rounds, which run with `∅`).
    pub ho: ProcessSet,
}

/// A program whose executed rounds can be observed.
pub trait RoundLog {
    /// The *retained* records, in execution order. Windowed programs (see
    /// `Alg2Program::with_record_window`) drop old records from the front;
    /// [`RoundLog::discarded`] says how many.
    fn records(&self) -> &[RoundRecord];

    /// How many records have been dropped from the front of the log
    /// (0 unless the program caps its record window). The full execution
    /// history is `discarded() + records().len()` records long.
    fn discarded(&self) -> u64 {
        0
    }
}

/// A bounded round log: retains at most `window` records, discarding from
/// the front. The predicate machines embed this so their observability
/// buffer stops accreting one `ProcessSet` per executed round on long runs;
/// a [`SystemTrace`] polling between rounds sees every record exactly once.
#[derive(Clone, Debug)]
pub struct BoundedLog {
    records: Vec<RoundRecord>,
    /// Retention cap (`None` = unbounded, the default).
    window: Option<usize>,
    discarded: u64,
}

impl BoundedLog {
    /// An unbounded log.
    #[must_use]
    pub fn new() -> Self {
        BoundedLog {
            records: Vec::new(),
            window: None,
            discarded: 0,
        }
    }

    /// Caps retention at `window` records (`window ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn set_window(&mut self, window: usize) {
        assert!(window >= 1, "record window must retain at least one round");
        self.window = Some(window);
        // `push` appends before evicting, so occupancy peaks at
        // `window + 1`; reserving it up front makes a bounded log
        // allocation-free for its whole life — the sim-layer steady-state
        // proof counts on this.
        self.records.reserve(window + 1);
        self.evict();
    }

    /// Appends a record, evicting from the front past the window.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
        self.evict();
    }

    fn evict(&mut self) {
        if let Some(k) = self.window {
            if self.records.len() > k {
                let drop = self.records.len() - k;
                self.records.drain(..drop);
                self.discarded += drop as u64;
            }
        }
    }

    /// The retained records.
    #[must_use]
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Records dropped from the front so far.
    #[must_use]
    pub fn discarded(&self) -> u64 {
        self.discarded
    }
}

impl Default for BoundedLog {
    fn default() -> Self {
        BoundedLog::new()
    }
}

/// Timestamped per-process round logs of a whole run.
#[derive(Clone, Debug)]
pub struct SystemTrace {
    n: usize,
    /// `completed[p]` = `(record, completion_time)`, in execution order.
    completed: Vec<Vec<(RoundRecord, f64)>>,
}

impl SystemTrace {
    /// An empty system trace over `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        SystemTrace {
            n,
            completed: vec![Vec::new(); n],
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ingests any rounds newly logged by the programs, stamping them with
    /// `now`. Call after every simulation event (or batch of events):
    /// timestamps are accurate to the polling granularity.
    ///
    /// # Panics
    ///
    /// Panics if a windowed program discarded records this trace never saw:
    /// the record window must be large enough to cover the rounds executed
    /// between two `observe` calls (a per-event poll needs only the largest
    /// single fast-forward jump).
    pub fn observe<L: RoundLog>(&mut self, programs: &[L], now: f64) {
        for (p, prog) in programs.iter().enumerate() {
            let seen = self.completed[p].len() as u64;
            let discarded = prog.discarded();
            assert!(
                discarded <= seen,
                "process {p}: record window discarded {} unobserved rounds — \
                 widen the window or observe more often",
                discarded - seen
            );
            for rec in &prog.records()[(seen - discarded) as usize..] {
                self.completed[p].push((*rec, now));
            }
        }
    }

    /// The records of process `p`.
    #[must_use]
    pub fn of(&self, p: ProcessId) -> &[(RoundRecord, f64)] {
        &self.completed[p.index()]
    }

    /// The largest round executed by any process (0 if none).
    #[must_use]
    pub fn max_round(&self) -> u64 {
        self.completed
            .iter()
            .flat_map(|rs| rs.iter().map(|(r, _)| r.round))
            .max()
            .unwrap_or(0)
    }

    /// The effective `HO(p, r)` with its completion time; if `p` executed
    /// round `r` several times (re-execution after recovery), the *last*
    /// execution wins.
    #[must_use]
    pub fn ho(&self, p: ProcessId, r: u64) -> Option<(ProcessSet, f64)> {
        self.completed[p.index()]
            .iter()
            .rev()
            .find(|(rec, _)| rec.round == r)
            .map(|(rec, t)| (rec.ho, *t))
    }

    /// Converts to a model-level [`Trace`]: rounds `1..=max_round`, with
    /// `HO(p, r) = ∅` for rounds `p` never executed.
    #[must_use]
    pub fn to_core_trace(&self) -> Trace {
        let max = self.max_round();
        let mut t = Trace::new(self.n);
        for r in 1..=max {
            let row: Vec<ProcessSet> = (0..self.n)
                .map(|p| {
                    self.ho(ProcessId::new(p), r)
                        .map_or(ProcessSet::empty(), |(ho, _)| ho)
                })
                .collect();
            t.push_round(row);
        }
        t
    }

    /// Searches for a window of `x` consecutive rounds `ρ0..ρ0+x−1` such
    /// that every process in `pi0` executed each round with an HO set
    /// accepted by `accept`, *completing every transition at or after*
    /// `not_before`. Returns `(ρ0, completion_time_of_the_window)` for the
    /// earliest-completing such window.
    ///
    /// With `accept = |ho| ho == pi0` this finds `P_su(π0, ρ0, ρ0+x−1)`
    /// windows; with `accept = |ho| ho ⊇ π0` it finds `P_k` windows.
    #[must_use]
    pub fn find_window(
        &self,
        pi0: ProcessSet,
        x: u64,
        not_before: f64,
        mut accept: impl FnMut(ProcessSet, ProcessSet) -> bool,
    ) -> Option<(u64, f64)> {
        assert!(x >= 1, "window must span at least one round");
        let max = self.max_round();
        let mut best: Option<(u64, f64)> = None;
        for rho0 in 1..=max.saturating_sub(x - 1) {
            let mut completed_at = f64::NEG_INFINITY;
            let mut ok = true;
            'outer: for r in rho0..rho0 + x {
                for p in pi0.iter() {
                    match self.ho(p, r) {
                        Some((ho, t)) if accept(ho, pi0) && t >= not_before => {
                            completed_at = completed_at.max(t);
                        }
                        _ => {
                            ok = false;
                            break 'outer;
                        }
                    }
                }
            }
            if ok && best.is_none_or(|(_, t)| completed_at < t) {
                best = Some((rho0, completed_at));
            }
        }
        best
    }

    /// Earliest-completing `P_su(π0, ρ0, ρ0+x−1)` window fully after
    /// `not_before`.
    #[must_use]
    pub fn find_space_uniform_window(
        &self,
        pi0: ProcessSet,
        x: u64,
        not_before: f64,
    ) -> Option<(u64, f64)> {
        self.find_window(pi0, x, not_before, |ho, pi0| ho == pi0)
    }

    /// Earliest-completing `P_k(π0, ρ0, ρ0+x−1)` window fully after
    /// `not_before`.
    #[must_use]
    pub fn find_kernel_window(
        &self,
        pi0: ProcessSet,
        x: u64,
        not_before: f64,
    ) -> Option<(u64, f64)> {
        self.find_window(pi0, x, not_before, |ho, pi0| ho.is_superset(pi0))
    }

    /// Earliest completion of `P2_otr(π0)` after `not_before`: a
    /// space-uniform round immediately followed by a kernel round.
    #[must_use]
    pub fn find_p2otr(&self, pi0: ProcessSet, not_before: f64) -> Option<(u64, f64)> {
        let max = self.max_round();
        let mut best: Option<(u64, f64)> = None;
        for rho0 in 1..max {
            let mut done = f64::NEG_INFINITY;
            let su = pi0.iter().all(|p| match self.ho(p, rho0) {
                Some((ho, t)) if ho == pi0 && t >= not_before => {
                    done = done.max(t);
                    true
                }
                _ => false,
            });
            if !su {
                continue;
            }
            let k = pi0.iter().all(|p| match self.ho(p, rho0 + 1) {
                Some((ho, t)) if ho.is_superset(pi0) && t >= not_before => {
                    done = done.max(t);
                    true
                }
                _ => false,
            });
            if k && best.is_none_or(|(_, t)| done < t) {
                best = Some((rho0, done));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::round::Round;

    struct FakeLog(Vec<RoundRecord>);
    impl RoundLog for FakeLog {
        fn records(&self) -> &[RoundRecord] {
            &self.0
        }
    }

    fn rec(round: u64, idx: &[usize]) -> RoundRecord {
        RoundRecord {
            round,
            ho: ProcessSet::from_indices(idx.iter().copied()),
        }
    }

    #[test]
    fn observe_stamps_incrementally() {
        let mut st = SystemTrace::new(2);
        let mut logs = vec![FakeLog(vec![rec(1, &[0, 1])]), FakeLog(vec![])];
        st.observe(&logs, 1.0);
        logs[0].0.push(rec(2, &[0]));
        logs[1].0.push(rec(1, &[0, 1]));
        st.observe(&logs, 5.0);
        assert_eq!(
            st.ho(ProcessId::new(0), 1),
            Some((ProcessSet::from_indices([0, 1]), 1.0))
        );
        assert_eq!(st.ho(ProcessId::new(0), 2).unwrap().1, 5.0);
        assert_eq!(st.ho(ProcessId::new(1), 1).unwrap().1, 5.0);
    }

    struct WindowedLog(BoundedLog);
    impl RoundLog for WindowedLog {
        fn records(&self) -> &[RoundRecord] {
            self.0.records()
        }
        fn discarded(&self) -> u64 {
            self.0.discarded()
        }
    }

    #[test]
    fn bounded_log_drops_from_the_front() {
        let mut log = BoundedLog::new();
        log.set_window(2);
        for r in 1..=5 {
            log.push(rec(r, &[0]));
        }
        assert_eq!(log.discarded(), 3);
        let rounds: Vec<u64> = log.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![4, 5]);
    }

    #[test]
    fn observe_tracks_windowed_logs_without_double_counting() {
        let mut st = SystemTrace::new(1);
        let mut log = BoundedLog::new();
        log.set_window(2);
        log.push(rec(1, &[0]));
        log.push(rec(2, &[0]));
        st.observe(&[WindowedLog(log.clone())], 1.0);
        // Two more rounds: round 1 and 2 get evicted, but the trace has
        // already seen them; only 3 and 4 are new.
        log.push(rec(3, &[0]));
        log.push(rec(4, &[0]));
        st.observe(&[WindowedLog(log)], 2.0);
        assert_eq!(st.of(ProcessId::new(0)).len(), 4);
        assert_eq!(
            st.ho(ProcessId::new(0), 2),
            Some((ProcessSet::from_indices([0]), 1.0))
        );
        assert_eq!(
            st.ho(ProcessId::new(0), 4),
            Some((ProcessSet::from_indices([0]), 2.0))
        );
    }

    #[test]
    #[should_panic(expected = "unobserved rounds")]
    fn observe_rejects_outpaced_windows() {
        let mut st = SystemTrace::new(1);
        let mut log = BoundedLog::new();
        log.set_window(1);
        log.push(rec(1, &[0]));
        log.push(rec(2, &[0]));
        // Round 1 was evicted before the trace ever saw it.
        st.observe(&[WindowedLog(log)], 1.0);
    }

    #[test]
    fn last_execution_wins_after_recovery() {
        let mut st = SystemTrace::new(1);
        let logs = vec![FakeLog(vec![rec(3, &[0]), rec(3, &[])])];
        st.observe(&logs, 2.0);
        assert_eq!(st.ho(ProcessId::new(0), 3).unwrap().0, ProcessSet::empty());
    }

    #[test]
    fn to_core_trace_fills_gaps_with_empty() {
        let mut st = SystemTrace::new(2);
        let logs = vec![
            FakeLog(vec![rec(1, &[0, 1]), rec(2, &[0, 1])]),
            FakeLog(vec![rec(2, &[0, 1])]),
        ];
        st.observe(&logs, 1.0);
        let t = st.to_core_trace();
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.ho(ProcessId::new(1), Round(1)), ProcessSet::empty());
        assert_eq!(
            t.ho(ProcessId::new(1), Round(2)),
            ProcessSet::from_indices([0, 1])
        );
    }

    #[test]
    fn window_search_finds_uniform_run() {
        let pi0 = ProcessSet::from_indices([0, 1]);
        let mut st = SystemTrace::new(2);
        let logs = vec![
            FakeLog(vec![rec(1, &[0]), rec(2, &[0, 1]), rec(3, &[0, 1])]),
            FakeLog(vec![rec(1, &[1]), rec(2, &[0, 1]), rec(3, &[0, 1])]),
        ];
        st.observe(&logs, 10.0);
        let (rho0, t) = st.find_space_uniform_window(pi0, 2, 0.0).expect("window");
        assert_eq!(rho0, 2);
        assert_eq!(t, 10.0);
        assert!(st.find_space_uniform_window(pi0, 3, 0.0).is_none());
    }

    #[test]
    fn window_respects_not_before() {
        let pi0 = ProcessSet::from_indices([0]);
        let mut st = SystemTrace::new(1);
        let logs = vec![FakeLog(vec![rec(1, &[0])])];
        st.observe(&logs, 3.0);
        assert!(st.find_space_uniform_window(pi0, 1, 5.0).is_none());
        assert!(st.find_space_uniform_window(pi0, 1, 2.0).is_some());
    }

    #[test]
    fn kernel_window_accepts_supersets() {
        let pi0 = ProcessSet::from_indices([0, 1]);
        let mut st = SystemTrace::new(3);
        let logs = vec![
            FakeLog(vec![rec(1, &[0, 1, 2])]),
            FakeLog(vec![rec(1, &[0, 1])]),
            FakeLog(vec![]),
        ];
        st.observe(&logs, 1.0);
        assert!(st.find_kernel_window(pi0, 1, 0.0).is_some());
        assert!(st.find_space_uniform_window(pi0, 1, 0.0).is_none());
    }

    #[test]
    fn p2otr_needs_adjacent_kernel_round() {
        let pi0 = ProcessSet::from_indices([0, 1]);
        let mut st = SystemTrace::new(2);
        let logs = vec![
            FakeLog(vec![rec(1, &[0, 1]), rec(2, &[0, 1]), rec(3, &[0])]),
            FakeLog(vec![rec(1, &[0, 1]), rec(2, &[0, 1]), rec(3, &[0, 1])]),
        ];
        st.observe(&logs, 4.0);
        let (rho0, _) = st.find_p2otr(pi0, 0.0).expect("p2otr");
        assert_eq!(rho0, 1);
    }
}
