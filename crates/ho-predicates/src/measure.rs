//! The measurement harness for §4.2's two scenarios.
//!
//! * **Scenario 1** ("not nice" runs, Theorems 3 and 6): a bad period
//!   `[0, τG)` followed by a good period. We measure the time from `τG`
//!   until the target predicate window is achieved — the *empirical minimal
//!   length of a good period* — and compare it with the theorem bound.
//! * **Scenario 2** ("nice" runs, Theorems 5 and 7): the good period starts
//!   at `τG = 0`.
//!
//! All quantities are in normalized units (`Φ− = 1`), directly comparable
//! with [`BoundParams`].

use ho_core::algorithms::OneThirdRule;
use ho_core::contact::ContactPlan;
use ho_core::executor::MessageStats;
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::telemetry::{Event, EventKind, Telemetry, TelemetrySummary};
use ho_core::translation::Translated;
use ho_sim::{
    BadPeriodConfig, GoodKind, LinkSchedule, Schedule, SchedulerKind, SimConfig, SimScratch,
    SimStats, Simulator, TimePoint,
};

use crate::alg2::Alg2Program;
use crate::alg3::Alg3Program;
use crate::bounds::BoundParams;
use crate::monitor::{LogCursor, WindowMonitor};

/// When the good period starts.
#[derive(Clone, Copy, Debug)]
pub enum Scenario {
    /// The good period is initial (`τG = 0`) — a "nice" run.
    Initial,
    /// A bad period of the given length precedes the good period — a
    /// "not nice" run.
    AfterBad {
        /// Length of the bad period `[0, τG)`.
        bad_len: f64,
        /// Fault behaviour during the bad period.
        bad: BadPeriodConfig,
    },
    /// A [`ContactPlan`] link schedule precedes the good period: the
    /// period rules stay calm, and all disruption comes from scheduled
    /// link outages — the system-level twin of the round-synchronous
    /// `ContactPlanAdversary`. The good period starts at the plan's
    /// horizon, where every link is permanently up again.
    AfterContactPlan {
        /// The deterministic link schedule driving the bad period.
        plan: ContactPlan,
        /// Seed for the plan's seed-rotated choices.
        seed: u64,
        /// Real-time length mapped onto one plan round.
        round_len: f64,
    },
}

impl Scenario {
    /// A default "not nice" scenario: a lossy, crashy bad period of the
    /// given length.
    #[must_use]
    pub fn rough(bad_len: f64) -> Self {
        Scenario::AfterBad {
            bad_len,
            bad: BadPeriodConfig::default(),
        }
    }

    /// A contact-plan scenario: scheduled link outages until the plan's
    /// horizon, then a good period.
    #[must_use]
    pub fn contact(plan: ContactPlan, seed: u64, round_len: f64) -> Self {
        Scenario::AfterContactPlan {
            plan,
            seed,
            round_len,
        }
    }

    /// The good-period start time `τG`.
    #[must_use]
    pub fn good_start(&self) -> f64 {
        match self {
            Scenario::Initial => 0.0,
            Scenario::AfterBad { bad_len, .. } => *bad_len,
            Scenario::AfterContactPlan {
                plan, round_len, ..
            } => (plan.good_from() - 1) as f64 * round_len,
        }
    }

    fn schedule(&self, n: usize, pi0: ProcessSet, kind: GoodKind) -> Schedule {
        match self {
            Scenario::Initial => Schedule::always_good(pi0, kind),
            Scenario::AfterBad { bad_len, bad } => {
                Schedule::bad_then_good(*bad, TimePoint::new(*bad_len), pi0, kind)
            }
            Scenario::AfterContactPlan {
                plan,
                seed,
                round_len,
            } => {
                let link = LinkSchedule::new(*plan, *seed, n, *round_len);
                let horizon = link.horizon();
                Schedule::bad_then_good(BadPeriodConfig::calm(), horizon, pi0, kind)
                    .with_link_schedule(link)
            }
        }
    }
}

/// The outcome of one measurement run.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// When the good period started (`τG`).
    pub good_start: f64,
    /// When the target was achieved (absolute time), if it was before the
    /// deadline.
    pub achieved_at: Option<f64>,
    /// The paper's bound for this target (normalized units).
    pub bound: f64,
    /// The witnessing first round `ρ0` of the predicate window, if any.
    pub rho0: Option<u64>,
}

impl Measurement {
    /// The empirical minimal good-period length: `achieved_at − τG`.
    #[must_use]
    pub fn empirical_length(&self) -> Option<f64> {
        self.achieved_at.map(|t| t - self.good_start)
    }

    /// Whether the run achieved the target within the theorem bound
    /// (the theorems are worst-case, so this should always hold up to the
    /// observation slack `slack`).
    #[must_use]
    pub fn within_bound(&self, slack: f64) -> bool {
        self.empirical_length()
            .is_some_and(|l| l <= self.bound + slack)
    }

    /// Measured length as a fraction of the bound (`None` if not achieved).
    #[must_use]
    pub fn tightness(&self) -> Option<f64> {
        self.empirical_length().map(|l| l / self.bound)
    }
}

/// A [`Measurement`] together with the run's execution statistics: the
/// detailed form the sim-layer sweep aggregates into `BENCH_sweep.json`'s
/// `sim_layer` section. Message accounting is the same [`MessageStats`]
/// struct the round-synchronous executor reports, so both layers aggregate
/// uniformly.
#[derive(Clone, Debug)]
pub struct SimMeasurement {
    /// The predicate-achievement measurement against the theorem bound.
    pub measurement: Measurement,
    /// Engine counters: steps, transmissions, drops, crashes.
    pub stats: SimStats,
    /// Unified message accounting (engine deliveries + the programs'
    /// payload-construction counters).
    pub messages: MessageStats,
    /// Highest round any program entered.
    pub max_round: u64,
    /// The run's telemetry digest (`Some` iff the scratch carried an
    /// active [`Telemetry`] handle). The drained event ring stays in the
    /// scratch for the caller to inspect (forensics on violation).
    pub telemetry: Option<TelemetrySummary>,
}

/// Per-worker reusable simulator storage for the sim-layer sweep: one
/// [`SimScratch`] per measured program type, so consecutive scenarios —
/// whichever implementation they run — reuse queue buckets, process slots
/// and reception buffers (see [`run_alg2_scenario_with`]).
#[derive(Default)]
pub struct SimLayerScratch {
    alg2: SimScratch<Alg2Program<OneThirdRule>>,
    alg3: SimScratch<Alg3Program<OneThirdRule>>,
    /// The worker's flight-recorder ring (off by default): installed on
    /// each scenario's [`Simulator`] when active and recovered afterwards,
    /// so its events stay drainable until the next scenario resets it.
    telemetry: Telemetry,
}

impl SimLayerScratch {
    /// An empty scratch: the first scenario allocates, the rest reuse.
    #[must_use]
    pub fn new() -> Self {
        SimLayerScratch::default()
    }

    /// Installs (or disables, with [`Telemetry::off`]) the telemetry
    /// handle every subsequent scenario on this scratch records into.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle, holding the most recent scenario's events
    /// (each scenario resets it on entry, so drain before the next run).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// How far past the bound we keep simulating before declaring failure.
const DEADLINE_FACTOR: f64 = 6.0;

/// Record window for the measured programs: the monitor's [`LogCursor`]
/// drains after every event, so the programs only need to retain the
/// largest batch of rounds one event can complete — a recovery
/// fast-forward spanning the bad period, a handful of rounds for the
/// scenarios measured here. 64 is an order of magnitude of slack; the
/// drain assert turns any miscalibration into a loud failure.
const RECORD_WINDOW: usize = 64;

/// Measures the good-period length needed by **Algorithm 2** to achieve
/// `P_su(π0, ρ0, ρ0+x−1)` in a π0-down good period (Theorems 3 and 5).
///
/// `pi0` is the synchronous subset; processes outside are down during the
/// good period.
#[must_use]
pub fn measure_alg2_space_uniform(
    params: BoundParams,
    pi0: ProcessSet,
    x: u64,
    scenario: Scenario,
    seed: u64,
) -> Measurement {
    run_alg2_scenario(params, pi0, x, scenario, seed).measurement
}

/// [`measure_alg2_space_uniform`] with the run's full execution statistics.
#[must_use]
pub fn run_alg2_scenario(
    params: BoundParams,
    pi0: ProcessSet,
    x: u64,
    scenario: Scenario,
    seed: u64,
) -> SimMeasurement {
    run_alg2_scenario_with(
        params,
        pi0,
        x,
        scenario,
        seed,
        SchedulerKind::default(),
        &mut SimLayerScratch::new(),
    )
}

/// [`run_alg2_scenario`] under an explicit scheduler backend, reusing
/// `scratch`'s simulator storage — the sim-layer sweep's entry point.
#[must_use]
pub fn run_alg2_scenario_with(
    params: BoundParams,
    pi0: ProcessSet,
    x: u64,
    scenario: Scenario,
    seed: u64,
    scheduler: SchedulerKind,
    scratch: &mut SimLayerScratch,
) -> SimMeasurement {
    let n = params.n;
    let cfg = SimConfig::normalized(n, params.phi, params.delta)
        .with_seed(seed)
        .with_scheduler(scheduler);
    let schedule = scenario.schedule(n, pi0, GoodKind::PiDown);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64,
                params.alg2_timeout(),
            )
            .with_record_window(RECORD_WINDOW)
        })
        .collect();
    let mut sim = Simulator::with_scratch(cfg, schedule, programs, &mut scratch.alg2);
    if scratch.telemetry.is_on() {
        scratch.telemetry.reset();
        sim.set_telemetry(std::mem::take(&mut scratch.telemetry));
    }

    let bound = match scenario {
        Scenario::Initial => params.theorem5(x),
        Scenario::AfterBad { .. } | Scenario::AfterContactPlan { .. } => params.theorem3(x),
    };
    let good_start = scenario.good_start();
    let deadline = TimePoint::new(good_start + bound * DEADLINE_FACTOR);

    // Streaming evaluation: the monitor ingests each newly executed round
    // once and resumes from its failure frontier, instead of the retained
    // SystemTrace being rescanned from round 1 at every poll.
    let mut monitor = WindowMonitor::space_uniform(pi0, x, good_start);
    let mut cursor = LogCursor::new(n);
    sim.run_until(deadline, |s| {
        let now = s.now().get();
        cursor.drain(s.programs(), now, |p, r, ho, t| {
            monitor.observe_event(p, r, ho, t);
        });
        monitor.witness().is_some()
    });
    let witness = monitor.witness();
    let mut telemetry = sim.take_telemetry();
    if let Some((r, t)) = witness {
        telemetry.record(
            r,
            t,
            Event::ALL,
            EventKind::PredicateWitness { witness_round: r },
        );
    }
    let out = SimMeasurement {
        measurement: Measurement {
            good_start,
            achieved_at: witness.map(|(_, t)| t),
            bound,
            rho0: witness.map(|(r, _)| r),
        },
        stats: sim.stats().clone(),
        messages: sim.message_stats(),
        max_round: sim
            .programs()
            .iter()
            .map(Alg2Program::round)
            .max()
            .unwrap_or(0),
        telemetry: telemetry.summary(),
    };
    scratch.telemetry = telemetry;
    sim.retire(&mut scratch.alg2);
    out
}

/// Measures the good-period length needed by **Algorithm 3** to achieve
/// `P_k(π0, ρ0, ρ0+x−1)` in a π0-arbitrary good period (Theorems 6 and 7).
///
/// `π0` is taken as the first `n − f` processes; the rest run under
/// arbitrary (bad) rules throughout.
#[must_use]
pub fn measure_alg3_kernel(
    params: BoundParams,
    f: usize,
    x: u64,
    scenario: Scenario,
    seed: u64,
) -> Measurement {
    run_alg3_scenario(params, f, x, scenario, seed).measurement
}

/// [`measure_alg3_kernel`] with the run's full execution statistics — the
/// sim-layer sweep's entry point.
#[must_use]
pub fn run_alg3_scenario(
    params: BoundParams,
    f: usize,
    x: u64,
    scenario: Scenario,
    seed: u64,
) -> SimMeasurement {
    run_alg3_scenario_with(
        params,
        f,
        x,
        scenario,
        seed,
        SchedulerKind::default(),
        &mut SimLayerScratch::new(),
    )
}

/// [`run_alg3_scenario`] with an explicit scheduler backend and reusable
/// scratch storage — the sweep's batched entry point.
#[must_use]
pub fn run_alg3_scenario_with(
    params: BoundParams,
    f: usize,
    x: u64,
    scenario: Scenario,
    seed: u64,
    scheduler: SchedulerKind,
    scratch: &mut SimLayerScratch,
) -> SimMeasurement {
    let n = params.n;
    assert!(2 * f < n, "Algorithm 3 requires f < n/2");
    let pi0 = ProcessSet::from_indices(0..n - f);
    let cfg = SimConfig::normalized(n, params.phi, params.delta)
        .with_seed(seed)
        .with_scheduler(scheduler);
    let schedule = scenario.schedule(n, pi0, GoodKind::PiArbitrary);
    let programs: Vec<Alg3Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg3Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64,
                f,
                params.alg3_timeout(),
            )
            .with_record_window(RECORD_WINDOW)
        })
        .collect();
    let mut sim = Simulator::with_scratch(cfg, schedule, programs, &mut scratch.alg3);
    if scratch.telemetry.is_on() {
        scratch.telemetry.reset();
        sim.set_telemetry(std::mem::take(&mut scratch.telemetry));
    }

    let bound = match scenario {
        Scenario::Initial => params.theorem7(x),
        Scenario::AfterBad { .. } | Scenario::AfterContactPlan { .. } => params.theorem6(x),
    };
    let good_start = scenario.good_start();
    let deadline = TimePoint::new(good_start + bound * DEADLINE_FACTOR);

    // Streaming evaluation from the failure frontier, as in
    // [`measure_alg2_space_uniform`].
    let mut monitor = WindowMonitor::kernel(pi0, x, good_start);
    let mut cursor = LogCursor::new(n);
    sim.run_until(deadline, |s| {
        let now = s.now().get();
        cursor.drain(s.programs(), now, |p, r, ho, t| {
            monitor.observe_event(p, r, ho, t);
        });
        monitor.witness().is_some()
    });
    let witness = monitor.witness();
    let mut telemetry = sim.take_telemetry();
    if let Some((r, t)) = witness {
        telemetry.record(
            r,
            t,
            Event::ALL,
            EventKind::PredicateWitness { witness_round: r },
        );
    }
    let out = SimMeasurement {
        measurement: Measurement {
            good_start,
            achieved_at: witness.map(|(_, t)| t),
            bound,
            rho0: witness.map(|(r, _)| r),
        },
        stats: sim.stats().clone(),
        messages: sim.message_stats(),
        max_round: sim
            .programs()
            .iter()
            .map(Alg3Program::round)
            .max()
            .unwrap_or(0),
        telemetry: telemetry.summary(),
    };
    scratch.telemetry = telemetry;
    sim.retire(&mut scratch.alg3);
    out
}

/// The outcome of a full-stack consensus run (experiment E8).
#[derive(Clone, Debug)]
pub struct StackOutcome {
    /// The measurement against the §4.2.2(c) bound (time to all-`π0`
    /// decisions).
    pub measurement: Measurement,
    /// The decision of each process, if reached.
    pub decisions: Vec<Option<u64>>,
    /// Total send steps executed.
    pub send_steps: u64,
}

/// Runs the **full stack** — Algorithm 3 at the bottom, the `P_k → P_su`
/// macro-round translation (Algorithm 4) in the middle, OneThirdRule on
/// top — in a π0-arbitrary good period, and measures the time from `τG`
/// until every `π0` process has decided.
///
/// The §4.2.2(c) bound (`2f + 3` kernel rounds) is the reference.
#[must_use]
pub fn measure_full_stack(
    params: BoundParams,
    f: usize,
    scenario: Scenario,
    seed: u64,
) -> StackOutcome {
    let n = params.n;
    // Algorithm 3 needs f < n/2; OneThirdRule on top additionally needs
    // |π0| = n − f > 2n/3, i.e. f < n/3, to reach its quorums within π0.
    assert!(3 * f < n, "the full stack with OTR requires f < n/3");
    let pi0 = ProcessSet::from_indices(0..n - f);
    let cfg = SimConfig::normalized(n, params.phi, params.delta).with_seed(seed);
    let schedule = scenario.schedule(n, pi0, GoodKind::PiArbitrary);
    let programs: Vec<Alg3Program<Translated<OneThirdRule>>> = (0..n)
        .map(|p| {
            // This run never reads the round log (the stop condition is
            // the decisions), so the tightest window suffices.
            Alg3Program::new(
                Translated::new(OneThirdRule::new(n), f),
                ProcessId::new(p),
                p as u64,
                f,
                params.alg3_timeout(),
            )
            .with_record_window(1)
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);

    let bound = params.full_stack(f);
    let good_start = scenario.good_start();
    let deadline = TimePoint::new(good_start + bound * DEADLINE_FACTOR);

    let mut achieved_at = None;
    sim.run_until(deadline, |s| {
        let done = pi0.iter().all(|p| s.program(p).decision().is_some());
        if done && achieved_at.is_none() {
            achieved_at = Some(s.now().get());
        }
        done
    });

    let decisions = sim.programs().iter().map(Alg3Program::decision).collect();
    StackOutcome {
        measurement: Measurement {
            good_start,
            achieved_at,
            bound,
            rho0: None,
        },
        decisions,
        send_steps: sim.stats().send_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg2_initial_scenario_within_theorem5() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let pi0 = ProcessSet::full(4);
        let m = measure_alg2_space_uniform(params, pi0, 2, Scenario::Initial, 1);
        assert!(m.achieved_at.is_some(), "P_su achieved");
        // Observation slack: the last transition is observed at the receive
        // step following the Δ-delayed delivery.
        assert!(m.within_bound(params.delta + params.phi + 1.0), "{m:?}");
    }

    #[test]
    fn alg2_after_bad_within_theorem3() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let pi0 = ProcessSet::full(4);
        for seed in 0..3 {
            let m = measure_alg2_space_uniform(params, pi0, 2, Scenario::rough(60.0), seed);
            assert!(m.achieved_at.is_some(), "seed {seed}: P_su achieved");
            assert!(
                m.within_bound(params.delta + params.phi + 1.0),
                "seed {seed}: {m:?}"
            );
        }
    }

    #[test]
    fn alg2_after_contact_plan_within_theorem3() {
        // Episodic d3/b2/c2: good_from = 9, so with round_len = 5 the
        // good period starts at τG = 40.
        let params = BoundParams::new(4, 1.0, 2.0);
        let pi0 = ProcessSet::full(4);
        let plan = ContactPlan::Episodic {
            dark: 3,
            bright: 2,
            cycles: 2,
        };
        for seed in 0..3 {
            let scenario = Scenario::contact(plan, seed, 5.0);
            assert!((scenario.good_start() - 40.0).abs() < 1e-12);
            let m = measure_alg2_space_uniform(params, pi0, 2, scenario, seed);
            assert!(m.achieved_at.is_some(), "seed {seed}: P_su achieved");
            assert!(
                m.within_bound(params.delta + params.phi + 1.0),
                "seed {seed}: {m:?}"
            );
        }
    }

    #[test]
    fn alg3_after_contact_plan_within_theorem6() {
        // One replica dark for 8 plan rounds, then permanently back.
        let params = BoundParams::new(4, 1.0, 2.0);
        let plan = ContactPlan::StoreAndForward { dark: 8 };
        let m = measure_alg3_kernel(params, 1, 2, Scenario::contact(plan, 5, 5.0), 9);
        assert!(m.achieved_at.is_some(), "P_k achieved");
        assert!(m.within_bound(alg3_slack(&params)), "{m:?}");
    }

    #[test]
    fn alg2_with_pi0_subset() {
        // π̄0 = {3} is down during the good period; Psu over {0,1,2}.
        let params = BoundParams::new(4, 1.0, 2.0);
        let pi0 = ProcessSet::from_indices(0..3);
        let m = measure_alg2_space_uniform(params, pi0, 2, Scenario::rough(40.0), 7);
        assert!(m.achieved_at.is_some());
    }

    /// Observation slack for Algorithm 3 measurements: the theorems count
    /// `P_k(·, ·, x)` as achieved when the round-`x` messages are received,
    /// but the harness observes `HO(p, x)` only when `T_p^x` executes — one
    /// INIT exchange later. Post-timeout steps alternate receive /
    /// INIT-resend, so the exchange costs up to `δ + (2n+2)φ`.
    fn alg3_slack(params: &BoundParams) -> f64 {
        params.delta + (2.0 * params.n as f64 + 2.0) * params.phi + 1.0
    }

    #[test]
    fn alg3_initial_scenario_within_theorem7() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let m = measure_alg3_kernel(params, 1, 2, Scenario::Initial, 3);
        assert!(m.achieved_at.is_some(), "P_k achieved");
        assert!(m.within_bound(alg3_slack(&params)), "{m:?}");
    }

    #[test]
    fn alg3_after_bad_within_theorem6() {
        let params = BoundParams::new(5, 1.0, 2.0);
        for seed in 0..3 {
            let m = measure_alg3_kernel(params, 2, 2, Scenario::rough(80.0), seed);
            assert!(m.achieved_at.is_some(), "seed {seed}");
            assert!(m.within_bound(alg3_slack(&params)), "seed {seed}: {m:?}");
        }
    }

    #[test]
    fn full_stack_decides_within_bound() {
        let params = BoundParams::new(5, 1.0, 2.0);
        let f = 1;
        let out = measure_full_stack(params, f, Scenario::rough(50.0), 11);
        let m = &out.measurement;
        assert!(m.achieved_at.is_some(), "consensus reached: {out:?}");
        // The §4.2.2(c) bound counts rounds until P2_otr holds at the macro
        // level; the *decision* trails it by up to one macro-round of
        // micro-rounds, plus the usual observation slack.
        let slack = (f as f64 + 1.0) * params.alg3_round_cost() + alg3_slack(&params);
        assert!(m.within_bound(slack), "{m:?}");
        // Agreement among deciders.
        let decided: Vec<u64> = out.decisions.iter().flatten().copied().collect();
        assert!(!decided.is_empty());
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn measurement_accessors() {
        let m = Measurement {
            good_start: 10.0,
            achieved_at: Some(25.0),
            bound: 20.0,
            rho0: Some(3),
        };
        assert_eq!(m.empirical_length(), Some(15.0));
        assert!(m.within_bound(0.0));
        assert!((m.tightness().unwrap() - 0.75).abs() < 1e-12);
        let never = Measurement {
            achieved_at: None,
            ..m
        };
        assert_eq!(never.empirical_length(), None);
        assert!(!never.within_bound(100.0));
    }
}
