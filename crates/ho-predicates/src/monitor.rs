//! Online predicate monitoring: streaming, incremental evaluators for the
//! paper's communication predicates.
//!
//! The batch searches of [`SystemTrace`](crate::record::SystemTrace) —
//! `find_space_uniform_window`, `find_kernel_window`, `find_p2otr` — rescan
//! the whole retained history from round 1 on every poll. The monitors in
//! this module compute the *same* answers incrementally: each consumes
//! per-round observations as they happen, maintains a **failure frontier**
//! (the first round that could still start a satisfying window; everything
//! before it is provably dead and evicted), and retains only the bounded
//! live suffix between that frontier and the newest observed round. No
//! trace is kept, no rescan ever happens, and in steady state no
//! allocation is performed — which is what lets the sweep evaluate
//! predicates grid-wide at `TraceMode::Off` throughput.
//!
//! Two feeds exist:
//!
//! * **Row feed** — the round-synchronous executor's
//!   [`RoundObserver`](ho_core::observer::RoundObserver) hook hands every
//!   monitor one full row of effective HO sets per round, stamped with the
//!   round number as its completion time.
//! * **Event feed** — the system-level measurement harness drains
//!   per-process [`RoundLog`]s through a [`LogCursor`] and feeds each
//!   newly executed `(process, round, HO)` record with its simulation-time
//!   stamp. Processes may lag arbitrarily behind each other; the frontier
//!   logic is exact under skew.
//!
//! ## Contract: strictly increasing rounds per process
//!
//! A monitor requires each process's observations to arrive in strictly
//! increasing round order (the paper's programs guarantee this: stable
//! storage is written at every round completion, so recovery resumes at
//! the first unexecuted round). Histories that *re-execute* rounds — the
//! defensive "last execution wins" case [`SystemTrace`] tolerates — cannot
//! be monitored incrementally, because a revoked acceptance would
//! invalidate evicted state; such runs need the retained-trace batch
//! searches. The contract is asserted, not assumed.
//!
//! Equivalence with the batch searches is proved property-style in
//! `tests/monitor_equivalence.rs`: on identical observations, polled at
//! the same points, every monitor reports the identical `(ρ0, time)`
//! witness as the corresponding `find_*` search.
//!
//! [`SystemTrace`]: crate::record::SystemTrace

use std::collections::VecDeque;

use ho_core::observer::RoundObserver;
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::round::Round;

use crate::record::RoundLog;

/// The per-observation acceptance test of one pattern position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accept {
    /// `HO(p, r) ⊇ π0` — the round keeps `π0` in `p`'s kernel
    /// (`P_k`-style windows).
    Kernel,
    /// `HO(p, r) = π0` — the space-uniform test (`P_su`-style windows).
    SpaceUniform,
}

/// One retained round of a [`WindowMonitor`]: which `π0` members have
/// delivered an accepted observation, at which levels, and when the last
/// acceptance landed. `Copy`, so the ring buffer recycles without
/// allocator traffic.
#[derive(Clone, Copy, Debug)]
struct RoundState {
    /// Members whose observation passed the [`Accept::Kernel`] test (and
    /// the `not_before` gate).
    ok_kernel: ProcessSet,
    /// Members whose observation also passed [`Accept::SpaceUniform`]
    /// (a subset of `ok_kernel`: `HO = π0` implies `HO ⊇ π0`).
    ok_uniform: ProcessSet,
    /// Bit `j` set: this round can never satisfy pattern position `j`
    /// (some member's only observation failed that position's test).
    /// Badness is final under the strictly-increasing-rounds contract.
    bad_mask: u64,
    /// Latest acceptance stamp. Poll stamps are monotone, so whenever the
    /// round is fully accepted this is exactly the completion time the
    /// batch search computes.
    completed_at: f64,
}

impl RoundState {
    const EMPTY: RoundState = RoundState {
        ok_kernel: ProcessSet::empty(),
        ok_uniform: ProcessSet::empty(),
        bad_mask: 0,
        completed_at: f64::NEG_INFINITY,
    };

    fn good_for(&self, accept: Accept, pi0: ProcessSet) -> bool {
        match accept {
            Accept::Kernel => self.ok_kernel.is_superset(pi0),
            Accept::SpaceUniform => self.ok_uniform.is_superset(pi0),
        }
    }
}

/// A streaming first-window search: the incremental equivalent of
/// [`SystemTrace::find_window`](crate::record::SystemTrace::find_window)
/// and friends.
///
/// The monitor looks for the earliest-completing run of consecutive rounds
/// `ρ0 .. ρ0+x−1` in which every process of `π0` executed round `ρ0+j`
/// with an HO set accepted by `pattern[j]`, completing every transition at
/// or after `not_before`. Uniform patterns give the `P_k` / `P_su` window
/// searches; the two-position mixed pattern `[SpaceUniform, Kernel]` is
/// `P2_otr`.
///
/// Once a witness is found it **latches**: the monitor freezes and further
/// observations are ignored (the measurement harness stops at the first
/// witness anyway, and freezing keeps post-witness polls free).
#[derive(Clone, Debug)]
pub struct WindowMonitor {
    pi0: ProcessSet,
    pattern: Vec<Accept>,
    not_before: f64,
    /// Mask with one bit per pattern position.
    all_positions: u64,
    /// Mask of the [`Accept::SpaceUniform`] positions.
    uniform_positions: u64,
    /// Round number of `states[0]` — the failure frontier. Every window
    /// starting before it is dead (contains a round that failed), so no
    /// state before it is retained.
    base: u64,
    states: VecDeque<RoundState>,
    /// `last_round[p]` = the last round observed from `p` (0 = none);
    /// enforces the strictly-increasing contract.
    last_round: Vec<u64>,
    witness: Option<(u64, f64)>,
    dirty: bool,
}

impl WindowMonitor {
    /// A monitor with an explicit per-position pattern (`1 ≤ len ≤ 64`).
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or longer than 64 positions, or if
    /// `pi0` is empty (an empty scope satisfies everything trivially;
    /// batch searches special-case it, a monitor has nothing to stream).
    #[must_use]
    pub fn with_pattern(pi0: ProcessSet, pattern: Vec<Accept>, not_before: f64) -> Self {
        assert!(
            !pattern.is_empty() && pattern.len() <= 64,
            "pattern must have 1..=64 positions"
        );
        assert!(!pi0.is_empty(), "monitored scope must be non-empty");
        let max_index = pi0.iter().last().expect("non-empty").index();
        let all_positions = u64::MAX >> (64 - pattern.len());
        let uniform_positions = pattern
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Accept::SpaceUniform)
            .fold(0u64, |m, (j, _)| m | (1 << j));
        WindowMonitor {
            pi0,
            pattern,
            not_before,
            all_positions,
            uniform_positions,
            base: 1,
            states: VecDeque::new(),
            last_round: vec![0; max_index + 1],
            witness: None,
            dirty: false,
        }
    }

    /// Streams `P_k(π0, ρ0, ρ0+x−1)`: `x` consecutive rounds in which
    /// every `π0` member's HO set contains `π0` — the incremental
    /// [`find_kernel_window`](crate::record::SystemTrace::find_kernel_window).
    #[must_use]
    pub fn kernel(pi0: ProcessSet, x: u64, not_before: f64) -> Self {
        assert!(x >= 1, "window must span at least one round");
        WindowMonitor::with_pattern(pi0, vec![Accept::Kernel; x as usize], not_before)
    }

    /// Streams `P_su(π0, ρ0, ρ0+x−1)`: `x` consecutive rounds in which
    /// every `π0` member's HO set *equals* `π0` — the incremental
    /// [`find_space_uniform_window`](crate::record::SystemTrace::find_space_uniform_window).
    #[must_use]
    pub fn space_uniform(pi0: ProcessSet, x: u64, not_before: f64) -> Self {
        assert!(x >= 1, "window must span at least one round");
        WindowMonitor::with_pattern(pi0, vec![Accept::SpaceUniform; x as usize], not_before)
    }

    /// Streams `P2_otr(π0)`: a space-uniform round immediately followed by
    /// a kernel round — the incremental
    /// [`find_p2otr`](crate::record::SystemTrace::find_p2otr).
    #[must_use]
    pub fn p2otr(pi0: ProcessSet, not_before: f64) -> Self {
        WindowMonitor::with_pattern(pi0, vec![Accept::SpaceUniform, Accept::Kernel], not_before)
    }

    /// The monitored scope `π0`.
    #[must_use]
    pub fn pi0(&self) -> ProcessSet {
        self.pi0
    }

    /// The window length `x`.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.pattern.len() as u64
    }

    /// The failure frontier: the earliest round that could still start a
    /// satisfying window. Every round before it has been evicted as
    /// provably dead; observations for such rounds are ignored.
    #[must_use]
    pub fn frontier(&self) -> u64 {
        self.base
    }

    /// How many rounds of state the monitor currently retains (frontier to
    /// newest observation) — the working set the batch search would have
    /// rescanned grows with the run, this stays bounded.
    #[must_use]
    pub fn retained_rounds(&self) -> u64 {
        self.states.len() as u64
    }

    /// Feeds one executed round of one process: `p` ran round `round` with
    /// effective HO set `ho`, completing at time `t`.
    ///
    /// Observations from processes outside `π0` are ignored, as are rounds
    /// before the failure frontier (they are provably irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `p ∈ π0` delivers a round at or before one it already
    /// delivered — re-executed histories need the retained-trace batch
    /// searches (see the module docs).
    pub fn observe_event(&mut self, p: ProcessId, round: u64, ho: ProcessSet, t: f64) {
        if !self.pi0.contains(p) {
            return;
        }
        let cursor = &mut self.last_round[p.index()];
        assert!(
            round > *cursor,
            "monitors require strictly increasing rounds per process \
             ({p} delivered round {round} after round {})",
            *cursor
        );
        *cursor = round;
        if self.witness.is_some() || round < self.base {
            return;
        }

        // Materialise (ring-buffered) state up to this round.
        let idx = (round - self.base) as usize;
        while self.states.len() <= idx {
            self.states.push_back(RoundState::EMPTY);
        }
        let state = &mut self.states[idx];

        let on_time = t >= self.not_before;
        let kernel_ok = on_time && ho.is_superset(self.pi0);
        if kernel_ok {
            state.ok_kernel.insert(p);
            state.completed_at = state.completed_at.max(t);
            if ho == self.pi0 {
                state.ok_uniform.insert(p);
            } else {
                state.bad_mask |= self.uniform_positions;
            }
            self.dirty = true;
        } else {
            // Fails every position's test — final, under the contract.
            state.bad_mask |= self.all_positions;
        }
        self.advance_frontier();
    }

    /// Feeds a whole round of the round-synchronous executor: `ho[p]` =
    /// effective `HO(p, r)`, all completing at `t`. (The
    /// [`RoundObserver`] impl calls this with `t = r`.)
    pub fn observe_row(&mut self, round: u64, ho: &[ProcessSet], t: f64) {
        for p in self.pi0.iter() {
            self.observe_event(p, round, ho[p.index()], t);
        }
    }

    /// Advances the failure frontier: while the window starting *at* the
    /// frontier provably contains a failed position, that window is dead —
    /// and since every window starting earlier is already dead, the
    /// frontier round itself can never be part of a satisfying window and
    /// its state is evicted.
    fn advance_frontier(&mut self) {
        while !self.states.is_empty() {
            let front_window_dead = self
                .states
                .iter()
                .take(self.pattern.len())
                .enumerate()
                .any(|(j, s)| s.bad_mask & (1 << j) != 0);
            if !front_window_dead {
                break;
            }
            self.states.pop_front();
            self.base += 1;
        }
    }

    /// The witness `(ρ0, completion_time)`, if the predicate window has
    /// been achieved: the earliest-completing window, ties broken to the
    /// smallest `ρ0` — exactly the batch searches' result on the same
    /// observations. Scans only the retained suffix (bounded), and only
    /// when new acceptances arrived since the last poll; once found, the
    /// witness latches.
    pub fn witness(&mut self) -> Option<(u64, f64)> {
        if self.witness.is_some() || !self.dirty {
            return self.witness;
        }
        self.dirty = false;
        let x = self.pattern.len();
        if self.states.len() < x {
            return None;
        }
        let mut best: Option<(u64, f64)> = None;
        for s in 0..=self.states.len() - x {
            let mut completed = f64::NEG_INFINITY;
            let good = self.pattern.iter().enumerate().all(|(j, accept)| {
                let state = &self.states[s + j];
                let ok = state.good_for(*accept, self.pi0);
                if ok {
                    completed = completed.max(state.completed_at);
                }
                ok
            });
            if good && best.is_none_or(|(_, t)| completed < t) {
                best = Some((self.base + s as u64, completed));
            }
        }
        self.witness = best;
        self.witness
    }
}

/// Row feed with the round number as the completion stamp — what the
/// executor's observer hook provides. With it, `witness()` times are round
/// numbers, matching the batch search over a trace stamped the same way.
impl RoundObserver for WindowMonitor {
    fn active(&self) -> bool {
        // Once latched the monitor needs no further rows; an executor
        // driving only this monitor can skip building them.
        self.witness.is_none()
    }

    fn observe_round(&mut self, r: Round, ho: &[ProcessSet]) {
        self.observe_row(r.get(), ho, r.get() as f64);
    }
}

/// Incrementally drains per-process [`RoundLog`]s, feeding each newly
/// logged record to a sink exactly once — the event-feed pump that
/// replaces [`SystemTrace::observe`](crate::record::SystemTrace::observe)
/// for monitors. One cursor can pump any number of monitors through the
/// closure.
#[derive(Clone, Debug)]
pub struct LogCursor {
    /// Records already drained per process.
    seen: Vec<u64>,
}

impl LogCursor {
    /// A cursor over `n` process logs, starting at the beginning.
    #[must_use]
    pub fn new(n: usize) -> Self {
        LogCursor { seen: vec![0; n] }
    }

    /// Feeds every record logged since the previous drain to `sink` as
    /// `(process, round, ho, now)`.
    ///
    /// # Panics
    ///
    /// Panics if a windowed program discarded records this cursor never
    /// saw — the record window must cover the rounds executed between two
    /// drains, as with `SystemTrace::observe`.
    pub fn drain<L: RoundLog>(
        &mut self,
        programs: &[L],
        now: f64,
        mut sink: impl FnMut(ProcessId, u64, ProcessSet, f64),
    ) {
        for (p, prog) in programs.iter().enumerate() {
            let seen = self.seen[p];
            let discarded = prog.discarded();
            assert!(
                discarded <= seen,
                "process {p}: record window discarded {} unobserved rounds — \
                 widen the window or drain more often",
                discarded - seen
            );
            let records = prog.records();
            for rec in &records[(seen - discarded) as usize..] {
                sink(ProcessId::new(p), rec.round, rec.ho, now);
            }
            self.seen[p] = discarded + records.len() as u64;
        }
    }
}

/// Per-scenario predicate statistics, streamed from the executor's
/// observer hook — the sweep's "predicate observatory" verdict fields.
/// All statistics are over the full process set `Π`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PredicateSummary {
    /// Rounds observed.
    pub rounds: u64,
    /// Rounds with a non-empty kernel `K(r) = ∩_p HO(p, r)` — the rounds
    /// on which `P_nek` (UniformVoting's safety environment) holds.
    pub nek_rounds: u64,
    /// The first round whose kernel was empty, if any — `Some` here means
    /// the run left `P_nek`'s safety environment at that round.
    pub first_empty_kernel: Option<u64>,
    /// Longest run of consecutive non-empty-kernel rounds: the largest
    /// `x` with a `P_k(Π0, ρ0, ρ0+x−1)`-style kernel window for *some*
    /// non-empty `Π0` kernel.
    pub largest_kernel_window: u64,
    /// Rounds that were space uniform (all processes share one HO set).
    pub uniform_rounds: u64,
    /// Longest run of consecutive space-uniform rounds.
    pub largest_uniform_window: u64,
    /// The first `ρ0` with a space-uniform-over-Π round `ρ0` (every HO set
    /// `= Π`) immediately followed by a kernel round `ρ0+1` (every HO set
    /// `⊇ Π`) — `P2_otr(Π)`, OneThirdRule's one-shot liveness predicate.
    pub first_p2otr: Option<u64>,
}

/// Streams the [`PredicateSummary`] of a run from the executor's
/// [`RoundObserver`] hook: O(1) state, no allocation after construction,
/// never latches (statistics cover the whole run).
#[derive(Clone, Debug)]
pub struct ScenarioMonitor {
    n: usize,
    summary: PredicateSummary,
    nek_run: u64,
    uniform_run: u64,
    /// Whether the previous round was uniform at full delivery
    /// (`HO(p) = Π` for all `p`) — the `P2_otr` prefix.
    prev_full_uniform: bool,
}

impl ScenarioMonitor {
    /// A monitor over `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ScenarioMonitor {
            n,
            summary: PredicateSummary::default(),
            nek_run: 0,
            uniform_run: 0,
            prev_full_uniform: false,
        }
    }

    /// The statistics so far.
    #[must_use]
    pub fn summary(&self) -> PredicateSummary {
        self.summary
    }
}

impl RoundObserver for ScenarioMonitor {
    fn observe_round(&mut self, r: Round, ho: &[ProcessSet]) {
        debug_assert_eq!(ho.len(), self.n, "one HO set per process");
        let s = &mut self.summary;
        s.rounds += 1;

        let mut kernel = ProcessSet::full(self.n);
        for h in ho {
            kernel = kernel.intersection(*h);
        }
        if kernel.is_empty() {
            if s.first_empty_kernel.is_none() {
                s.first_empty_kernel = Some(r.get());
            }
            self.nek_run = 0;
        } else {
            s.nek_rounds += 1;
            self.nek_run += 1;
            s.largest_kernel_window = s.largest_kernel_window.max(self.nek_run);
        }

        let uniform = ho.windows(2).all(|w| w[0] == w[1]);
        if uniform {
            s.uniform_rounds += 1;
            self.uniform_run += 1;
            s.largest_uniform_window = s.largest_uniform_window.max(self.uniform_run);
        } else {
            self.uniform_run = 0;
        }

        let full_uniform = uniform && ho.first().is_some_and(|h| h.len() == self.n);
        if self.prev_full_uniform && full_uniform && s.first_p2otr.is_none() {
            s.first_p2otr = Some(r.get() - 1);
        }
        self.prev_full_uniform = full_uniform;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(idx: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(idx.iter().copied())
    }

    #[test]
    fn kernel_window_streams_to_the_first_run() {
        let pi0 = set(&[0, 1]);
        let mut mon = WindowMonitor::kernel(pi0, 2, 0.0);
        // Round 1: p1 misses p0 — bad; rounds 2 and 3: both hear both.
        mon.observe_row(1, &[set(&[0, 1]), set(&[1])], 1.0);
        assert_eq!(mon.witness(), None);
        assert_eq!(mon.frontier(), 2, "round 1 failure evicted");
        mon.observe_row(2, &[set(&[0, 1]), set(&[0, 1, 2])], 2.0);
        assert_eq!(mon.witness(), None, "window needs two rounds");
        mon.observe_row(3, &[set(&[0, 1]), set(&[0, 1])], 3.0);
        assert_eq!(mon.witness(), Some((2, 3.0)));
    }

    #[test]
    fn space_uniform_rejects_proper_supersets() {
        let pi0 = set(&[0, 1]);
        let mut mon = WindowMonitor::space_uniform(pi0, 1, 0.0);
        mon.observe_row(1, &[set(&[0, 1, 2]), set(&[0, 1])], 1.0);
        assert_eq!(mon.witness(), None, "p0 heard a superset, not π0");
        mon.observe_row(2, &[set(&[0, 1]), set(&[0, 1])], 2.0);
        assert_eq!(mon.witness(), Some((2, 2.0)));
    }

    #[test]
    fn not_before_gates_acceptance() {
        let pi0 = set(&[0]);
        let mut mon = WindowMonitor::space_uniform(pi0, 1, 5.0);
        mon.observe_event(ProcessId::new(0), 1, pi0, 3.0);
        assert_eq!(mon.witness(), None, "completed before the good period");
        mon.observe_event(ProcessId::new(0), 2, pi0, 6.0);
        assert_eq!(mon.witness(), Some((2, 6.0)));
    }

    #[test]
    fn p2otr_needs_the_adjacent_kernel_round() {
        let pi0 = set(&[0, 1]);
        let mut mon = WindowMonitor::p2otr(pi0, 0.0);
        mon.observe_row(1, &[pi0, pi0], 1.0); // uniform
        mon.observe_row(2, &[set(&[0, 1, 2]), pi0], 2.0); // kernel (superset ok)
        assert_eq!(mon.witness(), Some((1, 2.0)));
    }

    #[test]
    fn frontier_survives_process_skew() {
        // p1 lags: its round-2 record arrives after p0's round-4 one. The
        // window [2,3] completes late but must still be found.
        let pi0 = set(&[0, 1]);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let mut mon = WindowMonitor::kernel(pi0, 2, 0.0);
        mon.observe_event(p0, 1, set(&[0]), 1.0); // bad round 1
        mon.observe_event(p0, 2, pi0, 2.0);
        mon.observe_event(p0, 3, pi0, 3.0);
        mon.observe_event(p0, 4, set(&[0]), 4.0); // bad round 4 (for p0)
        assert_eq!(mon.witness(), None, "p1 has not executed yet");
        mon.observe_event(p1, 1, pi0, 5.0); // dead zone: ignored
        mon.observe_event(p1, 2, pi0, 6.0);
        mon.observe_event(p1, 3, pi0, 7.0);
        assert_eq!(mon.witness(), Some((2, 7.0)));
    }

    #[test]
    fn eviction_keeps_the_retained_suffix_bounded() {
        let pi0 = set(&[0, 1]);
        let mut mon = WindowMonitor::space_uniform(pi0, 3, 0.0);
        // Rounds uniform-bad (but kernel-good) twice, then one good: runs
        // of good rounds never reach 3, so eviction must keep up.
        for r in 1..=300 {
            let row = if r % 3 == 0 {
                [pi0, pi0]
            } else {
                [set(&[0, 1, 2]), pi0]
            };
            mon.observe_row(r, &row, r as f64);
        }
        assert_eq!(mon.witness(), None);
        assert!(
            mon.retained_rounds() <= 6,
            "retained {} rounds",
            mon.retained_rounds()
        );
        assert!(mon.frontier() > 290);
    }

    #[test]
    fn witness_latches_and_freezes() {
        let pi0 = set(&[0]);
        let mut mon = WindowMonitor::kernel(pi0, 1, 0.0);
        mon.observe_event(ProcessId::new(0), 1, pi0, 1.0);
        assert_eq!(mon.witness(), Some((1, 1.0)));
        assert!(!mon.active(), "latched monitors stop consuming rows");
        mon.observe_event(ProcessId::new(0), 2, pi0, 2.0);
        assert_eq!(mon.witness(), Some((1, 1.0)), "witness is latched");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn re_executed_rounds_are_rejected() {
        let pi0 = set(&[0]);
        let mut mon = WindowMonitor::kernel(pi0, 1, 100.0);
        let p0 = ProcessId::new(0);
        mon.observe_event(p0, 1, pi0, 1.0);
        mon.observe_event(p0, 1, pi0, 2.0);
    }

    #[test]
    fn non_members_are_ignored() {
        let pi0 = set(&[0]);
        let mut mon = WindowMonitor::kernel(pi0, 1, 0.0);
        // p1 is outside π0: no cursor, no state, no panic.
        mon.observe_row(1, &[pi0, ProcessSet::empty()], 1.0);
        assert_eq!(mon.witness(), Some((1, 1.0)));
    }

    struct FakeLog(Vec<crate::record::RoundRecord>);
    impl RoundLog for FakeLog {
        fn records(&self) -> &[crate::record::RoundRecord] {
            &self.0
        }
    }

    #[test]
    fn log_cursor_feeds_each_record_once() {
        let rec = |round, idx: &[usize]| crate::record::RoundRecord {
            round,
            ho: set(idx),
        };
        let mut logs = vec![FakeLog(vec![rec(1, &[0, 1])]), FakeLog(vec![])];
        let mut cursor = LogCursor::new(2);
        let mut events = Vec::new();
        cursor.drain(&logs, 1.0, |p, r, ho, t| events.push((p, r, ho, t)));
        assert_eq!(events.len(), 1);
        logs[0].0.push(rec(2, &[0]));
        logs[1].0.push(rec(1, &[0, 1]));
        cursor.drain(&logs, 2.0, |p, r, ho, t| events.push((p, r, ho, t)));
        assert_eq!(events.len(), 3);
        assert_eq!(events[1], (ProcessId::new(0), 2, set(&[0]), 2.0));
        assert_eq!(events[2], (ProcessId::new(1), 1, set(&[0, 1]), 2.0));
    }

    #[test]
    fn scenario_monitor_streams_summary_statistics() {
        let mut mon = ScenarioMonitor::new(3);
        let full = ProcessSet::full(3);
        // r1: uniform at full delivery; r2: same (P2otr at ρ0 = 1);
        // r3: empty kernel; r4: non-empty kernel, not uniform.
        mon.observe_round(Round(1), &[full, full, full]);
        mon.observe_round(Round(2), &[full, full, full]);
        mon.observe_round(Round(3), &[set(&[0]), set(&[1]), set(&[2])]);
        mon.observe_round(Round(4), &[set(&[0, 1]), set(&[1, 2]), set(&[1])]);
        let s = mon.summary();
        assert_eq!(s.rounds, 4);
        assert_eq!(s.nek_rounds, 3);
        assert_eq!(s.first_empty_kernel, Some(3));
        assert_eq!(s.largest_kernel_window, 2);
        assert_eq!(s.uniform_rounds, 2);
        assert_eq!(s.largest_uniform_window, 2);
        assert_eq!(s.first_p2otr, Some(1));
    }
}
