//! **Algorithm 2**: ensuring `P_su(π0, ·, ·)` in a *π0-down* good period.
//!
//! ```text
//! Reception policy: highest round number first
//! rp ← 1 ; next_rp ← 1 ; sp ← init_p            (rp, sp on stable storage)
//! while true:
//!   msg ← S_p^rp(sp) ; send ⟨msg, rp⟩ to all     (1 send step)
//!   ip ← 0
//!   while next_rp = rp:
//!     ip ← ip + 1
//!     if ip ≥ 2δ + (n+2)φ: next_rp ← rp + 1      (timeout)
//!     receive a message                          (1 receive step)
//!     if ⟨msg, r′⟩ from q: store; if r′ > rp: next_rp ← r′
//!   R ← messages stored for round rp
//!   sp ← T_p^rp(R, sp)
//!   forall r′ ∈ [rp+1, next_rp−1]: sp ← T_p^{r′}(∅, sp)
//!   rp ← next_rp
//! ```
//!
//! The algorithm sends **no messages of its own** — it only wraps the upper
//! layer's round messages with a round number. Recovery restarts the outer
//! loop with `rp`, `sp` read back from stable storage and `msgsRcv`,
//! `next_rp` reinitialized.
//!
//! ## The unified message path
//!
//! The program emits the upper layer's plan *natively*: `S_p^r` is written
//! through a [`PlanSlot`] backed by the program's generation-stamped
//! [`PayloadPool`], exactly like the round-synchronous executor's outbox —
//! except that here recipients hold payloads *across* rounds (until the
//! round they belong to finishes), so a displaced payload slot parks in
//! the pool until the last recipient lets go. The wire envelope
//! ([`Alg2Msg`]) goes through a second plan slot of its own, so in steady
//! state a send step constructs both the payload and the envelope into
//! recycled slots: **zero** heap allocations per round
//! (`tests/alloc_steady_state.rs`).

use ho_core::algorithm::{HoAlgorithm, HoAlgorithmExt};
use ho_core::executor::MessageStats;
use ho_core::pool::PooledPayload;
use ho_core::process::ProcessId;
use ho_core::round::Round;
use ho_core::Mailbox;
use ho_sim::program::{policy, Program, StepKind, WireMsg};

use crate::record::{BoundedLog, RoundLog, RoundRecord};
use crate::send_path::{fill_round_mailbox, SendPath};
use crate::StoredMsgs;

/// The wire format of Algorithm 2: the upper layer's round-`round` message.
///
/// The payload is the upper layer's [`SendPlan`](ho_core::SendPlan)
/// broadcast payload, carried as a generation-stamped pool handle: the
/// engine's `send to all` fans one handle out to `n` destinations, so a
/// round costs one payload construction per sender instead of one per
/// transmission — and that construction lands in a recycled slot once the
/// pool warms up.
#[derive(Clone, Debug, PartialEq)]
pub struct Alg2Msg<M> {
    /// The round this message belongs to.
    pub round: u64,
    /// The payload produced by the upper layer's sending function
    /// (`None` if `S_p^r` produced no broadcast message).
    pub payload: Option<PooledPayload<M>>,
}

impl<M> Alg2Msg<M> {
    /// Builds a wire message, wrapping the payload for shared fan-out.
    #[must_use]
    pub fn new(round: u64, payload: Option<M>) -> Self {
        Alg2Msg {
            round,
            payload: payload.map(PooledPayload::new),
        }
    }
}

/// The stable-storage image of Algorithm 2 (`rp` and `sp`; §4.2.1 notes the
/// in-memory-copy optimisation — equivalent, so we model the logical
/// content).
#[derive(Clone, Debug)]
struct StableImage<S> {
    round: u64,
    state: S,
}

/// Algorithm 2 as a step [`Program`], wrapping any broadcast [`HoAlgorithm`].
#[derive(Clone, Debug)]
pub struct Alg2Program<A: HoAlgorithm> {
    alg: A,
    p: ProcessId,
    /// Receive-step budget per round, `⌈2δ + (n+2)φ⌉`.
    timeout: u64,
    // ---- volatile state ----
    state: A::State,
    round: u64,
    next_round: u64,
    msgs: StoredMsgs<A>,
    i: u64,
    sending: bool,
    // ---- the unified send path ----
    /// `S_p^r`'s pool-backed plan slot plus the [`Alg2Msg`] envelope's
    /// (shared machinery — see [`SendPath`]).
    path: SendPath<A, Alg2Msg<A::Message>>,
    /// The round mailbox handed to `T_p^r`, persistent across rounds.
    mailbox: Mailbox<A::Message>,
    // ---- stable storage ----
    stable: StableImage<A::State>,
    // ---- observability ----
    records: BoundedLog,
    crashes: u64,
}

impl<A: HoAlgorithm> Alg2Program<A> {
    /// Creates the program for process `p` with the given receive-step
    /// `timeout` (use [`BoundParams::alg2_timeout`](crate::bounds::BoundParams::alg2_timeout)).
    #[must_use]
    pub fn new(alg: A, p: ProcessId, initial_value: A::Value, timeout: u64) -> Self {
        assert!(timeout >= 1, "timeout must be at least one receive step");
        let state = alg.init(p, initial_value);
        Alg2Program {
            stable: StableImage {
                round: 1,
                state: state.clone(),
            },
            alg,
            p,
            timeout,
            state,
            round: 1,
            next_round: 1,
            msgs: Vec::new(),
            i: 0,
            sending: true,
            path: SendPath::new(),
            mailbox: Mailbox::empty(),
            records: BoundedLog::new(),
            crashes: 0,
        }
    }

    /// Caps the observability log at the last `window` executed rounds:
    /// the program stops accreting one record (a `ProcessSet` plus a round
    /// number) per round, which matters on long runs where only a bounded
    /// predicate window is ever evaluated. A polling
    /// [`SystemTrace`](crate::record::SystemTrace) must observe at least
    /// every `window` executed rounds (it asserts this).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_record_window(mut self, window: usize) -> Self {
        self.records.set_window(window);
        self
    }

    /// The upper-layer algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// Current upper-layer state `s_p`.
    #[must_use]
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// Current round `r_p`.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The upper layer's decision, if reached.
    #[must_use]
    pub fn decision(&self) -> Option<A::Value> {
        self.alg.decision(&self.state)
    }

    /// Number of crashes survived.
    #[must_use]
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }

    /// Ends round `rp`: runs `T_p^{rp}` on the stored round-`rp` messages,
    /// applies `∅`-transitions for skipped rounds, advances to `next_rp` and
    /// persists to stable storage.
    fn finish_round(&mut self) {
        debug_assert!(self.next_round > self.round);
        let r = self.round;
        fill_round_mailbox::<A>(&mut self.mailbox, &self.msgs, r);
        self.alg
            .transition(Round(r), self.p, &mut self.state, &self.mailbox);
        self.records.push(RoundRecord {
            round: r,
            ho: self.mailbox.senders(),
        });
        // Skipped rounds run with ∅ (line 21).
        for r_skip in (r + 1)..self.next_round {
            self.alg
                .apply_empty_rounds(self.p, &mut self.state, Round(r_skip), Round(r_skip + 1));
            self.records.push(RoundRecord {
                round: r_skip,
                ho: ho_core::ProcessSet::empty(),
            });
        }
        self.round = self.next_round;
        // Space optimisation sanctioned by §4.2.1: drop messages for rounds
        // already completed.
        self.msgs.retain(|(_, mr, _)| *mr >= self.round);
        self.stable = StableImage {
            round: self.round,
            state: self.state.clone(),
        };
        self.sending = true;
        self.i = 0;
    }
}

impl<A: HoAlgorithm> Program for Alg2Program<A> {
    type Msg = Alg2Msg<A::Message>;

    fn next_step(&mut self) -> StepKind<Self::Msg> {
        if self.sending {
            self.sending = false;
            self.i = 0;
            // S_p^r written through the shared pool-backed send path: the
            // payload construction lands in a recycled slot whenever one
            // has drained (recipients hold payloads across rounds, so the
            // generation-stamped pool — not the executor's
            // take-it-back-now trick — is what makes this reuse possible),
            // and the Alg2Msg envelope goes through a slot of its own.
            let round = self.round;
            self.path
                .emit(&self.alg, Round(round), self.p, &self.state, |payload| {
                    Alg2Msg { round, payload }
                })
        } else {
            // Lines 11–13: count the receive step; on timeout, move on after
            // this (still executed) receive.
            self.i += 1;
            if self.i >= self.timeout {
                self.next_round = self.next_round.max(self.round + 1);
            }
            StepKind::Receive
        }
    }

    fn select_message(&mut self, buffer: &[(ProcessId, WireMsg<Self::Msg>)]) -> Option<usize> {
        policy::highest_round_first(buffer, |m| m.round)
    }

    fn on_receive(&mut self, message: Option<(ProcessId, WireMsg<Self::Msg>)>) {
        if let Some((q, m)) = message {
            if m.round >= self.round {
                // Keep the payload *handle* — the sender's slot stays
                // parked (generation-checked) until this round finishes.
                self.msgs.push((q, m.round, m.payload.clone()));
            }
            if m.round > self.round {
                self.next_round = self.next_round.max(m.round);
            }
        }
        if self.next_round > self.round {
            self.finish_round();
        }
    }

    fn on_crash(&mut self) {
        self.crashes += 1;
    }

    fn on_recover(&mut self) {
        // Restart at line 6 with rp, sp from stable storage; msgsRcv and
        // next_rp reinitialized.
        self.round = self.stable.round;
        self.state = self.stable.state.clone();
        self.next_round = self.round;
        self.msgs.clear();
        self.i = 0;
        self.sending = true;
    }

    fn discard_buffered(&self, m: &Self::Msg) -> bool {
        // Line 14 ignores messages for completed rounds; dropping them
        // from the buffer (§4.2.1's space optimisation) is behaviourally
        // identical and keeps the buffer — and the payload pinning —
        // bounded under re-announcement storms.
        m.round < self.round
    }

    fn message_stats(&self) -> MessageStats {
        self.path.stats()
    }
}

impl<A: HoAlgorithm> RoundLog for Alg2Program<A> {
    fn records(&self) -> &[RoundRecord] {
        self.records.records()
    }

    fn discarded(&self) -> u64 {
        self.records.discarded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::algorithms::OneThirdRule;
    use ho_core::process::ProcessSet;
    use ho_sim::{GoodKind, Schedule, SimConfig, Simulator, TimePoint};

    use crate::bounds::BoundParams;
    use crate::record::SystemTrace;

    fn make_programs(n: usize, timeout: u64, values: &[u64]) -> Vec<Alg2Program<OneThirdRule>> {
        (0..n)
            .map(|p| Alg2Program::new(OneThirdRule::new(n), ProcessId::new(p), values[p], timeout))
            .collect()
    }

    #[test]
    fn good_period_produces_uniform_rounds_and_decision() {
        let n = 4;
        let params = BoundParams::new(n, 1.0, 2.0);
        let cfg = SimConfig::normalized(n, 1.0, 2.0);
        let pi0 = ProcessSet::full(n);
        let schedule = Schedule::always_good(pi0, GoodKind::PiDown);
        let programs = make_programs(n, params.alg2_timeout(), &[3, 1, 4, 1]);
        let mut sim = Simulator::new(cfg, schedule, programs);

        let mut st = SystemTrace::new(n);
        let decided = sim.run_until(TimePoint::new(1000.0), |s| {
            s.programs().iter().all(|p| p.decision().is_some())
        });
        st.observe(sim.programs(), sim.now().get());
        assert!(decided, "OTR over Algorithm 2 decides in a Π-good period");
        assert!(
            sim.programs().iter().all(|p| p.decision() == Some(1)),
            "smallest value wins"
        );

        // Every executed round is space uniform over Π (Lemma B.6).
        let (rho0, _) = st
            .find_space_uniform_window(pi0, 2, 0.0)
            .expect("uniform window");
        assert!(rho0 >= 1);
    }

    #[test]
    fn initial_good_period_meets_theorem5_bound() {
        // Theorem 5: an initial good period of x(2δ+(n+2)φ+1)φ achieves
        // P_su(π0, 1, x). Check the window completes within the bound
        // (plus delivery slack δ+φ for the final transition to be observed).
        let n = 4;
        let (phi, delta) = (1.0, 2.0);
        let params = BoundParams::new(n, phi, delta);
        let cfg = SimConfig::normalized(n, phi, delta);
        let pi0 = ProcessSet::full(n);
        let schedule = Schedule::always_good(pi0, GoodKind::PiDown);
        let programs = make_programs(n, params.alg2_timeout(), &[3, 1, 4, 1]);
        let mut sim = Simulator::new(cfg, schedule, programs);

        let x = 2;
        let bound = params.theorem5(x);
        let mut st = SystemTrace::new(n);
        let achieved = sim.run_until(TimePoint::new(bound * 3.0), |s| {
            let mut probe = SystemTrace::new(n);
            probe.observe(s.programs(), s.now().get());
            probe.find_space_uniform_window(pi0, x, 0.0).is_some()
        });
        st.observe(sim.programs(), sim.now().get());
        assert!(achieved, "P_su(Π, 1..x) achieved");
        assert!(
            sim.now().get() <= bound + delta + phi + 1e-9,
            "achieved at {} > bound {}",
            sim.now().get(),
            bound
        );
    }

    #[test]
    fn crash_recovery_resumes_from_stable_storage() {
        let n = 3;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg2Program::new(alg, ProcessId::new(0), 5u64, 4);
        // Drive manually: send, then 4 receives (empty) → timeout, round 2.
        assert!(matches!(prog.next_step(), StepKind::Send(_)));
        for _ in 0..4 {
            assert_eq!(prog.next_step(), StepKind::Receive);
            prog.on_receive(None);
        }
        assert_eq!(prog.round(), 2);
        // Crash: round and state must come back from stable storage.
        prog.on_crash();
        prog.on_recover();
        assert_eq!(prog.round(), 2, "stable storage preserved rp");
        assert_eq!(prog.crash_count(), 1);
        assert!(
            matches!(prog.next_step(), StepKind::Send(_)),
            "restarts at line 6"
        );
    }

    #[test]
    fn higher_round_message_fast_forwards() {
        let n = 3;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg2Program::new(alg, ProcessId::new(0), 5u64, 100);
        let _ = prog.next_step(); // send round 1
        assert_eq!(prog.next_step(), StepKind::Receive);
        // A round-7 message arrives: jump to round 7 immediately (lines
        // 17–18), executing rounds 1..6 (round 1 with the stored payload
        // absent — only the round-7 message is stored).
        prog.on_receive(Some((
            ProcessId::new(1),
            WireMsg::Owned(Alg2Msg::new(7, Some(9u64))),
        )));
        assert_eq!(prog.round(), 7);
        // Records: rounds 1..=6 executed (1 real + 5 empty).
        assert_eq!(prog.records().len(), 6);
        assert!(prog
            .records()
            .iter()
            .all(|r| r.ho.is_empty() || r.round == 1));
    }

    #[test]
    fn stale_messages_are_ignored() {
        let n = 3;
        let alg = OneThirdRule::new(n);
        let mut prog = Alg2Program::new(alg, ProcessId::new(0), 5u64, 100);
        let _ = prog.next_step();
        // Jump to round 3.
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(1),
            WireMsg::Owned(Alg2Msg::new(3, Some(1u64))),
        )));
        assert_eq!(prog.round(), 3);
        // A late round-1 message must not be stored.
        let before = prog.msgs.len();
        let _ = prog.next_step();
        prog.on_receive(Some((
            ProcessId::new(2),
            WireMsg::Owned(Alg2Msg::new(1, Some(2u64))),
        )));
        assert_eq!(prog.msgs.len(), before);
    }

    #[test]
    fn sends_no_extra_messages() {
        // Algorithm 2 relies exclusively on the upper layer's messages: one
        // broadcast per round, nothing else.
        let n = 3;
        let cfg = SimConfig::normalized(n, 1.0, 1.0);
        let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown);
        let programs = make_programs(n, 8, &[1, 2, 3]);
        let mut sim = Simulator::new(cfg, schedule, programs);
        sim.run_for(TimePoint::new(200.0));
        let max_round: u64 = sim.programs().iter().map(|p| p.round()).max().unwrap();
        // Each process sends at most one broadcast per round it entered.
        assert!(sim.stats().send_steps <= n as u64 * max_round);
    }
}
