//! The unified send path shared by Algorithms 2 and 3.
//!
//! Both predicate-implementation programs send the same way: evaluate the
//! upper layer's `S_p^r` through a pool-backed [`PlanSlot`], then wrap the
//! broadcast payload handle in a wire envelope written through a *second*
//! pool-backed slot. Keeping that machinery (and its construction
//! accounting) in one place means a bookkeeping fix cannot silently apply
//! to one algorithm and not the other.

use ho_core::algorithm::HoAlgorithm;
use ho_core::executor::MessageStats;
use ho_core::pool::{PayloadPool, PooledPayload};
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::round::Round;
use ho_core::send_plan::{PlanSlot, PlanSpares, SendPlan};
use ho_core::Mailbox;
use ho_sim::program::StepKind;

use crate::StoredMsgs;

/// The pool-backed sending machinery of a predicate-implementation
/// program: `S_p^r`'s plan slot, the wire envelope's (`W`) plan slot, and
/// the unified [`MessageStats`] accounting. Recipients hold both the
/// payload and the envelope across rounds, so both pools are the
/// generation-stamped, park-while-shared kind.
#[derive(Clone, Debug)]
pub(crate) struct SendPath<A: HoAlgorithm, W> {
    plan: SendPlan<A::Message>,
    plan_spares: PlanSpares<A::Message>,
    payload_pool: PayloadPool<A::Message>,
    wire_plan: SendPlan<W>,
    wire_spares: PlanSpares<W>,
    wire_pool: PayloadPool<W>,
    stats: MessageStats,
}

impl<A: HoAlgorithm, W: Clone + std::fmt::Debug> SendPath<A, W> {
    pub(crate) fn new() -> Self {
        SendPath {
            plan: SendPlan::Silent,
            plan_spares: PlanSpares::default(),
            payload_pool: PayloadPool::new(),
            wire_plan: SendPlan::Silent,
            wire_spares: PlanSpares::default(),
            wire_pool: PayloadPool::new(),
            stats: MessageStats::default(),
        }
    }

    /// Evaluates `S_p^r` through the payload plan slot, wraps the broadcast
    /// handle into the wire envelope built by `wrap`, and returns the send
    /// step. In steady state both constructions land in recycled pool
    /// slots: the payload slot once its recipients let go (possibly many
    /// rounds later — the generation-stamped pool's whole purpose), the
    /// envelope slot once the reception buffers drain.
    pub(crate) fn emit(
        &mut self,
        alg: &A,
        r: Round,
        p: ProcessId,
        state: &A::State,
        wrap: impl Fn(Option<PooledPayload<A::Message>>) -> W,
    ) -> StepKind<W> {
        let reused = alg.send_into(
            r,
            p,
            state,
            &mut PlanSlot::new(
                &mut self.plan,
                &mut self.plan_spares,
                &mut self.payload_pool,
            ),
        );
        self.stats.payload_allocs += self.plan.payload_allocs() as u64;
        self.stats.payload_reuses += reused;
        let payload = self.plan.broadcast_handle().cloned();
        let wire_reused = PlanSlot::new(
            &mut self.wire_plan,
            &mut self.wire_spares,
            &mut self.wire_pool,
        )
        .broadcast_with(
            || wrap(payload.clone()),
            |slot| *slot = wrap(payload.clone()),
        );
        self.stats.payload_allocs += 1;
        self.stats.payload_reuses += wire_reused;
        StepKind::Send(self.wire_plan.clone())
    }

    /// The construction accounting so far.
    pub(crate) fn stats(&self) -> MessageStats {
        self.stats
    }
}

/// Fills `mailbox` (cleared first) with the round-`r` payload handles
/// stored in `msgs` — at most one per sender, shared by handle so the
/// generation check rides along into the transition function.
pub(crate) fn fill_round_mailbox<A: HoAlgorithm>(
    mailbox: &mut Mailbox<A::Message>,
    msgs: &StoredMsgs<A>,
    r: u64,
) {
    mailbox.clear();
    let mut seen = ProcessSet::empty();
    for (q, mr, payload) in msgs {
        if *mr == r && !seen.contains(*q) {
            seen.insert(*q);
            if let Some(m) = payload {
                mailbox.push_pooled(*q, m.clone());
            }
        }
    }
}
