//! # ho-predicates — the predicate implementation layer (§4)
//!
//! The lower layer of Figure 1: algorithms that *implement* communication
//! predicates on top of the partially synchronous system model of `ho-sim`,
//! plus the closed-form good-period bounds the paper proves about them.
//!
//! * [`alg2`] — **Algorithm 2**: `P_su(π0, ·, ·)` in *π0-down* good periods.
//! * [`alg3`] — **Algorithm 3**: `P_k(π0, ·, ·)` in *π0-arbitrary* good
//!   periods (`f < n/2`).
//! * The macro-round translation (Algorithm 4) is
//!   [`ho_core::translation::Translated`]; stacking `Alg3Program<Translated<A>>`
//!   gives the paper's complete construction.
//! * [`bounds`] — Theorems 3, 5, 6, 7, Corollary 4 and the §4.2.2(c)
//!   full-stack bound as plain formulas.
//! * [`record`] / [`measure`] — observability and the measurement harness
//!   that produces the numbers in `EXPERIMENTS.md`.
//! * [`monitor`] — online predicate monitoring: streaming, failure-
//!   frontier evaluators for kernel / space-uniform / `P2_otr` windows,
//!   equivalent to the batch `find_*` searches but incremental, trace-free
//!   and allocation-free in steady state.
//!
//! ```
//! use ho_predicates::bounds::BoundParams;
//! use ho_predicates::measure::{measure_alg2_space_uniform, Scenario};
//! use ho_core::process::ProcessSet;
//!
//! let params = BoundParams::new(4, 1.0, 2.0);
//! let m = measure_alg2_space_uniform(
//!     params, ProcessSet::full(4), 2, Scenario::Initial, 42);
//! // Theorem 5 is a worst-case bound; the run must land within it
//! // (δ + φ observation slack for the final delivery).
//! assert!(m.within_bound(params.delta + params.phi + 1.0));
//! ```

use ho_core::algorithm::HoAlgorithm;
use ho_core::pool::PooledPayload;
use ho_core::process::ProcessId;

/// Messages stored for pending rounds by Algorithms 2 and 3:
/// `(sender, round, shared payload handle)`. Holding the pool handle across
/// rounds is exactly the pattern the generation-stamped [`PooledPayload`]
/// exists for: the sender cannot recycle the slot while it sits here, and a
/// read through a stale handle would trip the generation assertion.
pub(crate) type StoredMsgs<A> = Vec<(
    ProcessId,
    u64,
    Option<PooledPayload<<A as HoAlgorithm>::Message>>,
)>;

pub mod alg2;
pub mod alg3;
pub mod bounds;
pub mod measure;
pub mod monitor;
pub mod record;
pub(crate) mod send_path;

pub use alg2::{Alg2Msg, Alg2Program};
pub use alg3::{Alg3Msg, Alg3Policy, Alg3Program, InitResend};
pub use bounds::BoundParams;
pub use measure::{
    measure_alg2_space_uniform, measure_alg3_kernel, measure_full_stack, run_alg2_scenario,
    run_alg3_scenario, Measurement, Scenario, SimMeasurement, StackOutcome,
};
pub use monitor::{Accept, LogCursor, PredicateSummary, ScenarioMonitor, WindowMonitor};
pub use record::{RoundLog, RoundRecord, SystemTrace};
