//! # ho-rsm — a replicated-log service on the HO kernel
//!
//! The paper's consensus algorithms are single-shot; real systems consume
//! consensus as **repeated consensus driving a replicated log**. This
//! crate is that layer: a pipelined multi-slot replicated state machine
//! built directly on the `ho-core` round runtime, so every adversary, the
//! scratch-buffer discipline and the pooled SendPlan kernel apply to the
//! log service unchanged.
//!
//! * [`MultiSlot`] — the tentpole: any single-shot
//!   [`HoAlgorithm`](ho_core::HoAlgorithm) lifted into a multi-slot log
//!   algorithm with a configurable pipeline depth. One HO round advances
//!   *every* live slot; slots decide out of order and apply in order;
//!   decided-value adoption and bounded backfill replace the unbounded
//!   prefix-shipping of the single-slot `RepeatedConsensus`.
//! * [`workload`] — client command generators (fixed-rate, bursty,
//!   closed-loop, skewed-key) batching commands into slot proposals.
//! * [`LogDriver`] — the service front end: run, inspect applied logs,
//!   aggregate throughput (commands, slots) and latency-in-rounds.
//! * [`checker`] — the deterministic applied-log oracle: prefix
//!   agreement, exactly-once apply, batch integrity.
//! * [`shard`] — the partitioned store: the keyspace range-partitioned
//!   across many independent `MultiSlot` groups behind an
//!   allocation-free generation-time router, merged back into one
//!   service view by [`ShardedLogDriver`] and checked by the sharded
//!   oracle (per-shard invariants plus cross-shard namespace
//!   containment and exactly-once).
//!
//! ```
//! use ho_core::adversary::RandomLoss;
//! use ho_core::algorithms::OneThirdRule;
//! use ho_rsm::{LogDriver, RsmConfig, WorkloadSpec};
//!
//! // Five replicas, four slots in flight, 2 commands/round, 30% loss.
//! let mut service = LogDriver::new(
//!     OneThirdRule::new(5),
//!     WorkloadSpec::FixedRate { per_round: 2 },
//!     RsmConfig::with_depth(4),
//!     7,
//! );
//! service.run(&mut RandomLoss::new(0.3, 7), 80).unwrap();
//! let check = service.check();
//! assert!(check.is_ok(), "{:?}", check.violation);
//! assert!(check.commands > 0, "the service made progress under loss");
//! ```

pub mod checker;
pub mod driver;
pub mod shard;
pub mod slots;
pub mod workload;

pub use checker::{
    check_logs, check_sharded_logs, count_commands, decode_batch, decode_slot_value, encode_batch,
    encode_slot_value, lease_holder, BatchRef, LogCheck, ShardedLogCheck,
};
pub use driver::{LogDriver, ServiceStats};
pub use shard::{shard_of, shard_seed, ShardSpec, ShardedLogDriver, MAX_SHARDS, SHARD_SHIFT};
pub use slots::{
    FlowControl, MultiSlot, ReplicaStats, RsmConfig, RsmMessage, RsmState, SlotEntry, SlotPayload,
};
pub use workload::{Command, WorkloadSpec, WorkloadState};
