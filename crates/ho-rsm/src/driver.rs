//! [`LogDriver`]: the log-service front end over the round runtime.
//!
//! A `LogDriver` owns a [`RoundExecutor`] running a [`MultiSlot`] machine:
//! one shared adversary-scheduled round loop advancing every live slot of
//! every replica, with the executor's persistent mailboxes, outbox pools
//! and scratch buffers doing what they already do for single-shot runs.
//! On top it adds the service-level view: applied logs, throughput and
//! latency accounting, and the deterministic safety oracle
//! ([`check_logs`]).

use ho_core::adversary::Adversary;
use ho_core::executor::{MessageStats, RoundExecutor, RoundScratch, RunError};
use ho_core::telemetry::{Event, EventKind, Telemetry};
use ho_core::trace::TraceMode;
use ho_core::HoAlgorithm;

use crate::checker::{check_logs, LogCheck};
use crate::slots::{MultiSlot, RsmConfig, RsmState};
use crate::workload::WorkloadSpec;

/// Aggregated service statistics across all replicas of a driver.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Commands generated across replicas.
    pub generated_commands: u64,
    /// Commands applied in the *longest* replica log (service throughput).
    pub applied_commands: u64,
    /// Slots in the longest replica log.
    pub applied_slots: u64,
    /// Slots in the shortest replica log (the laggard's view).
    pub min_applied_slots: u64,
    /// Commands requeued after losing their slot, summed over replicas.
    pub requeued_commands: u64,
    /// Backfill entries delivered into replicas' mailboxes, summed over
    /// replicas — the catch-up traffic volume.
    pub backfill_entries: u64,
    /// Rounds in which some replica's applied log was shorter than the
    /// longest — rounds the service spent degraded.
    pub divergent_rounds: u64,
    /// The round at which the last divergence healed (every log equal
    /// length again); `None` if the service never diverged or is still
    /// divergent.
    pub last_convergence_round: Option<u64>,
    /// Commands drawn but owned by another shard, summed over replicas
    /// (always 0 for an unsharded service).
    pub routed_away_commands: u64,
    /// Commands generated on hot keys, summed over replicas (the skew
    /// realisation under `skewed_key` workloads).
    pub hot_generated: u64,
    /// Slots batched past the lease by the timeout fallback, summed over
    /// replicas (always 0 with leases off).
    pub lease_takeovers: u64,
    /// Arrivals deferred by workload backpressure, summed over replicas
    /// (always 0 without an admission window).
    pub deferred_commands: u64,
    /// Apply latencies in rounds, pooled over every replica's own applied
    /// commands, ascending.
    pub latencies: Vec<u64>,
}

impl ServiceStats {
    /// The `q`-quantile (0..=100) of the pooled latency samples.
    #[must_use]
    pub fn latency_percentile(&self, q: u32) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = (self.latencies.len() - 1) * q as usize / 100;
        Some(self.latencies[rank])
    }
}

/// A replicated-log service: `n` replicas ordering client commands by
/// repeated consensus, `depth` slots pipelined over one round runtime.
pub struct LogDriver<A: HoAlgorithm<Value = u64>> {
    exec: RoundExecutor<MultiSlot<A>>,
    max_batch: u64,
    /// Rounds after which some replica's log trailed the longest.
    divergent_rounds: u64,
    /// Whether the logs were unequal after the last executed round.
    diverged: bool,
    /// Round at which the last divergence healed.
    last_convergence_round: Option<u64>,
    /// Service-counter baselines for telemetry diffing: cumulative lease
    /// takeovers, backfill entries and deferred arrivals after the
    /// previous round, so [`LogDriver::run`] can record one event per
    /// round the counter actually moved. Only read when telemetry is on.
    prev_takeovers: u64,
    prev_backfill: u64,
    prev_deferred: u64,
}

impl<A: HoAlgorithm<Value = u64>> LogDriver<A> {
    /// A fresh driver (statistics-only trace — the service configuration).
    #[must_use]
    pub fn new(inner: A, workload: WorkloadSpec, cfg: RsmConfig, seed: u64) -> Self {
        Self::with_scratch(inner, workload, cfg, seed, RoundScratch::default())
    }

    /// Like [`LogDriver::new`], seeded with recovered round buffers so
    /// back-to-back scenarios skip the warm-up allocations.
    #[must_use]
    pub fn with_scratch(
        inner: A,
        workload: WorkloadSpec,
        cfg: RsmConfig,
        seed: u64,
        scratch: RoundScratch,
    ) -> Self {
        let max_batch = cfg.max_batch as u64;
        let alg = MultiSlot::new(inner, workload, cfg, seed);
        let initial = alg.initial_checker_values();
        LogDriver {
            exec: RoundExecutor::with_scratch(alg, initial, TraceMode::Off, scratch),
            max_batch,
            divergent_rounds: 0,
            diverged: false,
            last_convergence_round: None,
            prev_takeovers: 0,
            prev_backfill: 0,
            prev_deferred: 0,
        }
    }

    /// Installs a telemetry handle on the underlying executor: round
    /// phases and `RoundStart`/`Decide` events come from the round loop
    /// itself, and [`LogDriver::run`] adds the service-level events
    /// (lease takeovers, backfill, deferred admissions) by diffing the
    /// replicas' cumulative counters each round.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.exec.set_telemetry(telemetry);
    }

    /// Read access to the executor's telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        self.exec.telemetry()
    }

    /// Takes the telemetry handle out (an off handle remains).
    pub fn take_telemetry(&mut self) -> Telemetry {
        self.exec.take_telemetry()
    }

    /// Number of replicas.
    #[must_use]
    pub fn n(&self) -> usize {
        self.exec.n()
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.exec.current_round().get()
    }

    /// Runs `rounds` rounds under `adversary`, tracking log convergence
    /// after every round (an alloc-free `O(n)` scan per round): how many
    /// rounds some replica trailed the longest log, and when the last
    /// such divergence healed — the catch-up latency observable.
    ///
    /// # Errors
    ///
    /// Propagates a slot-0 consensus violation from the executor's checker
    /// (whole-log invariants are [`LogDriver::check`]'s job).
    pub fn run(
        &mut self,
        adversary: &mut impl Adversary,
        rounds: u64,
    ) -> Result<(), RunError<u64>> {
        for _ in 0..rounds {
            let round = self.exec.step(adversary)?;
            let mut min = usize::MAX;
            let mut max = 0;
            for s in self.exec.states() {
                let len = s.applied().len();
                min = min.min(len);
                max = max.max(len);
            }
            if min != max {
                self.divergent_rounds += 1;
                self.diverged = true;
            } else if self.diverged {
                self.diverged = false;
                self.last_convergence_round = Some(round.get());
            }
            if self.exec.telemetry().is_on() {
                self.record_service_events(round.get());
            }
        }
        Ok(())
    }

    /// Records the service-level events of the round that just executed
    /// by diffing the replicas' cumulative flow-control counters against
    /// the previous round's baselines — one event per kind per round the
    /// counter moved, so quiet rounds cost nothing in the ring.
    fn record_service_events(&mut self, round: u64) {
        let mut takeovers = 0;
        let mut backfill = 0;
        let mut deferred = 0;
        for s in self.exec.states() {
            takeovers += s.stats().lease_takeovers;
            backfill += s.stats().backfill_received;
            deferred += s.workload().deferred();
        }
        let time = round as f64;
        let telemetry = self.exec.telemetry_mut();
        if takeovers > self.prev_takeovers {
            telemetry.record(
                round,
                time,
                Event::ALL,
                EventKind::LeaseTakeover { takeovers },
            );
        }
        if backfill > self.prev_backfill {
            let entries = backfill - self.prev_backfill;
            telemetry.record(
                round,
                time,
                Event::ALL,
                EventKind::BackfillEntry { entries },
            );
        }
        if deferred > self.prev_deferred {
            let d = deferred - self.prev_deferred;
            telemetry.record(
                round,
                time,
                Event::ALL,
                EventKind::DeferredAdmission { deferred: d },
            );
        }
        self.prev_takeovers = takeovers;
        self.prev_backfill = backfill;
        self.prev_deferred = deferred;
    }

    /// Rounds after which some replica's applied log trailed the longest
    /// (counted by [`LogDriver::run`]'s per-round scan).
    #[must_use]
    pub fn divergent_rounds(&self) -> u64 {
        self.divergent_rounds
    }

    /// The round at which the last log divergence healed; `None` if the
    /// logs never diverged or are still unequal.
    #[must_use]
    pub fn last_convergence_round(&self) -> Option<u64> {
        self.last_convergence_round
    }

    /// Whether every replica's applied log had equal length after the
    /// last executed round.
    #[must_use]
    pub fn converged(&self) -> bool {
        !self.diverged
    }

    /// The per-replica states.
    #[must_use]
    pub fn states(&self) -> &[RsmState<A>] {
        self.exec.states()
    }

    /// Every replica's applied log.
    #[must_use]
    pub fn applied_logs(&self) -> Vec<&[u64]> {
        self.exec.states().iter().map(RsmState::applied).collect()
    }

    /// Runs the applied-log safety oracle over the current logs.
    #[must_use]
    pub fn check(&self) -> LogCheck {
        check_logs(&self.applied_logs(), self.n(), self.max_batch)
    }

    /// Aggregated service statistics (latency samples sorted ascending).
    #[must_use]
    pub fn service_stats(&self) -> ServiceStats {
        let mut stats = ServiceStats::default();
        for s in self.exec.states() {
            stats.generated_commands += s.workload().generated();
            stats.hot_generated += s.workload().hot_generated();
            stats.requeued_commands += s.stats().requeued_commands;
            stats.routed_away_commands += s.workload().routed_away();
            stats.backfill_entries += s.stats().backfill_received;
            stats.lease_takeovers += s.stats().lease_takeovers;
            stats.deferred_commands += s.workload().deferred();
            stats.latencies.extend_from_slice(&s.stats().latencies);
        }
        stats.divergent_rounds = self.divergent_rounds;
        stats.last_convergence_round = self.last_convergence_round;
        let logs = self.applied_logs();
        stats.applied_slots = logs.iter().map(|l| l.len() as u64).max().unwrap_or(0);
        stats.min_applied_slots = logs.iter().map(|l| l.len() as u64).min().unwrap_or(0);
        // Service throughput is what the longest log ordered ([`check`]
        // independently recomputes the same sum while validating).
        stats.applied_commands = logs
            .iter()
            .max_by_key(|l| l.len())
            .map_or(0, |l| crate::checker::count_commands(l));
        stats.latencies.sort_unstable();
        stats
    }

    /// Message-cost accounting across the run (the SendPlan kernel's
    /// counters, same meaning as the single-shot sweeps).
    #[must_use]
    pub fn message_stats(&self) -> MessageStats {
        self.exec.message_stats()
    }

    /// Recovers the type-independent round buffers for the next scenario.
    #[must_use]
    pub fn into_scratch(self) -> RoundScratch {
        self.exec.into_scratch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::adversary::{CrashRecovery, FullDelivery, RandomLoss};
    use ho_core::algorithms::OneThirdRule;
    use ho_core::round::Round;

    fn driver(n: usize, depth: usize) -> LogDriver<OneThirdRule> {
        LogDriver::new(
            OneThirdRule::new(n),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(depth),
            11,
        )
    }

    #[test]
    fn healthy_service_orders_commands() {
        let mut d = driver(4, 4);
        d.run(&mut FullDelivery, 40).unwrap();
        let check = d.check();
        assert!(check.is_ok(), "{:?}", check.violation);
        let stats = d.service_stats();
        assert!(stats.applied_commands > 0);
        assert_eq!(stats.applied_slots, stats.min_applied_slots);
        assert!(stats.latency_percentile(50) <= stats.latency_percentile(99));
        assert!(
            stats.latency_percentile(99).unwrap() >= 2,
            "OTR needs 2 rounds"
        );
    }

    #[test]
    fn crash_recovery_service_stays_consistent_and_catches_up() {
        let mut d = driver(5, 4);
        let outages: Vec<(usize, Round, Round)> = (0..5)
            .map(|q| (q, Round(3 + 2 * q as u64), Round(6 + 2 * q as u64)))
            .collect();
        let mut adv = CrashRecovery::new(5, &outages);
        d.run(&mut adv, 60).unwrap();
        let check = d.check();
        assert!(check.is_ok(), "{:?}", check.violation);
        assert!(check.slots > 0);
        let stats = d.service_stats();
        assert_eq!(
            stats.min_applied_slots, stats.applied_slots,
            "everyone caught up after the outages"
        );
    }

    #[test]
    fn service_stats_are_deterministic() {
        let run = || {
            let mut d = driver(4, 4);
            let mut adv = RandomLoss::new(0.3, 5);
            d.run(&mut adv, 50).unwrap();
            let s = d.service_stats();
            (s.applied_slots, s.applied_commands, s.latencies)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scratch_round_trips() {
        let mut d = driver(4, 2);
        d.run(&mut FullDelivery, 10).unwrap();
        let before = d.service_stats().applied_slots;
        let scratch = d.into_scratch();
        let mut d = LogDriver::with_scratch(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(2),
            11,
            scratch,
        );
        d.run(&mut FullDelivery, 10).unwrap();
        assert_eq!(d.service_stats().applied_slots, before, "reuse is neutral");
    }
}
