//! The sharded log: the keyspace partitioned across many independent
//! [`MultiSlot`](crate::MultiSlot) groups.
//!
//! One consensus group orders one totally-ordered log — and saturates at
//! whatever one pipelined instance can decide. Production stores
//! (multi-Raft, Spanner-style) turn cores into throughput by running
//! *thousands* of groups, one per key range, behind a router. This module
//! is that layer:
//!
//! * [`ShardSpec`] — which slice of the keyspace a group owns. Keys are
//!   range-partitioned ([`shard_of`]): shard `s` of `S` owns the keys `k`
//!   with `⌊k·S/KEY_SPACE⌋ = s`, so contiguous key ranges stay colocated
//!   (the property range scans and future cross-shard commits care about).
//! * [`shard_seed`] — per-shard randomness derived from the scenario seed
//!   by a SplitMix64 stream split, so every group sees an *independent*
//!   fault schedule and workload stream. Shard 0 keeps the raw seed:
//!   a 1-shard run is **bit-identical** to the unsharded service.
//! * [`ShardedLogDriver`] — the front end: `S` [`LogDriver`]s advanced in
//!   lockstep rounds, each group its own inner algorithm instance, its own
//!   adversary, its own recycled [`RoundScratch`] — merged applied-log
//!   oracle ([`check_sharded_logs`](crate::checker::check_sharded_logs)),
//!   merged service statistics, summed message accounting.
//!
//! ## Routing without a router task
//!
//! Commands are routed *at generation*: every `(shard, replica)` workload
//! generator draws the replica's full arrival stream and keeps only the
//! keys its shard owns (see [`WorkloadState::sharded`]), renumbering the
//! kept commands into the shard's index namespace
//! (`idx = shard << SHARD_SHIFT | local`). That keeps batches contiguous,
//! makes cross-shard exactly-once checkable from the packed values alone,
//! and costs zero allocations — there is no inter-shard queue to route
//! through, which is exactly how an embarrassingly parallel round loop
//! must stay embarrassingly parallel.

use ho_core::adversary::Adversary;
use ho_core::executor::{MessageStats, RoundScratch, RunError};
use ho_core::HoAlgorithm;

use crate::checker::{check_sharded_logs, ShardedLogCheck};
use crate::driver::{LogDriver, ServiceStats};
use crate::slots::RsmConfig;
use crate::workload::{WorkloadSpec, KEY_SPACE};

/// Bit position of the shard index inside a command's sequence number:
/// `idx = (shard << SHARD_SHIFT) | local`. The packed batch encoding
/// carries 48 bits of `first`, so shard indices get the top 8 bits (up to
/// [`MAX_SHARDS`] groups) and each shard a 2⁴⁰-command local space.
pub const SHARD_SHIFT: u32 = 40;

/// Maximum number of groups representable in the index namespace.
pub const MAX_SHARDS: usize = 1 << (48 - SHARD_SHIFT);

/// Which slice of the keyspace one consensus group owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This group's index in `0..count`.
    pub index: usize,
    /// Total number of groups the keyspace is partitioned into.
    pub count: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::solo()
    }
}

impl ShardSpec {
    /// The unsharded spec: one group owning the whole keyspace.
    #[must_use]
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count`, `count == 0`, or `count` exceeds
    /// [`MAX_SHARDS`].
    #[must_use]
    pub fn new(index: usize, count: usize) -> Self {
        assert!(count >= 1, "need at least one shard");
        assert!(count <= MAX_SHARDS, "shard count exceeds the namespace");
        assert!(index < count, "shard index out of range");
        ShardSpec { index, count }
    }

    /// Whether this shard owns `key`.
    #[must_use]
    pub fn keeps(&self, key: u32) -> bool {
        shard_of(key, self.count) == self.index
    }

    /// Lifts a shard-local sequence number into the global index
    /// namespace.
    #[must_use]
    pub fn namespace(&self, local: u64) -> u64 {
        debug_assert!(local < 1 << SHARD_SHIFT, "local index out of range");
        ((self.index as u64) << SHARD_SHIFT) | local
    }
}

/// Range partition: which of `shards` groups owns `key`. Contiguous key
/// ranges map to the same shard, every shard owns a non-empty range for
/// `shards <= KEY_SPACE`, and `shards == 1` maps everything to shard 0.
#[must_use]
pub fn shard_of(key: u32, shards: usize) -> usize {
    debug_assert!(key < KEY_SPACE);
    (key as usize * shards) / KEY_SPACE as usize
}

/// The shard-`shard` randomness stream of scenario seed `seed`.
///
/// A SplitMix64 stream split (advance by `shard` gammas, then finalize) —
/// *not* `seed + shard`, whose neighbouring streams would be correlated
/// through any mixer downstream that is linear in its seed. Shard 0
/// returns the seed unchanged, so a 1-shard run derives exactly the
/// workload and adversary streams the unsharded service derives — the
/// bit-identity anchor `tests/rsm_properties.rs` pins.
#[must_use]
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        return seed;
    }
    let mut z = seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A partitioned replicated-log service: `S` independent [`LogDriver`]
/// groups, each ordering its own slice of the keyspace, advanced in
/// lockstep rounds under per-shard adversaries.
///
/// Groups share nothing — no state, no messages, no queues — so the
/// sequential per-round loop in [`ShardedLogDriver::run`] is
/// observationally identical to any interleaved or parallel schedule; a
/// work-stealing pool can fan the groups out across cores without
/// changing a single verdict.
pub struct ShardedLogDriver<A: HoAlgorithm<Value = u64>> {
    groups: Vec<LogDriver<A>>,
    max_batch: u64,
}

impl<A: HoAlgorithm<Value = u64>> ShardedLogDriver<A> {
    /// A fresh `shards`-group service. `make_inner(s)` constructs shard
    /// `s`'s inner algorithm instance; each group's workload and
    /// adversary randomness derive from [`shard_seed`]`(seed, s)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or exceeds [`MAX_SHARDS`].
    #[must_use]
    pub fn new(
        make_inner: impl FnMut(usize) -> A,
        workload: WorkloadSpec,
        cfg: RsmConfig,
        shards: usize,
        seed: u64,
    ) -> Self {
        Self::with_scratches(make_inner, workload, cfg, shards, seed, Vec::new())
    }

    /// Like [`ShardedLogDriver::new`], seeded with recovered per-shard
    /// round buffers (missing entries start fresh; extras are dropped).
    #[must_use]
    pub fn with_scratches(
        mut make_inner: impl FnMut(usize) -> A,
        workload: WorkloadSpec,
        cfg: RsmConfig,
        shards: usize,
        seed: u64,
        scratches: Vec<RoundScratch>,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(shards <= MAX_SHARDS, "shard count exceeds the namespace");
        let mut scratches = scratches.into_iter();
        let groups = (0..shards)
            .map(|s| {
                let mut shard_cfg = cfg;
                shard_cfg.shard = ShardSpec::new(s, shards);
                LogDriver::with_scratch(
                    make_inner(s),
                    workload,
                    shard_cfg,
                    shard_seed(seed, s),
                    scratches.next().unwrap_or_default(),
                )
            })
            .collect();
        ShardedLogDriver {
            groups,
            max_batch: cfg.max_batch as u64,
        }
    }

    /// Number of groups.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// Replicas per group.
    #[must_use]
    pub fn n(&self) -> usize {
        self.groups[0].n()
    }

    /// Rounds executed so far (identical across groups).
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.groups[0].rounds_run()
    }

    /// Shard `s`'s group.
    #[must_use]
    pub fn group(&self, s: usize) -> &LogDriver<A> {
        &self.groups[s]
    }

    /// Installs a telemetry handle on shard 0 — the anchor group whose
    /// stream is bit-identical to the unsharded service, so one ring
    /// suffices for forensics without multiplying recording cost by `S`.
    pub fn set_telemetry(&mut self, telemetry: ho_core::telemetry::Telemetry) {
        self.groups[0].set_telemetry(telemetry);
    }

    /// Takes shard 0's telemetry handle out (an off handle remains).
    pub fn take_telemetry(&mut self) -> ho_core::telemetry::Telemetry {
        self.groups[0].take_telemetry()
    }

    /// Runs `rounds` rounds of every group, shard `s` under
    /// `adversaries[s]` — one independent fault schedule per group.
    ///
    /// # Errors
    ///
    /// Propagates the first group's slot-0 consensus violation
    /// (identifying the shard; whole-log invariants are
    /// [`ShardedLogDriver::check`]'s job).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one adversary per shard is supplied.
    pub fn run(
        &mut self,
        adversaries: &mut [Box<dyn Adversary + Send>],
        rounds: u64,
    ) -> Result<(), RunError<u64>> {
        assert_eq!(
            adversaries.len(),
            self.groups.len(),
            "one adversary per shard"
        );
        for (group, adversary) in self.groups.iter_mut().zip(adversaries.iter_mut()) {
            group.run(adversary, rounds)?;
        }
        Ok(())
    }

    /// Every group's applied logs: `[shard][replica] -> log`.
    #[must_use]
    pub fn applied_logs(&self) -> Vec<Vec<&[u64]>> {
        self.groups.iter().map(LogDriver::applied_logs).collect()
    }

    /// Runs the sharded applied-log oracle: per-shard prefix agreement /
    /// exactly-once / integrity, shard-namespace containment, and global
    /// per-proposer range disjointness across shards.
    #[must_use]
    pub fn check(&self) -> ShardedLogCheck {
        check_sharded_logs(&self.applied_logs(), self.n(), self.max_batch)
    }

    /// Merged service statistics: counters summed across shards, slot
    /// counts summed over per-shard longest (and shortest) logs, latency
    /// samples pooled and re-sorted.
    #[must_use]
    pub fn service_stats(&self) -> ServiceStats {
        let mut merged = ServiceStats::default();
        for group in &self.groups {
            let s = group.service_stats();
            merged.generated_commands += s.generated_commands;
            merged.applied_commands += s.applied_commands;
            merged.applied_slots += s.applied_slots;
            merged.min_applied_slots += s.min_applied_slots;
            merged.requeued_commands += s.requeued_commands;
            merged.routed_away_commands += s.routed_away_commands;
            merged.hot_generated += s.hot_generated;
            merged.backfill_entries += s.backfill_entries;
            merged.lease_takeovers += s.lease_takeovers;
            merged.deferred_commands += s.deferred_commands;
            // Groups run lockstep rounds, so per-shard degraded rounds
            // overlap: report the worst shard, not the sum.
            merged.divergent_rounds = merged.divergent_rounds.max(s.divergent_rounds);
            merged.last_convergence_round =
                merged.last_convergence_round.max(s.last_convergence_round);
            merged.latencies.extend_from_slice(&s.latencies);
        }
        merged.latencies.sort_unstable();
        merged
    }

    /// Message-cost accounting summed across every group's run.
    #[must_use]
    pub fn message_stats(&self) -> MessageStats {
        let mut total = MessageStats::default();
        for group in &self.groups {
            let s = group.message_stats();
            total.payload_allocs += s.payload_allocs;
            total.payload_reuses += s.payload_reuses;
            total.delivered += s.delivered;
        }
        total
    }

    /// Recovers every group's round buffers for the next scenario.
    #[must_use]
    pub fn into_scratches(self) -> Vec<RoundScratch> {
        self.groups
            .into_iter()
            .map(LogDriver::into_scratch)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::adversary::{FullDelivery, RandomLoss};
    use ho_core::algorithms::OneThirdRule;

    fn full_delivery(shards: usize) -> Vec<Box<dyn Adversary + Send>> {
        (0..shards)
            .map(|_| Box::new(FullDelivery) as Box<dyn Adversary + Send>)
            .collect()
    }

    fn sharded(n: usize, shards: usize, seed: u64) -> ShardedLogDriver<OneThirdRule> {
        ShardedLogDriver::new(
            |_| OneThirdRule::new(n),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            shards,
            seed,
        )
    }

    #[test]
    fn shard_of_partitions_the_keyspace() {
        for shards in [1usize, 2, 3, 4, 8, 16, 64] {
            let mut owned = vec![0u32; shards];
            let mut last = 0;
            for key in 0..KEY_SPACE {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert!(s >= last, "range partition is monotone in the key");
                last = s;
                owned[s] += 1;
            }
            assert!(
                owned.iter().all(|&k| k > 0),
                "{shards} shards: every shard owns keys: {owned:?}"
            );
        }
        assert!((0..KEY_SPACE).all(|k| shard_of(k, 1) == 0));
    }

    #[test]
    fn shard_spec_routes_and_namespaces() {
        let spec = ShardSpec::new(2, 4);
        assert!(spec.keeps(32), "key 32 of 64 belongs to shard 2 of 4");
        assert!(!spec.keeps(0));
        assert_eq!(spec.namespace(5), (2u64 << SHARD_SHIFT) | 5);
        assert!(ShardSpec::solo().keeps(0) && ShardSpec::solo().keeps(KEY_SPACE - 1));
        assert_eq!(ShardSpec::solo().namespace(7), 7, "solo namespacing is id");
        assert_eq!(ShardSpec::default(), ShardSpec::solo());
    }

    #[test]
    fn shard_seed_is_a_split_not_an_offset() {
        // Shard 0 passes the seed through (the S=1 bit-identity anchor).
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(shard_seed(seed, 0), seed);
        }
        // Other shards get well-separated streams: no two (seed, shard)
        // pairs in a dense grid collide, and neighbouring shards differ in
        // ~half their bits (an additive offset would differ in ~1).
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32u64 {
            for shard in 0..32usize {
                assert!(seen.insert(shard_seed(seed, shard)), "{seed}/{shard}");
            }
        }
        let distance = (shard_seed(7, 1) ^ shard_seed(7, 2)).count_ones();
        assert!((16..=48).contains(&distance), "hamming {distance}");
    }

    #[test]
    fn one_shard_is_bit_identical_to_the_unsharded_driver() {
        let mut plain = LogDriver::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            11,
        );
        let mut shard = sharded(4, 1, 11);
        let mut plain_adv = RandomLoss::new(0.3, 11);
        let mut shard_adv: Vec<Box<dyn Adversary + Send>> =
            vec![Box::new(RandomLoss::new(0.3, 11))];
        plain.run(&mut plain_adv, 50).unwrap();
        shard.run(&mut shard_adv, 50).unwrap();
        assert_eq!(plain.applied_logs(), shard.applied_logs()[0]);
        let (p, s) = (plain.service_stats(), shard.service_stats());
        assert_eq!(p.generated_commands, s.generated_commands);
        assert_eq!(p.applied_commands, s.applied_commands);
        assert_eq!(p.latencies, s.latencies);
        assert_eq!(s.routed_away_commands, 0, "solo shard keeps every key");
        assert_eq!(
            plain.message_stats().delivered,
            shard.message_stats().delivered
        );
    }

    #[test]
    fn sharded_groups_order_disjoint_namespaces() {
        let shards = 4;
        let mut driver = sharded(4, shards, 7);
        driver.run(&mut full_delivery(shards), 60).unwrap();
        let check = driver.check();
        assert!(check.is_ok(), "{:?}", check.violation);
        assert!(check.commands > 0);
        assert_eq!(check.per_shard.len(), shards);
        for (s, shard_check) in check.per_shard.iter().enumerate() {
            assert!(shard_check.slots > 0, "shard {s} ordered nothing");
        }
        // Total offered load is roughly independent of the shard count:
        // each shard draws the same per-replica arrival budget and keeps
        // its slice, so kept arrivals across all shards ≈ one full
        // stream's worth per replica set (not exactly — streams are
        // independent — but within the per-round arrival budget).
        let stats = driver.service_stats();
        let mut solo = sharded(4, 1, 7);
        solo.run(&mut full_delivery(1), 60).unwrap();
        let solo_stats = solo.service_stats();
        let per_round_budget = 2 * 4 * shards as u64 * 8;
        assert!(
            stats
                .generated_commands
                .abs_diff(solo_stats.generated_commands)
                <= per_round_budget,
            "sharded {} vs solo {}",
            stats.generated_commands,
            solo_stats.generated_commands
        );
    }

    #[test]
    fn per_shard_adversaries_are_independent() {
        // Different shard_seeds must give different fault schedules: run
        // S=2 with per-shard RandomLoss and check the groups diverge.
        let shards = 2;
        let mut driver = sharded(5, shards, 3);
        let mut advs: Vec<Box<dyn Adversary + Send>> = (0..shards)
            .map(|s| Box::new(RandomLoss::new(0.4, shard_seed(3, s))) as Box<dyn Adversary + Send>)
            .collect();
        driver.run(&mut advs, 60).unwrap();
        let check = driver.check();
        assert!(check.is_ok(), "{:?}", check.violation);
        let logs = driver.applied_logs();
        assert_ne!(
            logs[0][0], logs[1][0],
            "independent fault schedules and streams must diverge"
        );
    }

    #[test]
    fn scratches_round_trip() {
        let mut driver = sharded(4, 3, 9);
        driver.run(&mut full_delivery(3), 20).unwrap();
        let before = driver.service_stats().applied_slots;
        let scratches = driver.into_scratches();
        assert_eq!(scratches.len(), 3);
        let mut driver = ShardedLogDriver::with_scratches(
            |_| OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            3,
            9,
            scratches,
        );
        driver.run(&mut full_delivery(3), 20).unwrap();
        assert_eq!(
            driver.service_stats().applied_slots,
            before,
            "reuse is neutral"
        );
    }
}
