//! The multi-slot machine: many consensus instances multiplexed over one
//! shared round runtime.
//!
//! [`MultiSlot`] turns any single-shot [`HoAlgorithm`] into a pipelined
//! replicated-log algorithm — itself an `HoAlgorithm`, so the existing
//! [`RoundExecutor`](ho_core::executor::RoundExecutor), its adversaries,
//! scratch buffers and payload pools all drive it unchanged. Where
//! `RepeatedConsensus` runs one slot at a time and ships the whole decided
//! prefix in every message, `MultiSlot` keeps a **window** of `depth`
//! slots in flight and every adversary-scheduled HO round advances *all*
//! of them: one bundle message per process per round carries one entry per
//! live slot.
//!
//! ## The window
//!
//! Replica `p`'s window is `[applied.len(), applied.len() + depth)`: the
//! contiguous run of slots it has not yet applied. Slots may *decide* out
//! of order inside the window (that is what pipelining means), but they
//! *apply* strictly in order, so the applied log is always a consistent
//! prefix. A window cell whose slot decides and applies is immediately
//! reopened for the next slot: cells are a fixed ring of `depth` entries
//! that lives for the whole run.
//!
//! ## Bundles, adoption and catch-up
//!
//! A round bundle ([`RsmMessage`]) carries, per window slot, either the
//! running instance's round message or the slot's decided value — so a
//! replica that already decided a slot keeps *teaching* the decision to
//! slower peers at zero extra cost. Replicas that fall more than `depth`
//! slots behind are served by **backfill**: every bundle also carries a
//! bounded run of applied values starting at the lowest `committed` floor
//! the sender heard, letting an isolated replica re-join after the
//! partition heals without the unbounded prefix-shipping of
//! `RepeatedConsensus`.
//!
//! ## Allocation discipline
//!
//! The bundle is written through the executor's pooled
//! [`PlanSlot`](ho_core::send_plan::PlanSlot) (entry and backfill vectors
//! recycle with the payload buffer), and each window cell keeps a
//! persistent inner [`SendPlan`] written through a state-owned
//! [`PayloadPool`] — so in steady state a pipelined broadcast algorithm
//! performs **zero** heap allocations per round, however many slots are in
//! flight (`tests/alloc_steady_state.rs`).

use std::collections::VecDeque;
use std::fmt;

use ho_core::algorithm::HoAlgorithm;
use ho_core::mailbox::Mailbox;
use ho_core::pool::PayloadPool;
use ho_core::process::ProcessId;
use ho_core::round::Round;
use ho_core::send_plan::{PlanSlot, PlanSpares, SendPlan};

use crate::checker::{decode_slot_value, encode_slot_value, lease_holder};
use crate::shard::ShardSpec;
use crate::workload::{Command, WorkloadSpec, WorkloadState};

/// Service-level flow control: slot leases, adaptive batch sizing, and
/// workload backpressure.
///
/// All three mechanisms are *hints* layered above the consensus kernel —
/// they change what replicas propose and admit, never how slots decide, so
/// every safety invariant of the oracle holds with any combination of
/// settings. The default is everything **off**, which is bit-identical to
/// the pre-flow-control service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowControl {
    /// Slot-lease proposer hints: non-leaseholders propose a no-op batch
    /// instead of commands destined to lose the slot's min-value race
    /// (see [`lease_holder`]).
    pub lease: bool,
    /// Lease-timeout fallback: once any live slot here has sat undecided
    /// this many rounds, the replica re-enters contention — cells it
    /// (re)opens batch its own commands regardless of lease until the
    /// window moves again. Keeps liveness under crash / loss / contact
    /// plans when a leaseholder goes quiet. Only meaningful with `lease`.
    pub lease_timeout_rounds: u64,
    /// Adaptive batch sizing: the per-replica effective batch cap halves
    /// on a lost slot (floor 1) and recovers by one on an owned apply,
    /// bounding wasted proposal work under contention.
    pub adaptive_batch: bool,
    /// Workload backpressure: admission pauses while the pending queue
    /// holds at least this many commands, so queues stop growing when the
    /// replica is not winning slots. `None` admits unconditionally.
    pub admission_window: Option<usize>,
}

impl FlowControl {
    /// Everything off: bit-identical to the pre-flow-control service.
    #[must_use]
    pub fn off() -> Self {
        FlowControl {
            lease: false,
            lease_timeout_rounds: 8,
            adaptive_batch: false,
            admission_window: None,
        }
    }

    /// The full flow-control stack: leases (8-round takeover timeout),
    /// adaptive batching, and a two-batch admission window.
    #[must_use]
    pub fn on() -> Self {
        FlowControl {
            lease: true,
            lease_timeout_rounds: 8,
            adaptive_batch: true,
            admission_window: Some(16),
        }
    }
}

impl Default for FlowControl {
    fn default() -> Self {
        FlowControl::off()
    }
}

/// Configuration of the multi-slot machine.
#[derive(Clone, Copy, Debug)]
pub struct RsmConfig {
    /// Pipeline depth: slots in flight per replica (≥ 1).
    pub depth: usize,
    /// Maximum commands batched into one slot proposal (≥ 1).
    pub max_batch: usize,
    /// Maximum applied values backfilled per bundle for laggards.
    pub backfill: usize,
    /// Pre-reserved applied-log capacity (slots). Steady-state runs within
    /// this budget never grow the log allocation.
    pub reserve_slots: usize,
    /// Pre-reserved command capacity (pending queue, latency samples).
    pub reserve_commands: usize,
    /// The keyspace slice this group owns (solo = the whole keyspace; set
    /// per group by [`ShardedLogDriver`](crate::shard::ShardedLogDriver)).
    pub shard: ShardSpec,
    /// Service-level flow control (leases, adaptive batching,
    /// backpressure). Off by default.
    pub flow: FlowControl,
}

impl Default for RsmConfig {
    fn default() -> Self {
        RsmConfig {
            depth: 4,
            max_batch: 8,
            backfill: 8,
            reserve_slots: 1024,
            reserve_commands: 1024,
            shard: ShardSpec::solo(),
            flow: FlowControl::off(),
        }
    }
}

impl RsmConfig {
    /// A config with the given pipeline depth and defaults elsewhere.
    #[must_use]
    pub fn with_depth(depth: usize) -> Self {
        RsmConfig {
            depth,
            ..RsmConfig::default()
        }
    }
}

/// What one bundle says about one window slot.
#[derive(Clone, Debug, PartialEq)]
pub enum SlotPayload<M> {
    /// The sender decided this slot: adopt the value.
    Decided(u64),
    /// The sender's running instance's round message for this slot.
    Running(M),
    /// The slot is live at the sender but its instance sends nothing this
    /// round (e.g. a non-coordinator in a unicast phase).
    Open,
}

/// One window slot's line in a bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotEntry<M> {
    /// Absolute slot index.
    pub slot: u64,
    /// The sender's view of it.
    pub payload: SlotPayload<M>,
}

/// The per-round bundle: one message multiplexing every live slot, plus
/// the catch-up machinery.
#[derive(Clone, Debug, PartialEq)]
pub struct RsmMessage<M> {
    /// The sender's applied-log length (its commit floor).
    pub committed: u64,
    /// One entry per slot in the sender's window, ascending by slot.
    pub entries: Vec<SlotEntry<M>>,
    /// First slot covered by `backfill`.
    pub backfill_start: u64,
    /// Applied values for laggards: slots `backfill_start..` in order.
    pub backfill: Vec<u64>,
}

impl<M> RsmMessage<M> {
    fn empty() -> Self {
        RsmMessage {
            committed: 0,
            entries: Vec::new(),
            backfill_start: 0,
            backfill: Vec::new(),
        }
    }
}

/// One window cell: a slot's running instance (or its decision) plus this
/// replica's in-flight proposal for it.
struct Cell<A: HoAlgorithm> {
    /// Absolute slot index this cell currently hosts.
    slot: u64,
    /// `None` while the instance runs; `Some(v)` once the slot's decision
    /// is known here.
    decided: Option<u64>,
    /// The inner instance's state.
    state: A::State,
    /// Round at which this replica opened the slot.
    opened: u64,
    /// This replica's proposal value for the slot (a batch reference).
    proposal: u64,
    /// Arrival records of the proposed batch (for latency accounting and
    /// requeue on loss).
    batch: Vec<Command>,
    /// The instance's *next-round* send plan, precomputed by the previous
    /// transition (see [`MultiSlot::send`]'s contract).
    plan: SendPlan<A::Message>,
    spares: PlanSpares<A::Message>,
    /// The round `plan` was computed for (debug contract).
    planned_round: u64,
}

impl<A: HoAlgorithm> Clone for Cell<A> {
    fn clone(&self) -> Self {
        Cell {
            slot: self.slot,
            decided: self.decided,
            state: self.state.clone(),
            opened: self.opened,
            proposal: self.proposal,
            batch: self.batch.clone(),
            plan: self.plan.clone(),
            spares: self.spares.clone(),
            planned_round: self.planned_round,
        }
    }
}

impl<A: HoAlgorithm> fmt::Debug for Cell<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cell")
            .field("slot", &self.slot)
            .field("decided", &self.decided)
            .field("opened", &self.opened)
            .field("proposal", &self.proposal)
            .finish_non_exhaustive()
    }
}

/// Per-replica service counters.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStats {
    /// Commands applied (all proposers).
    pub applied_commands: u64,
    /// This replica's own commands applied.
    pub own_applied_commands: u64,
    /// Commands returned to the queue because their slot decided another
    /// replica's batch.
    pub requeued_commands: u64,
    /// Backfill entries carried in bundles delivered to this replica —
    /// the catch-up traffic volume it received.
    pub backfill_received: u64,
    /// Backfill entries that newly decided a slot here (the useful subset
    /// of `backfill_received`).
    pub backfill_adopted: u64,
    /// Slots this replica batched commands into despite not holding the
    /// lease — takeover proposals made while some slot sat undecided past
    /// the lease timeout. Always 0 with leases off.
    pub lease_takeovers: u64,
    /// Apply latencies in rounds, one sample per own applied command
    /// (arrival round → apply round, retries included).
    pub latencies: Vec<u64>,
}

/// Per-replica state: the applied log, the window ring, the pending
/// command queue, and the reusable round scratch.
pub struct RsmState<A: HoAlgorithm> {
    applied: Vec<u64>,
    cells: Vec<Cell<A>>,
    pending: VecDeque<Command>,
    workload: WorkloadState,
    /// Retired inner-plan payloads, shared across the window's cells.
    pool: PayloadPool<A::Message>,
    /// Scratch mailbox refilled per slot per round.
    inner_mb: Mailbox<A::Message>,
    /// Lowest peer commit floor heard (only kept while below ours);
    /// `u64::MAX` when nobody behind us has been heard.
    lag_floor: u64,
    /// Copy of the machine's flow-control config (needed where `cfg` is
    /// out of reach: `record_decided`, `apply_ready`).
    flow: FlowControl,
    /// Effective batch cap under adaptive sizing (== `cfg.max_batch` when
    /// adaptation is off or nothing has been lost).
    cur_max_batch: usize,
    /// Whether the lease-timeout fallback is active this round: some live
    /// slot sat undecided past `flow.lease_timeout_rounds`.
    takeover: bool,
    stats: ReplicaStats,
}

/// The pieces of a replica's state that `open_cell` needs besides the cell
/// itself — split out so reopening `cells[idx]` can borrow them disjointly.
struct OpenCtx<'a> {
    pending: &'a mut VecDeque<Command>,
    stats: &'a mut ReplicaStats,
    /// Effective batch cap for this draw.
    max_batch: usize,
    lease: bool,
    takeover: bool,
}

impl<A: HoAlgorithm<Value = u64>> RsmState<A> {
    /// The applied log: one batch reference per applied slot.
    #[must_use]
    pub fn applied(&self) -> &[u64] {
        &self.applied
    }

    /// The first unapplied slot (== the window floor).
    #[must_use]
    pub fn next_apply(&self) -> u64 {
        self.applied.len() as u64
    }

    /// Slots decided but not yet applied (the out-of-order backlog).
    #[must_use]
    pub fn decided_ahead(&self) -> usize {
        self.cells.iter().filter(|c| c.decided.is_some()).count()
    }

    /// Commands queued but not yet proposed.
    #[must_use]
    pub fn pending_commands(&self) -> usize {
        self.pending.len()
    }

    /// Service counters.
    #[must_use]
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// The workload generator's state.
    #[must_use]
    pub fn workload(&self) -> &WorkloadState {
        &self.workload
    }

    /// Records slot `slot`'s decision (first write wins), requeueing this
    /// replica's in-flight batch if the slot went to somebody else.
    /// Returns whether the decision was newly recorded.
    fn record_decided(&mut self, slot: u64, value: u64) -> bool {
        let depth = self.cells.len() as u64;
        let next = self.next_apply();
        if slot < next || slot >= next + depth {
            return false;
        }
        let idx = (slot % depth) as usize;
        debug_assert_eq!(self.cells[idx].slot, slot, "window ring out of sync");
        let cell = &mut self.cells[idx];
        if cell.decided.is_some() {
            return false;
        }
        cell.decided = Some(value);
        if value != cell.proposal && !cell.batch.is_empty() {
            // Our batch lost the slot: its commands go back to the front
            // of the queue (order preserved) for a later slot.
            self.stats.requeued_commands += cell.batch.len() as u64;
            for cmd in cell.batch.drain(..).rev() {
                self.pending.push_front(cmd);
            }
            if self.flow.adaptive_batch {
                // Multiplicative decrease: contention is eating batches.
                self.cur_max_batch = (self.cur_max_batch / 2).max(1);
            }
        }
        true
    }

    /// (Re)opens `cell` for `slot`: batches pending commands into the
    /// proposal and starts a fresh inner instance.
    ///
    /// With leases on, only the slot's leaseholder batches commands —
    /// everyone else proposes a no-op, which costs nothing to lose. The
    /// takeover flag overrides the lease (a fresh init value is always
    /// safe; the lease is purely a flow hint).
    fn open_cell(inner: &A, p: ProcessId, cell: &mut Cell<A>, slot: u64, round: u64, ctx: OpenCtx) {
        cell.slot = slot;
        cell.decided = None;
        cell.opened = round;
        let owned = !ctx.lease || lease_holder(slot, inner.n()) == p.index();
        let (first, count) = if owned || ctx.takeover {
            let drawn = draw_batch(ctx.pending, ctx.max_batch, &mut cell.batch);
            if !owned && drawn.1 > 0 {
                ctx.stats.lease_takeovers += 1;
            }
            drawn
        } else {
            cell.batch.clear();
            (0, 0)
        };
        cell.proposal = encode_slot_value(slot, p.index(), first, count);
        cell.state = inner.init(p, cell.proposal);
    }

    /// The batch cap for the next draw (adaptive or configured).
    fn effective_batch(&self, max_batch: usize) -> usize {
        if self.flow.adaptive_batch {
            self.cur_max_batch
        } else {
            max_batch
        }
    }

    /// Applies every contiguously decided slot, reopening its cell for the
    /// slot one window-length ahead.
    fn apply_ready(&mut self, inner: &A, p: ProcessId, round: u64, max_batch: usize) {
        let depth = self.cells.len() as u64;
        loop {
            let next = self.next_apply();
            let idx = (next % depth) as usize;
            debug_assert_eq!(self.cells[idx].slot, next, "window ring out of sync");
            let Some(value) = self.cells[idx].decided else {
                return;
            };
            self.applied.push(value);
            let batch = decode_slot_value(next, value);
            self.stats.applied_commands += batch.count;
            if batch.proposer == p.index() {
                self.stats.own_applied_commands += batch.count;
                let cell = &self.cells[idx];
                if value == cell.proposal {
                    for cmd in &cell.batch {
                        self.stats.latencies.push(round - cmd.arrival);
                    }
                    if self.flow.adaptive_batch && batch.count > 0 {
                        // Additive increase: an owned batch landed.
                        self.cur_max_batch = (self.cur_max_batch + 1).min(max_batch);
                    }
                }
            }
            let effective = self.effective_batch(max_batch);
            Self::open_cell(
                inner,
                p,
                &mut self.cells[idx],
                next + depth,
                round,
                OpenCtx {
                    pending: &mut self.pending,
                    stats: &mut self.stats,
                    max_batch: effective,
                    lease: self.flow.lease,
                    takeover: self.takeover,
                },
            );
        }
    }
}

impl<A: HoAlgorithm> Clone for RsmState<A> {
    fn clone(&self) -> Self {
        RsmState {
            applied: self.applied.clone(),
            cells: self.cells.clone(),
            pending: self.pending.clone(),
            workload: self.workload.clone(),
            pool: self.pool.clone(),
            inner_mb: self.inner_mb.clone(),
            lag_floor: self.lag_floor,
            flow: self.flow,
            cur_max_batch: self.cur_max_batch,
            takeover: self.takeover,
            stats: self.stats.clone(),
        }
    }
}

impl<A: HoAlgorithm> fmt::Debug for RsmState<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsmState")
            .field("applied_slots", &self.applied.len())
            .field("pending", &self.pending.len())
            .field("cells", &self.cells)
            .finish_non_exhaustive()
    }
}

/// The multi-slot pipelined RSM over an inner single-shot algorithm.
///
/// The inner algorithm's value domain is fixed to `u64`: slot values are
/// packed, slot-keyed batch references
/// ([`encode_slot_value`](crate::checker::encode_slot_value)).
pub struct MultiSlot<A> {
    inner: A,
    cfg: RsmConfig,
    workload: WorkloadSpec,
    seed: u64,
}

impl<A: HoAlgorithm<Value = u64>> MultiSlot<A> {
    /// A multi-slot machine over `inner`, with per-replica workloads
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.depth == 0` or `cfg.max_batch == 0`, or if
    /// `cfg.max_batch` exceeds the packed-batch limit.
    #[must_use]
    pub fn new(inner: A, workload: WorkloadSpec, cfg: RsmConfig, seed: u64) -> Self {
        assert!(cfg.depth >= 1, "need at least one slot in flight");
        assert!(cfg.max_batch >= 1, "need room for at least one command");
        assert!(
            cfg.max_batch as u64 <= crate::checker::MAX_BATCH,
            "max_batch exceeds the packed encoding"
        );
        MultiSlot {
            inner,
            cfg,
            workload,
            seed,
        }
    }

    /// The inner algorithm.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RsmConfig {
        &self.cfg
    }

    /// The slot-0 proposals, one per replica — the value set the executor's
    /// consensus checker validates slot-0 decisions against. Replays only
    /// the round-0 workload tick and the first batch draw per replica
    /// (exactly what [`HoAlgorithm::init`] does before opening slot 0),
    /// without constructing full replica states.
    #[must_use]
    pub fn initial_checker_values(&self) -> Vec<u64> {
        let mut pending = VecDeque::new();
        let mut batch = Vec::new();
        let holder = lease_holder(0, self.n());
        (0..self.n())
            .map(|p| {
                if self.cfg.flow.lease && p != holder {
                    // Non-leaseholders open slot 0 with a no-op.
                    return encode_slot_value(0, p, 0, 0);
                }
                pending.clear();
                let mut workload =
                    WorkloadState::sharded(self.workload, mix(self.seed, p as u64), self.cfg.shard)
                        .gated(self.cfg.flow.admission_window);
                workload.tick(0, 0, &mut pending);
                let (first, count) = draw_batch(&mut pending, self.cfg.max_batch, &mut batch);
                encode_slot_value(0, p, first, count)
            })
            .collect()
    }

    /// Whether every live cell's precomputed plan is bundle-able into one
    /// broadcast (no live unicast phase anywhere in the window).
    fn all_broadcastable(&self, state: &RsmState<A>) -> bool {
        state
            .cells
            .iter()
            .all(|c| c.decided.is_some() || !matches!(c.plan, SendPlan::Unicast(_)))
    }

    /// Writes the broadcast bundle into `m` (reusing its buffers).
    fn write_bundle(&self, state: &RsmState<A>, m: &mut RsmMessage<A::Message>) {
        self.write_bundle_header(state, m);
        let depth = state.cells.len() as u64;
        let next = state.next_apply();
        m.entries.clear();
        for slot in next..next + depth {
            let cell = &state.cells[(slot % depth) as usize];
            let payload = match cell.decided {
                Some(v) => SlotPayload::Decided(v),
                None => match &cell.plan {
                    SendPlan::Broadcast(h) => SlotPayload::Running((**h).clone()),
                    SendPlan::Silent => SlotPayload::Open,
                    SendPlan::Unicast(_) => {
                        unreachable!("unicast cells take the per-destination path")
                    }
                },
            };
            m.entries.push(SlotEntry { slot, payload });
        }
    }

    /// The destination-`q` bundle (the unicast fan-out path, used whenever
    /// some live slot is in a point-to-point phase).
    fn bundle_for(&self, state: &RsmState<A>, q: ProcessId) -> RsmMessage<A::Message> {
        let depth = state.cells.len() as u64;
        let next = state.next_apply();
        let mut m = RsmMessage::empty();
        self.write_bundle_header(state, &mut m);
        for slot in next..next + depth {
            let cell = &state.cells[(slot % depth) as usize];
            let payload = match cell.decided {
                Some(v) => SlotPayload::Decided(v),
                None => match cell.plan.message_for(q) {
                    Some(msg) => SlotPayload::Running(msg.clone()),
                    None => SlotPayload::Open,
                },
            };
            m.entries.push(SlotEntry { slot, payload });
        }
        m
    }

    /// Fills `committed` and the backfill run (shared by both fan-outs).
    fn write_bundle_header(&self, state: &RsmState<A>, m: &mut RsmMessage<A::Message>) {
        let next = state.next_apply();
        m.committed = next;
        m.backfill.clear();
        m.backfill_start = 0;
        if state.lag_floor < next {
            m.backfill_start = state.lag_floor;
            let end = (state.lag_floor as usize + self.cfg.backfill).min(next as usize);
            m.backfill
                .extend_from_slice(&state.applied[state.lag_floor as usize..end]);
        }
    }

    /// Precomputes every live cell's round-`r` plan (called by the
    /// transition for `r = just-executed + 1`, and by `init` for round 1).
    fn plan_cells(&self, p: ProcessId, state: &mut RsmState<A>, r: Round) {
        for cell in &mut state.cells {
            if cell.decided.is_none() {
                let mut slot = PlanSlot::new(&mut cell.plan, &mut cell.spares, &mut state.pool);
                self.inner.send_into(r, p, &cell.state, &mut slot);
                cell.planned_round = r.get();
            }
        }
    }
}

impl<A: HoAlgorithm<Value = u64>> HoAlgorithm for MultiSlot<A> {
    type State = RsmState<A>;
    type Message = RsmMessage<A::Message>;
    type Value = u64;

    fn n(&self) -> usize {
        self.inner.n()
    }

    /// `initial_value` is ignored: proposals come from the per-replica
    /// workload generator (pass anything; see
    /// [`MultiSlot::initial_checker_values`] for the checker-facing set).
    fn init(&self, p: ProcessId, _initial_value: u64) -> RsmState<A> {
        let n = self.n();
        let mut state = RsmState {
            applied: Vec::with_capacity(self.cfg.reserve_slots),
            cells: Vec::with_capacity(self.cfg.depth),
            pending: VecDeque::with_capacity(
                self.cfg
                    .reserve_commands
                    .max(self.workload.max_per_round() * 2),
            ),
            workload: WorkloadState::sharded(
                self.workload,
                mix(self.seed, p.index() as u64),
                self.cfg.shard,
            )
            .gated(self.cfg.flow.admission_window),
            pool: PayloadPool::default(),
            inner_mb: Mailbox::with_capacity(n),
            lag_floor: u64::MAX,
            flow: self.cfg.flow,
            cur_max_batch: self.cfg.max_batch,
            takeover: false,
            stats: ReplicaStats {
                latencies: Vec::with_capacity(self.cfg.reserve_commands),
                ..ReplicaStats::default()
            },
        };
        state.workload.tick(0, 0, &mut state.pending);
        for slot in 0..self.cfg.depth as u64 {
            let mut cell = Cell {
                slot,
                decided: None,
                state: self.inner.init(p, 0),
                opened: 0,
                proposal: 0,
                batch: Vec::with_capacity(self.cfg.max_batch),
                plan: SendPlan::Silent,
                spares: PlanSpares::default(),
                planned_round: 0,
            };
            RsmState::open_cell(
                &self.inner,
                p,
                &mut cell,
                slot,
                0,
                OpenCtx {
                    pending: &mut state.pending,
                    stats: &mut state.stats,
                    max_batch: self.cfg.max_batch,
                    lease: self.cfg.flow.lease,
                    takeover: false,
                },
            );
            state.cells.push(cell);
        }
        self.plan_cells(p, &mut state, Round(1));
        state
    }

    /// The round-`r` bundle. **Contract:** `r` must be the round the state
    /// was last planned for (the round after the last executed transition;
    /// round 1 for a fresh state) — the per-cell inner plans are
    /// precomputed there, which is what keeps this `&self` method and the
    /// zero-allocation [`send_into`](HoAlgorithm::send_into) consistent.
    fn send(&self, r: Round, _p: ProcessId, state: &RsmState<A>) -> SendPlan<Self::Message> {
        debug_assert!(
            state
                .cells
                .iter()
                .all(|c| c.decided.is_some() || c.planned_round == r.get()),
            "send({r:?}) on a state planned for a different round"
        );
        if self.all_broadcastable(state) {
            let mut m = RsmMessage::empty();
            self.write_bundle(state, &mut m);
            SendPlan::broadcast(m)
        } else {
            SendPlan::unicast(
                (0..self.n())
                    .map(ProcessId::new)
                    .map(|q| (q, self.bundle_for(state, q)))
                    .collect(),
            )
        }
    }

    fn send_into(
        &self,
        r: Round,
        p: ProcessId,
        state: &RsmState<A>,
        slot: &mut PlanSlot<'_, Self::Message>,
    ) -> u64 {
        if self.all_broadcastable(state) {
            slot.broadcast_with(
                || {
                    let mut m = RsmMessage::empty();
                    self.write_bundle(state, &mut m);
                    m
                },
                |m| self.write_bundle(state, m),
            )
        } else {
            slot.set(self.send(r, p, state));
            0
        }
    }

    fn transition(
        &self,
        r: Round,
        p: ProcessId,
        state: &mut RsmState<A>,
        mb: &Mailbox<Self::Message>,
    ) {
        let round = r.get();
        let next = state.next_apply();

        // 1. Track the lowest commit floor heard from a peer still behind
        //    us: next round's bundles backfill from there.
        state.lag_floor = mb
            .messages()
            .map(|m| m.committed)
            .filter(|&c| c < next)
            .min()
            .unwrap_or(u64::MAX);

        // 2. Lease-timeout fallback: if any live slot has sat undecided
        //    past the timeout as of this round's start (a quiet
        //    leaseholder — crash, loss, or a dark contact window), this
        //    replica re-enters contention: cells (re)opened below batch
        //    its own commands regardless of lease. The flag only changes
        //    the *init values* of freshly opened cells; a running
        //    instance is never reset, so inner-algorithm safety is
        //    untouched. It clears by itself once the window moves again
        //    (reopened cells are young). Judged before this round's
        //    decisions are adopted: a stall that heals in one burst still
        //    leaves a backed-up queue worth re-entering for.
        state.takeover = state.flow.lease
            && state.cells.iter().any(|c| {
                c.decided.is_none()
                    && round.saturating_sub(c.opened) >= state.flow.lease_timeout_rounds
            });

        // 3. Adopt decisions: peers' decided window entries and backfill
        //    runs (safe by the inner algorithm's agreement — the decided
        //    value of a slot is unique).
        for (_, m) in mb.iter() {
            state.stats.backfill_received += m.backfill.len() as u64;
            for (i, &v) in m.backfill.iter().enumerate() {
                if state.record_decided(m.backfill_start + i as u64, v) {
                    state.stats.backfill_adopted += 1;
                }
            }
            for e in &m.entries {
                if let SlotPayload::Decided(v) = e.payload {
                    state.record_decided(e.slot, v);
                }
            }
        }

        // 4. Advance every still-running slot: demultiplex same-slot round
        //    messages into the scratch mailbox and run the inner T_p^r.
        let mut inner_mb = std::mem::take(&mut state.inner_mb);
        for idx in 0..state.cells.len() {
            if state.cells[idx].decided.is_some() {
                continue;
            }
            let slot = state.cells[idx].slot;
            inner_mb.clear();
            for (q, m) in mb.iter() {
                if let Some(e) = m.entries.iter().find(|e| e.slot == slot) {
                    if let SlotPayload::Running(payload) = &e.payload {
                        inner_mb.push(q, payload.clone());
                    }
                }
            }
            let cell = &mut state.cells[idx];
            self.inner.transition(r, p, &mut cell.state, &inner_mb);
            if let Some(v) = self.inner.decision(&cell.state) {
                state.record_decided(slot, v);
            }
        }
        state.inner_mb = inner_mb;

        // 5. This round's client arrivals, then the in-order apply loop
        //    (which reopens each applied cell for the slot one window
        //    ahead, batching the freshest arrivals).
        let applied_own = state.stats.own_applied_commands;
        state.workload.tick(round, applied_own, &mut state.pending);
        state.apply_ready(&self.inner, p, round, self.cfg.max_batch);

        // 6. Precompute next round's inner plans for every live cell.
        self.plan_cells(p, state, r.next());
    }

    /// The executor-facing decision is slot 0's value: the consensus
    /// checker then validates slot-0 agreement, integrity (against
    /// [`MultiSlot::initial_checker_values`]) and irrevocability for free;
    /// whole-log invariants are the
    /// [`check_logs`](crate::checker::check_logs) oracle's job.
    fn decision(&self, state: &RsmState<A>) -> Option<u64> {
        state.applied.first().copied()
    }
}

/// Draws the next batch from the queue into `into`, returning its packed
/// `(first, count)` range.
///
/// A batch is a *contiguous* run of command indices — that is what the
/// packed value claims. The queue is ascending but can have gaps
/// (requeued commands sit in front of newer arrivals while the range
/// between them is still in flight), so batching stops at the first gap.
fn draw_batch(
    pending: &mut VecDeque<Command>,
    max_batch: usize,
    into: &mut Vec<Command>,
) -> (u64, u64) {
    into.clear();
    let first = pending.front().map_or(0, |c| c.idx);
    while into.len() < max_batch {
        match pending.front() {
            Some(c) if c.idx == first + into.len() as u64 => {
                into.push(pending.pop_front().expect("probed above"));
            }
            _ => break,
        }
    }
    (first, into.len() as u64)
}

/// SplitMix64-style mixing for per-replica workload seeds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ho_core::adversary::{FullDelivery, RandomLoss, Scripted};
    use ho_core::algorithms::OneThirdRule;
    use ho_core::executor::RoundExecutor;
    use ho_core::process::ProcessSet;

    use crate::checker::check_logs;

    fn machine(n: usize, depth: usize) -> MultiSlot<OneThirdRule> {
        MultiSlot::new(
            OneThirdRule::new(n),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(depth),
            42,
        )
    }

    fn executor(n: usize, depth: usize) -> RoundExecutor<MultiSlot<OneThirdRule>> {
        let alg = machine(n, depth);
        let initial = alg.initial_checker_values();
        RoundExecutor::new(alg, initial)
    }

    fn logs(exec: &RoundExecutor<MultiSlot<OneThirdRule>>) -> Vec<Vec<u64>> {
        exec.states().iter().map(|s| s.applied().to_vec()).collect()
    }

    #[test]
    fn healthy_run_fills_the_pipeline() {
        let mut exec = executor(4, 4);
        exec.run(&mut FullDelivery, 40).unwrap();
        let all = logs(&exec);
        // OTR decides a slot two rounds after it opens; with four slots in
        // flight the service sustains ~2 slots/round after warm-up.
        for log in &all {
            assert!(log.len() >= 60, "only {} slots in 40 rounds", log.len());
            assert_eq!(log, &all[0], "lockstep replicas agree exactly");
        }
        let check = check_logs(
            &all.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            4,
            RsmConfig::default().max_batch as u64,
        );
        assert!(check.is_ok(), "{:?}", check.violation);
        assert!(check.commands > 0);
    }

    #[test]
    fn deeper_pipelines_decide_more_slots() {
        let slots_at = |depth: usize| {
            let mut exec = executor(4, depth);
            exec.run(&mut FullDelivery, 30).unwrap();
            logs(&exec)[0].len()
        };
        let d1 = slots_at(1);
        let d4 = slots_at(4);
        assert!(
            d4 >= 2 * d1,
            "pipelining must scale slot throughput: depth1={d1} depth4={d4}"
        );
    }

    #[test]
    fn lossy_runs_never_fork() {
        for seed in 0..10 {
            let mut exec = executor(5, 4);
            let mut adv = RandomLoss::new(0.35, seed);
            exec.run(&mut adv, 120).unwrap();
            let all = logs(&exec);
            let check = check_logs(
                &all.iter().map(Vec::as_slice).collect::<Vec<_>>(),
                5,
                RsmConfig::default().max_batch as u64,
            );
            assert!(check.is_ok(), "seed {seed}: {:?}", check.violation);
            assert!(check.slots > 0, "seed {seed}: no progress at 35% loss");
        }
    }

    #[test]
    fn isolated_replica_catches_up_through_backfill() {
        let n = 4;
        let mut exec = executor(n, 4);
        // p3 hears only itself for 20 rounds while the quorum streams slots.
        let quorum = ProcessSet::from_indices(0..3);
        let solo = ProcessSet::from_indices([3]);
        let mut adv = Scripted::new(vec![vec![quorum, quorum, quorum, solo]; 20]);
        exec.run(&mut adv, 20).unwrap();
        let before = logs(&exec);
        assert!(
            before[0].len() > 8,
            "quorum kept deciding: {}",
            before[0].len()
        );
        assert_eq!(before[3].len(), 0, "p3 learned nothing while isolated");
        // The laggard is > depth slots behind: window entries alone cannot
        // help; the healed rounds must backfill it at `backfill` slots per
        // round until it has the whole log.
        let lag = before[0].len();
        let backfill = RsmConfig::default().backfill;
        let healing = (lag / backfill + 4) as u64 + 6;
        exec.run(&mut FullDelivery, healing).unwrap();
        let after = logs(&exec);
        assert!(
            after[3].len() >= before[0].len(),
            "p3 still behind after healing: {} < {}",
            after[3].len(),
            before[0].len()
        );
        let check = check_logs(
            &after.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            n,
            RsmConfig::default().max_batch as u64,
        );
        assert!(check.is_ok(), "{:?}", check.violation);
    }

    #[test]
    fn losing_batches_are_requeued_and_eventually_applied() {
        // Closed-loop workload: every command must eventually be applied
        // exactly once even though most proposals lose their slot (n
        // replicas compete for every slot).
        let n = 5;
        let alg = MultiSlot::new(
            OneThirdRule::new(n),
            WorkloadSpec::ClosedLoop { clients: 4 },
            RsmConfig::with_depth(2),
            7,
        );
        let initial = alg.initial_checker_values();
        let mut exec = RoundExecutor::new(alg, initial);
        exec.run(&mut FullDelivery, 60).unwrap();
        let states = exec.states();
        assert!(
            states.iter().any(|s| s.stats().requeued_commands > 0),
            "competition must force requeues"
        );
        for s in states {
            // Closed loop: applied-own lags generated by at most the
            // window plus what is still in flight.
            assert!(s.stats().own_applied_commands > 0);
            assert!(!s.stats().latencies.is_empty());
        }
        let all = logs(&exec);
        let check = check_logs(
            &all.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            n,
            RsmConfig::default().max_batch as u64,
        );
        assert!(check.is_ok(), "{:?}", check.violation);
    }

    #[test]
    fn slot_zero_decision_satisfies_the_executor_checker() {
        // The executor's consensus checker runs against
        // initial_checker_values: a full run must never trip it.
        let mut exec = executor(4, 4);
        exec.run(&mut FullDelivery, 10)
            .expect("checker stays green");
        assert!(exec.decisions().iter().all(Option::is_some));
    }

    #[test]
    fn initial_checker_values_match_init() {
        // The cheap derivation must track init's slot-0 proposal exactly,
        // for every workload shape.
        for workload in [
            WorkloadSpec::FixedRate { per_round: 2 },
            WorkloadSpec::Bursty {
                burst: 8,
                period: 4,
            },
            WorkloadSpec::ClosedLoop { clients: 8 },
            WorkloadSpec::SkewedKey { per_round: 3 },
        ] {
            let alg = MultiSlot::new(OneThirdRule::new(5), workload, RsmConfig::with_depth(3), 99);
            let derived = alg.initial_checker_values();
            let from_init: Vec<u64> = (0..5)
                .map(|p| alg.init(ProcessId::new(p), 0).cells[0].proposal)
                .collect();
            assert_eq!(derived, from_init, "{workload:?}");
            // Sharded configs must track too: the derivation replays the
            // same shard-filtered round-0 tick.
            let mut cfg = RsmConfig::with_depth(3);
            cfg.shard = ShardSpec::new(1, 4);
            let alg = MultiSlot::new(OneThirdRule::new(5), workload, cfg, 99);
            let derived = alg.initial_checker_values();
            let from_init: Vec<u64> = (0..5)
                .map(|p| alg.init(ProcessId::new(p), 0).cells[0].proposal)
                .collect();
            assert_eq!(derived, from_init, "sharded {workload:?}");
            // And the flow-control stack: lease gating and the admission
            // gate both shape the slot-0 proposals.
            let mut cfg = RsmConfig::with_depth(3);
            cfg.flow = FlowControl::on();
            let alg = MultiSlot::new(OneThirdRule::new(5), workload, cfg, 99);
            let derived = alg.initial_checker_values();
            let from_init: Vec<u64> = (0..5)
                .map(|p| alg.init(ProcessId::new(p), 0).cells[0].proposal)
                .collect();
            assert_eq!(derived, from_init, "flow-on {workload:?}");
        }
    }

    #[test]
    fn requeued_commands_keep_their_original_arrival() {
        // A command that loses its slot goes back to the queue with its
        // arrival stamp intact, and its eventual latency sample measures
        // client-observed latency (apply round − original arrival), not
        // time since the last requeue.
        let alg = machine(4, 1);
        let p = ProcessId::new(1);
        let mut st = alg.init(p, 0);
        let original = st.cells[0].batch.clone();
        assert_eq!(original.len(), 2, "fixed-rate 2 batches both arrivals");
        assert!(original.iter().all(|c| c.arrival == 0));
        // Slot 0 decides somebody else's batch: ours is requeued.
        let other = encode_slot_value(0, 0, 0, 1);
        assert_ne!(other, st.cells[0].proposal);
        assert!(st.record_decided(0, other));
        assert_eq!(st.stats().requeued_commands, 2);
        assert!(st.pending.iter().take(2).eq(original.iter()));
        // Applying slot 0 at round 9 reopens the cell for slot 1, which
        // redraws the requeued commands — arrival stamps still 0.
        st.apply_ready(&alg.inner, p, 9, alg.cfg.max_batch);
        assert_eq!(st.cells[0].slot, 1);
        assert!(st.cells[0].batch.starts_with(&original));
        // This time our batch wins; applying at round 12 must record
        // latency 12 (round 12 − arrival 0), not 3 (12 − reopen at 9).
        let mine = st.cells[0].proposal;
        assert!(st.record_decided(1, mine));
        st.apply_ready(&alg.inner, p, 12, alg.cfg.max_batch);
        assert_eq!(st.stats().latencies[..2], [12, 12]);
    }

    #[test]
    fn leases_eliminate_requeues_under_full_delivery() {
        // With leases on, only the slot's leaseholder batches commands —
        // and the leaseholder's value is what min-value consensus decides
        // under symmetric delivery, so nobody ever loses a batch.
        let mut cfg = RsmConfig::with_depth(4);
        cfg.flow = FlowControl::on();
        let alg = MultiSlot::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            cfg,
            42,
        );
        let initial = alg.initial_checker_values();
        let mut exec = RoundExecutor::new(alg, initial);
        exec.run(&mut FullDelivery, 40).unwrap();
        for s in exec.states() {
            assert_eq!(s.stats().requeued_commands, 0, "leases kill requeues");
            assert_eq!(s.stats().lease_takeovers, 0, "no stalls, no takeovers");
            assert!(s.stats().applied_commands > 0);
        }
        let all = logs(&exec);
        let check = check_logs(
            &all.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            4,
            RsmConfig::default().max_batch as u64,
        );
        assert!(check.is_ok(), "{:?}", check.violation);
        assert!(check.commands > 0);
    }

    #[test]
    fn lease_takeover_reenters_contention_after_a_stall() {
        // Black out every HO set long enough to trip the lease timeout:
        // once rounds flow again, replicas re-opening cells batch their
        // own commands past the lease (and the log stays safe).
        let mut cfg = RsmConfig::with_depth(2);
        cfg.flow = FlowControl::on();
        cfg.flow.lease_timeout_rounds = 2;
        let alg = MultiSlot::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            cfg,
            42,
        );
        let initial = alg.initial_checker_values();
        let mut exec = RoundExecutor::new(alg, initial);
        let dark = ProcessSet::from_indices([]);
        let mut stall = Scripted::new(vec![vec![dark; 4]; 4]);
        exec.run(&mut stall, 4).unwrap();
        exec.run(&mut FullDelivery, 30).unwrap();
        let takeovers: u64 = exec
            .states()
            .iter()
            .map(|s| s.stats().lease_takeovers)
            .sum();
        assert!(takeovers > 0, "the timeout fallback must fire");
        let all = logs(&exec);
        let check = check_logs(
            &all.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            4,
            RsmConfig::default().max_batch as u64,
        );
        assert!(check.is_ok(), "{:?}", check.violation);
        assert!(check.commands > 0, "the service recovered");
    }

    #[test]
    fn adaptive_batching_shrinks_on_loss_and_recovers_on_apply() {
        let mut cfg = RsmConfig::with_depth(1);
        cfg.flow.adaptive_batch = true;
        let alg = MultiSlot::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            cfg,
            42,
        );
        let p = ProcessId::new(1);
        let mut st = alg.init(p, 0);
        assert_eq!(st.cur_max_batch, cfg.max_batch);
        // Losing a slot with a live batch halves the cap.
        assert!(st.record_decided(0, encode_slot_value(0, 0, 0, 1)));
        assert_eq!(st.cur_max_batch, cfg.max_batch / 2);
        st.apply_ready(&alg.inner, p, 3, cfg.max_batch);
        // Winning an owned slot recovers the cap by one.
        let mine = st.cells[0].proposal;
        assert!(decode_slot_value(1, mine).count > 0, "requeue redrawn");
        assert!(st.record_decided(1, mine));
        let mut next_idx = 2;
        let mut refill = |st: &mut RsmState<OneThirdRule>| {
            for _ in 0..2 {
                st.pending.push_back(Command {
                    idx: next_idx,
                    key: 0,
                    arrival: 0,
                });
                next_idx += 1;
            }
        };
        refill(&mut st);
        st.apply_ready(&alg.inner, p, 5, cfg.max_batch);
        assert_eq!(st.cur_max_batch, cfg.max_batch / 2 + 1);
        // Repeated losses (each with a live batch in flight) floor the
        // cap at one command per batch.
        for slot in 2..12 {
            assert!(!st.cells[0].batch.is_empty(), "slot {slot} has a batch");
            assert!(st.record_decided(slot, encode_slot_value(slot, 0, 0, 1)));
            refill(&mut st);
            st.apply_ready(&alg.inner, p, 6 + slot, cfg.max_batch);
        }
        assert_eq!(st.cur_max_batch, 1);
    }

    #[test]
    fn flow_control_default_is_off_and_matches_the_legacy_driver() {
        // `FlowControl::off()` is the `Default`, and a default-config run
        // is exactly the pre-flow-control service (counter-for-counter) —
        // the bit-identity anchor the lease axis is measured against.
        assert_eq!(FlowControl::default(), FlowControl::off());
        let run = |flow: FlowControl| {
            let mut cfg = RsmConfig::with_depth(4);
            cfg.flow = flow;
            let alg = MultiSlot::new(
                OneThirdRule::new(5),
                WorkloadSpec::ClosedLoop { clients: 4 },
                cfg,
                7,
            );
            let initial = alg.initial_checker_values();
            let mut exec = RoundExecutor::new(alg, initial);
            let mut adv = RandomLoss::new(0.3, 9);
            exec.run(&mut adv, 60).unwrap();
            let stats: Vec<_> = exec
                .states()
                .iter()
                .map(|s| {
                    (
                        s.stats().applied_commands,
                        s.stats().requeued_commands,
                        s.stats().latencies.clone(),
                    )
                })
                .collect();
            (logs(&exec), stats)
        };
        assert_eq!(run(FlowControl::default()), run(FlowControl::off()));
    }

    #[test]
    fn state_accessors_and_debug() {
        let alg = machine(3, 2);
        let st = alg.init(ProcessId::new(1), 0);
        assert_eq!(st.next_apply(), 0);
        assert_eq!(st.decided_ahead(), 0);
        assert!(st.applied().is_empty());
        let _ = st.workload();
        let _ = format!("{st:?}");
        let cloned = st.clone();
        assert_eq!(cloned.next_apply(), 0);
    }
}
