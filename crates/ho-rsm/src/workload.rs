//! Client workload generators: the command streams the log service orders.
//!
//! Each replica owns one generator (seed-derived, fully deterministic) that
//! injects commands round by round. Commands queue in the replica's pending
//! buffer until a log slot opens and batches them into a proposal.
//!
//! Four generator shapes cover the classic load profiles:
//!
//! * **fixed-rate** (open loop) — a constant number of commands per round,
//!   arriving whether or not the service keeps up;
//! * **bursty** (open loop) — `burst` commands every `period` rounds, the
//!   on/off pattern that stresses batching;
//! * **closed-loop** — `clients` logical clients, each with one command in
//!   flight: a new command arrives only when one of the client's previous
//!   commands has been applied;
//! * **skewed-key** (open loop) — fixed-rate arrivals whose keys follow an
//!   80/20 hot-set skew, the shape sharding PRs will care about.
//!
//! Generators never allocate after construction: arrivals are written into
//! the caller's pre-reserved queue and key statistics are plain counters.

use std::collections::VecDeque;

use crate::shard::ShardSpec;

/// SplitMix64: the workload's deterministic pseudo-random stream.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The number of distinct command keys every generator draws from.
pub const KEY_SPACE: u32 = 64;

/// The hot fraction of the key space under [`WorkloadSpec::SkewedKey`]:
/// keys `0..KEY_SPACE/5` receive ~80% of the traffic.
pub const HOT_KEYS: u32 = KEY_SPACE / 5;

/// Which client workload a replica runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Open loop: `per_round` commands arrive every round.
    FixedRate {
        /// Commands per round.
        per_round: u32,
    },
    /// Open loop: `burst` commands arrive every `period` rounds.
    Bursty {
        /// Commands per burst.
        burst: u32,
        /// Rounds between bursts (≥ 1).
        period: u32,
    },
    /// Closed loop: `clients` commands outstanding at most; a new command
    /// arrives only when one is applied.
    ClosedLoop {
        /// Concurrent logical clients.
        clients: u32,
    },
    /// Open loop with an 80/20 key skew: `per_round` commands per round,
    /// ~80% of them touching the hot `KEY_SPACE/5` keys.
    SkewedKey {
        /// Commands per round.
        per_round: u32,
    },
}

impl WorkloadSpec {
    /// Stable name used in reports.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::FixedRate { per_round } => format!("fixed_rate_{per_round}"),
            WorkloadSpec::Bursty { burst, period } => format!("bursty_{burst}_{period}"),
            WorkloadSpec::ClosedLoop { clients } => format!("closed_loop_{clients}"),
            WorkloadSpec::SkewedKey { per_round } => format!("skewed_key_{per_round}"),
        }
    }

    /// An upper bound on the commands this generator can inject per round
    /// (used to pre-reserve queues).
    #[must_use]
    pub fn max_per_round(&self) -> usize {
        match *self {
            WorkloadSpec::FixedRate { per_round } | WorkloadSpec::SkewedKey { per_round } => {
                per_round as usize
            }
            WorkloadSpec::Bursty { burst, .. } => burst as usize,
            WorkloadSpec::ClosedLoop { clients } => clients as usize,
        }
    }
}

/// One client command: a monotonically numbered request against a key.
///
/// The command's *content* is fully determined by `(replica, idx)` — the
/// applied-log checker re-derives it — so the consensus value only needs to
/// reference a batch of indices, never carry payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Command {
    /// Per-replica command sequence number (0, 1, 2, …).
    pub idx: u64,
    /// The key the command touches.
    pub key: u32,
    /// The round at which the command arrived (latency measurement base).
    pub arrival: u64,
}

/// The running state of one replica's generator.
///
/// Under sharding every `(shard, replica)` pair owns one generator: it
/// draws the replica's full arrival stream but *keeps* only the keys its
/// shard owns, renumbering the kept commands into the shard's contiguous
/// local sequence (lifted into the global namespace by
/// [`ShardSpec::namespace`]). Routing therefore happens at generation,
/// allocation-free, and the solo spec degenerates to exactly the
/// unsharded generator — same stream, same indices, same counters.
#[derive(Clone, Debug)]
pub struct WorkloadState {
    spec: WorkloadSpec,
    shard: ShardSpec,
    rng: u64,
    /// Next shard-local command sequence number (== commands kept so far).
    next_idx: u64,
    /// Commands drawn but owned by another shard.
    routed_away: u64,
    /// Commands generated on hot keys (skew realisation statistic).
    hot_generated: u64,
    /// Backpressure: admission pauses while the pending queue holds at
    /// least this many commands. `None` admits unconditionally.
    gate: Option<usize>,
    /// Arrivals deferred by the admission gate. Closed-loop deferrals
    /// retry on a later tick (the window is recomputed); open-loop
    /// deferrals are shed load the client would have to retry.
    deferred: u64,
}

impl WorkloadState {
    /// A generator for `spec`, seeded per replica, owning the whole
    /// keyspace.
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Self::sharded(spec, seed, ShardSpec::solo())
    }

    /// A generator for `spec` that keeps only `shard`'s slice of the
    /// keyspace.
    #[must_use]
    pub fn sharded(spec: WorkloadSpec, seed: u64, shard: ShardSpec) -> Self {
        WorkloadState {
            spec,
            shard,
            rng: seed ^ 0x5eed_c0de_5eed_c0de,
            next_idx: 0,
            routed_away: 0,
            hot_generated: 0,
            gate: None,
            deferred: 0,
        }
    }

    /// Adds an admission gate: ticks admit commands only while the pending
    /// queue holds fewer than `window` commands. `None` is a no-op.
    #[must_use]
    pub fn gated(mut self, window: Option<usize>) -> Self {
        self.gate = window;
        self
    }

    /// The generator's shape.
    #[must_use]
    pub fn spec(&self) -> WorkloadSpec {
        self.spec
    }

    /// The keyspace slice this generator keeps.
    #[must_use]
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// Commands generated (and kept) so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.next_idx
    }

    /// Commands drawn whose key another shard owns (always 0 for the solo
    /// spec).
    #[must_use]
    pub fn routed_away(&self) -> u64 {
        self.routed_away
    }

    /// Commands generated on hot keys (only meaningful under
    /// [`WorkloadSpec::SkewedKey`], where it should realise ~80%).
    #[must_use]
    pub fn hot_generated(&self) -> u64 {
        self.hot_generated
    }

    /// Arrivals the admission gate deferred (always 0 without a gate).
    #[must_use]
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    fn next_key(&mut self) -> u32 {
        let draw = splitmix(&mut self.rng);
        match self.spec {
            WorkloadSpec::SkewedKey { .. } => {
                // 80/20: four out of five commands land in the hot set.
                if draw % 5 < 4 {
                    (draw >> 8) as u32 % HOT_KEYS
                } else {
                    HOT_KEYS + (draw >> 8) as u32 % (KEY_SPACE - HOT_KEYS)
                }
            }
            _ => draw as u32 % KEY_SPACE,
        }
    }

    /// Injects round `round`'s arrivals into `pending`. `applied_own` is
    /// the number of this replica's own commands already applied (the
    /// closed-loop completion signal; shard-local under sharding, like
    /// every other index here).
    pub fn tick(&mut self, round: u64, applied_own: u64, pending: &mut VecDeque<Command>) {
        let arrivals = match self.spec {
            WorkloadSpec::FixedRate { per_round } | WorkloadSpec::SkewedKey { per_round } => {
                u64::from(per_round)
            }
            WorkloadSpec::Bursty { burst, period } => {
                if round.is_multiple_of(u64::from(period.max(1))) {
                    u64::from(burst)
                } else {
                    0
                }
            }
            WorkloadSpec::ClosedLoop { clients } => {
                // Outstanding = kept − applied; top back up to the client
                // count. Routed-away draws never count as outstanding —
                // some other shard's generator owns that key's client.
                u64::from(clients).saturating_sub(self.next_idx - applied_own)
            }
        };
        for admitted in 0..arrivals {
            // Backpressure: once the queue reaches the gate, defer the
            // rest of this round's arrivals without drawing them — the
            // rng stream stays aligned with admitted commands, so a gated
            // generator is the admitted prefix of the ungated stream.
            if let Some(gate) = self.gate {
                if pending.len() >= gate {
                    self.deferred += arrivals - admitted;
                    return;
                }
            }
            let key = self.next_key();
            if !self.shard.keeps(key) {
                self.routed_away += 1;
                continue;
            }
            if key < HOT_KEYS {
                self.hot_generated += 1;
            }
            pending.push_back(Command {
                idx: self.shard.namespace(self.next_idx),
                key,
                arrival: round,
            });
            self.next_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(spec: WorkloadSpec, rounds: u64) -> Vec<Command> {
        let mut w = WorkloadState::new(spec, 7);
        let mut q = VecDeque::new();
        for r in 0..rounds {
            w.tick(r, 0, &mut q);
        }
        q.into_iter().collect()
    }

    #[test]
    fn fixed_rate_generates_per_round() {
        let cmds = drain(WorkloadSpec::FixedRate { per_round: 3 }, 10);
        assert_eq!(cmds.len(), 30);
        // Indices are the sequence 0..30, arrivals grouped by round.
        for (i, c) in cmds.iter().enumerate() {
            assert_eq!(c.idx, i as u64);
            assert_eq!(c.arrival, i as u64 / 3);
            assert!(c.key < KEY_SPACE);
        }
    }

    #[test]
    fn bursty_generates_on_period_boundaries() {
        let cmds = drain(
            WorkloadSpec::Bursty {
                burst: 4,
                period: 5,
            },
            10,
        );
        assert_eq!(cmds.len(), 8, "bursts at rounds 0 and 5");
        assert!(cmds[..4].iter().all(|c| c.arrival == 0));
        assert!(cmds[4..].iter().all(|c| c.arrival == 5));
    }

    #[test]
    fn closed_loop_respects_the_window() {
        let mut w = WorkloadState::new(WorkloadSpec::ClosedLoop { clients: 5 }, 3);
        let mut q = VecDeque::new();
        w.tick(0, 0, &mut q);
        assert_eq!(q.len(), 5, "initial window fill");
        w.tick(1, 0, &mut q);
        assert_eq!(q.len(), 5, "nothing applied, nothing new");
        w.tick(2, 2, &mut q);
        assert_eq!(q.len(), 7, "two completions admit two commands");
        assert_eq!(w.generated(), 7);
    }

    #[test]
    fn skewed_keys_concentrate_on_the_hot_set() {
        let cmds = drain(WorkloadSpec::SkewedKey { per_round: 10 }, 100);
        let hot = cmds.iter().filter(|c| c.key < HOT_KEYS).count();
        let frac = hot as f64 / cmds.len() as f64;
        assert!((0.7..0.9).contains(&frac), "hot fraction {frac}");
        // Uniform workloads realise the uniform share instead.
        let cmds = drain(WorkloadSpec::FixedRate { per_round: 10 }, 100);
        let hot = cmds.iter().filter(|c| c.key < HOT_KEYS).count();
        let frac = hot as f64 / cmds.len() as f64;
        assert!((0.1..0.35).contains(&frac), "uniform hot fraction {frac}");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = drain(WorkloadSpec::SkewedKey { per_round: 2 }, 20);
        let b = drain(WorkloadSpec::SkewedKey { per_round: 2 }, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_generators_partition_the_solo_stream() {
        // The union of every shard's kept commands is exactly the solo
        // stream: same keys, same arrival rounds, shard-local indices
        // contiguous in the shard's namespace.
        let shards = 4;
        let solo = drain(WorkloadSpec::FixedRate { per_round: 3 }, 20);
        let mut kept_total = 0;
        for s in 0..shards {
            let spec = ShardSpec::new(s, shards);
            let mut w = WorkloadState::sharded(WorkloadSpec::FixedRate { per_round: 3 }, 7, spec);
            let mut q = VecDeque::new();
            for r in 0..20 {
                w.tick(r, 0, &mut q);
            }
            let kept: Vec<Command> = q.into_iter().collect();
            let expect: Vec<&Command> = solo.iter().filter(|c| spec.keeps(c.key)).collect();
            assert_eq!(kept.len(), expect.len(), "shard {s} kept the wrong slice");
            for (i, (mine, theirs)) in kept.iter().zip(&expect).enumerate() {
                assert_eq!(mine.key, theirs.key, "shard {s} cmd {i}");
                assert_eq!(mine.arrival, theirs.arrival, "shard {s} cmd {i}");
                assert_eq!(mine.idx, spec.namespace(i as u64), "shard {s} cmd {i}");
            }
            assert_eq!(w.generated() + w.routed_away(), 3 * 20);
            kept_total += kept.len();
        }
        assert_eq!(kept_total, solo.len(), "shards partition the stream");
    }

    #[test]
    fn solo_shard_is_the_unsharded_generator() {
        let mut a = WorkloadState::new(WorkloadSpec::SkewedKey { per_round: 2 }, 9);
        let mut b = WorkloadState::sharded(
            WorkloadSpec::SkewedKey { per_round: 2 },
            9,
            ShardSpec::solo(),
        );
        let (mut qa, mut qb) = (VecDeque::new(), VecDeque::new());
        for r in 0..30 {
            a.tick(r, 0, &mut qa);
            b.tick(r, 0, &mut qb);
        }
        assert_eq!(qa, qb);
        assert_eq!(a.generated(), b.generated());
        assert_eq!(a.hot_generated(), b.hot_generated());
        assert_eq!(b.routed_away(), 0);
        assert_eq!(b.shard(), ShardSpec::solo());
    }

    #[test]
    fn sharded_closed_loop_window_counts_only_kept_commands() {
        // Routed-away draws must not eat the client window: with the
        // window never acked, outstanding kept commands stay pinned at
        // `clients` even though many draws leave the shard.
        let spec = ShardSpec::new(0, 4);
        let mut w = WorkloadState::sharded(WorkloadSpec::ClosedLoop { clients: 5 }, 3, spec);
        let mut q = VecDeque::new();
        for r in 0..40 {
            w.tick(r, 0, &mut q);
        }
        assert_eq!(q.len(), 5, "kept outstanding fills the window exactly");
        assert!(w.routed_away() > 0, "a quarter-keyspace shard routes away");
        // Acks admit replacements: the window refills to 5 outstanding
        // (7 queued here, the 2 acked ones being long gone from `q`).
        for r in 40..80 {
            w.tick(r, 2, &mut q);
        }
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn admission_gate_bounds_the_queue() {
        // Open loop, never drained: the gate caps the queue and counts
        // what it shed, and the admitted commands are exactly the prefix
        // of the ungated stream.
        let spec = WorkloadSpec::FixedRate { per_round: 4 };
        let mut gated = WorkloadState::new(spec, 7).gated(Some(6));
        let mut q = VecDeque::new();
        for r in 0..10 {
            gated.tick(r, 0, &mut q);
            assert!(q.len() <= 6, "round {r}: queue {} over gate", q.len());
        }
        assert_eq!(gated.generated(), 6);
        assert_eq!(gated.deferred(), 4 * 10 - 6);
        let ungated = drain(spec, 10);
        let admitted: Vec<Command> = q.into_iter().collect();
        assert_eq!(admitted[..], ungated[..6], "admitted = ungated prefix");
    }

    #[test]
    fn closed_loop_deferrals_retry_once_the_queue_drains() {
        // A gated closed loop defers arrivals while the queue is full but
        // never loses them: the window is recomputed per tick, so the
        // deferred clients are admitted as soon as the service drains.
        let mut w = WorkloadState::new(WorkloadSpec::ClosedLoop { clients: 8 }, 3).gated(Some(4));
        let mut q = VecDeque::new();
        w.tick(0, 0, &mut q);
        assert_eq!(q.len(), 4, "gate holds half the window back");
        w.tick(1, 0, &mut q);
        assert_eq!(q.len(), 4, "still gated, nothing lost");
        q.clear(); // the service proposes (and later applies) the batch
        w.tick(2, 4, &mut q);
        assert_eq!(q.len(), 4, "deferred clients admitted after the drain");
        assert_eq!(w.generated(), 8, "all eight clients eventually admitted");
        assert!(w.deferred() > 0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            WorkloadSpec::FixedRate { per_round: 2 }.name(),
            "fixed_rate_2"
        );
        assert_eq!(
            WorkloadSpec::Bursty {
                burst: 8,
                period: 4
            }
            .name(),
            "bursty_8_4"
        );
        assert_eq!(
            WorkloadSpec::ClosedLoop { clients: 16 }.name(),
            "closed_loop_16"
        );
        assert_eq!(
            WorkloadSpec::SkewedKey { per_round: 3 }.name(),
            "skewed_key_3"
        );
        assert_eq!(WorkloadSpec::ClosedLoop { clients: 16 }.max_per_round(), 16);
    }
}
