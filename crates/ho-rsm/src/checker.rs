//! Batch encoding and the deterministic applied-log checker.
//!
//! A slot's consensus value is a packed **batch reference**: which
//! replica's commands the slot orders, starting where, and how many.
//! Command *content* is derivable from `(proposer, idx)` — the workload
//! generators are seed-deterministic — so the log service never ships
//! command payloads through consensus, only batch references.
//!
//! [`check_logs`] is the safety oracle every test and sweep verdict runs:
//!
//! * **prefix agreement** — every replica's applied log is a prefix of the
//!   longest one (pairwise prefix consistency follows);
//! * **exactly-once** — within the longest log, no command index of any
//!   proposer is covered by two batches;
//! * **integrity** — every batch is well-formed (proposer in range, count
//!   within the configured maximum).
//!
//! "No command dropped after decision" is prefix agreement in disguise: a
//! batch applied anywhere is in the longest log, hence in every replica's
//! log once it catches up — and logs only grow (asserted separately by the
//! monotonicity tests).

/// A decoded slot value: `count` commands of `proposer` starting at
/// sequence number `first`. `count == 0` is a no-op batch (a slot opened
/// with an empty pending queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRef {
    /// The replica whose commands this batch orders.
    pub proposer: usize,
    /// First command sequence number covered.
    pub first: u64,
    /// Number of commands covered.
    pub count: u64,
}

/// Maximum batch size representable in the packed encoding (9 bits).
pub const MAX_BATCH: u64 = (1 << 9) - 1;

const FIRST_BITS: u32 = 48;
const COUNT_BITS: u32 = 9;

/// Packs a batch reference into a consensus value.
///
/// # Panics
///
/// Panics if a field exceeds its packed width (proposer ≥ 128,
/// count > [`MAX_BATCH`], or first ≥ 2⁴⁸).
#[must_use]
pub fn encode_batch(proposer: usize, first: u64, count: u64) -> u64 {
    assert!(proposer < 128, "proposer out of range");
    assert!(count <= MAX_BATCH, "batch too large");
    assert!(first < 1 << FIRST_BITS, "command index out of range");
    ((proposer as u64) << (FIRST_BITS + COUNT_BITS)) | (count << FIRST_BITS) | first
}

/// Unpacks a consensus value back into a batch reference.
#[must_use]
pub fn decode_batch(value: u64) -> BatchRef {
    BatchRef {
        proposer: (value >> (FIRST_BITS + COUNT_BITS)) as usize,
        count: (value >> FIRST_BITS) & ((1 << COUNT_BITS) - 1),
        first: value & ((1 << FIRST_BITS) - 1),
    }
}

/// The slot-keyed proposer mask (7 bits, bijective per slot).
///
/// Min-value algorithms like OneThirdRule make whoever packs the smallest
/// value a *dictator*: with raw proposer ids in the top bits, replica 0
/// would win every slot under symmetric delivery and everyone else's
/// commands would starve. XOR-masking the proposer bits with a slot-mixed
/// constant rotates the "smallest proposer" pseudo-randomly per slot — the
/// repeated-consensus analogue of a rotating sequencer — while staying a
/// bijection, so decoding recovers the true proposer exactly.
fn slot_mask(slot: u64) -> u64 {
    let mut z = slot.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (z >> 57) & 0x7F
}

/// The replica holding slot `slot`'s proposer lease: the one whose masked
/// id is smallest, i.e. exactly the replica whose proposal a min-value
/// inner algorithm would pick under symmetric delivery anyway.
///
/// The lease is a *hint*, not a safety mechanism — any replica may still
/// propose a batch for any slot (and does, during lease takeover) without
/// violating the oracle's invariants. Its job is flow control: when
/// non-leaseholders propose no-ops instead of doomed batches, losing a
/// slot requeues nothing.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 128` (outside the packed proposer range).
#[must_use]
pub fn lease_holder(slot: u64, n: usize) -> usize {
    assert!((1..=128).contains(&n), "replica count out of range");
    let mask = slot_mask(slot) as usize;
    (0..n).min_by_key(|&p| p ^ mask).expect("n >= 1")
}

/// Packs a batch reference into slot `slot`'s consensus value, with the
/// slot-keyed proposer mask applied (see [`decode_slot_value`]).
///
/// # Panics
///
/// Panics on the same field-width limits as [`encode_batch`].
#[must_use]
pub fn encode_slot_value(slot: u64, proposer: usize, first: u64, count: u64) -> u64 {
    assert!(proposer < 128, "proposer out of range");
    encode_batch(proposer ^ slot_mask(slot) as usize, first, count)
}

/// Unpacks slot `slot`'s consensus value back into a batch reference,
/// undoing the slot-keyed proposer mask.
#[must_use]
pub fn decode_slot_value(slot: u64, value: u64) -> BatchRef {
    let mut b = decode_batch(value);
    b.proposer ^= slot_mask(slot) as usize;
    b
}

/// Commands covered by an applied log (no-op batches contribute zero).
#[must_use]
pub fn count_commands(log: &[u64]) -> u64 {
    log.iter()
        .enumerate()
        .map(|(slot, &v)| decode_slot_value(slot as u64, v).count)
        .sum()
}

/// The outcome of checking a set of replica logs.
#[derive(Clone, Debug, Default)]
pub struct LogCheck {
    /// The first invariant violation found, if any.
    pub violation: Option<String>,
    /// Length of the longest applied log (slots ordered service-wide).
    pub slots: u64,
    /// Length of the shortest applied log (the laggard's view).
    pub min_slots: u64,
    /// Commands covered by the longest log (excluding no-op batches).
    pub commands: u64,
    /// No-op batches in the longest log.
    pub noop_slots: u64,
}

impl LogCheck {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Runs the applied-log invariants over one log per replica.
///
/// `n` is the replica count (proposer-range integrity) and `max_batch` the
/// configured batch cap.
#[must_use]
pub fn check_logs(logs: &[&[u64]], n: usize, max_batch: u64) -> LogCheck {
    let mut check = LogCheck::default();
    let Some(longest) = logs.iter().max_by_key(|l| l.len()) else {
        return check;
    };
    check.slots = longest.len() as u64;
    check.min_slots = logs.iter().map(|l| l.len() as u64).min().unwrap_or(0);

    // Prefix agreement: every log must be a prefix of the longest.
    for (p, log) in logs.iter().enumerate() {
        if log[..] != longest[..log.len()] {
            let k = log
                .iter()
                .zip(longest.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(log.len());
            check.violation = Some(format!(
                "prefix agreement violated: replica {p} applied {:?} at slot {k}, \
                 another replica applied {:?}",
                decode_slot_value(k as u64, log[k]),
                decode_slot_value(k as u64, longest[k]),
            ));
            return check;
        }
    }

    // Integrity + exactly-once over the longest log.
    let mut ranges: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for (slot, &value) in longest.iter().enumerate() {
        let b = decode_slot_value(slot as u64, value);
        if b.proposer >= n || b.count > max_batch {
            check.violation = Some(format!(
                "slot {slot} integrity violated: malformed batch {b:?}"
            ));
            return check;
        }
        if b.count == 0 {
            check.noop_slots += 1;
            continue;
        }
        check.commands += b.count;
        ranges[b.proposer].push((b.first, b.first + b.count));
    }
    for (proposer, r) in ranges.iter_mut().enumerate() {
        r.sort_unstable();
        if let Some(w) = r.windows(2).find(|w| w[1].0 < w[0].1) {
            check.violation = Some(format!(
                "exactly-once violated: proposer {proposer} commands \
                 [{}, {}) applied twice (batches {:?} and {:?})",
                w[1].0,
                w[0].1.min(w[1].1),
                w[0],
                w[1]
            ));
            return check;
        }
    }
    check
}

/// The outcome of checking a sharded service's logs: every shard's
/// [`LogCheck`] plus the cross-shard invariants.
#[derive(Clone, Debug, Default)]
pub struct ShardedLogCheck {
    /// The first invariant violation found anywhere, if any (per-shard
    /// violations are prefixed with the shard index).
    pub violation: Option<String>,
    /// Each shard's own check (always one entry per shard, even after a
    /// violation elsewhere).
    pub per_shard: Vec<LogCheck>,
    /// Slots in the longest logs, summed across shards.
    pub slots: u64,
    /// Slots in the shortest logs, summed across shards.
    pub min_slots: u64,
    /// Commands ordered service-wide (sum of per-shard longest logs).
    pub commands: u64,
    /// No-op batches, summed across shards.
    pub noop_slots: u64,
}

impl ShardedLogCheck {
    /// Whether every invariant held in every shard and across shards.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Runs the sharded applied-log invariants: `shard_logs[s]` holds shard
/// `s`'s per-replica logs.
///
/// Three layers of checking:
///
/// 1. **per shard** — [`check_logs`] on each group (prefix agreement,
///    exactly-once, integrity);
/// 2. **namespace containment** — every non-noop batch ordered by shard
///    `s` covers only indices in `s`'s namespace
///    (`idx >> SHARD_SHIFT == s`), i.e. the router never leaked a
///    command into the wrong group;
/// 3. **global exactly-once** — per proposer, batch index ranges are
///    disjoint *across* shards (with containment this is implied, but it
///    is the invariant clients actually rely on, so it is checked
///    directly against the raw ranges).
#[must_use]
pub fn check_sharded_logs(shard_logs: &[Vec<&[u64]>], n: usize, max_batch: u64) -> ShardedLogCheck {
    use crate::shard::SHARD_SHIFT;
    let mut check = ShardedLogCheck::default();
    let mut global_ranges: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for (s, logs) in shard_logs.iter().enumerate() {
        let shard_check = check_logs(logs, n, max_batch);
        check.slots += shard_check.slots;
        check.min_slots += shard_check.min_slots;
        check.commands += shard_check.commands;
        check.noop_slots += shard_check.noop_slots;
        if check.violation.is_none() {
            if let Some(v) = &shard_check.violation {
                check.violation = Some(format!("shard {s}: {v}"));
            }
        }
        if check.violation.is_none() {
            if let Some(longest) = logs.iter().max_by_key(|l| l.len()) {
                for (slot, &value) in longest.iter().enumerate() {
                    let b = decode_slot_value(slot as u64, value);
                    if b.count == 0 {
                        continue;
                    }
                    let last = b.first + b.count - 1;
                    if b.first >> SHARD_SHIFT != s as u64 || last >> SHARD_SHIFT != s as u64 {
                        check.violation = Some(format!(
                            "shard {s} slot {slot}: batch {b:?} escapes the \
                             shard's index namespace"
                        ));
                        break;
                    }
                    if b.proposer < n {
                        global_ranges[b.proposer].push((b.first, b.first + b.count));
                    }
                }
            }
        }
        check.per_shard.push(shard_check);
    }
    if check.violation.is_none() {
        for (proposer, r) in global_ranges.iter_mut().enumerate() {
            r.sort_unstable();
            if let Some(w) = r.windows(2).find(|w| w[1].0 < w[0].1) {
                check.violation = Some(format!(
                    "cross-shard exactly-once violated: proposer {proposer} \
                     commands [{}, {}) applied in two shards (batches {:?} \
                     and {:?})",
                    w[1].0,
                    w[0].1.min(w[1].1),
                    w[0],
                    w[1]
                ));
                break;
            }
        }
    }
    check
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for (p, f, c) in [(0, 0, 0), (3, 17, 8), (127, (1 << 48) - 1, MAX_BATCH)] {
            let b = decode_batch(encode_batch(p, f, c));
            assert_eq!((b.proposer, b.first, b.count), (p, f, c));
        }
    }

    #[test]
    fn slot_values_rotate_the_min_proposer() {
        // The slot-keyed mask must be a bijection (decode recovers the
        // proposer) and must not leave one proposer permanently smallest.
        let mut min_winner = [0usize; 4];
        for slot in 0..64 {
            for p in 0..4 {
                let b = decode_slot_value(slot, encode_slot_value(slot, p, 5, 2));
                assert_eq!((b.proposer, b.first, b.count), (p, 5, 2));
            }
            let winner = (0..4)
                .min_by_key(|&p| encode_slot_value(slot, p, 0, 1))
                .unwrap();
            min_winner[winner] += 1;
        }
        assert!(
            min_winner.iter().all(|&w| w > 0),
            "every proposer wins some slots: {min_winner:?}"
        );
    }

    #[test]
    fn lease_holder_is_the_min_value_winner_and_rotates() {
        // The leaseholder's packed value must be strictly smallest among
        // all replicas for the slot — whatever the batch contents — so
        // granting it the slot changes *who proposes*, never *who wins*.
        // And the lease must rotate: every replica holds some slots.
        for n in [1, 4, 5, 7] {
            let mut held = vec![0usize; n];
            for slot in 0..256 {
                let holder = lease_holder(slot, n);
                assert!(holder < n);
                held[holder] += 1;
                for p in 0..n {
                    if p == holder {
                        continue;
                    }
                    // Leaseholder's worst (largest) encoding still beats
                    // every other replica's best (smallest) encoding.
                    assert!(
                        encode_slot_value(slot, holder, (1 << FIRST_BITS) - 1, MAX_BATCH)
                            < encode_slot_value(slot, p, 0, 0),
                        "slot {slot}: lease holder {holder} not minimal vs {p}"
                    );
                }
            }
            assert!(
                held.iter().all(|&h| h > 0),
                "n={n}: lease never rotated to some replica: {held:?}"
            );
        }
    }

    #[test]
    fn consistent_logs_pass() {
        let a = [
            encode_slot_value(0, 0, 0, 2),
            encode_slot_value(1, 1, 0, 3),
            encode_slot_value(2, 0, 2, 1),
        ];
        let logs: Vec<&[u64]> = vec![&a[..], &a[..2], &a[..0]];
        let check = check_logs(&logs, 2, 8);
        assert!(check.is_ok(), "{:?}", check.violation);
        assert_eq!(check.slots, 3);
        assert_eq!(check.min_slots, 0);
        assert_eq!(check.commands, 6);
        assert_eq!(check.noop_slots, 0);
    }

    #[test]
    fn noop_batches_counted_not_flagged() {
        let a = [encode_slot_value(0, 0, 0, 0), encode_slot_value(1, 1, 0, 2)];
        let check = check_logs(&[&a[..]], 2, 8);
        assert!(check.is_ok());
        assert_eq!(check.noop_slots, 1);
        assert_eq!(check.commands, 2);
    }

    #[test]
    fn forks_are_caught() {
        let a = [encode_slot_value(0, 0, 0, 1), encode_slot_value(1, 1, 0, 1)];
        let b = [encode_slot_value(0, 0, 0, 1), encode_slot_value(1, 0, 1, 1)];
        let check = check_logs(&[&a[..], &b[..]], 2, 8);
        let v = check.violation.expect("fork detected");
        assert!(v.contains("prefix agreement"), "{v}");
    }

    #[test]
    fn double_apply_is_caught() {
        // Two batches of proposer 0 overlapping on command 1.
        let a = [encode_slot_value(0, 0, 0, 2), encode_slot_value(1, 0, 1, 2)];
        let check = check_logs(&[&a[..]], 1, 8);
        let v = check.violation.expect("overlap detected");
        assert!(v.contains("exactly-once"), "{v}");
    }

    #[test]
    fn malformed_batches_are_caught() {
        let a = [encode_slot_value(0, 5, 0, 1)];
        let check = check_logs(&[&a[..]], 4, 8);
        assert!(check.violation.expect("bad proposer").contains("integrity"));
        let a = [encode_slot_value(0, 0, 0, 9)];
        let check = check_logs(&[&a[..]], 4, 8);
        assert!(check.violation.expect("bad count").contains("integrity"));
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(check_logs(&[], 0, 8).is_ok());
    }

    /// `encode_slot_value` with the index namespaced into shard `s`.
    fn shard_value(s: u64, slot: u64, proposer: usize, local: u64, count: u64) -> u64 {
        encode_slot_value(
            slot,
            proposer,
            (s << crate::shard::SHARD_SHIFT) | local,
            count,
        )
    }

    #[test]
    fn sharded_check_with_one_shard_matches_check_logs() {
        let a = [
            encode_slot_value(0, 0, 0, 2),
            encode_slot_value(1, 1, 0, 3),
            encode_slot_value(2, 0, 2, 1),
        ];
        let logs: Vec<&[u64]> = vec![&a[..], &a[..2]];
        let plain = check_logs(&logs, 2, 8);
        let sharded = check_sharded_logs(&[logs], 2, 8);
        assert!(sharded.is_ok());
        assert_eq!(sharded.per_shard.len(), 1);
        assert_eq!(sharded.slots, plain.slots);
        assert_eq!(sharded.min_slots, plain.min_slots);
        assert_eq!(sharded.commands, plain.commands);
        assert_eq!(sharded.noop_slots, plain.noop_slots);
    }

    #[test]
    fn disjoint_shard_namespaces_pass() {
        let s0 = [shard_value(0, 0, 0, 0, 2), shard_value(0, 1, 1, 0, 1)];
        let s1 = [shard_value(1, 0, 0, 0, 3), shard_value(1, 1, 1, 1, 2)];
        let check = check_sharded_logs(&[vec![&s0[..]], vec![&s1[..]]], 2, 8);
        assert!(check.is_ok(), "{:?}", check.violation);
        assert_eq!(check.commands, 2 + 1 + 3 + 2);
        assert_eq!(check.slots, 4);
    }

    #[test]
    fn per_shard_forks_are_attributed() {
        let good = [shard_value(1, 0, 0, 0, 1)];
        let a = [shard_value(0, 0, 0, 0, 1)];
        let b = [shard_value(0, 0, 1, 0, 1)];
        let check = check_sharded_logs(&[vec![&a[..], &b[..]], vec![&good[..], &good[..]]], 2, 8);
        let v = check.violation.expect("fork detected");
        assert!(v.starts_with("shard 0:"), "{v}");
        assert!(v.contains("prefix agreement"), "{v}");
        assert_eq!(check.per_shard.len(), 2, "all shards still summarised");
    }

    #[test]
    fn namespace_escapes_are_caught() {
        // Shard 1 orders a batch whose indices live in shard 0's namespace:
        // the router leaked a command into the wrong group.
        let s0 = [shard_value(0, 0, 0, 0, 1)];
        let s1 = [shard_value(0, 0, 0, 5, 1)];
        let check = check_sharded_logs(&[vec![&s0[..]], vec![&s1[..]]], 2, 8);
        let v = check.violation.expect("escape detected");
        assert!(v.contains("escapes"), "{v}");
        // A batch *straddling* the namespace boundary is caught too.
        let straddle = [encode_slot_value(
            0,
            0,
            (1 << crate::shard::SHARD_SHIFT) - 1,
            2,
        )];
        let check = check_sharded_logs(&[vec![&s0[..]], vec![&straddle[..]]], 2, 8);
        assert!(check.violation.expect("straddle").contains("escapes"));
    }

    #[test]
    fn cross_shard_double_apply_is_caught() {
        // Force the raw-range layer: two shards claiming overlapping
        // ranges cannot both be namespace-clean, so disable containment's
        // early exit by putting the duplicate inside ONE shard's logs but
        // across two *claimed* shards — simplest construction: both
        // batches in shard 0's namespace, duplicated across shard entries
        // whose own per-shard checks pass individually.
        let s0 = [shard_value(0, 0, 0, 0, 2)];
        let dup = [shard_value(0, 0, 0, 1, 2)];
        let check = check_sharded_logs(&[vec![&s0[..]], vec![&dup[..]]], 1, 8);
        let v = check.violation.expect("cross-shard overlap detected");
        assert!(v.contains("escapes") || v.contains("cross-shard"), "{v}");
    }

    #[test]
    fn empty_sharded_input_is_ok() {
        let check = check_sharded_logs(&[], 0, 8);
        assert!(check.is_ok());
        assert!(check.per_shard.is_empty());
    }
}
