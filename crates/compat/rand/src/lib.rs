//! Offline stand-in for the `rand` crate.
//!
//! The build environment vendors this minimal, API-compatible subset so the
//! workspace compiles without network access. It provides exactly what the
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`] and [`Rng::gen_range`] over `f64`/integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! family the real `SmallRng` uses on 64-bit targets. Streams differ from
//! the real crate's, which is fine: nothing in the workspace depends on
//! exact values, only on determinism under a fixed seed.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53-bit uniform in [0, 1); p = 1.0 is always true, p = 0.0 never.
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(word: u64) -> f64 {
    // Top 53 bits → [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted f64 range");
        // Scale the 53-bit grid across [lo, hi]; both ends reachable.
        lo + (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64 * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "inverted integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++: small, fast, high-quality — the stand-in for
    /// `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = rng.gen_range(2.0..=5.0);
            assert!((2.0..=5.0).contains(&x));
            let y = rng.gen_range(10u64..20);
            assert!((10..20).contains(&y));
            let z = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&z));
        }
    }
}
