//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple median-of-samples timer instead of criterion's full statistics
//! machinery. Point the workspace dependency at crates.io to get the real
//! thing.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs a parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input);
        });
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds the identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured repetition.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label}: no samples (iter was never called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "bench {label}: median {median:?} (min {min:?}, max {max:?}, {} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness CLI arguments such as `--bench`.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_parameterised_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| total += n);
        });
        g.finish();
        assert!(total >= 4);
    }
}
