//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset the workspace's tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, [`Strategy`] with `prop_map`,
//! integer-range strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG (seeded from the test name) and failures are
//! *not* shrunk — the failing case number and generated inputs are printed
//! by the normal panic message instead. Point the workspace dependency at
//! crates.io to restore shrinking.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A test-case failure carried through `?` inside [`proptest!`] bodies.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving value production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { x: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as $wide;
                self.start + (wide_below(rng, span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "inverted strategy range");
                let span = (hi - lo) as $wide;
                if span == <$wide>::MAX {
                    return rng.next_u128() as $t;
                }
                lo + (wide_below(rng, span + 1)) as $t
            }
        }
    )*};
}

fn wide_below(rng: &mut TestRng, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u128::from(u64::MAX) {
        u128::from(rng.below(bound as u64))
    } else {
        rng.next_u128() % bound
    }
}

int_range_strategy!(u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::RangeInclusive;

    /// A size specification for [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "inverted size range");
            lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    /// Generates `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property over `cases` generated inputs. Used by [`proptest!`];
/// not part of the real crate's API.
pub fn run_property(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng, u32)) {
    // Deterministic per-test seed: FNV-1a over the property name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for i in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        case(&mut rng, i);
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |rng, case| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                // The closure gives `?` in $body a Result context.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            });
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let strat = crate::collection::vec(0u64..10, 1..=5usize);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn u128_inclusive_range_reaches_mask() {
        let mask = (1u128 << 4) - 1;
        let strat = 0u128..=mask;
        let mut rng = crate::TestRng::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let x = strat.generate(&mut rng);
            assert!(x <= mask);
            seen.insert(x);
        }
        assert!(seen.len() > 8, "should cover most of the 16 values");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, v in crate::collection::vec(0u32..3, 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 4);
        }
    }
}
