//! # ho-fd — the failure-detector baselines (Appendix A)
//!
//! The two consensus algorithms the paper contrasts with the HO approach:
//!
//! * [`chandra_toueg`] — the ◇S rotating-coordinator algorithm for the
//!   **crash-stop** model (Chandra & Toueg; the paper's Algorithm 5);
//! * [`aguilera`] — the ◇Su algorithm for the **crash-recovery** model
//!   with stable storage (Aguilera, Chen & Toueg; Algorithm 6).
//!
//! Both run over [`net::FdNet`], an asynchronous message-passing simulator
//! with quasi-reliable (optionally lossy) links, a crash/recovery schedule,
//! and a failure-detector oracle that stabilizes at GST.
//!
//! The point of the crate is the *contrast* the paper draws (§1, §2.1):
//! moving from crash-stop to crash-recovery forces a new failure-detector
//! class, stable storage, retransmission and round-skipping machinery onto
//! the FD algorithm — while the HO-model OneThirdRule runs unchanged in
//! both models. The [`harness`] quantifies this (experiment A1), including
//! the blocking of Chandra–Toueg under message loss.

pub mod aguilera;
pub mod chandra_toueg;
pub mod harness;
pub mod net;

pub use aguilera::{AgMsg, Aguilera};
pub use chandra_toueg::{ChandraToueg, CtMsg};
pub use harness::{run_aguilera, run_chandra_toueg, FdRunOutcome, FdScenario};
pub use net::{Ctx, FdNet, FdProcess, NetConfig, Outage};
