//! Scenario runners for the failure-detector baselines (experiment A1).
//!
//! Produces comparable outcomes — decision latency, message counts,
//! stable-storage writes — for Chandra–Toueg (crash-stop, ◇S) and
//! Aguilera et al. (crash-recovery, ◇Su) under the three fault scenarios
//! the paper's discussion revolves around: failure-free, crash, and
//! crash-recovery, with or without message loss.

use ho_core::process::ProcessId;

use crate::aguilera::Aguilera;
use crate::chandra_toueg::ChandraToueg;
use crate::net::{FdNet, FdProcess, NetConfig, Outage};

/// A fault scenario for the comparison.
#[derive(Clone, Debug)]
pub struct FdScenario {
    /// Number of processes.
    pub n: usize,
    /// Initial values (defaults to `10 + p`).
    pub values: Option<Vec<u64>>,
    /// Global stabilization time of the failure detector.
    pub gst: f64,
    /// Message-loss probability.
    pub loss: f64,
    /// Crash/recovery schedule.
    pub outages: Vec<Outage>,
    /// Give up after this much simulated time.
    pub deadline: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FdScenario {
    /// A failure-free scenario.
    #[must_use]
    pub fn failure_free(n: usize, seed: u64) -> Self {
        FdScenario {
            n,
            values: None,
            gst: 0.0,
            loss: 0.0,
            outages: Vec::new(),
            deadline: 2000.0,
            seed,
        }
    }

    /// One process crashes permanently shortly after the start.
    #[must_use]
    pub fn one_crash(n: usize, victim: usize, seed: u64) -> Self {
        FdScenario {
            outages: vec![Outage {
                process: ProcessId::new(victim),
                down_at: 0.05,
                up_at: None,
            }],
            gst: 5.0,
            ..FdScenario::failure_free(n, seed)
        }
    }

    /// One process crashes and recovers.
    #[must_use]
    pub fn crash_recovery(n: usize, victim: usize, down_at: f64, up_at: f64, seed: u64) -> Self {
        FdScenario {
            outages: vec![Outage {
                process: ProcessId::new(victim),
                down_at,
                up_at: Some(up_at),
            }],
            gst: 5.0,
            ..FdScenario::failure_free(n, seed)
        }
    }

    /// Message loss at the given rate, no crashes.
    #[must_use]
    pub fn lossy(n: usize, loss: f64, seed: u64) -> Self {
        FdScenario {
            loss,
            gst: 1.0,
            deadline: 5000.0,
            ..FdScenario::failure_free(n, seed)
        }
    }

    fn value(&self, p: usize) -> u64 {
        self.values.as_ref().map_or(10 + p as u64, |v| v[p])
    }

    fn net_config(&self) -> NetConfig {
        NetConfig::new(self.n, self.gst)
            .with_loss(self.loss)
            .with_seed(self.seed)
    }
}

/// What happened in one run.
#[derive(Clone, Debug)]
pub struct FdRunOutcome {
    /// Per-process decisions.
    pub decisions: Vec<Option<u64>>,
    /// Time by which every *relevant* (up at the end) process had decided;
    /// `None` if some never did within the deadline.
    pub all_decided_at: Option<f64>,
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Total stable-storage writes (0 for the storage-free CT).
    pub stable_writes: u64,
}

impl FdRunOutcome {
    /// Whether all deciders agreed (vacuously true with no decisions).
    #[must_use]
    pub fn agreement(&self) -> bool {
        let vals: Vec<u64> = self.decisions.iter().flatten().copied().collect();
        vals.windows(2).all(|w| w[0] == w[1])
    }

    /// How many processes decided.
    #[must_use]
    pub fn decided_count(&self) -> usize {
        self.decisions.iter().flatten().count()
    }
}

fn run_generic<P: FdProcess>(
    scenario: &FdScenario,
    procs: Vec<P>,
    stable_writes: impl Fn(&P) -> u64,
) -> FdRunOutcome {
    // Every process that is not *permanently* crashed is expected to decide;
    // a process merely down right now may still recover and decide later.
    let permanently_down: Vec<bool> = (0..scenario.n)
        .map(|p| {
            scenario
                .outages
                .iter()
                .any(|o| o.process == ProcessId::new(p) && o.up_at.is_none())
        })
        .collect();
    let mut net = FdNet::new(scenario.net_config(), procs, &scenario.outages);
    let mut all_decided_at = None;
    net.run_until(scenario.deadline, |net| {
        let done = net
            .processes()
            .iter()
            .enumerate()
            .all(|(p, proc_)| permanently_down[p] || proc_.decision().is_some());
        if done && all_decided_at.is_none() {
            all_decided_at = Some(net.now());
        }
        done
    });
    let (sent, delivered, _) = net.message_counts();
    FdRunOutcome {
        decisions: net.processes().iter().map(|p| p.decision()).collect(),
        all_decided_at,
        messages_sent: sent,
        messages_delivered: delivered,
        stable_writes: net.processes().iter().map(stable_writes).sum(),
    }
}

/// Runs Chandra–Toueg (crash-stop, ◇S) on the scenario.
#[must_use]
pub fn run_chandra_toueg(scenario: &FdScenario) -> FdRunOutcome {
    let procs = (0..scenario.n)
        .map(|p| ChandraToueg::new(scenario.n, ProcessId::new(p), scenario.value(p)))
        .collect();
    run_generic(scenario, procs, |_| 0)
}

/// Runs Aguilera et al. (crash-recovery, ◇Su) on the scenario.
#[must_use]
pub fn run_aguilera(scenario: &FdScenario) -> FdRunOutcome {
    let procs = (0..scenario.n)
        .map(|p| Aguilera::new(scenario.n, ProcessId::new(p), scenario.value(p)))
        .collect();
    run_generic(scenario, procs, Aguilera::stable_writes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_decide_failure_free() {
        let sc = FdScenario::failure_free(3, 2);
        let ct = run_chandra_toueg(&sc);
        let ag = run_aguilera(&sc);
        assert_eq!(ct.decided_count(), 3, "{ct:?}");
        assert_eq!(ag.decided_count(), 3, "{ag:?}");
        assert!(ct.agreement() && ag.agreement());
        assert!(ct.all_decided_at.is_some() && ag.all_decided_at.is_some());
    }

    #[test]
    fn loss_blocks_ct_but_not_aguilera() {
        // The paper's §1 criticism, quantified: under loss the crash-stop FD
        // algorithm (no retransmission) tends to block, while the
        // crash-recovery algorithm's s-send keeps it live.
        let mut ct_blocked = 0;
        let mut ag_blocked = 0;
        for seed in 0..5 {
            let sc = FdScenario::lossy(3, 0.35, seed);
            if run_chandra_toueg(&sc).decided_count() < 3 {
                ct_blocked += 1;
            }
            if run_aguilera(&sc).decided_count() < 3 {
                ag_blocked += 1;
            }
        }
        assert!(ct_blocked > 0, "CT should block in at least one run");
        assert_eq!(ag_blocked, 0, "Aguilera must always decide");
    }

    #[test]
    fn aguilera_pays_stable_storage_ct_does_not() {
        let sc = FdScenario::failure_free(3, 4);
        let ct = run_chandra_toueg(&sc);
        let ag = run_aguilera(&sc);
        assert_eq!(ct.stable_writes, 0);
        assert!(ag.stable_writes > 0);
    }

    #[test]
    fn crash_recovery_scenario_only_aguilera_fully_recovers() {
        let sc = FdScenario::crash_recovery(3, 1, 0.4, 30.0, 6);
        let ag = run_aguilera(&sc);
        assert_eq!(ag.decided_count(), 3, "{ag:?}");
        // CT has no recovery protocol: the recovered process stays silent
        // forever. Survivors can still decide (majority of 2), but p1 won't.
        let ct = run_chandra_toueg(&sc);
        assert!(ct.decisions[1].is_none(), "CT's recovered process is lost");
    }
}
