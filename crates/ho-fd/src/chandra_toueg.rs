//! The Chandra–Toueg ◇S consensus algorithm (Appendix A.1, crash-stop).
//!
//! The rotating-coordinator algorithm, phase by phase (per round `r`,
//! coordinator `c = (r mod n) + 1`):
//!
//! 1. everybody sends `(p, r, estimate_p, ts_p)` to `c`;
//! 2. `c` waits for `⌈(n+1)/2⌉` estimates, adopts one with the largest
//!    timestamp, and sends `(c, r, estimate_c)` to all;
//! 3. everybody waits for `c`'s estimate **or** suspects `c` (the ◇S
//!    query): adopt-and-ack, or nack;
//! 4. `c` waits for `⌈(n+1)/2⌉` acks/nacks; on a majority of *acks* it
//!    reliably broadcasts `decide`.
//!
//! The implementation is the paper's pseudo-code turned into an event-driven
//! state machine: the `wait until` of phase 3 becomes a state plus a
//! periodic failure-detector poll, and out-of-order messages are buffered
//! per round. Reliable broadcast is relay-on-first-delivery.
//!
//! **The point of this baseline** (§1 of the paper): the algorithm assumes
//! quasi-reliable links. If the network loses the coordinator's phase-2
//! message while the coordinator is correct (hence, after GST, never
//! suspected), the waiting process blocks *forever* — there is no round
//! timeout. The harness demonstrates exactly that under injected loss.

use ho_core::process::ProcessId;

use crate::net::{Ctx, FdProcess};

/// Wire messages of the Chandra–Toueg algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtMsg {
    /// Phase 1: `(r, estimate, ts)` to the coordinator.
    Estimate {
        /// Round.
        round: u64,
        /// Sender's estimate.
        estimate: u64,
        /// Sender's timestamp.
        ts: u64,
    },
    /// Phase 2: the coordinator's choice, to all.
    NewEstimate {
        /// Round.
        round: u64,
        /// The coordinator's estimate.
        estimate: u64,
    },
    /// Phase 3 positive reply.
    Ack {
        /// Round.
        round: u64,
    },
    /// Phase 3 negative reply (coordinator suspected).
    Nack {
        /// Round.
        round: u64,
    },
    /// Reliable broadcast of the decision.
    Decide {
        /// The decided value.
        estimate: u64,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Waiting for the coordinator's NewEstimate (phase 3).
    WaitNewEstimate,
    /// Decided (terminated).
    Done,
}

/// One Chandra–Toueg process.
#[derive(Clone, Debug)]
pub struct ChandraToueg {
    n: usize,
    me: ProcessId,
    poll_interval: f64,
    // Consensus state.
    estimate: u64,
    ts: u64,
    round: u64,
    decided: Option<u64>,
    decided_at_round: Option<u64>,
    phase: Phase,
    relayed_decide: bool,
    // Coordinator-side buffers (kept across rounds; keyed by round).
    estimates: Vec<(ProcessId, u64, u64, u64)>, // (from, round, estimate, ts)
    est_done: Vec<(u64, u64)>,                  // (round, committed value)
    acks: Vec<(ProcessId, u64, bool)>,          // (from, round, is_ack)
    decide_sent: bool,
    // Participant-side buffer for early NewEstimates.
    new_estimates: Vec<(u64, u64)>, // (round, estimate)
}

impl ChandraToueg {
    /// Creates process `me` of `n` with initial value `v`.
    #[must_use]
    pub fn new(n: usize, me: ProcessId, v: u64) -> Self {
        ChandraToueg {
            n,
            me,
            poll_interval: 0.5,
            estimate: v,
            ts: 0,
            round: 0,
            decided: None,
            decided_at_round: None,
            phase: Phase::Done, // replaced on start
            relayed_decide: false,
            estimates: Vec::new(),
            est_done: Vec::new(),
            acks: Vec::new(),
            decide_sent: false,
            new_estimates: Vec::new(),
        }
    }

    /// The coordinator of round `r` (`(r mod n) + 1` in the paper's 1-based
    /// numbering; 0-based here).
    #[must_use]
    pub fn coordinator(&self, r: u64) -> ProcessId {
        ProcessId::new(((r - 1) % self.n as u64) as usize)
    }

    /// The round in which this process decided, if it has.
    #[must_use]
    pub fn decided_at_round(&self) -> Option<u64> {
        self.decided_at_round
    }

    /// Current round.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    fn start_round(&mut self, ctx: &mut Ctx<'_, CtMsg>) {
        if self.decided.is_some() {
            return;
        }
        self.round += 1;
        let c = self.coordinator(self.round);
        // Phase 1: estimate to the coordinator.
        ctx.send(
            c,
            CtMsg::Estimate {
                round: self.round,
                estimate: self.estimate,
                ts: self.ts,
            },
        );
        self.phase = Phase::WaitNewEstimate;
        // A buffered NewEstimate may already satisfy phase 3.
        if let Some(&(_, est)) = self.new_estimates.iter().find(|(r, _)| *r == self.round) {
            self.accept_new_estimate(est, ctx);
        }
    }

    /// Coordinator phase 2: run when an estimate for a round we coordinate
    /// arrives.
    fn try_phase2(&mut self, round: u64, ctx: &mut Ctx<'_, CtMsg>) {
        if self.coordinator(round) != self.me || self.est_done.iter().any(|(r, _)| *r == round) {
            return;
        }
        let received: Vec<(u64, u64)> = self
            .estimates
            .iter()
            .filter(|(_, r, _, _)| *r == round)
            .map(|(_, _, e, t)| (*e, *t))
            .collect();
        if received.len() < self.majority() {
            return;
        }
        let (estimate, _) = received
            .iter()
            .copied()
            .max_by_key(|(e, t)| (*t, u64::MAX - *e))
            .expect("majority is non-empty");
        self.est_done.push((round, estimate));
        ctx.send_all(CtMsg::NewEstimate { round, estimate });
    }

    fn accept_new_estimate(&mut self, est: u64, ctx: &mut Ctx<'_, CtMsg>) {
        debug_assert_eq!(self.phase, Phase::WaitNewEstimate);
        self.estimate = est;
        self.ts = self.round;
        let c = self.coordinator(self.round);
        ctx.send(c, CtMsg::Ack { round: self.round });
        self.start_round(ctx);
    }

    /// Coordinator phase 4: decision on a majority of acks.
    fn try_phase4(&mut self, round: u64, ctx: &mut Ctx<'_, CtMsg>) {
        if self.coordinator(round) != self.me || self.decide_sent {
            return;
        }
        let acks = self
            .acks
            .iter()
            .filter(|(_, r, ok)| *r == round && *ok)
            .count();
        if acks >= self.majority() {
            // The decide value is exactly the value committed (and sent to
            // all) in phase 2 of this round — never recomputed, since the
            // estimate buffer may have grown in the meantime.
            let committed = self
                .est_done
                .iter()
                .find(|(r, _)| *r == round)
                .map(|(_, v)| *v)
                .expect("acks imply phase 2 completed");
            self.decide_sent = true;
            ctx.send_all(CtMsg::Decide {
                estimate: committed,
            });
        }
    }

    fn deliver_decide(&mut self, est: u64, ctx: &mut Ctx<'_, CtMsg>) {
        if self.decided.is_none() {
            self.decided = Some(est);
            self.decided_at_round = Some(self.round);
            self.phase = Phase::Done;
            if !self.relayed_decide {
                self.relayed_decide = true;
                // R-broadcast relay so every correct process delivers.
                ctx.send_all(CtMsg::Decide { estimate: est });
            }
        }
    }
}

impl FdProcess for ChandraToueg {
    type Msg = CtMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CtMsg>) {
        ctx.set_timer(self.poll_interval);
        self.start_round(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: CtMsg, ctx: &mut Ctx<'_, CtMsg>) {
        if self.phase == Phase::Done && !matches!(msg, CtMsg::Decide { .. }) {
            return;
        }
        match msg {
            CtMsg::Estimate {
                round,
                estimate,
                ts,
            } => {
                if !self
                    .estimates
                    .iter()
                    .any(|(q, r, _, _)| *q == from && *r == round)
                {
                    self.estimates.push((from, round, estimate, ts));
                }
                self.try_phase2(round, ctx);
            }
            CtMsg::NewEstimate { round, estimate } => {
                if round == self.round && self.phase == Phase::WaitNewEstimate {
                    self.accept_new_estimate(estimate, ctx);
                } else if round > self.round {
                    self.new_estimates.push((round, estimate));
                }
            }
            CtMsg::Ack { round } => {
                self.acks.push((from, round, true));
                self.try_phase4(round, ctx);
            }
            CtMsg::Nack { round } => {
                self.acks.push((from, round, false));
            }
            CtMsg::Decide { estimate } => {
                self.deliver_decide(estimate, ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CtMsg>) {
        if self.phase == Phase::WaitNewEstimate {
            // Phase 3 alternative: suspect the coordinator and nack.
            let c = self.coordinator(self.round);
            if ctx.suspects().contains(c) {
                ctx.send(c, CtMsg::Nack { round: self.round });
                self.start_round(ctx);
            }
        }
        if self.phase != Phase::Done {
            ctx.set_timer(self.poll_interval);
        }
    }

    fn on_crash(&mut self) {
        // Crash-stop: no state to save; the process never comes back
        // meaningfully (on_recover restarts nothing).
    }

    fn on_recover(&mut self, _ctx: &mut Ctx<'_, CtMsg>) {
        // The crash-stop algorithm has no recovery protocol: a recovered
        // process stays silent. This is precisely the gap the paper
        // discusses — contrast with `Aguilera` (Appendix A.2).
    }

    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FdNet, NetConfig, Outage};

    fn run_ct(
        n: usize,
        gst: f64,
        loss: f64,
        seed: u64,
        outages: &[Outage],
        deadline: f64,
    ) -> FdNet<ChandraToueg> {
        let cfg = NetConfig::new(n, gst).with_loss(loss).with_seed(seed);
        let procs = (0..n)
            .map(|p| ChandraToueg::new(n, ProcessId::new(p), 10 + p as u64))
            .collect();
        let mut net = FdNet::new(cfg, procs, outages);
        net.run_until(deadline, |net| {
            net.processes()
                .iter()
                .enumerate()
                .all(|(p, proc_)| net.is_down(ProcessId::new(p)) || proc_.decision().is_some())
        });
        net
    }

    #[test]
    fn failure_free_run_decides() {
        let net = run_ct(3, 0.0, 0.0, 1, &[], 500.0);
        let decisions: Vec<_> = net.processes().iter().map(|p| p.decision()).collect();
        assert!(decisions.iter().all(Option::is_some), "{decisions:?}");
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
    }

    #[test]
    fn tolerates_minority_crash() {
        // p0 (the round-1 coordinator) crashes; with accurate FD after GST,
        // survivors suspect it, nack, and round 2's coordinator decides.
        let outages = [Outage {
            process: ProcessId::new(0),
            down_at: 0.05,
            up_at: None,
        }];
        let net = run_ct(3, 5.0, 0.0, 2, &outages, 500.0);
        for p in 1..3 {
            assert!(
                net.processes()[p].decision().is_some(),
                "survivor p{p} decides"
            );
        }
        let d1 = net.processes()[1].decision();
        let d2 = net.processes()[2].decision();
        assert_eq!(d1, d2, "agreement among survivors");
    }

    #[test]
    fn blocks_under_message_loss() {
        // With loss and a *correct* coordinator (never suspected after GST),
        // a lost phase-2 message blocks the waiting processes forever —
        // the paper's first criticism of the FD model made concrete.
        let net = run_ct(3, 1.0, 0.35, 7, &[], 2000.0);
        let undecided = net
            .processes()
            .iter()
            .filter(|p| p.decision().is_none())
            .count();
        assert!(
            undecided > 0,
            "expected at least one blocked process under loss"
        );
    }

    #[test]
    fn coordinator_rotation_matches_paper() {
        let ct = ChandraToueg::new(3, ProcessId::new(0), 0);
        assert_eq!(ct.coordinator(1), ProcessId::new(0));
        assert_eq!(ct.coordinator(2), ProcessId::new(1));
        assert_eq!(ct.coordinator(3), ProcessId::new(2));
        assert_eq!(ct.coordinator(4), ProcessId::new(0));
    }

    #[test]
    fn decision_value_is_an_initial_value() {
        let net = run_ct(5, 0.0, 0.0, 3, &[], 500.0);
        let d = net.processes()[0].decision().expect("decided");
        assert!((10..15).contains(&d), "integrity: {d}");
    }

    #[test]
    fn noisy_fd_before_gst_only_delays() {
        // Wrong suspicions before GST cause nacks and extra rounds, but
        // after GST a correct coordinator gets through.
        let net = run_ct(4, 50.0, 0.0, 11, &[], 2000.0);
        assert!(net.processes().iter().all(|p| p.decision().is_some()));
    }
}
