//! The Aguilera–Chen–Toueg ◇Su consensus algorithm (Appendix A.2,
//! crash-recovery with stable storage).
//!
//! This is the algorithm the paper holds up as evidence of the
//! crash-stop/crash-recovery *gap* in the failure-detector model: compared
//! with Chandra–Toueg it needs
//!
//! * a new failure detector class (◇Su: a trustlist plus per-process
//!   *epoch numbers* that grow with each recovery),
//! * explicit **stable storage** writes (`store{…}`) at every state change
//!   that must survive a crash,
//! * a **retransmission task** (`s-send`) because links are lossy and a
//!   recovered process must be re-sent everything,
//! * a **skip_round task** that aborts rounds whose coordinator crashed,
//!   recovered (epoch bump), or fell behind.
//!
//! The HO model needs none of this: Algorithm 1 runs unchanged in the
//! crash-recovery model (§3.3). The contrast is the A1 experiment.
//!
//! Event-driven rendition: the `wait until`s become message handlers, the
//! `repeat … until` FD loops become a periodic poll, and each task's
//! bookkeeping is a buffer keyed by round.

use ho_core::process::ProcessId;

use crate::net::{Ctx, FdProcess};

/// Wire messages of the Aguilera et al. algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AgMsg {
    /// Phase NEWROUND: the coordinator opens round `round`.
    NewRound {
        /// Round.
        round: u64,
    },
    /// Phase ESTIMATE: `(round, estimate, ts)` to the coordinator.
    Estimate {
        /// Round.
        round: u64,
        /// Sender's estimate.
        estimate: u64,
        /// Sender's timestamp.
        ts: u64,
    },
    /// Phase NEWESTIMATE: the coordinator's choice.
    NewEstimate {
        /// Round.
        round: u64,
        /// The coordinator's estimate.
        estimate: u64,
    },
    /// Phase ACK.
    Ack {
        /// Round.
        round: u64,
    },
    /// The decision (also sent in reply to stragglers after deciding).
    Decide {
        /// The decided value.
        estimate: u64,
    },
}

impl AgMsg {
    fn round(&self) -> Option<u64> {
        match self {
            AgMsg::NewRound { round }
            | AgMsg::Estimate { round, .. }
            | AgMsg::NewEstimate { round, .. }
            | AgMsg::Ack { round } => Some(*round),
            AgMsg::Decide { .. } => None,
        }
    }
}

/// The stable-storage image (`store{…}` targets in Algorithm 6).
#[derive(Clone, Debug, Default)]
struct Stable {
    proposed: bool,
    round: u64,
    estimate: Option<u64>,
    ts: u64,
    decided: Option<u64>,
}

/// One Aguilera et al. process.
#[derive(Clone, Debug)]
pub struct Aguilera {
    n: usize,
    me: ProcessId,
    initial: u64,
    tick: f64,
    // ---- stable storage (survives crashes) ----
    stable: Stable,
    // ---- volatile state ----
    round: u64,
    estimate: u64,
    ts: u64,
    decided: Option<u64>,
    /// `xmitmsg[q]`: last s-sent message per destination, retransmitted
    /// until replaced (the `retransmit` task).
    xmit: Vec<Option<AgMsg>>,
    est_buf: Vec<(ProcessId, u64, u64, u64)>,
    ack_buf: Vec<(ProcessId, u64)>,
    sent_newestimate: Vec<(u64, u64)>, // (round, value) committed by me as coord
    max_round_seen: u64,
    /// skip_round's snapshot `d` of the ◇Su output at round start.
    watch_epochs: Option<Vec<u64>>,
    // ---- metrics ----
    recoveries: u64,
    stable_writes: u64,
}

impl Aguilera {
    /// Creates process `me` of `n` proposing `v`.
    #[must_use]
    pub fn new(n: usize, me: ProcessId, v: u64) -> Self {
        Aguilera {
            n,
            me,
            initial: v,
            tick: 0.5,
            stable: Stable::default(),
            round: 0,
            estimate: v,
            ts: 0,
            decided: None,
            xmit: vec![None; n],
            est_buf: Vec::new(),
            ack_buf: Vec::new(),
            sent_newestimate: Vec::new(),
            max_round_seen: 0,
            watch_epochs: None,
            recoveries: 0,
            stable_writes: 0,
        }
    }

    /// The coordinator of round `r`.
    #[must_use]
    pub fn coordinator(&self, r: u64) -> ProcessId {
        ProcessId::new(((r - 1) % self.n as u64) as usize)
    }

    /// Number of stable-storage writes performed — one of the costs the
    /// paper's comparison highlights.
    #[must_use]
    pub fn stable_writes(&self) -> u64 {
        self.stable_writes
    }

    /// Number of recoveries survived.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Current round.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    fn store_round(&mut self) {
        self.stable.proposed = true;
        self.stable.round = self.round;
        self.stable_writes += 1;
    }

    fn store_estimate(&mut self) {
        self.stable.estimate = Some(self.estimate);
        self.stable.ts = self.ts;
        self.stable_writes += 1;
    }

    fn store_decided(&mut self) {
        self.stable.decided = self.decided;
        self.stable_writes += 1;
    }

    /// `s-send m to q`: remember for retransmission, then send.
    fn s_send(&mut self, q: ProcessId, m: AgMsg, ctx: &mut Ctx<'_, AgMsg>) {
        self.xmit[q.index()] = Some(m.clone());
        ctx.send(q, m);
    }

    fn s_send_all(&mut self, m: AgMsg, ctx: &mut Ctx<'_, AgMsg>) {
        for q in 0..self.n {
            self.s_send(ProcessId::new(q), m.clone(), ctx);
        }
    }

    /// Task `4phases` for the current round.
    fn start_round_tasks(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        self.store_round();
        let c = self.coordinator(self.round);
        self.watch_epochs = None; // refreshed at the next poll
        if self.me == c && self.ts != self.round {
            // Coordinator phase NEWROUND.
            self.s_send_all(AgMsg::NewRound { round: self.round }, ctx);
        }
        if self.me == c && self.ts == self.round {
            // Already committed to this round's estimate (recovery path):
            // go straight to NEWESTIMATE.
            let est = self.estimate;
            self.sent_newestimate.push((self.round, est));
            self.s_send_all(
                AgMsg::NewEstimate {
                    round: self.round,
                    estimate: est,
                },
                ctx,
            );
        }
        // Participant phase ESTIMATE (runs at the coordinator too).
        if self.ts != self.round {
            let m = AgMsg::Estimate {
                round: self.round,
                estimate: self.estimate,
                ts: self.ts,
            };
            self.s_send(c, m, ctx);
        } else {
            // ts == round: already adopted this round's estimate; re-ack.
            self.s_send(c, AgMsg::Ack { round: self.round }, ctx);
        }
        // A buffered majority may already be there (coordinator).
        self.try_newestimate(ctx);
        self.try_decide(ctx);
    }

    /// Coordinator: enough estimates for the current round → NEWESTIMATE.
    fn try_newestimate(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        let r = self.round;
        if self.coordinator(r) != self.me || self.sent_newestimate.iter().any(|(rr, _)| *rr == r) {
            return;
        }
        let received: Vec<(u64, u64)> = self
            .est_buf
            .iter()
            .filter(|(_, rr, _, _)| *rr == r)
            .map(|(_, _, e, t)| (*e, *t))
            .collect();
        if received.len() < self.majority() {
            return;
        }
        let (est, _) = received
            .iter()
            .copied()
            .max_by_key(|(e, t)| (*t, u64::MAX - *e))
            .expect("majority non-empty");
        self.estimate = est;
        self.ts = r;
        self.store_estimate();
        self.sent_newestimate.push((r, est));
        self.s_send_all(
            AgMsg::NewEstimate {
                round: r,
                estimate: est,
            },
            ctx,
        );
    }

    /// Coordinator: majority of acks for the current round → DECIDE.
    fn try_decide(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        let r = self.round;
        if self.coordinator(r) != self.me {
            return;
        }
        let Some(&(_, committed)) = self.sent_newestimate.iter().find(|(rr, _)| *rr == r) else {
            return;
        };
        let acks = self.ack_buf.iter().filter(|(_, rr)| *rr == r).count();
        if acks >= self.majority() && self.decided.is_none() {
            self.s_send_all(
                AgMsg::Decide {
                    estimate: committed,
                },
                ctx,
            );
        }
    }

    fn deliver_decide(&mut self, est: u64) {
        if self.decided.is_none() {
            self.decided = Some(est);
            self.store_decided();
        }
    }

    /// Task `skip_round`: abort the round if the coordinator is no longer
    /// trusted, recovered (epoch bump), or we saw a higher round.
    fn poll_skip_round(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        if self.decided.is_some() || self.round == 0 {
            return;
        }
        let (trust, epochs) = ctx.trustlist();
        let c = self.coordinator(self.round);
        let baseline = self.watch_epochs.get_or_insert_with(|| epochs.clone());
        let epoch_bumped = epochs[c.index()] > baseline[c.index()];
        let abort = !trust.contains(c) || epoch_bumped || self.max_round_seen > self.round;
        if !abort {
            return;
        }
        if trust.is_empty() {
            return; // "repeat until trustlist ≠ ∅" — try again next poll
        }
        // Smallest r > rp with a trusted coordinator and
        // r ≥ max{r′ | p received (r′, …)}.
        let mut r = (self.round + 1).max(self.max_round_seen);
        while !trust.contains(self.coordinator(r)) {
            r += 1;
        }
        self.round = r;
        self.watch_epochs = Some(epochs);
        self.start_round_tasks(ctx);
    }

    fn note_round(&mut self, m: &AgMsg) {
        if let Some(r) = m.round() {
            self.max_round_seen = self.max_round_seen.max(r);
        }
    }
}

impl FdProcess for Aguilera {
    type Msg = AgMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        // upon propose(v): (rp, estimate, ts) ← (1, v, 0).
        self.round = 1;
        self.estimate = self.initial;
        self.ts = 0;
        self.start_round_tasks(ctx);
        ctx.set_timer(self.tick);
    }

    fn on_message(&mut self, from: ProcessId, msg: AgMsg, ctx: &mut Ctx<'_, AgMsg>) {
        // After deciding: answer anything but DECIDE with the decision.
        if let Some(d) = self.decided {
            if !matches!(msg, AgMsg::Decide { .. }) {
                ctx.send(from, AgMsg::Decide { estimate: d });
            }
            return;
        }
        self.note_round(&msg);
        match msg {
            AgMsg::NewRound { round } => {
                // Informational: a higher round triggers skip_round at the
                // next poll (max_round_seen already updated).
                let _ = round;
            }
            AgMsg::Estimate {
                round,
                estimate,
                ts,
            } => {
                if !self
                    .est_buf
                    .iter()
                    .any(|(q, r, _, _)| *q == from && *r == round)
                {
                    self.est_buf.push((from, round, estimate, ts));
                }
                if round == self.round {
                    self.try_newestimate(ctx);
                }
            }
            AgMsg::NewEstimate { round, estimate } => {
                if round == self.round {
                    // Participants adopt; the coordinator already holds the
                    // value (ts = round). Both ACK (phase ACK runs at every
                    // process, including the coordinator).
                    if self.me != self.coordinator(round) && self.ts != round {
                        self.estimate = estimate;
                        self.ts = round;
                        self.store_estimate();
                    }
                    let c = self.coordinator(round);
                    self.s_send(c, AgMsg::Ack { round }, ctx);
                }
            }
            AgMsg::Ack { round } => {
                if !self.ack_buf.iter().any(|(q, r)| *q == from && *r == round) {
                    self.ack_buf.push((from, round));
                }
                if round == self.round {
                    self.try_decide(ctx);
                }
            }
            AgMsg::Decide { estimate } => {
                self.deliver_decide(estimate);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        if self.decided.is_some() {
            return; // terminate all tasks, including retransmit
        }
        // Task retransmit.
        for q in 0..self.n {
            if let Some(m) = self.xmit[q].clone() {
                ctx.send(ProcessId::new(q), m);
            }
        }
        // Task skip_round.
        self.poll_skip_round(ctx);
        ctx.set_timer(self.tick);
    }

    fn on_crash(&mut self) {
        // Volatile state is lost; only `self.stable` survives. We model the
        // loss explicitly on recovery (nothing to do at crash time).
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, AgMsg>) {
        self.recoveries += 1;
        // upon recovery: reset xmitmsg; if proposed ∧ ¬decided: retrieve
        // {rp, estimate, ts} and refork the tasks.
        self.xmit = vec![None; self.n];
        self.est_buf.clear();
        self.ack_buf.clear();
        self.sent_newestimate.clear();
        self.watch_epochs = None;
        self.max_round_seen = 0;
        self.decided = self.stable.decided;
        if !self.stable.proposed || self.decided.is_some() {
            return;
        }
        self.round = self.stable.round.max(1);
        self.estimate = self.stable.estimate.unwrap_or(self.initial);
        self.ts = self.stable.ts;
        self.start_round_tasks(ctx);
        ctx.set_timer(self.tick);
    }

    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FdNet, NetConfig, Outage};

    fn run_ag(
        n: usize,
        gst: f64,
        loss: f64,
        seed: u64,
        outages: &[Outage],
        deadline: f64,
    ) -> FdNet<Aguilera> {
        let cfg = NetConfig::new(n, gst).with_loss(loss).with_seed(seed);
        let procs = (0..n)
            .map(|p| Aguilera::new(n, ProcessId::new(p), 10 + p as u64))
            .collect();
        let mut net = FdNet::new(cfg, procs, outages);
        let permanent: Vec<bool> = (0..n)
            .map(|p| {
                outages
                    .iter()
                    .any(|o| o.process == ProcessId::new(p) && o.up_at.is_none())
            })
            .collect();
        net.run_until(deadline, |net| {
            net.processes()
                .iter()
                .enumerate()
                .all(|(p, proc_)| permanent[p] || proc_.decision().is_some())
        });
        net
    }

    fn assert_agreement(net: &FdNet<Aguilera>) {
        let vals: Vec<u64> = net
            .processes()
            .iter()
            .filter_map(|p| p.decision())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] == w[1]), "{vals:?}");
    }

    #[test]
    fn failure_free_run_decides() {
        let net = run_ag(3, 0.0, 0.0, 1, &[], 500.0);
        assert!(net.processes().iter().all(|p| p.decision().is_some()));
        assert_agreement(&net);
    }

    #[test]
    fn survives_message_loss() {
        // Unlike Chandra–Toueg, the retransmission task masks lossy links:
        // this is why the crash-recovery algorithm works where CT blocks.
        let net = run_ag(3, 1.0, 0.35, 7, &[], 5000.0);
        assert!(
            net.processes().iter().all(|p| p.decision().is_some()),
            "s-send retransmission defeats loss"
        );
        assert_agreement(&net);
    }

    #[test]
    fn survives_crash_recovery_of_a_process() {
        let outages = [Outage {
            process: ProcessId::new(1),
            down_at: 0.4,
            up_at: Some(30.0),
        }];
        let net = run_ag(3, 5.0, 0.0, 3, &outages, 5000.0);
        assert!(net.processes().iter().all(|p| p.decision().is_some()));
        assert_agreement(&net);
        assert_eq!(net.processes()[1].recoveries(), 1);
    }

    #[test]
    fn survives_coordinator_crash_stop() {
        let outages = [Outage {
            process: ProcessId::new(0),
            down_at: 0.05,
            up_at: None,
        }];
        let net = run_ag(3, 5.0, 0.0, 5, &outages, 5000.0);
        for p in 1..3 {
            assert!(net.processes()[p].decision().is_some(), "p{p} decides");
        }
        assert_agreement(&net);
    }

    #[test]
    fn stable_storage_is_actually_used() {
        let outages = [Outage {
            process: ProcessId::new(2),
            down_at: 0.6,
            up_at: Some(20.0),
        }];
        let net = run_ag(3, 5.0, 0.1, 9, &outages, 5000.0);
        assert!(net.processes().iter().all(|p| p.decision().is_some()));
        assert_agreement(&net);
        // Every process wrote stable storage several times — the cost the
        // paper contrasts with the storage-free HO solution.
        for p in net.processes() {
            assert!(p.stable_writes() >= 2, "writes: {}", p.stable_writes());
        }
    }

    #[test]
    fn decision_value_is_an_initial_value() {
        let net = run_ag(5, 0.0, 0.0, 13, &[], 1000.0);
        let d = net.processes()[0].decision().expect("decided");
        assert!((10..15).contains(&d), "integrity: {d}");
    }
}
