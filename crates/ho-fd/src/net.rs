//! An asynchronous message-passing simulator for failure-detector
//! algorithms.
//!
//! The failure-detector model (Chandra & Toueg) is an *asynchronous* system
//! augmented with failure detectors. Algorithms are event-driven — they
//! react to message deliveries and timers, and may query the failure
//! detector at any time. This simulator provides:
//!
//! * quasi-reliable links with random bounded delay, plus an optional
//!   *loss rate* — injecting loss deliberately violates the FD model's
//!   reliable-link assumption, which is precisely the paper's first
//!   criticism (§1): FD-based algorithms block under message loss;
//! * a crash/recovery schedule (crash-stop = no recovery entry);
//! * a failure-detector oracle that becomes accurate after a global
//!   stabilization time (GST), yielding ◇S / ◇Su behaviour.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ho_core::process::{ProcessId, ProcessSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Network and oracle parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Number of processes.
    pub n: usize,
    /// Minimum message delay.
    pub delay_min: f64,
    /// Maximum message delay.
    pub delay_max: f64,
    /// Message loss probability (0.0 = the quasi-reliable links the FD
    /// model assumes).
    pub loss: f64,
    /// Global stabilization time: after `gst` the failure detector is
    /// accurate and complete.
    pub gst: f64,
    /// Before GST, probability that an FD query wrongly suspects an up
    /// process / trusts a down one.
    pub fd_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NetConfig {
    /// A sensible default: delays in `[0.1, 1.0]`, no loss, GST at `gst`.
    #[must_use]
    pub fn new(n: usize, gst: f64) -> Self {
        NetConfig {
            n,
            delay_min: 0.1,
            delay_max: 1.0,
            loss: 0.0,
            gst,
            fd_noise: 0.3,
            seed: 0,
        }
    }

    /// Sets the message-loss probability.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A crash (and optional recovery) of one process.
#[derive(Clone, Copy, Debug)]
pub struct Outage {
    /// The affected process.
    pub process: ProcessId,
    /// Crash time.
    pub down_at: f64,
    /// Recovery time (`None` = crash-stop).
    pub up_at: Option<f64>,
}

/// What a process can observe and do during a callback.
///
/// Handed to every [`FdProcess`] hook; sends, timers and failure-detector
/// queries go through it.
pub struct Ctx<'a, M> {
    pub(crate) me: ProcessId,
    pub(crate) now: f64,
    pub(crate) n: usize,
    pub(crate) outbox: &'a mut Vec<(ProcessId, M)>,
    pub(crate) timers: &'a mut Vec<f64>,
    pub(crate) fd: FdView<'a>,
}

impl<M> Ctx<'_, M> {
    /// This process's id.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current time (FD algorithms are asynchronous; exposing the clock is
    /// a simulator convenience for timer bookkeeping only).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Sends `msg` to `to` (also allowed to self; delivered like any other
    /// message).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Broadcasts to every process including self.
    pub fn send_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for q in 0..self.n {
            self.outbox.push((ProcessId::new(q), msg.clone()));
        }
    }

    /// Schedules a timer to fire after `delay`; timers are delivered to
    /// [`FdProcess::on_timer`] in FIFO order of expiry.
    pub fn set_timer(&mut self, delay: f64) {
        assert!(delay > 0.0, "timer delay must be positive");
        self.timers.push(delay);
    }

    /// Queries the ◇S view: the current suspect set `D_p`.
    #[must_use]
    pub fn suspects(&mut self) -> ProcessSet {
        self.fd.suspects()
    }

    /// Queries the ◇Su view: `(trustlist, epoch vector)`.
    #[must_use]
    pub fn trustlist(&mut self) -> (ProcessSet, Vec<u64>) {
        self.fd.trustlist()
    }
}

/// The oracle state the `Ctx` exposes.
pub(crate) struct FdView<'a> {
    pub(crate) now: f64,
    pub(crate) cfg: &'a NetConfig,
    pub(crate) down: &'a [bool],
    pub(crate) epochs: &'a [u64],
    pub(crate) rng: &'a mut SmallRng,
}

impl FdView<'_> {
    fn accurate(&self) -> bool {
        self.now >= self.cfg.gst
    }

    fn suspects(&mut self) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for q in 0..self.cfg.n {
            let down = self.down[q];
            let wrong = !self.accurate() && self.rng.gen_bool(self.cfg.fd_noise);
            if down != wrong {
                s.insert(ProcessId::new(q));
            }
        }
        s
    }

    fn trustlist(&mut self) -> (ProcessSet, Vec<u64>) {
        let suspects = self.suspects();
        (suspects.complement(self.cfg.n), self.epochs.to_vec())
    }
}

/// An event-driven process in the failure-detector model.
pub trait FdProcess {
    /// Wire message type.
    type Msg: Clone + std::fmt::Debug;

    /// Called once at time 0 (and *not* again on recovery).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// A message arrived.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// A timer set via [`Ctx::set_timer`] expired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// The process crashed: volatile state is lost. Anything the algorithm
    /// keeps in stable storage must survive this call.
    fn on_crash(&mut self);

    /// The process recovered.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// The decision, if reached (read by the harness).
    fn decision(&self) -> Option<u64>;
}

#[derive(Debug)]
enum Event<M> {
    Deliver {
        to: ProcessId,
        from: ProcessId,
        msg: M,
    },
    Timer {
        p: ProcessId,
        gen: u64,
    },
    Crash(ProcessId),
    Recover(ProcessId),
}

struct Queued<M> {
    at: f64,
    seq: u64,
    ev: Event<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .partial_cmp(&other.at)
            .expect("no NaN times")
            .then(self.seq.cmp(&other.seq))
    }
}

/// The asynchronous-network simulator.
pub struct FdNet<P: FdProcess> {
    cfg: NetConfig,
    processes: Vec<P>,
    down: Vec<bool>,
    epochs: Vec<u64>,
    timer_gen: Vec<u64>,
    queue: BinaryHeap<Reverse<Queued<P::Msg>>>,
    now: f64,
    seq: u64,
    rng: SmallRng,
    messages_sent: u64,
    messages_delivered: u64,
    messages_lost: u64,
}

impl<P: FdProcess> FdNet<P> {
    /// Builds the network; `outages` is the crash/recovery schedule.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != cfg.n`.
    #[must_use]
    pub fn new(cfg: NetConfig, processes: Vec<P>, outages: &[Outage]) -> Self {
        assert_eq!(processes.len(), cfg.n, "one process per slot");
        let mut net = FdNet {
            rng: SmallRng::seed_from_u64(cfg.seed),
            down: vec![false; cfg.n],
            epochs: vec![0; cfg.n],
            timer_gen: vec![0; cfg.n],
            queue: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            cfg,
            processes,
        };
        for o in outages {
            net.push(o.down_at, Event::Crash(o.process));
            if let Some(up) = o.up_at {
                assert!(up > o.down_at, "recovery must follow the crash");
                net.push(up, Event::Recover(o.process));
            }
        }
        // Start everyone.
        for p in 0..net.cfg.n {
            net.with_ctx(ProcessId::new(p), |proc_, ctx| proc_.on_start(ctx));
        }
        net
    }

    /// Current time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The processes.
    #[must_use]
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Whether `p` is currently down.
    #[must_use]
    pub fn is_down(&self, p: ProcessId) -> bool {
        self.down[p.index()]
    }

    /// `(sent, delivered, lost)` counters.
    #[must_use]
    pub fn message_counts(&self) -> (u64, u64, u64) {
        (
            self.messages_sent,
            self.messages_delivered,
            self.messages_lost,
        )
    }

    /// Runs until `stop` fires or `deadline` passes; returns whether `stop`
    /// fired.
    pub fn run_until(&mut self, deadline: f64, mut stop: impl FnMut(&Self) -> bool) -> bool {
        if stop(self) {
            return true;
        }
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.at > deadline {
                return false;
            }
            let Reverse(q) = self.queue.pop().expect("peeked");
            self.now = q.at;
            self.dispatch(q.ev);
            if stop(self) {
                return true;
            }
        }
        false
    }

    fn push(&mut self, at: f64, ev: Event<P::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, ev }));
    }

    /// Runs `f` on process `p` with a fresh context, then flushes the
    /// outbox and timers it produced.
    fn with_ctx(&mut self, p: ProcessId, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>)) {
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = Ctx {
                me: p,
                now: self.now,
                n: self.cfg.n,
                outbox: &mut outbox,
                timers: &mut timers,
                fd: FdView {
                    now: self.now,
                    cfg: &self.cfg,
                    down: &self.down,
                    epochs: &self.epochs,
                    rng: &mut self.rng,
                },
            };
            f(&mut self.processes[p.index()], &mut ctx);
        }
        for (to, msg) in outbox {
            self.messages_sent += 1;
            if self.cfg.loss > 0.0 && self.rng.gen_bool(self.cfg.loss) {
                self.messages_lost += 1;
                continue;
            }
            let delay = self.rng.gen_range(self.cfg.delay_min..=self.cfg.delay_max);
            self.push(self.now + delay, Event::Deliver { to, from: p, msg });
        }
        let gen = self.timer_gen[p.index()];
        for delay in timers {
            self.push(self.now + delay, Event::Timer { p, gen });
        }
    }

    fn dispatch(&mut self, ev: Event<P::Msg>) {
        match ev {
            Event::Deliver { to, from, msg } => {
                if self.down[to.index()] {
                    self.messages_lost += 1;
                    return;
                }
                self.messages_delivered += 1;
                self.with_ctx(to, |proc_, ctx| proc_.on_message(from, msg, ctx));
            }
            Event::Timer { p, gen } => {
                if self.down[p.index()] || self.timer_gen[p.index()] != gen {
                    return;
                }
                self.with_ctx(p, |proc_, ctx| proc_.on_timer(ctx));
            }
            Event::Crash(p) => {
                if !self.down[p.index()] {
                    self.down[p.index()] = true;
                    self.timer_gen[p.index()] += 1; // cancel pending timers
                    self.processes[p.index()].on_crash();
                }
            }
            Event::Recover(p) => {
                if self.down[p.index()] {
                    self.down[p.index()] = false;
                    self.epochs[p.index()] += 1;
                    self.timer_gen[p.index()] += 1;
                    self.with_ctx(p, |proc_, ctx| proc_.on_recover(ctx));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pings everyone on start, counts pongs, echoes pings.
    #[derive(Clone, Debug, Default)]
    struct PingPong {
        pongs: u64,
        timer_fired: bool,
        crashed: u64,
        recovered: u64,
    }

    #[derive(Clone, Debug)]
    enum Pp {
        Ping,
        Pong,
    }

    impl FdProcess for PingPong {
        type Msg = Pp;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Pp>) {
            ctx.send_all(Pp::Ping);
            ctx.set_timer(5.0);
        }

        fn on_message(&mut self, from: ProcessId, msg: Pp, ctx: &mut Ctx<'_, Pp>) {
            match msg {
                Pp::Ping => ctx.send(from, Pp::Pong),
                Pp::Pong => self.pongs += 1,
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Pp>) {
            self.timer_fired = true;
        }

        fn on_crash(&mut self) {
            self.crashed += 1;
        }

        fn on_recover(&mut self, _ctx: &mut Ctx<'_, Pp>) {
            self.recovered += 1;
        }

        fn decision(&self) -> Option<u64> {
            None
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let cfg = NetConfig::new(3, 100.0).with_seed(1);
        let mut net = FdNet::new(cfg, vec![PingPong::default(); 3], &[]);
        net.run_until(50.0, |_| false);
        for p in net.processes() {
            assert_eq!(p.pongs, 3, "a pong from everyone incl. self");
            assert!(p.timer_fired);
        }
    }

    #[test]
    fn loss_drops_messages() {
        let cfg = NetConfig::new(4, 100.0).with_loss(1.0).with_seed(2);
        let mut net = FdNet::new(cfg, vec![PingPong::default(); 4], &[]);
        net.run_until(50.0, |_| false);
        let (sent, delivered, lost) = net.message_counts();
        assert!(sent > 0);
        assert_eq!(delivered, 0);
        assert_eq!(lost, sent);
    }

    #[test]
    fn outage_schedule_fires_hooks() {
        let cfg = NetConfig::new(2, 100.0).with_seed(3);
        let outages = [Outage {
            process: ProcessId::new(1),
            down_at: 1.0,
            up_at: Some(10.0),
        }];
        let mut net = FdNet::new(cfg, vec![PingPong::default(); 2], &outages);
        net.run_until(5.0, |_| false);
        assert!(net.is_down(ProcessId::new(1)));
        net.run_until(50.0, |_| false);
        assert!(!net.is_down(ProcessId::new(1)));
        assert_eq!(net.processes()[1].crashed, 1);
        assert_eq!(net.processes()[1].recovered, 1);
    }

    #[test]
    fn fd_becomes_accurate_after_gst() {
        // A probe process that records its suspect set on each timer tick.
        #[derive(Clone, Debug, Default)]
        struct Probe {
            last: Option<ProcessSet>,
        }
        impl FdProcess for Probe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(1.0);
            }
            fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>) {
                self.last = Some(ctx.suspects());
                ctx.set_timer(1.0);
            }
            fn on_crash(&mut self) {}
            fn on_recover(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn decision(&self) -> Option<u64> {
                None
            }
        }

        let cfg = NetConfig::new(3, 10.0).with_seed(4);
        let outages = [Outage {
            process: ProcessId::new(2),
            down_at: 0.5,
            up_at: None,
        }];
        let mut net = FdNet::new(cfg, vec![Probe::default(); 3], &outages);
        net.run_until(30.0, |_| false);
        // After GST the suspect set is exactly the crashed set.
        assert_eq!(
            net.processes()[0].last,
            Some(ProcessSet::singleton(ProcessId::new(2)))
        );
    }

    #[test]
    fn epochs_count_recoveries() {
        let cfg = NetConfig::new(2, 0.0).with_seed(5);
        let outages = [
            Outage {
                process: ProcessId::new(1),
                down_at: 1.0,
                up_at: Some(2.0),
            },
            Outage {
                process: ProcessId::new(1),
                down_at: 3.0,
                up_at: Some(4.0),
            },
        ];
        #[derive(Clone, Debug, Default)]
        struct EpochProbe {
            epochs: Vec<u64>,
        }
        impl FdProcess for EpochProbe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(10.0);
            }
            fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>) {
                self.epochs = ctx.trustlist().1;
            }
            fn on_crash(&mut self) {}
            fn on_recover(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let mut net = FdNet::new(cfg, vec![EpochProbe::default(); 2], &outages);
        net.run_until(20.0, |_| false);
        assert_eq!(net.processes()[0].epochs, vec![0, 2]);
    }
}
