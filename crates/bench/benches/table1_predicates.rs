//! T1 — Table 1: predicate evaluation and ⟨OTR, P_otr⟩ runs.
//!
//! Benchmarks the cost of (a) running OneThirdRule to decision under an
//! eventually-good adversary and (b) evaluating the Table 1 predicates over
//! the resulting trace, for growing n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_core::adversary::EventuallyGood;
use ho_core::algorithms::OneThirdRule;
use ho_core::executor::RoundExecutor;
use ho_core::predicate::{Potr, PotrRestricted, Predicate};
use ho_core::process::ProcessSet;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    for n in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::new("otr_run", n), &n, |b, &n| {
            b.iter(|| {
                let mut adv = EventuallyGood::new(6, ProcessSet::full(n), 0.7, 42);
                let mut exec = RoundExecutor::new(OneThirdRule::new(n), (0..n as u64).collect());
                exec.run(&mut adv, 12).unwrap();
                exec.decisions()
            });
        });
        g.bench_with_input(BenchmarkId::new("potr_eval", n), &n, |b, &n| {
            let mut adv = EventuallyGood::new(6, ProcessSet::full(n), 0.7, 42);
            let mut exec = RoundExecutor::new(OneThirdRule::new(n), (0..n as u64).collect());
            exec.run(&mut adv, 12).unwrap();
            b.iter(|| (Potr.holds(exec.trace()), PotrRestricted.holds(exec.trace())));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
