//! T1 — Table 1: predicate evaluation and ⟨OTR, P_otr⟩ runs.
//!
//! Benchmarks the cost of (a) running OneThirdRule to decision under an
//! eventually-good adversary, (b) evaluating the Table 1 predicates over
//! the resulting trace, for growing n, and (c) `Mailbox::from` lookups —
//! the sorted-index binary search that replaced the linear sender scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_core::adversary::EventuallyGood;
use ho_core::algorithms::OneThirdRule;
use ho_core::executor::RoundExecutor;
use ho_core::predicate::{Potr, PotrRestricted, Predicate};
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::Mailbox;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    for n in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::new("otr_run", n), &n, |b, &n| {
            b.iter(|| {
                let mut adv = EventuallyGood::new(6, ProcessSet::full(n), 0.7, 42);
                let mut exec = RoundExecutor::new(OneThirdRule::new(n), (0..n as u64).collect());
                exec.run(&mut adv, 12).unwrap();
                exec.decisions()
            });
        });
        g.bench_with_input(BenchmarkId::new("potr_eval", n), &n, |b, &n| {
            let mut adv = EventuallyGood::new(6, ProcessSet::full(n), 0.7, 42);
            let mut exec = RoundExecutor::new(OneThirdRule::new(n), (0..n as u64).collect());
            exec.run(&mut adv, 12).unwrap();
            b.iter(|| (Potr.holds(exec.trace()), PotrRestricted.holds(exec.trace())));
        });
    }
    for n in [16usize, 64, 128] {
        g.bench_with_input(BenchmarkId::new("mailbox_from", n), &n, |b, &n| {
            // Reverse arrival order is the linear scan's worst case; the
            // sorted index makes lookup order-independent.
            let mb: Mailbox<u64> = (0..n)
                .rev()
                .map(|q| (ProcessId::new(q), q as u64))
                .collect();
            b.iter(|| {
                let mut hits = 0u64;
                for q in 0..n {
                    if mb.from(black_box(ProcessId::new(q))).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
