//! E8 — §4.2.2(c): the full stack (Algorithm 3 + macro-rounds + OTR)
//! reaching consensus in a π0-arbitrary good period, for growing f.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_predicates::bounds::BoundParams;
use ho_predicates::measure::{measure_full_stack, Scenario};

fn bench_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_stack");
    g.sample_size(10);
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        g.bench_with_input(
            BenchmarkId::new("consensus", format!("n{n}f{f}")),
            &(n, f),
            |b, &(n, f)| {
                let params = BoundParams::new(n, 1.0, 2.0);
                b.iter(|| {
                    let out = measure_full_stack(params, f, Scenario::rough(40.0), 11);
                    assert!(out.measurement.achieved_at.is_some());
                    out.send_steps
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_stack);
criterion_main!(benches);
