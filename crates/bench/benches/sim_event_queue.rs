//! Microbench for the simulator's event-queue backends: the binary-heap
//! oracle vs the bucketed calendar wheel, under a broadcast-heavy and a
//! unicast-heavy (jittered-delay) event mix.
//!
//! Broadcast-heavy: worst-case delays collapse every broadcast into one
//! coalesced event per Δ bucket — the wheel's cheapest regime. Unicast-
//! heavy: jittered delays scatter each broadcast into up to `n` distinct
//! delivery events, so the queue carries the full per-recipient load.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_core::algorithms::OneThirdRule;
use ho_core::process::{ProcessId, ProcessSet};
use ho_predicates::{Alg2Program, BoundParams};
use ho_sim::{
    DelayTiming, GoodKind, Schedule, SchedulerKind, SimConfig, Simulator, StepTiming, TimePoint,
};

fn run(n: usize, scheduler: SchedulerKind, delay: DelayTiming, horizon: f64) -> u64 {
    let params = BoundParams::new(n, 1.0, 2.0);
    let cfg = SimConfig::normalized(n, 1.0, 2.0)
        .with_seed(7)
        .with_step_timing(StepTiming::Jittered)
        .with_delay_timing(delay)
        .with_scheduler(scheduler);
    let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64 % 3,
                params.alg2_timeout(),
            )
            .with_record_window(64)
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    sim.run_for(TimePoint::new(horizon));
    sim.stats().events_dispatched
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_event_queue");
    g.sample_size(10);
    for (mix, delay) in [
        ("broadcast_heavy", DelayTiming::WorstCase),
        ("unicast_heavy", DelayTiming::Jittered),
    ] {
        for scheduler in SchedulerKind::all() {
            let id = BenchmarkId::new(mix, scheduler.name());
            g.bench_with_input(id, &scheduler, |b, &scheduler| {
                b.iter(|| black_box(run(16, scheduler, delay, 200.0)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
