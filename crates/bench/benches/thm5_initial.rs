//! E5 — Theorem 5: Algorithm 2 in an *initial* good period ("nice" runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_core::process::ProcessSet;
use ho_predicates::bounds::BoundParams;
use ho_predicates::measure::{measure_alg2_space_uniform, Scenario};

fn bench_thm5(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm5_initial");
    g.sample_size(10);
    for n in [4usize, 7, 10] {
        g.bench_with_input(BenchmarkId::new("measure_x2", n), &n, |b, &n| {
            let params = BoundParams::new(n, 1.0, 2.0);
            b.iter(|| {
                let m = measure_alg2_space_uniform(
                    params,
                    ProcessSet::full(n),
                    2,
                    Scenario::Initial,
                    7,
                );
                assert!(m.achieved_at.is_some());
                m
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_thm5);
criterion_main!(benches);
