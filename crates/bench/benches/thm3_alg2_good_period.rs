//! E3 — Theorem 3: Algorithm 2's good-period measurement in the system
//! simulator (π0-down, non-initial good period), for growing n and x.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_core::process::ProcessSet;
use ho_predicates::bounds::BoundParams;
use ho_predicates::measure::{measure_alg2_space_uniform, Scenario};

fn bench_thm3(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm3_alg2");
    g.sample_size(10);
    for n in [4usize, 7, 10] {
        g.bench_with_input(BenchmarkId::new("measure_x2", n), &n, |b, &n| {
            let params = BoundParams::new(n, 1.0, 2.0);
            b.iter(|| {
                let m = measure_alg2_space_uniform(
                    params,
                    ProcessSet::full(n),
                    2,
                    Scenario::rough(50.0),
                    7,
                );
                assert!(m.achieved_at.is_some());
                m
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_thm3);
criterion_main!(benches);
