//! E6 — Theorem 6: Algorithm 3's good-period measurement (π0-arbitrary,
//! non-initial), for growing (n, f).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ho_predicates::bounds::BoundParams;
use ho_predicates::measure::{measure_alg3_kernel, Scenario};

fn bench_thm6(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm6_alg3");
    g.sample_size(10);
    for (n, f) in [(4usize, 1usize), (5, 2), (9, 4)] {
        g.bench_with_input(
            BenchmarkId::new("measure_x2", format!("n{n}f{f}")),
            &(n, f),
            |b, &(n, f)| {
                let params = BoundParams::new(n, 1.0, 2.0);
                b.iter(|| {
                    let m = measure_alg3_kernel(params, f, 2, Scenario::rough(50.0), 7);
                    assert!(m.achieved_at.is_some());
                    m
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_thm6);
criterion_main!(benches);
