//! A1 — Appendix A: the failure-detector baselines vs the HO model.

use criterion::{criterion_group, criterion_main, Criterion};
use ho_core::adversary::FullDelivery;
use ho_core::algorithms::OneThirdRule;
use ho_core::executor::RoundExecutor;
use ho_fd::harness::{run_aguilera, run_chandra_toueg, FdScenario};

fn bench_fd(c: &mut Criterion) {
    let mut g = c.benchmark_group("fd_comparison");
    g.sample_size(10);
    g.bench_function("chandra_toueg_failure_free", |b| {
        b.iter(|| {
            let out = run_chandra_toueg(&FdScenario::failure_free(3, 1));
            assert_eq!(out.decided_count(), 3);
            out.messages_sent
        });
    });
    g.bench_function("aguilera_failure_free", |b| {
        b.iter(|| {
            let out = run_aguilera(&FdScenario::failure_free(3, 1));
            assert_eq!(out.decided_count(), 3);
            out.messages_sent
        });
    });
    g.bench_function("aguilera_crash_recovery", |b| {
        b.iter(|| {
            let out = run_aguilera(&FdScenario::crash_recovery(3, 1, 0.4, 30.0, 1));
            assert_eq!(out.decided_count(), 3);
            out.messages_sent
        });
    });
    g.bench_function("ho_otr_failure_free", |b| {
        b.iter(|| {
            let mut exec = RoundExecutor::new(OneThirdRule::new(3), vec![10, 11, 12]);
            exec.run_until_all_decided(&mut FullDelivery, 10).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fd);
criterion_main!(benches);
