//! # bench — the experiment harness
//!
//! One entry point per paper artifact (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md`):
//!
//! | id | artifact | binary | bench |
//! |----|----------|--------|-------|
//! | T1 | Table 1 predicates | `table1` | `table1_predicates` |
//! | E3 | Theorem 3 | `thm3` | `thm3_alg2_good_period` |
//! | E5 | Theorem 5 | `thm5` | `thm5_initial` |
//! | C4 | Corollary 4 | `cor4` | — |
//! | E6 | Theorem 6 | `thm6` | `thm6_alg3_good_period` |
//! | E7 | Theorem 7 | `thm7` | — |
//! | E8 | §4.2.2(c) | `stack` | `full_stack` |
//! | T8 | Theorem 8 | `translation` | — |
//! | A1 | Appendix A | `fd_compare` | `fd_comparison` |
//! | AB | design-choice ablations | `ablation` | — |
//! | SW | scenario sweep baseline (`BENCH_sweep.json`) | `sweep` | — |

pub mod ablation;
pub mod experiments;
pub mod sweep;
pub mod table;
