//! SW — the scenario sweep: the harness baseline behind `BENCH_sweep.json`.
//!
//! Defines the canonical scenario grid (every algorithm, the full fault
//! zoo, three system sizes, forty seeds) and the report document that
//! tracks the round loop's cost model release over release:
//!
//! * the SendPlan kernel's message economy (`clones_per_round_before` is
//!   what the per-destination `S_p^r` scheme deep-cloned,
//!   `allocs_per_round_after` is what the plan kernel constructs);
//! * the scratch-buffer reuse rate (`fresh_allocs_per_round` is what
//!   actually reaches the allocator — ~0 for broadcast algorithms in
//!   steady state);
//! * throughput, measured twice: a single-core pass (comparable across
//!   releases) and an all-core pass with the chunked work-stealing pool,
//!   plus the scaling efficiency between them.
//!
//! Regenerate with `cargo run --release -p bench --bin sweep` and diff the
//! trajectory; `--smoke` runs a thinned grid for CI (asserting zero safety
//! violations and that the emitted JSON parses back).

use std::time::Instant;

use ho_core::adversary::Adversary as _;
use ho_core::{ContactPlan, ContactPlanAdversary, ProcessSet, Round};
use ho_harness::{
    chunk_policy_json, default_threads, forensic_artifact_json, predicate_totals_json,
    repro_command, rsm_report_json, rsm_verdict_json, sim_report_json, sim_verdict_json,
    telemetry_summary_json, verdict_json, AdversarySpec, AlgorithmSpec, ChunkPolicy,
    ImplementationSpec, Json, LinkFaultSpec, PredicateTotals, RsmReport, RsmSweep, SimSweep, Sweep,
    SweepReport, TelemetrySummary, WorkloadSpec,
};
use ho_predicates::monitor::WindowMonitor;
use ho_sim::SchedulerKind;

/// The canonical *safe* baseline grid: every cell must finish with zero
/// violations.
///
/// UniformVoting is swept only under environments that respect its safety
/// predicate `P_nek` (a non-empty kernel every round — a single down
/// process empties the kernel, so even crash-recovery is out of bounds);
/// OneThirdRule and LastVoting are swept under everything, including
/// partitions and empty-kernel chaos, because their safety needs no
/// communication predicate at all.
#[must_use]
pub fn baseline_sweeps() -> Vec<Sweep> {
    let unrestricted = [
        AdversarySpec::FullDelivery,
        AdversarySpec::RandomLoss { loss: 0.2 },
        AdversarySpec::RandomLoss { loss: 0.4 },
        AdversarySpec::Partition { blocks: 2 },
        AdversarySpec::CrashRecovery,
        AdversarySpec::KernelOnly { loss: 0.8 },
        AdversarySpec::EventuallyGood {
            bad_rounds: 6,
            loss: 0.5,
        },
    ];
    let kernel_preserving = [
        AdversarySpec::FullDelivery,
        AdversarySpec::KernelOnly { loss: 0.8 },
    ];
    vec![
        Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries(unrestricted)
            .sizes([4, 7, 10])
            .seeds(0..40)
            .max_rounds(120),
        Sweep::new()
            .algorithms([AlgorithmSpec::UniformVoting])
            .adversaries(kernel_preserving)
            .sizes([4, 7, 10])
            .seeds(0..40)
            .max_rounds(120),
    ]
}

/// The `P_nek` counterexample sweep: UniformVoting outside its safety
/// predicate. The harness is expected to *catch* agreement violations here
/// (empty kernels let disjoint groups — in space or, with staggered
/// outages, in time — confirm different votes); the report records how
/// many were detected so the checker's sensitivity is itself tracked.
#[must_use]
pub fn pnek_counterexample_sweep() -> Sweep {
    Sweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([
            AdversarySpec::RandomLoss { loss: 0.4 },
            AdversarySpec::Partition { blocks: 2 },
            AdversarySpec::CrashRecovery,
        ])
        .sizes([4, 7, 10])
        .seeds(0..40)
        .max_rounds(120)
}

/// The canonical **sim-layer** grid: the predicate *implementation* stack
/// (Algorithms 2 and 3 over the system-level simulator) swept across
/// (implementation × link-fault model × n × seed), each scenario's verdict
/// checking the *delivered* predicate — the `P_su` / `P_k` window the
/// theorems promise — against the theorem bound. Every cell must finish
/// with zero violations: a violation here means an implementation broke
/// its own paper-proved guarantee.
#[must_use]
pub fn sim_layer_sweep() -> SimSweep {
    SimSweep::new()
        .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 1 }])
        .faults([
            LinkFaultSpec::GoodFromStart,
            LinkFaultSpec::LossyThenGood {
                bad_len: 40.0,
                loss: 0.5,
            },
            LinkFaultSpec::CrashyThenGood { bad_len: 40.0 },
            LinkFaultSpec::OmissiveThenGood {
                bad_len: 40.0,
                send: 0.3,
                recv: 0.3,
            },
        ])
        .sizes([4, 6])
        .seeds(0..10)
        .window(2)
}

/// The canonical **rsm-layer** grids: the replicated-log service
/// (`ho-rsm`'s pipelined `LogDriver`) swept across (inner algorithm ×
/// adversary × n × pipeline depth × workload × lease × seed). Every cell
/// must finish with **zero** prefix-agreement / exactly-once violations;
/// the per-cell table carries the service numbers (commands/sec,
/// rounds/slot, worst p99 apply latency in rounds) that future scaling
/// PRs move. The lease axis runs every cell twice — flow control off
/// (the requeue-churn baseline) and on (slot leases, adaptive batching,
/// admission backpressure) — so the document is its own before/after
/// table for the flow-control work.
///
/// OneThirdRule and LastVoting run the full fault zoo — their safety
/// needs no communication predicate, so even chaos may only slow the log,
/// never fork it. UniformVoting runs under full delivery only: pipelined
/// slots open at different rounds on different replicas, so no adversary
/// can guarantee a per-instance non-empty kernel out of lockstep (see
/// `ho_harness::rsm`).
#[must_use]
pub fn rsm_layer_sweeps() -> Vec<RsmSweep> {
    let workloads = [
        WorkloadSpec::FixedRate { per_round: 2 },
        WorkloadSpec::ClosedLoop { clients: 8 },
        WorkloadSpec::Bursty {
            burst: 8,
            period: 4,
        },
        WorkloadSpec::SkewedKey { per_round: 2 },
    ];
    vec![
        RsmSweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries([
                AdversarySpec::FullDelivery,
                AdversarySpec::RandomLoss { loss: 0.3 },
                AdversarySpec::CrashRecovery,
                AdversarySpec::EventuallyGood {
                    bad_rounds: 6,
                    loss: 0.5,
                },
            ])
            .sizes([4, 7])
            .depths([1, 4, 16])
            .workloads(workloads)
            .leases([false, true])
            .seeds(0..3)
            .rounds(80),
        RsmSweep::new()
            .algorithms([AlgorithmSpec::UniformVoting])
            .adversaries([AdversarySpec::FullDelivery])
            .sizes([4, 7])
            .depths([1, 4, 16])
            .workloads(workloads)
            .leases([false, true])
            .seeds(0..3)
            .rounds(80),
    ]
}

/// Runs the rsm-layer grids and merges them into one report. Pass
/// `smoke = true` for the thinned CI variant.
#[must_use]
pub fn run_rsm_layer(smoke: bool) -> RsmReport {
    let sweeps: Vec<RsmSweep> = if smoke {
        rsm_layer_sweeps()
            .into_iter()
            .map(|s| {
                s.seeds(0..1).workloads([
                    WorkloadSpec::FixedRate { per_round: 2 },
                    WorkloadSpec::ClosedLoop { clients: 8 },
                ])
            })
            .collect()
    } else {
        rsm_layer_sweeps()
    };
    let start = Instant::now();
    let mut verdicts = Vec::new();
    let mut threads = 1;
    let mut chunk = ChunkPolicy::from_env();
    for sweep in sweeps {
        let report = sweep.run();
        threads = report.threads;
        chunk = report.chunk;
        verdicts.extend(report.verdicts);
    }
    RsmReport::aggregate(verdicts, start.elapsed().as_secs_f64(), threads, chunk)
}

/// The canonical **sharded-rsm** grid: the partitioned log service
/// (`ho-rsm`'s `ShardedLogDriver`) swept across shard counts
/// S ∈ {1, 2, 4, 8, 16} under clean and lossy delivery, on uniform and
/// hot-key workloads. Every cell must finish with zero violations of the
/// *sharded* oracle (per-shard prefix agreement + exactly-once, namespace
/// containment, cross-shard disjointness); the scaling table behind the
/// `sharded_rsm` section of `BENCH_sweep.json` comes from here.
///
/// S = 1 is deliberately in the grid: `shard_seed(seed, 0) == seed` makes
/// that column bit-identical to the unsharded `rsm_layer` service, so the
/// router's own overhead is directly readable as (S=1 here) vs
/// (`rsm_layer` there) on the same workload cells.
#[must_use]
pub fn sharded_rsm_sweeps() -> Vec<RsmSweep> {
    vec![RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries([
            AdversarySpec::FullDelivery,
            AdversarySpec::RandomLoss { loss: 0.3 },
        ])
        .sizes([4])
        .depths([4])
        .shards([1, 2, 4, 8, 16])
        .workloads([
            WorkloadSpec::FixedRate { per_round: 2 },
            WorkloadSpec::SkewedKey { per_round: 2 },
        ])
        .leases([false, true])
        .seeds(0..3)
        .rounds(80)]
}

/// Runs the sharded-rsm grids and merges them into one report. Pass
/// `smoke = true` for the thinned CI variant (S ∈ {1, 4}, 2 seeds).
#[must_use]
pub fn run_sharded_rsm(smoke: bool) -> RsmReport {
    let sweeps: Vec<RsmSweep> = if smoke {
        sharded_rsm_sweeps()
            .into_iter()
            .map(|s| s.shards([1, 4]).seeds(0..2))
            .collect()
    } else {
        sharded_rsm_sweeps()
    };
    let start = Instant::now();
    let mut verdicts = Vec::new();
    let mut threads = 1;
    let mut chunk = ChunkPolicy::from_env();
    for sweep in sweeps {
        let report = sweep.run();
        threads = report.threads;
        chunk = report.chunk;
        verdicts.extend(report.verdicts);
    }
    RsmReport::aggregate(verdicts, start.elapsed().as_secs_f64(), threads, chunk)
}

/// The `sharded_rsm` section: the standard rsm report plus a `scaling`
/// table — one row per (shard count, lease setting), aggregated over the
/// rest of the grid, carrying the numbers the sharding and flow-control
/// tentpoles are judged by (aggregate commands/sec and the requeue ratio
/// as S grows, before and after leases).
#[must_use]
pub fn sharded_rsm_json(report: &RsmReport) -> Json {
    let Json::Obj(mut map) = rsm_report_json(report, false) else {
        unreachable!("rsm reports serialize to an object");
    };
    let mut by_shards: std::collections::BTreeMap<(usize, bool), Vec<&ho_harness::RsmVerdict>> =
        std::collections::BTreeMap::new();
    for v in &report.verdicts {
        by_shards.entry((v.shards, v.lease)).or_default().push(v);
    }
    let scaling: Vec<Json> = by_shards
        .into_iter()
        .map(|((shards, lease), vs)| {
            let commands: u64 = vs.iter().map(|v| v.commands).sum();
            let generated: u64 = vs.iter().map(|v| v.generated_commands).sum();
            let requeued: u64 = vs.iter().map(|v| v.requeued_commands).sum();
            let wall: u64 = vs.iter().map(|v| v.wall_nanos).sum();
            let violations = vs.iter().filter(|v| !v.is_safe()).count();
            Json::obj([
                ("shards", Json::UInt(shards as u64)),
                ("lease", Json::Bool(lease)),
                ("scenarios", Json::UInt(vs.len() as u64)),
                ("violations", Json::UInt(violations as u64)),
                ("commands", Json::UInt(commands)),
                ("generated_commands", Json::UInt(generated)),
                ("requeued_commands", Json::UInt(requeued)),
                (
                    "requeue_ratio",
                    if commands == 0 {
                        Json::Null
                    } else {
                        Json::Float(requeued as f64 / commands as f64)
                    },
                ),
                ("wall_nanos", Json::UInt(wall)),
                (
                    "commands_per_sec",
                    Json::Float(if wall == 0 {
                        0.0
                    } else {
                        commands as f64 * 1e9 / wall as f64
                    }),
                ),
                (
                    "worst_p99_latency_rounds",
                    Json::UInt(vs.iter().filter_map(|v| v.latency_p99).max().unwrap_or(0)),
                ),
            ])
        })
        .collect();
    map.insert("scaling".into(), Json::Arr(scaling));
    Json::Obj(map)
}

/// The canonical contact-plan shapes: an episodic partition, a rotating
/// two-process contact window, and a store-and-forward gap. Sized so the
/// guaranteed-good suffix starts by round 19 — comfortably inside every
/// grid's round budget, leaving the bulk of the run to measure recovery,
/// not just survival.
#[must_use]
pub fn contact_plans() -> [ContactPlan; 3] {
    [
        ContactPlan::Episodic {
            dark: 3,
            bright: 2,
            cycles: 4,
        },
        ContactPlan::Rotating {
            window: 3,
            windows: 6,
        },
        ContactPlan::StoreAndForward { dark: 16 },
    ]
}

/// The **model-layer** contact grid: OneThirdRule and LastVoting driven
/// by [`ContactPlanAdversary`] HO sets. UniformVoting is excluded by
/// design: every contact phase (disjoint blocks, a two-process window,
/// an isolated replica) empties the global kernel, so `P_nek` cannot
/// hold under any contact plan.
#[must_use]
pub fn contact_model_sweep() -> Sweep {
    Sweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
        .adversaries(contact_plans().map(|plan| AdversarySpec::ContactPlan { plan }))
        .sizes([4, 7])
        .seeds(0..40)
        .max_rounds(120)
}

/// The **sim-layer** contact grid: Algorithms 2 and 3 over real-valued
/// time, the plan mapped onto rounds of fixed length by the engine's
/// link schedule. The store-and-forward plan runs at two round lengths
/// so the time→round mapping itself is exercised, not just one scaling
/// of it.
#[must_use]
pub fn contact_sim_sweep() -> SimSweep {
    let [episodic, rotating, store_forward] = contact_plans();
    SimSweep::new()
        .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 1 }])
        .faults([
            LinkFaultSpec::ContactPlanThenGood {
                plan: episodic,
                round_len: 5.0,
            },
            LinkFaultSpec::ContactPlanThenGood {
                plan: rotating,
                round_len: 5.0,
            },
            LinkFaultSpec::ContactPlanThenGood {
                plan: store_forward,
                round_len: 5.0,
            },
            LinkFaultSpec::ContactPlanThenGood {
                plan: store_forward,
                round_len: 2.5,
            },
        ])
        .sizes([4, 6])
        .seeds(0..6)
        .window(2)
}

/// The **rsm-layer** contact grid: the replicated-log service riding out
/// every plan shape, with the degradation metrics (dark rounds, log
/// divergence, backfill volume, catch-up latency) flowing into the
/// per-cell table.
#[must_use]
pub fn contact_rsm_sweep() -> RsmSweep {
    RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
        .adversaries(contact_plans().map(|plan| AdversarySpec::ContactPlan { plan }))
        .sizes([4])
        .depths([1, 4])
        .workloads([
            WorkloadSpec::FixedRate { per_round: 2 },
            WorkloadSpec::ClosedLoop { clients: 8 },
        ])
        .leases([false, true])
        .seeds(0..3)
        .rounds(80)
}

/// The **sharded** contact sub-grid: each shard group's plan derives
/// from its own `shard_seed`, so dark intervals and dark replicas differ
/// per shard — the router must survive shards degrading out of phase
/// with each other.
#[must_use]
pub fn contact_sharded_sweep() -> RsmSweep {
    let [episodic, _, store_forward] = contact_plans();
    RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries([
            AdversarySpec::ContactPlan { plan: episodic },
            AdversarySpec::ContactPlan {
                plan: store_forward,
            },
        ])
        .sizes([4])
        .depths([4])
        .shards([1, 4])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .leases([false, true])
        .seeds(0..3)
        .rounds(80)
}

/// Measures predicate lateness directly on the adversary's HO rows: for
/// each plan, how late the first `P_k` / `P_su` window of length `x`
/// completes relative to the fault-free ideal (round `x`), and whether
/// it lands by the hard bound `good_from + x − 1` that the permanently
/// fully-connected suffix guarantees. One row per (plan, predicate),
/// aggregated over (n × seed); a row with `within_bound: false` fails
/// the CI smoke job.
#[must_use]
pub fn predicate_lateness_json(sizes: &[usize], seeds: std::ops::Range<u64>, x: u64) -> Json {
    type Make = fn(ProcessSet, u64, f64) -> WindowMonitor;
    let mut rows = Vec::new();
    for plan in contact_plans() {
        let bound = plan.good_from() + x - 1;
        for (predicate, make) in [
            ("kernel", WindowMonitor::kernel as Make),
            ("space_uniform", WindowMonitor::space_uniform as Make),
        ] {
            let mut scenarios = 0u64;
            let mut achieved = 0u64;
            let mut worst_witness = 0u64;
            for &n in sizes {
                for seed in seeds.clone() {
                    scenarios += 1;
                    let mut adversary = ContactPlanAdversary::new(plan, seed);
                    let mut monitor = make(ProcessSet::full(n), x, 0.0);
                    let mut ho = vec![ProcessSet::full(n); n];
                    for r in 1..=bound {
                        adversary.fill_ho_sets(Round(r), &mut ho);
                        monitor.observe_row(r, &ho, r as f64);
                        if let Some((_, t)) = monitor.witness() {
                            achieved += 1;
                            worst_witness = worst_witness.max(t as u64);
                            break;
                        }
                    }
                }
            }
            rows.push(Json::obj([
                ("plan", Json::Str(plan.label())),
                ("predicate", Json::Str(predicate.into())),
                ("window", Json::UInt(x)),
                ("scenarios", Json::UInt(scenarios)),
                ("good_from", Json::UInt(plan.good_from())),
                ("bound_round", Json::UInt(bound)),
                ("worst_witness_round", Json::UInt(worst_witness)),
                (
                    "worst_lateness_rounds",
                    Json::UInt(worst_witness.saturating_sub(x)),
                ),
                ("within_bound", Json::Bool(achieved == scenarios)),
            ]));
        }
    }
    Json::Arr(rows)
}

/// Runs the contact-plan grids on all three axes and assembles the
/// `contact_plan` section of `BENCH_sweep.json`: per-layer reports, the
/// predicate-lateness table, and the graceful-degradation aggregates the
/// DTN roadmap item is judged by. Pass `smoke = true` for the thinned CI
/// variant.
#[must_use]
pub fn run_contact_plan(smoke: bool) -> Json {
    let model = if smoke {
        contact_model_sweep().seeds(0..8)
    } else {
        contact_model_sweep()
    }
    .run();
    let sim = if smoke {
        contact_sim_sweep().seeds(0..2)
    } else {
        contact_sim_sweep()
    }
    .run();
    let rsm = if smoke {
        contact_rsm_sweep().seeds(0..1)
    } else {
        contact_rsm_sweep()
    }
    .run();
    let sharded = if smoke {
        contact_sharded_sweep().seeds(0..1)
    } else {
        contact_sharded_sweep()
    }
    .run();
    let lateness = predicate_lateness_json(&[4, 7], if smoke { 0..4 } else { 0..16 }, 2);

    let late_windows = match &lateness {
        Json::Arr(rows) => rows
            .iter()
            .filter(|row| {
                !matches!(row, Json::Obj(m) if m.get("within_bound") == Some(&Json::Bool(true)))
            })
            .count() as u64,
        _ => unreachable!("the lateness table is an array"),
    };

    let service = rsm.verdicts.iter().chain(&sharded.verdicts);
    let dark_rounds: u64 = service.clone().map(|v| v.dark_rounds).sum();
    let backfill_entries: u64 = service.clone().map(|v| v.backfill_entries).sum();
    let divergent_rounds: u64 = service.clone().map(|v| v.divergent_rounds).sum();
    let recovered = service
        .clone()
        .filter(|v| v.catch_up_rounds.is_some())
        .count() as u64;
    let worst_catch_up = service.filter_map(|v| v.catch_up_rounds).max().unwrap_or(0);

    let violations = model.violations as u64
        + sim.violations as u64
        + rsm.violations as u64
        + sharded.violations as u64
        + late_windows;

    Json::obj([
        (
            "scenarios",
            Json::UInt(
                model.scenarios as u64
                    + sim.scenarios as u64
                    + rsm.scenarios as u64
                    + sharded.scenarios as u64,
            ),
        ),
        ("violations", Json::UInt(violations)),
        ("late_predicate_windows", Json::UInt(late_windows)),
        (
            "degradation",
            Json::obj([
                ("dark_rounds", Json::UInt(dark_rounds)),
                ("backfill_entries", Json::UInt(backfill_entries)),
                ("divergent_rounds", Json::UInt(divergent_rounds)),
                ("recovered_scenarios", Json::UInt(recovered)),
                ("worst_catch_up_rounds", Json::UInt(worst_catch_up)),
            ]),
        ),
        ("predicate_lateness", lateness),
        ("model_layer", model.to_json(false)),
        ("sim_layer", sim_report_json(&sim, false)),
        ("rsm_layer", rsm_report_json(&rsm, false)),
        ("sharded_rsm", sharded_rsm_json(&sharded)),
    ])
}

/// Pairs the wheel grid's verdicts with the heap oracle's run of the same
/// grid and counts divergences — the CI gate behind the scheduler swap.
///
/// The two backends must dispatch the identical `(time, seq)` event
/// sequence, so *every* observable of every scenario must match: the
/// delivered-predicate outcome, the empirical window length, round and
/// message counters, and even the queue diagnostics. A single divergence
/// means the calendar wheel reordered an event the heap would not have.
#[must_use]
pub fn sim_scheduler_equivalence(
    wheel: &ho_harness::SimReport,
    heap: &ho_harness::SimReport,
) -> Json {
    let mut divergences = 0u64;
    let mut first: Option<String> = None;
    if wheel.verdicts.len() != heap.verdicts.len() {
        divergences += 1;
        first = Some("grid shapes differ".into());
    }
    for (w, h) in wheel.verdicts.iter().zip(&heap.verdicts) {
        let same = w.id() == h.id()
            && w.achieved == h.achieved
            && w.within_bound == h.within_bound
            && w.empirical_length == h.empirical_length
            && w.max_round == h.max_round
            && w.send_steps == h.send_steps
            && w.transmissions == h.transmissions
            && w.dropped == h.dropped
            && w.crashes == h.crashes
            && w.messages.delivered == h.messages.delivered
            && w.events_dispatched == h.events_dispatched
            && w.peak_queue_depth == h.peak_queue_depth;
        if !same {
            divergences += 1;
            if first.is_none() {
                first = Some(w.id());
            }
        }
    }
    Json::obj([
        ("oracle", Json::Str("heap".into())),
        ("scenarios", Json::UInt(wheel.verdicts.len() as u64)),
        ("divergences", Json::UInt(divergences)),
        ("first_divergence", first.map_or(Json::Null, Json::Str)),
    ])
}

/// Every model-layer grid a `--scenario <id>` repro can come from,
/// in document order: the safe baseline, the `P_nek` counterexamples,
/// and the contact-plan cells.
fn all_model_sweeps() -> Vec<Sweep> {
    let mut sweeps = baseline_sweeps();
    sweeps.push(pnek_counterexample_sweep());
    sweeps.push(contact_model_sweep());
    sweeps
}

/// The result document of one repro run: which grid layer matched, the
/// full verdict, and — when the run ended in a violation — the
/// self-contained forensic artifact.
fn repro_doc(layer: &str, id: &str, verdict: Json, forensic: Option<Json>) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert("scenario".to_owned(), Json::Str(id.to_owned()));
    map.insert("layer".to_owned(), Json::Str(layer.to_owned()));
    map.insert("repro".to_owned(), Json::Str(repro_command(id)));
    map.insert("verdict".to_owned(), verdict);
    if let Some(f) = forensic {
        map.insert("forensic".to_owned(), f);
    }
    Json::Obj(map)
}

/// Single-scenario repro mode — what the `repro` line inside every
/// forensic artifact executes (`cargo run --release -p bench --bin sweep
/// -- --scenario <id>`).
///
/// Looks the id up in every canonical grid (model baseline, `P_nek`
/// counterexamples, sim layer, rsm layer, sharded rsm, and all four
/// contact-plan variants), reruns exactly that scenario with the flight
/// recorder on, and returns a self-contained result document: the
/// verdict, its telemetry digest, and — when the run ends in a safety
/// violation — the full forensic artifact with the drained event ring.
/// Scenarios are deterministic in (grid cell, seed), so the rerun
/// reproduces the original sweep's verdict bit for bit. Returns `None`
/// for an id no grid produces.
#[must_use]
pub fn run_scenario_by_id(id: &str) -> Option<Json> {
    if let Some(mut scenario) = all_model_sweeps()
        .into_iter()
        .flat_map(|s| s.scenarios())
        .find(|s| s.id() == id)
    {
        scenario.telemetry = true;
        let v = scenario.run();
        let forensic = v.forensic_events.as_deref().map(|events| {
            forensic_artifact_json(
                id,
                v.seed,
                v.violation.as_deref().unwrap_or("violation"),
                v.telemetry.as_ref(),
                events,
            )
        });
        return Some(repro_doc("model", id, verdict_json(&v), forensic));
    }

    if let Some(mut scenario) = [sim_layer_sweep(), contact_sim_sweep()]
        .into_iter()
        .flat_map(|s| s.scenarios())
        .find(|s| s.id() == id)
    {
        scenario.telemetry = true;
        let v = scenario.run();
        let forensic = v.forensic_events.as_deref().map(|events| {
            forensic_artifact_json(
                id,
                v.seed,
                v.violation.as_deref().unwrap_or("violation"),
                v.telemetry.as_ref(),
                events,
            )
        });
        return Some(repro_doc("sim", id, sim_verdict_json(&v), forensic));
    }

    let mut rsm_grids = rsm_layer_sweeps();
    rsm_grids.push(contact_rsm_sweep());
    rsm_grids.extend(sharded_rsm_sweeps());
    rsm_grids.push(contact_sharded_sweep());
    if let Some(mut scenario) = rsm_grids
        .into_iter()
        .flat_map(|s| s.scenarios())
        .find(|s| s.id() == id)
    {
        scenario.telemetry = true;
        let v = scenario.run();
        let forensic = v.forensic_events.as_deref().map(|events| {
            forensic_artifact_json(
                id,
                v.seed,
                v.violation.as_deref().unwrap_or("violation"),
                v.telemetry.as_ref(),
                events,
            )
        });
        return Some(repro_doc("rsm", id, rsm_verdict_json(&v), forensic));
    }

    None
}

/// One timed pass over the whole baseline grid at a fixed worker count.
struct Pass {
    reports: Vec<SweepReport>,
    wall: f64,
    scenarios: u64,
    threads: usize,
}

fn run_pass(sweeps: &[Sweep], threads: usize) -> Pass {
    let start = Instant::now();
    let reports: Vec<SweepReport> = sweeps
        .iter()
        .map(|s| s.clone().threads(threads).run())
        .collect();
    let wall = start.elapsed().as_secs_f64();
    Pass {
        scenarios: reports.iter().map(|r| r.scenarios as u64).sum(),
        wall,
        threads,
        reports,
    }
}

/// The fastest of `k` repetitions of a pass. The grids measure in tens
/// of milliseconds, so a single pass is at the mercy of the scheduler;
/// the minimum wall across repetitions is the standard estimator for
/// "what the code costs" on a noisy host.
fn best_pass(sweeps: &[Sweep], threads: usize, k: usize) -> Pass {
    let mut best: Option<Pass> = None;
    for _ in 0..k {
        let pass = run_pass(sweeps, threads);
        if best.as_ref().is_none_or(|b| pass.wall < b.wall) {
            best = Some(pass);
        }
    }
    best.expect("at least one repetition")
}

impl Pass {
    fn scenarios_per_sec(&self) -> f64 {
        if self.wall > 0.0 {
            self.scenarios as f64 / self.wall
        } else {
            0.0
        }
    }

    fn throughput_json(&self) -> Json {
        Json::obj([
            ("threads", Json::UInt(self.threads as u64)),
            ("wall_seconds", Json::Float(self.wall)),
            ("scenarios_per_sec", Json::Float(self.scenarios_per_sec())),
        ])
    }
}

/// Checks the monitored predicate statistics against the safety verdicts
/// — the cross-check behind the CI smoke job's exit code.
///
/// Two invariants tie the paper's predicate story to the sweep:
///
/// * **Safety environments hold by construction.** The `kernel_only`
///   adversary exists to preserve `P_nek`; a monitored `kernel_only`
///   scenario reporting an empty-kernel round means the monitor and the
///   adversary disagree about the safety environment. The check applies
///   to the *broadcast* algorithms only: the monitor observes effective
///   HO sets (mailbox support), and a unicast-heavy algorithm like
///   LastVoting leaves most recipients empty-handed by design, emptying
///   the effective kernel no matter what the adversary authorised.
/// * **Predicates explain violations.** UniformVoting is safe whenever
///   `P_nek` holds, so a UV agreement violation in a run whose monitor
///   saw no empty kernel — in either grid — contradicts the theorem.
///
/// # Errors
///
/// Returns the first disagreement, identifying the scenario.
pub fn predicate_cross_check(
    safe_grid: &[SweepReport],
    counterexamples: &SweepReport,
) -> Result<(), String> {
    let verdicts = safe_grid
        .iter()
        .flat_map(|r| &r.verdicts)
        .chain(&counterexamples.verdicts);
    for v in verdicts {
        let Some(p) = &v.predicates else {
            return Err(format!("{}: monitored verdict missing predicates", v.id()));
        };
        let broadcasts_every_round = v.algorithm != "last_voting";
        if v.adversary.starts_with("kernel_only") && broadcasts_every_round {
            if let Some(r0) = p.first_empty_kernel {
                return Err(format!(
                    "{}: kernel_only adversary emptied the kernel at round {r0}",
                    v.id()
                ));
            }
        }
        if v.algorithm == "uniform_voting" && !v.is_safe() && p.first_empty_kernel.is_none() {
            return Err(format!(
                "{}: UniformVoting violated safety although P_nek held all run",
                v.id()
            ));
        }
    }
    Ok(())
}

/// Runs the baseline grid and merges the reports into the
/// `BENCH_sweep.json` document. The grid runs three times — single-core,
/// all-core, and single-core with online predicate monitoring — so the
/// file tracks the round loop's raw speed, the harness's scaling, and the
/// monitoring overhead. Pass `smoke = true` for the thinned CI variant
/// (8 seeds).
#[must_use]
pub fn run_baseline(smoke: bool) -> Json {
    let sweeps: Vec<Sweep> = if smoke {
        baseline_sweeps()
            .into_iter()
            .map(|s| s.seeds(0..8))
            .collect()
    } else {
        baseline_sweeps()
    };

    // Untimed warm-up: the whole grid is tens of milliseconds of wall,
    // so first-touch costs (page faults, lazy allocator arenas) would
    // dominate a cold first pass and poison every overhead ratio built
    // on it. All measured passes then start from the same warm state.
    let _ = run_pass(&sweeps, 1);
    // Single-core pass: the release-over-release comparable number.
    // Best-of-three, same reason: one scheduler hiccup inside a 60 ms
    // window is tens of percent of noise.
    let single = best_pass(&sweeps, 1, 3);
    // All-core pass (on a single-core host this measures the same
    // configuration and the efficiency is trivially ~1).
    let threads = default_threads();
    let multi = best_pass(&sweeps, threads, 3);
    // Near-linear scaling ⇔ efficiency ≈ 1.
    let efficiency = multi.scenarios_per_sec() / (single.scenarios_per_sec() * threads as f64);

    // Monitored single-core pass: the same grid as a predicate
    // observatory, and the measured cost of watching.
    let monitored_sweeps: Vec<Sweep> = sweeps
        .iter()
        .map(|s| s.clone().monitor_predicates(true))
        .collect();
    let monitored = best_pass(&monitored_sweeps, 1, 3);
    let monitor_overhead = single.scenarios_per_sec() / monitored.scenarios_per_sec();
    let mut predicate_totals = PredicateTotals::default();
    for report in &monitored.reports {
        predicate_totals.merge(&report.predicate_totals);
    }

    // Telemetry A/B: the same single-core grid with the flight recorder
    // and metrics registry on. Off/on passes are *interleaved* — host
    // load drifts on the tens-of-milliseconds scale these grids measure
    // in, so pairing adjacent passes and keeping the quietest pair (the
    // least combined wall) makes the ratio a property of the code rather
    // than of the moment.
    let telemetry_sweeps: Vec<Sweep> = sweeps.iter().map(|s| s.clone().telemetry(true)).collect();
    let mut ab_best: Option<(Pass, Pass)> = None;
    for _ in 0..3 {
        let off = run_pass(&sweeps, 1);
        let on = run_pass(&telemetry_sweeps, 1);
        if ab_best
            .as_ref()
            .is_none_or(|(o, t)| off.wall + on.wall < o.wall + t.wall)
        {
            ab_best = Some((off, on));
        }
    }
    let (recorder_off_pass, telemetry_pass) = ab_best.expect("three A/B repetitions ran");
    let telemetry_overhead =
        recorder_off_pass.scenarios_per_sec() / telemetry_pass.scenarios_per_sec();
    let mut telemetry_totals = TelemetrySummary::default();
    for report in &telemetry_pass.reports {
        if let Some(t) = &report.telemetry_totals {
            telemetry_totals.merge(t);
        }
    }

    // The counterexample grid runs with the recorder on so every caught
    // violation drains its ring into a forensic artifact.
    let counterexamples = if smoke {
        pnek_counterexample_sweep().seeds(0..8)
    } else {
        pnek_counterexample_sweep()
    }
    .monitor_predicates(true)
    .telemetry(true)
    .run();
    let check = predicate_cross_check(&monitored.reports, &counterexamples);

    // One forensic artifact from the first caught violation — the
    // document's worked example of the on-violation dump, repro line
    // included.
    let forensic_sample = counterexamples.verdicts.iter().find_map(|v| {
        let events = v.forensic_events.as_deref()?;
        Some(forensic_artifact_json(
            &v.id(),
            v.seed,
            v.violation.as_deref().unwrap_or("violation"),
            v.telemetry.as_ref(),
            events,
        ))
    });

    // The sim layer: the implementation stack under systematic link
    // faults, verdicts checking the delivered predicate. The grid runs
    // twice — once on the calendar wheel (the measured configuration) and
    // once on the binary-heap oracle — and the paired verdicts feed the
    // scheduler-equivalence gate: any divergence fails the smoke job.
    let sim_sweep = if smoke {
        sim_layer_sweep().seeds(0..3)
    } else {
        sim_layer_sweep()
    };
    // Untimed warm-up: the whole grid is milliseconds of wall, so first-
    // touch costs (page faults, lazy allocator arenas) would dominate a
    // cold timing. Both measured passes then start from the same state.
    let _ = sim_sweep.clone().run();
    let sim_layer = sim_sweep.clone().scheduler(SchedulerKind::Wheel).run();
    let sim_heap = sim_sweep.scheduler(SchedulerKind::Heap).run();
    let scheduler_equivalence = sim_scheduler_equivalence(&sim_layer, &sim_heap);

    // The rsm layer: the replicated-log service over the same fault zoo,
    // verdicts checking prefix agreement and exactly-once apply.
    let rsm_layer = run_rsm_layer(smoke);

    // The sharded rsm layer: the same service partitioned across S
    // MultiSlot groups, verdicts checking the sharded oracle; the scaling
    // table tracks aggregate commands/sec and requeue churn as S grows.
    let sharded_rsm = run_sharded_rsm(smoke);

    // The contact-plan layer: DTN-style intermittent links across all
    // three axes, plus predicate lateness measured straight off the
    // adversary's HO rows.
    let contact_plan = run_contact_plan(smoke);

    let reports = &single.reports;
    let scenarios: u64 = single.scenarios;
    let decided: u64 = reports.iter().map(|r| r.decided as u64).sum();
    let violations: u64 = reports.iter().map(|r| r.violations as u64).sum();
    let rounds: u64 = reports.iter().map(|r| r.totals.rounds).sum();
    let allocs: u64 = reports.iter().map(|r| r.totals.payload_allocs).sum();
    let reuses: u64 = reports.iter().map(|r| r.totals.payload_reuses).sum();
    let fresh: u64 = reports.iter().map(|r| r.totals.fresh_allocs()).sum();
    let legacy: u64 = reports.iter().map(|r| r.totals.legacy_clones).sum();
    let delivered: u64 = reports.iter().map(|r| r.totals.delivered).sum();

    let cells: Vec<Json> = reports
        .iter()
        .flat_map(|r| match r.to_json(false) {
            Json::Obj(mut map) => match map.remove("cells") {
                Some(Json::Arr(cells)) => cells,
                _ => Vec::new(),
            },
            _ => Vec::new(),
        })
        .collect();

    Json::obj([
        (
            "benchmark",
            Json::Str(if smoke {
                "sweep_smoke".into()
            } else {
                "sweep_baseline".into()
            }),
        ),
        ("scenarios", Json::UInt(scenarios)),
        ("decided", Json::UInt(decided)),
        ("violations", Json::UInt(violations)),
        ("wall_seconds", Json::Float(single.wall)),
        ("scenarios_per_sec", Json::Float(single.scenarios_per_sec())),
        ("threads", Json::UInt(1)),
        (
            "throughput",
            Json::obj([
                ("single_core", single.throughput_json()),
                ("all_cores", multi.throughput_json()),
                ("threads_available", Json::UInt(threads as u64)),
                ("scaling_efficiency", Json::Float(efficiency)),
                // The chunk policy the measured sweeps actually ran under
                // — what a multi-core tuning run varies.
                (
                    "chunk",
                    chunk_policy_json(
                        &multi
                            .reports
                            .first()
                            .map_or_else(ChunkPolicy::default, |r| r.chunk),
                    ),
                ),
            ]),
        ),
        (
            "sendplan",
            Json::obj([
                ("rounds", Json::UInt(rounds)),
                ("payload_allocs", Json::UInt(allocs)),
                ("payload_reuses", Json::UInt(reuses)),
                ("fresh_allocs", Json::UInt(fresh)),
                ("legacy_clones", Json::UInt(legacy)),
                ("delivered", Json::UInt(delivered)),
                ("allocs_per_round_after", Json::Float(ratio(allocs, rounds))),
                ("fresh_allocs_per_round", Json::Float(ratio(fresh, rounds))),
                (
                    "clones_per_round_before",
                    Json::Float(ratio(legacy, rounds)),
                ),
                ("reduction_factor", Json::Float(ratio(legacy, allocs))),
            ]),
        ),
        (
            "baseline_prev",
            // The figures committed in the pre-optimisation
            // BENCH_sweep.json (single core, SendPlan kernel but per-round
            // allocating executor), kept here so the file itself reads as
            // a before/after table. `speedup_single_core` is this run
            // against that reference; an interleaved same-machine A/B of
            // the two binaries shows the same factor.
            Json::obj([
                ("scenarios_per_sec", Json::Float(PREV_SCENARIOS_PER_SEC)),
                ("allocs_per_round", Json::Float(PREV_ALLOCS_PER_ROUND)),
                (
                    "speedup_single_core",
                    Json::Float(single.scenarios_per_sec() / PREV_SCENARIOS_PER_SEC),
                ),
                (
                    "fresh_allocs_per_round_now",
                    Json::Float(ratio(fresh, rounds)),
                ),
            ]),
        ),
        ("cells", Json::Arr(cells)),
        ("predicates", {
            // The shared totals serializer, extended with the bench-only
            // throughput and cross-check fields.
            let Json::Obj(mut map) = predicate_totals_json(&predicate_totals) else {
                unreachable!("predicate totals serialize to an object");
            };
            map.insert(
                "scenarios_per_sec".into(),
                Json::Float(monitored.scenarios_per_sec()),
            );
            map.insert("overhead_vs_off".into(), Json::Float(monitor_overhead));
            map.insert(
                "check".into(),
                Json::Str(match &check {
                    Ok(()) => "ok".into(),
                    Err(reason) => reason.clone(),
                }),
            );
            Json::Obj(map)
        }),
        ("telemetry", {
            // The flight-recorder A/B: the merged event census of the
            // recorder-on pass, extended with the measured overhead
            // against the recorder-off single-core pass and the worked
            // forensic example.
            let Json::Obj(mut map) = telemetry_summary_json(&telemetry_totals) else {
                unreachable!("telemetry summaries serialize to an object");
            };
            map.insert(
                "recorder_off_scenarios_per_sec".into(),
                Json::Float(recorder_off_pass.scenarios_per_sec()),
            );
            map.insert(
                "recorder_on_scenarios_per_sec".into(),
                Json::Float(telemetry_pass.scenarios_per_sec()),
            );
            map.insert("overhead_vs_off".into(), Json::Float(telemetry_overhead));
            if let Some(f) = forensic_sample {
                map.insert("forensic_sample".into(), f);
            }
            Json::Obj(map)
        }),
        ("sim_layer", {
            let Json::Obj(mut m) = sim_report_json(&sim_layer, false) else {
                unreachable!("sim reports serialize to an object");
            };
            m.insert("scheduler_equivalence".into(), scheduler_equivalence);
            // The same grid on the heap oracle — the in-file before/after
            // table for the calendar-wheel scheduler, next to the
            // committed pre-wheel figure.
            m.insert(
                "heap_baseline".into(),
                Json::obj([
                    ("scheduler", Json::Str("heap".into())),
                    ("wall_seconds", Json::Float(sim_heap.wall_seconds)),
                    ("scenarios_per_sec", Json::Float(sim_heap.scenarios_per_sec)),
                    ("events_per_sec", Json::Float(sim_heap.events_per_sec)),
                    (
                        "speedup_wheel_vs_heap",
                        Json::Float(sim_layer.scenarios_per_sec / sim_heap.scenarios_per_sec),
                    ),
                ]),
            );
            m.insert(
                "baseline_prev".into(),
                Json::obj([
                    ("scenarios_per_sec", Json::Float(SIM_PREV_SCENARIOS_PER_SEC)),
                    (
                        "speedup_vs_committed",
                        Json::Float(sim_layer.scenarios_per_sec / SIM_PREV_SCENARIOS_PER_SEC),
                    ),
                ]),
            );
            Json::Obj(m)
        }),
        ("rsm_layer", rsm_report_json(&rsm_layer, false)),
        ("sharded_rsm", sharded_rsm_json(&sharded_rsm)),
        ("contact_plan", contact_plan),
        (
            "pnek_counterexamples",
            Json::obj([
                ("scenarios", Json::UInt(counterexamples.scenarios as u64)),
                (
                    "violations_detected",
                    Json::UInt(counterexamples.violations as u64),
                ),
                (
                    "violations_with_empty_kernel",
                    Json::UInt(
                        counterexamples
                            .verdicts
                            .iter()
                            .filter(|v| {
                                !v.is_safe()
                                    && v.predicates
                                        .as_ref()
                                        .is_some_and(|p| p.first_empty_kernel.is_some())
                            })
                            .count() as u64,
                    ),
                ),
            ]),
        ),
    ])
}

/// Single-core throughput of the previous committed `BENCH_sweep.json`
/// (the PR that introduced the SendPlan kernel and this harness).
const PREV_SCENARIOS_PER_SEC: f64 = 21_600.37;

/// Payload allocations per round in that baseline — every construction hit
/// the allocator (no scratch-buffer reuse existed).
const PREV_ALLOCS_PER_ROUND: f64 = 5.19;

/// Sim-layer throughput of the previous committed `BENCH_sweep.json`
/// (binary-heap event queue, per-recipient `MakeReady` fan-out, no
/// cross-scenario scratch reuse).
const SIM_PREV_SCENARIOS_PER_SEC: f64 = 16_030.035;

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_grid_shape() {
        let sweeps = baseline_sweeps();
        assert_eq!(sweeps.len(), 2);
        // 2 algs × 7 adversaries × 3 sizes × 40 seeds, plus
        // 1 alg × 2 adversaries × 3 sizes × 40 seeds.
        assert_eq!(sweeps[0].scenarios().len(), 2 * 7 * 3 * 40);
        assert_eq!(sweeps[1].scenarios().len(), 2 * 3 * 40);
    }

    #[test]
    fn safe_grid_is_safe_and_counterexamples_are_caught() {
        // A thinned replica of the baseline grid (8 seeds instead of 40)
        // so the invariants behind BENCH_sweep.json are enforced in CI.
        for sweep in baseline_sweeps() {
            let report = sweep.seeds(0..8).run();
            assert_eq!(report.violations, 0, "safe grid must stay safe");
        }
        let report = pnek_counterexample_sweep().seeds(0..8).run();
        assert!(
            report.violations > 0,
            "the checker must catch UV outside P_nek"
        );
    }

    #[test]
    fn rsm_layer_grid_orders_logs_safely() {
        // The thinned rsm grid (the CI variant): ≥ 100 log-service
        // scenarios, zero prefix-agreement / exactly-once violations, and
        // no dead cell — every (algorithm, adversary, depth, workload)
        // combination must actually order slots.
        let report = run_rsm_layer(true);
        assert!(report.scenarios >= 100, "{} scenarios", report.scenarios);
        assert_eq!(report.violations, 0, "{:?}", report.violating());
        assert!(report.totals.commands > 0);
        assert!(report.rounds_per_slot() > 0.0);
        for ((alg, adv, depth, _shards, wl, lease), cell) in report.by_cell() {
            assert!(
                cell.slots > 0,
                "dead cell: {alg}/{adv}/d{depth}/{wl}/lease{lease} ordered nothing"
            );
            // The flow-control acceptance gate: under symmetric delivery
            // the leaseholder always wins its slot, so lease-on cells must
            // be (near-)requeue-free.
            if lease && adv == "full_delivery" {
                let ratio = cell.requeue_ratio().unwrap_or(0.0);
                assert!(
                    ratio <= 0.1,
                    "lease-on {alg}/d{depth}/{wl} requeue ratio {ratio} exceeds 0.1"
                );
            }
        }
        // Deeper pipelines must raise per-round throughput under full
        // delivery (the whole point of the depth axis).
        let per_round = |depth: usize| {
            let (commands, rounds) = report
                .verdicts
                .iter()
                .filter(|v| {
                    v.depth == depth
                        && v.algorithm == "one_third_rule"
                        && v.adversary == "full_delivery"
                })
                .fold((0, 0), |(c, r), v| (c + v.commands, r + v.rounds_run));
            commands as f64 / rounds as f64
        };
        assert!(per_round(16) > per_round(1));
    }

    #[test]
    fn sharded_rsm_grid_is_safe() {
        // The thinned sharded grid (the CI variant): every cell clean
        // under the sharded oracle, every shard count represented, and
        // the scaling table derivable — per-S command totals sum to the
        // report total.
        let report = run_sharded_rsm(true);
        assert!(report.scenarios > 0);
        assert_eq!(report.violations, 0, "{:?}", report.violating());
        let mut seen: Vec<usize> = report.verdicts.iter().map(|v| v.shards).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![1, 4], "thinned grid sweeps S ∈ {{1, 4}}");
        let per_s: u64 = report.verdicts.iter().map(|v| v.commands).sum();
        assert_eq!(per_s, report.totals.commands);
        // Sharding must not change the total generated load: the S=4
        // cells route the same client stream across four groups.
        for ((_, adv, _, shards, wl, lease), cell) in report.by_cell() {
            assert!(
                cell.commands > 0,
                "dead cell: {adv}/S{shards}/{wl}/lease{lease}"
            );
            if lease && adv == "full_delivery" {
                let ratio = cell.requeue_ratio().unwrap_or(0.0);
                assert!(
                    ratio <= 0.1,
                    "lease-on S{shards}/{wl} requeue ratio {ratio} exceeds 0.1"
                );
            }
        }
    }

    #[test]
    fn sim_layer_grid_keeps_every_promise() {
        // A thinned replica of the sim-layer grid: every scenario must
        // deliver its predicate window within the theorem bound.
        let report = sim_layer_sweep().seeds(0..2).run();
        assert!(report.scenarios > 0);
        assert_eq!(
            report.achieved,
            report.scenarios,
            "{:?}",
            report.violating()
        );
        assert_eq!(report.violations, 0, "{:?}", report.violating());
        assert!(report.events_dispatched > 0, "queue diagnostics flow");
        assert!(report.peak_queue_depth > 0);
    }

    #[test]
    fn sim_layer_heap_oracle_reports_zero_divergences() {
        // The scheduler-equivalence gate on a thinned grid: the calendar
        // wheel and the heap oracle must agree on every verdict field.
        let sweep = sim_layer_sweep().seeds(0..2);
        let wheel = sweep.clone().scheduler(SchedulerKind::Wheel).run();
        let heap = sweep.scheduler(SchedulerKind::Heap).run();
        let Json::Obj(eq) = sim_scheduler_equivalence(&wheel, &heap) else {
            panic!("equivalence serializes to an object");
        };
        assert_eq!(
            eq.get("divergences"),
            Some(&Json::UInt(0)),
            "first divergence: {:?}",
            eq.get("first_divergence")
        );
        assert_eq!(
            eq.get("scenarios"),
            Some(&Json::UInt(wheel.scenarios as u64))
        );
        // The gate is not vacuous: a forged divergence is counted.
        let mut forged = heap.clone();
        forged.verdicts[0].max_round += 1;
        let Json::Obj(eq) = sim_scheduler_equivalence(&wheel, &forged) else {
            panic!("equivalence serializes to an object");
        };
        assert_eq!(eq.get("divergences"), Some(&Json::UInt(1)));
    }

    #[test]
    fn smoke_document_parses_and_is_safe() {
        let doc = run_baseline(true);
        let text = format!("{doc}\n");
        let parsed = Json::parse(&text).expect("report round-trips");
        let Json::Obj(map) = parsed else {
            panic!("top level must be an object");
        };
        assert_eq!(map.get("violations"), Some(&Json::UInt(0)));
        assert!(map.contains_key("throughput"));
        assert!(map.contains_key("sendplan"));
        // The sim-layer section is present, round-trips, and reports zero
        // delivered-predicate violations.
        let Some(Json::Obj(sim)) = map.get("sim_layer") else {
            panic!("sim_layer section missing");
        };
        assert_eq!(sim.get("violations"), Some(&Json::UInt(0)));
        assert!(
            matches!(sim.get("scenarios"), Some(Json::UInt(n)) if *n > 0),
            "sim scenarios recorded"
        );
        assert!(sim.contains_key("chunk"), "chunk policy recorded");
        // The scheduler fields round-trip: which backend the measured grid
        // ran on, its event throughput, and the heap oracle's agreement.
        assert_eq!(sim.get("scheduler"), Some(&Json::Str("wheel".into())));
        assert!(
            matches!(sim.get("events_per_sec"), Some(Json::Float(e)) if *e > 0.0),
            "event throughput recorded"
        );
        assert!(
            matches!(sim.get("events_dispatched"), Some(Json::UInt(n)) if *n > 0),
            "events dispatched recorded"
        );
        let Some(Json::Obj(eq)) = sim.get("scheduler_equivalence") else {
            panic!("scheduler_equivalence gate missing");
        };
        assert_eq!(
            eq.get("divergences"),
            Some(&Json::UInt(0)),
            "wheel diverged from the heap oracle: {:?}",
            eq.get("first_divergence")
        );
        let Some(Json::Obj(hb)) = sim.get("heap_baseline") else {
            panic!("heap before/after subsection missing");
        };
        assert!(matches!(
            hb.get("speedup_wheel_vs_heap"),
            Some(Json::Float(_))
        ));
        // The rsm-layer section round-trips with its service aggregates
        // and per-cell throughput table, and reports zero log violations.
        let Some(Json::Obj(rsm)) = map.get("rsm_layer") else {
            panic!("rsm_layer section missing");
        };
        assert_eq!(rsm.get("violations"), Some(&Json::UInt(0)));
        assert!(
            matches!(rsm.get("scenarios"), Some(Json::UInt(n)) if *n >= 100),
            "rsm grid is at least 100 scenarios"
        );
        let Some(Json::Obj(service)) = rsm.get("service") else {
            panic!("rsm service aggregates missing");
        };
        assert!(
            matches!(service.get("commands"), Some(Json::UInt(n)) if *n > 0),
            "the service ordered commands"
        );
        assert!(service.contains_key("rounds_per_slot"));
        assert!(
            matches!(rsm.get("cells"), Some(Json::Arr(cells)) if !cells.is_empty()),
            "per-cell throughput table present"
        );
        // The flow-control fields survive a parse round-trip, both lease
        // settings are present, and every lease-on full-delivery cell
        // clears the requeue gate.
        let Some(Json::Arr(rsm_cells)) = rsm.get("cells") else {
            panic!("rsm cells missing");
        };
        let mut lease_settings = std::collections::HashSet::new();
        for cell in rsm_cells {
            let Json::Obj(cell) = cell else {
                panic!("rsm cells are objects");
            };
            let Some(Json::Bool(lease)) = cell.get("lease") else {
                panic!("cell missing lease flag");
            };
            lease_settings.insert(*lease);
            assert!(cell.contains_key("noop_slots"), "noop_slots round-trips");
            assert!(
                cell.contains_key("lease_takeovers"),
                "lease_takeovers round-trips"
            );
            assert!(cell.contains_key("requeue_ratio"));
            if *lease && cell.get("adversary") == Some(&Json::Str("full_delivery".into())) {
                match cell.get("requeue_ratio") {
                    Some(Json::Float(r)) => {
                        assert!(
                            *r <= 0.1,
                            "lease-on requeue ratio {r} exceeds 0.1: {cell:?}"
                        );
                    }
                    Some(Json::UInt(0)) | Some(Json::Null) => {}
                    other => panic!("unexpected requeue_ratio {other:?}"),
                }
            }
        }
        assert_eq!(
            lease_settings.len(),
            2,
            "both lease settings appear in the rsm cells"
        );
        // The sharded-rsm section round-trips with its per-S scaling
        // table, zero sharded-oracle violations, and the requeue ratio
        // surfaced per row.
        let Some(Json::Obj(sharded)) = map.get("sharded_rsm") else {
            panic!("sharded_rsm section missing");
        };
        assert_eq!(sharded.get("violations"), Some(&Json::UInt(0)));
        let Some(Json::Arr(scaling)) = sharded.get("scaling") else {
            panic!("sharded scaling table missing");
        };
        assert!(!scaling.is_empty(), "scaling table has rows");
        for row in scaling {
            let Json::Obj(row) = row else {
                panic!("scaling rows are objects");
            };
            assert!(
                matches!(row.get("shards"), Some(Json::UInt(s)) if *s >= 1),
                "each row names its shard count"
            );
            assert_eq!(row.get("violations"), Some(&Json::UInt(0)));
            assert!(row.contains_key("requeue_ratio"));
            assert!(row.contains_key("commands_per_sec"));
        }
        // The contact-plan section round-trips with zero violations and
        // its lateness table (its internals are covered by
        // `contact_plan_section_is_safe_and_degrades_gracefully`).
        let Some(Json::Obj(contact)) = map.get("contact_plan") else {
            panic!("contact_plan section missing");
        };
        assert_eq!(contact.get("violations"), Some(&Json::UInt(0)));
        assert!(
            matches!(contact.get("predicate_lateness"), Some(Json::Arr(rows)) if !rows.is_empty()),
            "lateness table present"
        );
        // Predicate statistics are present, round-trip, and agree with the
        // safety verdicts.
        let Some(Json::Obj(predicates)) = map.get("predicates") else {
            panic!("predicate statistics missing");
        };
        assert_eq!(predicates.get("check"), Some(&Json::Str("ok".into())));
        assert!(
            matches!(predicates.get("monitored_scenarios"), Some(Json::UInt(n)) if *n > 0),
            "monitored scenarios recorded"
        );
        assert!(
            matches!(predicates.get("p2otr_scenarios"), Some(Json::UInt(n)) if *n > 0),
            "full-delivery cells achieve P2otr"
        );
        // The telemetry A/B section round-trips: the event census, the
        // per-phase time table, the measured recorder-on overhead, and a
        // forensic sample from the counterexample grid whose repro line
        // names a real scenario.
        let Some(Json::Obj(telemetry)) = map.get("telemetry") else {
            panic!("telemetry section missing");
        };
        assert!(
            matches!(telemetry.get("events_recorded"), Some(Json::UInt(n)) if *n > 0),
            "the recorder-on pass recorded events"
        );
        assert!(telemetry.contains_key("events_dropped"));
        assert!(
            matches!(telemetry.get("overhead_vs_off"), Some(Json::Float(r)) if *r > 0.0),
            "recorder overhead measured"
        );
        assert!(matches!(
            telemetry.get("recorder_off_scenarios_per_sec"),
            Some(Json::Float(_))
        ));
        assert!(matches!(
            telemetry.get("recorder_on_scenarios_per_sec"),
            Some(Json::Float(_))
        ));
        let Some(Json::Obj(kinds)) = telemetry.get("events") else {
            panic!("event census missing");
        };
        assert!(
            matches!(kinds.get("round_start"), Some(Json::UInt(n)) if *n > 0),
            "every round records a round_start event"
        );
        assert!(
            matches!(kinds.get("decide"), Some(Json::UInt(n)) if *n > 0),
            "decisions are recorded"
        );
        let Some(Json::Obj(phases)) = telemetry.get("phases") else {
            panic!("phase table missing");
        };
        for phase in ["ho_fill", "send", "deliver", "monitor", "oracle"] {
            assert!(phases.contains_key(phase), "phase {phase} missing");
        }
        let Some(Json::Obj(forensic)) = telemetry.get("forensic_sample") else {
            panic!("the counterexample grid must yield a forensic artifact");
        };
        assert!(
            matches!(forensic.get("repro"), Some(Json::Str(r)) if r.contains("--scenario")),
            "the artifact embeds its repro command"
        );
        assert!(
            matches!(forensic.get("violation"), Some(Json::Str(_))),
            "the artifact names the violation"
        );
        assert!(
            matches!(forensic.get("events"), Some(Json::Arr(e)) if !e.is_empty()),
            "the artifact carries the drained event ring"
        );
    }

    #[test]
    fn scenario_repro_reproduces_the_sweeps_verdict() {
        // A violating counterexample's id, looked up through the
        // `--scenario` repro path, must rerun to the *same* verdict and
        // carry a self-contained forensic artifact.
        let report = pnek_counterexample_sweep()
            .seeds(0..8)
            .telemetry(true)
            .run();
        let victim = report
            .verdicts
            .iter()
            .find(|v| !v.is_safe())
            .expect("UV violates agreement outside P_nek");
        let doc = run_scenario_by_id(&victim.id()).expect("counterexample ids are canonical");
        let Json::Obj(map) = doc else {
            panic!("repro doc is an object");
        };
        assert_eq!(map.get("scenario"), Some(&Json::Str(victim.id())));
        assert_eq!(map.get("layer"), Some(&Json::Str("model".into())));
        assert_eq!(
            map.get("repro"),
            Some(&Json::Str(ho_harness::repro_command(&victim.id())))
        );
        let Some(Json::Obj(verdict)) = map.get("verdict") else {
            panic!("repro doc embeds the verdict");
        };
        assert_eq!(
            verdict.get("violation"),
            Some(&Json::Str(
                victim.violation.clone().expect("victim violated")
            )),
            "the rerun reproduces the sweep's verdict"
        );
        let Some(Json::Obj(forensic)) = map.get("forensic") else {
            panic!("a violating rerun must produce a forensic artifact");
        };
        assert!(
            matches!(forensic.get("events"), Some(Json::Arr(e)) if !e.is_empty()),
            "the artifact carries the drained ring"
        );
        assert_eq!(forensic.get("seed"), Some(&Json::UInt(victim.seed)));

        // Unknown ids are rejected, not misattributed.
        assert!(run_scenario_by_id("model/no_such_adversary/n0/s0").is_none());

        // The same entry point resolves sim- and rsm-layer ids.
        let sim_id = sim_layer_sweep().scenarios()[0].id();
        let Some(Json::Obj(sim_doc)) = run_scenario_by_id(&sim_id) else {
            panic!("sim ids are canonical");
        };
        assert_eq!(sim_doc.get("layer"), Some(&Json::Str("sim".into())));
        assert_eq!(sim_doc.get("scenario"), Some(&Json::Str(sim_id)));
        let rsm_id = rsm_layer_sweeps()[0].scenarios()[0].id();
        let Some(Json::Obj(rsm_doc)) = run_scenario_by_id(&rsm_id) else {
            panic!("rsm ids are canonical");
        };
        assert_eq!(rsm_doc.get("layer"), Some(&Json::Str("rsm".into())));
    }

    #[test]
    fn contact_plan_section_is_safe_and_degrades_gracefully() {
        // The thinned contact section (the CI variant): zero violations
        // on every axis, every predicate window inside the good-suffix
        // bound (but measurably late — the plans must actually disrupt),
        // and the service-level degradation metrics present and non-zero.
        let doc = run_contact_plan(true);
        let text = format!("{doc}\n");
        let Json::Obj(map) = Json::parse(&text).expect("contact section round-trips") else {
            panic!("contact section must be an object");
        };
        assert_eq!(map.get("violations"), Some(&Json::UInt(0)));
        assert_eq!(map.get("late_predicate_windows"), Some(&Json::UInt(0)));
        let Some(Json::Arr(rows)) = map.get("predicate_lateness") else {
            panic!("lateness table missing");
        };
        assert_eq!(rows.len(), 6, "3 plans × {{P_k, P_su}}");
        for row in rows {
            let Json::Obj(row) = row else {
                panic!("lateness rows are objects");
            };
            assert_eq!(row.get("within_bound"), Some(&Json::Bool(true)), "{row:?}");
            assert!(
                matches!(row.get("worst_lateness_rounds"), Some(Json::UInt(l)) if *l > 0),
                "a contact plan must delay its predicate window: {row:?}"
            );
        }
        let Some(Json::Obj(deg)) = map.get("degradation") else {
            panic!("degradation aggregates missing");
        };
        assert!(matches!(deg.get("dark_rounds"), Some(Json::UInt(n)) if *n > 0));
        assert!(matches!(deg.get("backfill_entries"), Some(Json::UInt(n)) if *n > 0));
        assert!(matches!(deg.get("divergent_rounds"), Some(Json::UInt(n)) if *n > 0));
        // Every contact rsm scenario reconnects and converges inside its
        // round budget — recovery, not just survival.
        let rsm_scenarios = |section: &str| match map.get(section) {
            Some(Json::Obj(m)) => match m.get("scenarios") {
                Some(Json::UInt(n)) => *n,
                _ => panic!("{section} has no scenario count"),
            },
            _ => panic!("{section} section missing"),
        };
        let service_total = rsm_scenarios("rsm_layer") + rsm_scenarios("sharded_rsm");
        assert_eq!(
            deg.get("recovered_scenarios"),
            Some(&Json::UInt(service_total)),
            "every disrupted log must catch back up"
        );
        assert!(
            matches!(deg.get("worst_catch_up_rounds"), Some(Json::UInt(n)) if *n <= 80),
            "catch-up fits in the round budget"
        );
    }

    #[test]
    fn scenario_ids_are_unique_within_each_section() {
        use std::collections::HashSet;
        fn assert_unique(section: &str, ids: &[String]) {
            let mut seen = HashSet::new();
            for id in ids {
                assert!(seen.insert(id), "{section}: duplicate scenario id {id}");
            }
        }
        // Model layer: the safe grid, the P_nek counterexamples, and the
        // contact grid never collide — adversary names are injective now
        // that float parameters format as integers (p200, never 0.2).
        let model: Vec<String> = baseline_sweeps()
            .iter()
            .flat_map(Sweep::scenarios)
            .chain(pnek_counterexample_sweep().scenarios())
            .chain(contact_model_sweep().scenarios())
            .map(|s| s.id())
            .collect();
        assert_unique("model", &model);
        let sim: Vec<String> = sim_layer_sweep()
            .scenarios()
            .into_iter()
            .chain(contact_sim_sweep().scenarios())
            .map(|s| s.id())
            .collect();
        assert_unique("sim", &sim);
        let rsm: Vec<String> = rsm_layer_sweeps()
            .iter()
            .flat_map(RsmSweep::scenarios)
            .chain(contact_rsm_sweep().scenarios())
            .map(|s| s.id())
            .collect();
        assert_unique("rsm_layer", &rsm);
        let sharded: Vec<String> = sharded_rsm_sweeps()
            .iter()
            .flat_map(RsmSweep::scenarios)
            .chain(contact_sharded_sweep().scenarios())
            .map(|s| s.id())
            .collect();
        assert_unique("sharded_rsm", &sharded);
        // Across the two rsm *sections* the S=1 overlap is deliberate:
        // shard_seed(seed, 0) == seed makes those cells bit-identical
        // anchors for reading the router's overhead, not id accidents.
        let rsm_ids: HashSet<&String> = rsm.iter().collect();
        assert!(
            sharded.iter().any(|id| rsm_ids.contains(id)),
            "the S=1 anchor cells must appear in both rsm sections"
        );
    }

    #[test]
    fn cross_check_accepts_the_monitored_grid_and_catches_contradictions() {
        let safe: Vec<_> = baseline_sweeps()
            .into_iter()
            .map(|s| s.seeds(0..4).monitor_predicates(true).run())
            .collect();
        let counterexamples = pnek_counterexample_sweep()
            .seeds(0..4)
            .monitor_predicates(true)
            .run();
        assert!(counterexamples.violations > 0, "UV caught outside P_nek");
        predicate_cross_check(&safe, &counterexamples).expect("grid is consistent");

        // A violating UV verdict whose monitor claims P_nek held all run
        // must be flagged.
        let mut forged = counterexamples.clone();
        let victim = forged
            .verdicts
            .iter_mut()
            .find(|v| !v.is_safe())
            .expect("a violation exists");
        victim.predicates.as_mut().unwrap().first_empty_kernel = None;
        let err = predicate_cross_check(&safe, &forged).unwrap_err();
        assert!(err.contains("P_nek held"), "{err}");

        // An unmonitored verdict in a monitored grid is also a failure.
        let mut missing = counterexamples.clone();
        missing.verdicts[0].predicates = None;
        assert!(predicate_cross_check(&safe, &missing).is_err());
    }
}
