//! SW — the scenario sweep: the harness baseline behind `BENCH_sweep.json`.
//!
//! Defines the canonical scenario grid (every algorithm, the full fault
//! zoo, three system sizes, forty seeds) and the report document that
//! tracks the round loop's cost model release over release:
//!
//! * the SendPlan kernel's message economy (`clones_per_round_before` is
//!   what the per-destination `S_p^r` scheme deep-cloned,
//!   `allocs_per_round_after` is what the plan kernel constructs);
//! * the scratch-buffer reuse rate (`fresh_allocs_per_round` is what
//!   actually reaches the allocator — ~0 for broadcast algorithms in
//!   steady state);
//! * throughput, measured twice: a single-core pass (comparable across
//!   releases) and an all-core pass with the chunked work-stealing pool,
//!   plus the scaling efficiency between them.
//!
//! Regenerate with `cargo run --release -p bench --bin sweep` and diff the
//! trajectory; `--smoke` runs a thinned grid for CI (asserting zero safety
//! violations and that the emitted JSON parses back).

use std::time::Instant;

use ho_harness::{default_threads, AdversarySpec, AlgorithmSpec, Json, Sweep, SweepReport};

/// The canonical *safe* baseline grid: every cell must finish with zero
/// violations.
///
/// UniformVoting is swept only under environments that respect its safety
/// predicate `P_nek` (a non-empty kernel every round — a single down
/// process empties the kernel, so even crash-recovery is out of bounds);
/// OneThirdRule and LastVoting are swept under everything, including
/// partitions and empty-kernel chaos, because their safety needs no
/// communication predicate at all.
#[must_use]
pub fn baseline_sweeps() -> Vec<Sweep> {
    let unrestricted = [
        AdversarySpec::FullDelivery,
        AdversarySpec::RandomLoss { loss: 0.2 },
        AdversarySpec::RandomLoss { loss: 0.4 },
        AdversarySpec::Partition { blocks: 2 },
        AdversarySpec::CrashRecovery,
        AdversarySpec::KernelOnly { loss: 0.8 },
        AdversarySpec::EventuallyGood {
            bad_rounds: 6,
            loss: 0.5,
        },
    ];
    let kernel_preserving = [
        AdversarySpec::FullDelivery,
        AdversarySpec::KernelOnly { loss: 0.8 },
    ];
    vec![
        Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries(unrestricted)
            .sizes([4, 7, 10])
            .seeds(0..40)
            .max_rounds(120),
        Sweep::new()
            .algorithms([AlgorithmSpec::UniformVoting])
            .adversaries(kernel_preserving)
            .sizes([4, 7, 10])
            .seeds(0..40)
            .max_rounds(120),
    ]
}

/// The `P_nek` counterexample sweep: UniformVoting outside its safety
/// predicate. The harness is expected to *catch* agreement violations here
/// (empty kernels let disjoint groups — in space or, with staggered
/// outages, in time — confirm different votes); the report records how
/// many were detected so the checker's sensitivity is itself tracked.
#[must_use]
pub fn pnek_counterexample_sweep() -> Sweep {
    Sweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([
            AdversarySpec::RandomLoss { loss: 0.4 },
            AdversarySpec::Partition { blocks: 2 },
            AdversarySpec::CrashRecovery,
        ])
        .sizes([4, 7, 10])
        .seeds(0..40)
        .max_rounds(120)
}

/// One timed pass over the whole baseline grid at a fixed worker count.
struct Pass {
    reports: Vec<SweepReport>,
    wall: f64,
    scenarios: u64,
    threads: usize,
}

fn run_pass(sweeps: &[Sweep], threads: usize) -> Pass {
    let start = Instant::now();
    let reports: Vec<SweepReport> = sweeps
        .iter()
        .map(|s| s.clone().threads(threads).run())
        .collect();
    let wall = start.elapsed().as_secs_f64();
    Pass {
        scenarios: reports.iter().map(|r| r.scenarios as u64).sum(),
        wall,
        threads,
        reports,
    }
}

impl Pass {
    fn scenarios_per_sec(&self) -> f64 {
        if self.wall > 0.0 {
            self.scenarios as f64 / self.wall
        } else {
            0.0
        }
    }

    fn throughput_json(&self) -> Json {
        Json::obj([
            ("threads", Json::UInt(self.threads as u64)),
            ("wall_seconds", Json::Float(self.wall)),
            ("scenarios_per_sec", Json::Float(self.scenarios_per_sec())),
        ])
    }
}

/// Runs the baseline grid and merges the reports into the
/// `BENCH_sweep.json` document. The grid runs twice — single-core and
/// all-core — so the file tracks both the round loop's raw speed and the
/// harness's scaling. Pass `smoke = true` for the thinned CI variant
/// (8 seeds, single pass).
#[must_use]
pub fn run_baseline(smoke: bool) -> Json {
    let sweeps: Vec<Sweep> = if smoke {
        baseline_sweeps()
            .into_iter()
            .map(|s| s.seeds(0..8))
            .collect()
    } else {
        baseline_sweeps()
    };

    // Single-core pass: the release-over-release comparable number.
    let single = run_pass(&sweeps, 1);
    // All-core pass (on a single-core host this measures the same
    // configuration and the efficiency is trivially ~1).
    let threads = default_threads();
    let multi = run_pass(&sweeps, threads);
    // Near-linear scaling ⇔ efficiency ≈ 1.
    let efficiency = multi.scenarios_per_sec() / (single.scenarios_per_sec() * threads as f64);

    let counterexamples = if smoke {
        pnek_counterexample_sweep().seeds(0..8).run()
    } else {
        pnek_counterexample_sweep().run()
    };

    let reports = &single.reports;
    let scenarios: u64 = single.scenarios;
    let decided: u64 = reports.iter().map(|r| r.decided as u64).sum();
    let violations: u64 = reports.iter().map(|r| r.violations as u64).sum();
    let rounds: u64 = reports.iter().map(|r| r.totals.rounds).sum();
    let allocs: u64 = reports.iter().map(|r| r.totals.payload_allocs).sum();
    let reuses: u64 = reports.iter().map(|r| r.totals.payload_reuses).sum();
    let fresh: u64 = reports.iter().map(|r| r.totals.fresh_allocs()).sum();
    let legacy: u64 = reports.iter().map(|r| r.totals.legacy_clones).sum();
    let delivered: u64 = reports.iter().map(|r| r.totals.delivered).sum();

    let cells: Vec<Json> = reports
        .iter()
        .flat_map(|r| match r.to_json(false) {
            Json::Obj(mut map) => match map.remove("cells") {
                Some(Json::Arr(cells)) => cells,
                _ => Vec::new(),
            },
            _ => Vec::new(),
        })
        .collect();

    Json::obj([
        (
            "benchmark",
            Json::Str(if smoke {
                "sweep_smoke".into()
            } else {
                "sweep_baseline".into()
            }),
        ),
        ("scenarios", Json::UInt(scenarios)),
        ("decided", Json::UInt(decided)),
        ("violations", Json::UInt(violations)),
        ("wall_seconds", Json::Float(single.wall)),
        ("scenarios_per_sec", Json::Float(single.scenarios_per_sec())),
        ("threads", Json::UInt(1)),
        (
            "throughput",
            Json::obj([
                ("single_core", single.throughput_json()),
                ("all_cores", multi.throughput_json()),
                ("threads_available", Json::UInt(threads as u64)),
                ("scaling_efficiency", Json::Float(efficiency)),
            ]),
        ),
        (
            "sendplan",
            Json::obj([
                ("rounds", Json::UInt(rounds)),
                ("payload_allocs", Json::UInt(allocs)),
                ("payload_reuses", Json::UInt(reuses)),
                ("fresh_allocs", Json::UInt(fresh)),
                ("legacy_clones", Json::UInt(legacy)),
                ("delivered", Json::UInt(delivered)),
                ("allocs_per_round_after", Json::Float(ratio(allocs, rounds))),
                ("fresh_allocs_per_round", Json::Float(ratio(fresh, rounds))),
                (
                    "clones_per_round_before",
                    Json::Float(ratio(legacy, rounds)),
                ),
                ("reduction_factor", Json::Float(ratio(legacy, allocs))),
            ]),
        ),
        (
            "baseline_prev",
            // The figures committed in the pre-optimisation
            // BENCH_sweep.json (single core, SendPlan kernel but per-round
            // allocating executor), kept here so the file itself reads as
            // a before/after table. `speedup_single_core` is this run
            // against that reference; an interleaved same-machine A/B of
            // the two binaries shows the same factor.
            Json::obj([
                ("scenarios_per_sec", Json::Float(PREV_SCENARIOS_PER_SEC)),
                ("allocs_per_round", Json::Float(PREV_ALLOCS_PER_ROUND)),
                (
                    "speedup_single_core",
                    Json::Float(single.scenarios_per_sec() / PREV_SCENARIOS_PER_SEC),
                ),
                (
                    "fresh_allocs_per_round_now",
                    Json::Float(ratio(fresh, rounds)),
                ),
            ]),
        ),
        ("cells", Json::Arr(cells)),
        (
            "pnek_counterexamples",
            Json::obj([
                ("scenarios", Json::UInt(counterexamples.scenarios as u64)),
                (
                    "violations_detected",
                    Json::UInt(counterexamples.violations as u64),
                ),
            ]),
        ),
    ])
}

/// Single-core throughput of the previous committed `BENCH_sweep.json`
/// (the PR that introduced the SendPlan kernel and this harness).
const PREV_SCENARIOS_PER_SEC: f64 = 21_600.37;

/// Payload allocations per round in that baseline — every construction hit
/// the allocator (no scratch-buffer reuse existed).
const PREV_ALLOCS_PER_ROUND: f64 = 5.19;

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_grid_shape() {
        let sweeps = baseline_sweeps();
        assert_eq!(sweeps.len(), 2);
        // 2 algs × 7 adversaries × 3 sizes × 40 seeds, plus
        // 1 alg × 2 adversaries × 3 sizes × 40 seeds.
        assert_eq!(sweeps[0].scenarios().len(), 2 * 7 * 3 * 40);
        assert_eq!(sweeps[1].scenarios().len(), 2 * 3 * 40);
    }

    #[test]
    fn safe_grid_is_safe_and_counterexamples_are_caught() {
        // A thinned replica of the baseline grid (8 seeds instead of 40)
        // so the invariants behind BENCH_sweep.json are enforced in CI.
        for sweep in baseline_sweeps() {
            let report = sweep.seeds(0..8).run();
            assert_eq!(report.violations, 0, "safe grid must stay safe");
        }
        let report = pnek_counterexample_sweep().seeds(0..8).run();
        assert!(
            report.violations > 0,
            "the checker must catch UV outside P_nek"
        );
    }

    #[test]
    fn smoke_document_parses_and_is_safe() {
        let doc = run_baseline(true);
        let text = format!("{doc}\n");
        let parsed = Json::parse(&text).expect("report round-trips");
        let Json::Obj(map) = parsed else {
            panic!("top level must be an object");
        };
        assert_eq!(map.get("violations"), Some(&Json::UInt(0)));
        assert!(map.contains_key("throughput"));
        assert!(map.contains_key("sendplan"));
    }
}
