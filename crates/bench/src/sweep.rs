//! SW — the scenario sweep: the harness baseline behind `BENCH_sweep.json`.
//!
//! Defines the canonical scenario grid (every algorithm, the full fault
//! zoo, three system sizes, forty seeds) and the report document that
//! tracks the SendPlan kernel's message economy: `clones_per_round_before`
//! is what the per-destination `S_p^r` scheme deep-cloned, and
//! `allocs_per_round_after` is what the plan kernel allocates. Future perf
//! PRs regenerate the file with `cargo run --release -p bench --bin sweep`
//! and diff the trajectory.

use ho_harness::{AdversarySpec, AlgorithmSpec, Json, Sweep, SweepReport};

/// The canonical *safe* baseline grid: every cell must finish with zero
/// violations.
///
/// UniformVoting is swept only under environments that respect its safety
/// predicate `P_nek` (a non-empty kernel every round — a single down
/// process empties the kernel, so even crash-recovery is out of bounds);
/// OneThirdRule and LastVoting are swept under everything, including
/// partitions and empty-kernel chaos, because their safety needs no
/// communication predicate at all.
#[must_use]
pub fn baseline_sweeps() -> Vec<Sweep> {
    let unrestricted = [
        AdversarySpec::FullDelivery,
        AdversarySpec::RandomLoss { loss: 0.2 },
        AdversarySpec::RandomLoss { loss: 0.4 },
        AdversarySpec::Partition { blocks: 2 },
        AdversarySpec::CrashRecovery,
        AdversarySpec::KernelOnly { loss: 0.8 },
        AdversarySpec::EventuallyGood {
            bad_rounds: 6,
            loss: 0.5,
        },
    ];
    let kernel_preserving = [
        AdversarySpec::FullDelivery,
        AdversarySpec::KernelOnly { loss: 0.8 },
    ];
    vec![
        Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries(unrestricted)
            .sizes([4, 7, 10])
            .seeds(0..40)
            .max_rounds(120),
        Sweep::new()
            .algorithms([AlgorithmSpec::UniformVoting])
            .adversaries(kernel_preserving)
            .sizes([4, 7, 10])
            .seeds(0..40)
            .max_rounds(120),
    ]
}

/// The `P_nek` counterexample sweep: UniformVoting outside its safety
/// predicate. The harness is expected to *catch* agreement violations here
/// (empty kernels let disjoint groups — in space or, with staggered
/// outages, in time — confirm different votes); the report records how
/// many were detected so the checker's sensitivity is itself tracked.
#[must_use]
pub fn pnek_counterexample_sweep() -> Sweep {
    Sweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([
            AdversarySpec::RandomLoss { loss: 0.4 },
            AdversarySpec::Partition { blocks: 2 },
            AdversarySpec::CrashRecovery,
        ])
        .sizes([4, 7, 10])
        .seeds(0..40)
        .max_rounds(120)
}

/// Runs the baseline grid and merges the reports into the
/// `BENCH_sweep.json` document.
#[must_use]
pub fn run_baseline() -> Json {
    let reports: Vec<SweepReport> = baseline_sweeps().iter().map(Sweep::run).collect();
    let counterexamples = pnek_counterexample_sweep().run();

    let scenarios: u64 = reports.iter().map(|r| r.scenarios as u64).sum();
    let decided: u64 = reports.iter().map(|r| r.decided as u64).sum();
    let violations: u64 = reports.iter().map(|r| r.violations as u64).sum();
    let wall: f64 = reports.iter().map(|r| r.wall_seconds).sum();
    let rounds: u64 = reports.iter().map(|r| r.totals.rounds).sum();
    let allocs: u64 = reports.iter().map(|r| r.totals.payload_allocs).sum();
    let legacy: u64 = reports.iter().map(|r| r.totals.legacy_clones).sum();
    let delivered: u64 = reports.iter().map(|r| r.totals.delivered).sum();

    let cells: Vec<Json> = reports
        .iter()
        .flat_map(|r| match r.to_json(false) {
            Json::Obj(mut map) => match map.remove("cells") {
                Some(Json::Arr(cells)) => cells,
                _ => Vec::new(),
            },
            _ => Vec::new(),
        })
        .collect();

    Json::obj([
        ("benchmark", Json::Str("sweep_baseline".into())),
        ("scenarios", Json::UInt(scenarios)),
        ("decided", Json::UInt(decided)),
        ("violations", Json::UInt(violations)),
        ("wall_seconds", Json::Float(wall)),
        (
            "scenarios_per_sec",
            Json::Float(if wall > 0.0 {
                scenarios as f64 / wall
            } else {
                0.0
            }),
        ),
        (
            "threads",
            Json::UInt(reports.first().map_or(1, |r| r.threads as u64)),
        ),
        (
            "sendplan",
            Json::obj([
                ("rounds", Json::UInt(rounds)),
                ("payload_allocs", Json::UInt(allocs)),
                ("legacy_clones", Json::UInt(legacy)),
                ("delivered", Json::UInt(delivered)),
                ("allocs_per_round_after", Json::Float(ratio(allocs, rounds))),
                (
                    "clones_per_round_before",
                    Json::Float(ratio(legacy, rounds)),
                ),
                ("reduction_factor", Json::Float(ratio(legacy, allocs))),
            ]),
        ),
        ("cells", Json::Arr(cells)),
        (
            "pnek_counterexamples",
            Json::obj([
                ("scenarios", Json::UInt(counterexamples.scenarios as u64)),
                (
                    "violations_detected",
                    Json::UInt(counterexamples.violations as u64),
                ),
            ]),
        ),
    ])
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_grid_shape() {
        let sweeps = baseline_sweeps();
        assert_eq!(sweeps.len(), 2);
        // 2 algs × 7 adversaries × 3 sizes × 40 seeds, plus
        // 1 alg × 2 adversaries × 3 sizes × 40 seeds.
        assert_eq!(sweeps[0].scenarios().len(), 2 * 7 * 3 * 40);
        assert_eq!(sweeps[1].scenarios().len(), 2 * 3 * 40);
    }

    #[test]
    fn safe_grid_is_safe_and_counterexamples_are_caught() {
        // A thinned replica of the baseline grid (8 seeds instead of 40)
        // so the invariants behind BENCH_sweep.json are enforced in CI.
        for sweep in baseline_sweeps() {
            let report = sweep.seeds(0..8).run();
            assert_eq!(report.violations, 0, "safe grid must stay safe");
        }
        let report = pnek_counterexample_sweep().seeds(0..8).run();
        assert!(
            report.violations > 0,
            "the checker must catch UV outside P_nek"
        );
    }
}
