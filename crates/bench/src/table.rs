//! Plain-text table rendering for the experiment binaries.
//!
//! The paper's "tables" are reproduced as aligned ASCII tables on stdout so
//! the binaries' output can be diffed and pasted into `EXPERIMENTS.md`.

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an optional float with 1 decimal (`-` if absent).
#[must_use]
pub fn of1(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_owned(), f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2222".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("  a   bbb"));
        assert!(r.contains("100  2222"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(of1(None), "-");
        assert_eq!(of1(Some(3.0)), "3.0");
    }
}
