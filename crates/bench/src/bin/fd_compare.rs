//! Experiment binary `fd_compare` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::fd_comparison_table(10).print();
}
