//! SW — scenario sweep baseline: writes `BENCH_sweep.json`.
//!
//! `sweep [--smoke] [PATH]` — runs the canonical grid (single-core and
//! all-core passes) and writes the report. With `--smoke` a thinned grid
//! runs instead (the CI job), the emitted JSON is parsed back to prove it
//! round-trips, and a non-zero exit reports any safety violation.

use ho_harness::Json;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_sweep.json".to_owned();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }

    let doc = bench::sweep::run_baseline(smoke);
    let text = format!("{doc}\n");
    std::fs::write(&path, &text).expect("write sweep report");
    println!("wrote {path}");

    if smoke {
        // The smoke contract: the report parses back and the safe grid
        // stayed safe.
        let parsed = Json::parse(&text).expect("sweep report must parse back");
        let Json::Obj(map) = parsed else {
            panic!("sweep report must be a JSON object");
        };
        match map.get("violations") {
            Some(Json::UInt(0)) => println!("smoke ok: 0 violations, JSON parses"),
            other => {
                eprintln!("smoke FAILED: violations = {other:?}");
                std::process::exit(1);
            }
        }
    }
}
