//! SW — scenario sweep baseline: writes `BENCH_sweep.json`.

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_owned());
    let doc = bench::sweep::run_baseline();
    std::fs::write(&path, format!("{doc}\n")).expect("write sweep report");
    println!("wrote {path}");
}
