//! SW — scenario sweep baseline: writes `BENCH_sweep.json`.
//!
//! `sweep [--smoke | --rsm] [PATH]` — runs the canonical grid (single-core,
//! all-core, and monitored passes, plus the sim and rsm layers) and writes
//! the report. With `--smoke` a thinned grid runs instead (the CI job), the
//! emitted JSON is parsed back to prove it round-trips — predicate, sim and
//! rsm statistics included — and a non-zero exit reports any safety
//! violation, any prefix-agreement or exactly-once violation in the rsm
//! layer, any disagreement between a monitored safety-environment
//! predicate and the safety verdict (e.g. an empty kernel under the
//! `kernel_only` adversary), any contact-plan predicate window landing
//! after its guaranteed-good bound, *or* a lease-on full-delivery cell
//! whose requeue ratio exceeds 0.1 (the flow-control acceptance gate).
//! With `--rsm` only the replicated-log grid runs (full size,
//! per-scenario verdicts embedded) — the fast iteration loop for
//! service-level tuning.
//!
//! `sweep --scenario <id> [PATH]` — single-scenario repro mode, the
//! command every forensic artifact embeds: reruns exactly one scenario
//! from any canonical grid with the flight recorder on and prints (or
//! writes, when PATH is given) the self-contained result document —
//! verdict, telemetry digest, and the forensic artifact when the run
//! ends in a violation. Exits 2 when no grid produces the id.

use ho_harness::{rsm_report_json, Json};

fn main() {
    let mut smoke = false;
    let mut rsm_only = false;
    let mut scenario: Option<String> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--rsm" => rsm_only = true,
            "--scenario" => {
                scenario = Some(args.next().unwrap_or_else(|| {
                    eprintln!(
                        "--scenario needs an id (e.g. uniform_voting/random_loss_0p40/n4/s0)"
                    );
                    std::process::exit(2);
                }));
            }
            _ => path = Some(arg),
        }
    }

    if let Some(id) = scenario {
        let Some(doc) = bench::sweep::run_scenario_by_id(&id) else {
            eprintln!("no canonical grid produces scenario id {id:?}");
            std::process::exit(2);
        };
        let text = format!("{}\n", doc.pretty());
        if let Some(path) = path {
            std::fs::write(&path, &text).expect("write repro document");
            println!("wrote {path}");
        } else {
            print!("{text}");
        }
        return;
    }

    if rsm_only {
        let path = path.unwrap_or_else(|| "BENCH_rsm.json".to_owned());
        let report = bench::sweep::run_rsm_layer(false);
        let sharded = bench::sweep::run_sharded_rsm(false);
        let doc = Json::obj([
            ("benchmark", Json::Str("rsm_sweep".into())),
            ("rsm_layer", rsm_report_json(&report, true)),
            ("sharded_rsm", bench::sweep::sharded_rsm_json(&sharded)),
        ]);
        std::fs::write(&path, format!("{doc}\n")).expect("write rsm report");
        println!(
            "wrote {path}: {} scenarios, {} violations, {:.0} commands/sec, {:.2} rounds/slot",
            report.scenarios,
            report.violations,
            report.commands_per_sec,
            report.rounds_per_slot()
        );
        println!(
            "sharded: {} scenarios, {} violations, requeue ratio {:.2}",
            sharded.scenarios,
            sharded.violations,
            sharded.totals.requeue_ratio()
        );
        if report.violations > 0 || sharded.violations > 0 {
            for v in report.violating().into_iter().chain(sharded.violating()) {
                eprintln!("rsm FAILED: {}: {:?}", v.id(), v.violation);
            }
            std::process::exit(1);
        }
        return;
    }

    let path = path.unwrap_or_else(|| "BENCH_sweep.json".to_owned());
    let doc = bench::sweep::run_baseline(smoke);
    let text = format!("{doc}\n");
    std::fs::write(&path, &text).expect("write sweep report");
    println!("wrote {path}");

    if smoke {
        // The smoke contract: the report parses back (with its predicate
        // fields), the safe grid stayed safe, and the online predicate
        // monitor agreed with every safety verdict.
        let parsed = Json::parse(&text).expect("sweep report must parse back");
        let Json::Obj(map) = parsed else {
            panic!("sweep report must be a JSON object");
        };
        match map.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: violations = {other:?}");
                std::process::exit(1);
            }
        }
        let Some(Json::Obj(predicates)) = map.get("predicates") else {
            eprintln!("smoke FAILED: no predicate statistics in the report");
            std::process::exit(1);
        };
        match predicates.get("monitored_scenarios") {
            Some(Json::UInt(n)) if *n > 0 => {}
            other => {
                eprintln!("smoke FAILED: monitored_scenarios = {other:?}");
                std::process::exit(1);
            }
        }
        match predicates.get("check") {
            Some(Json::Str(status)) if status == "ok" => {}
            other => {
                eprintln!("smoke FAILED: predicate/safety cross-check: {other:?}");
                std::process::exit(1);
            }
        }
        // The sim layer's contract: every scenario delivered the predicate
        // window its implementation (Algorithm 2/3) promises, within the
        // theorem bound.
        let Some(Json::Obj(sim)) = map.get("sim_layer") else {
            eprintln!("smoke FAILED: no sim_layer section in the report");
            std::process::exit(1);
        };
        match sim.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: sim_layer violations = {other:?}");
                std::process::exit(1);
            }
        }
        match sim.get("scenarios") {
            Some(Json::UInt(n)) if *n > 0 => {}
            other => {
                eprintln!("smoke FAILED: sim_layer scenarios = {other:?}");
                std::process::exit(1);
            }
        }
        // The scheduler contract: the measured grid ran on the calendar
        // wheel, its event-throughput fields round-trip, and the same grid
        // on the binary-heap oracle produced an identical verdict list —
        // any divergence means the wheel reordered an event.
        match sim.get("scheduler") {
            Some(Json::Str(s)) if s == "wheel" => {}
            other => {
                eprintln!("smoke FAILED: sim_layer scheduler = {other:?}");
                std::process::exit(1);
            }
        }
        match sim.get("events_per_sec") {
            Some(Json::Float(e)) if *e > 0.0 => {}
            other => {
                eprintln!("smoke FAILED: sim_layer events_per_sec = {other:?}");
                std::process::exit(1);
            }
        }
        match sim.get("scheduler_equivalence") {
            Some(Json::Obj(eq)) => match eq.get("divergences") {
                Some(Json::UInt(0)) => {}
                other => {
                    eprintln!(
                        "smoke FAILED: scheduler divergences = {other:?} (first: {:?})",
                        eq.get("first_divergence")
                    );
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("smoke FAILED: scheduler_equivalence section = {other:?}");
                std::process::exit(1);
            }
        }
        // The rsm layer's contract: all replicas applied identical log
        // prefixes, every command at most once — across the whole grid.
        let Some(Json::Obj(rsm)) = map.get("rsm_layer") else {
            eprintln!("smoke FAILED: no rsm_layer section in the report");
            std::process::exit(1);
        };
        match rsm.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: rsm_layer violations = {other:?}");
                std::process::exit(1);
            }
        }
        match rsm.get("scenarios") {
            Some(Json::UInt(n)) if *n > 0 => {}
            other => {
                eprintln!("smoke FAILED: rsm_layer scenarios = {other:?}");
                std::process::exit(1);
            }
        }
        match rsm.get("service") {
            Some(Json::Obj(service)) if matches!(service.get("commands"), Some(Json::UInt(n)) if *n > 0) =>
                {}
            other => {
                eprintln!("smoke FAILED: rsm_layer service aggregates = {other:?}");
                std::process::exit(1);
            }
        }
        // The flow-control contract: the lease axis round-trips (`lease`,
        // `noop_slots`, `lease_takeovers` in every cell), both settings
        // are present, and every lease-on full-delivery cell clears the
        // requeue gate (requeued/applied ≤ 0.1 under symmetric delivery).
        let Some(Json::Arr(rsm_cells)) = rsm.get("cells") else {
            eprintln!("smoke FAILED: no rsm_layer cell table in the report");
            std::process::exit(1);
        };
        let mut saw_lease = [false, false];
        for cell in rsm_cells {
            let Json::Obj(cell) = cell else {
                eprintln!("smoke FAILED: rsm_layer cell is not an object");
                std::process::exit(1);
            };
            let Some(Json::Bool(lease)) = cell.get("lease") else {
                eprintln!("smoke FAILED: rsm_layer cell missing lease flag: {cell:?}");
                std::process::exit(1);
            };
            saw_lease[usize::from(*lease)] = true;
            if !cell.contains_key("noop_slots") || !cell.contains_key("lease_takeovers") {
                eprintln!("smoke FAILED: rsm_layer cell missing flow-control fields: {cell:?}");
                std::process::exit(1);
            }
            if *lease && cell.get("adversary") == Some(&Json::Str("full_delivery".into())) {
                let ratio = match cell.get("requeue_ratio") {
                    Some(Json::Float(r)) => *r,
                    Some(Json::UInt(n)) => *n as f64,
                    Some(Json::Null) => 0.0,
                    other => {
                        eprintln!("smoke FAILED: rsm_layer requeue_ratio = {other:?}");
                        std::process::exit(1);
                    }
                };
                if ratio > 0.1 {
                    eprintln!(
                        "smoke FAILED: lease-on full-delivery requeue ratio {ratio} > 0.1: {cell:?}"
                    );
                    std::process::exit(1);
                }
            }
        }
        if saw_lease != [true, true] {
            eprintln!("smoke FAILED: the rsm grid must sweep lease off AND on ({saw_lease:?})");
            std::process::exit(1);
        }
        // The sharded layer's contract: the partitioned service kept the
        // sharded oracle (per-shard prefix agreement + exactly-once,
        // namespace containment, cross-shard disjointness) and the per-S
        // scaling table round-trips with its requeue ratios.
        let Some(Json::Obj(sharded)) = map.get("sharded_rsm") else {
            eprintln!("smoke FAILED: no sharded_rsm section in the report");
            std::process::exit(1);
        };
        match sharded.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: sharded_rsm violations = {other:?}");
                std::process::exit(1);
            }
        }
        match sharded.get("scaling") {
            Some(Json::Arr(rows)) if !rows.is_empty() => {
                for row in rows {
                    let Json::Obj(row) = row else {
                        eprintln!("smoke FAILED: sharded_rsm scaling row is not an object");
                        std::process::exit(1);
                    };
                    if !matches!(row.get("shards"), Some(Json::UInt(s)) if *s >= 1)
                        || !row.contains_key("requeue_ratio")
                    {
                        eprintln!("smoke FAILED: sharded_rsm scaling row incomplete: {row:?}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("smoke FAILED: sharded_rsm scaling table = {other:?}");
                std::process::exit(1);
            }
        }
        // The telemetry contract: the flight-recorder A/B section
        // round-trips (event census, measured overhead), the injected
        // counterexample produced a forensic artifact with a repro line,
        // and the repro line's scenario lookup reproduces the verdict.
        let Some(Json::Obj(telemetry)) = map.get("telemetry") else {
            eprintln!("smoke FAILED: no telemetry section in the report");
            std::process::exit(1);
        };
        match telemetry.get("events_recorded") {
            Some(Json::UInt(n)) if *n > 0 => {}
            other => {
                eprintln!("smoke FAILED: telemetry events_recorded = {other:?}");
                std::process::exit(1);
            }
        }
        match telemetry.get("overhead_vs_off") {
            Some(Json::Float(r)) if *r > 0.0 => {}
            other => {
                eprintln!("smoke FAILED: telemetry overhead_vs_off = {other:?}");
                std::process::exit(1);
            }
        }
        if !matches!(telemetry.get("events"), Some(Json::Obj(kinds)) if !kinds.is_empty())
            || !matches!(telemetry.get("phases"), Some(Json::Obj(phases)) if !phases.is_empty())
        {
            eprintln!("smoke FAILED: telemetry event/phase tables missing");
            std::process::exit(1);
        }
        let Some(Json::Obj(forensic)) = telemetry.get("forensic_sample") else {
            eprintln!("smoke FAILED: no forensic artifact from the counterexample grid");
            std::process::exit(1);
        };
        let (Some(Json::Str(forensic_id)), Some(Json::Str(repro))) =
            (forensic.get("scenario"), forensic.get("repro"))
        else {
            eprintln!("smoke FAILED: forensic artifact missing scenario/repro: {forensic:?}");
            std::process::exit(1);
        };
        if !repro.contains("--scenario") || !repro.contains(forensic_id.as_str()) {
            eprintln!("smoke FAILED: forensic repro line malformed: {repro:?}");
            std::process::exit(1);
        }
        if !matches!(forensic.get("events"), Some(Json::Arr(events)) if !events.is_empty()) {
            eprintln!("smoke FAILED: forensic artifact carries no events");
            std::process::exit(1);
        }
        // Execute what the repro line executes, in process: the lookup
        // must find the id and the rerun must flag the same violation.
        match bench::sweep::run_scenario_by_id(forensic_id) {
            Some(Json::Obj(repro_doc)) => {
                let reproduced = matches!(
                    repro_doc.get("verdict"),
                    Some(Json::Obj(v)) if matches!(v.get("violation"), Some(Json::Str(_)))
                ) && repro_doc.contains_key("forensic");
                if !reproduced {
                    eprintln!(
                        "smoke FAILED: repro of {forensic_id} did not reproduce the violation"
                    );
                    std::process::exit(1);
                }
            }
            other => {
                eprintln!("smoke FAILED: repro lookup of {forensic_id} returned {other:?}");
                std::process::exit(1);
            }
        }
        // The contact-plan layer's contract: disruption-tolerant link
        // schedules stayed safe on every axis, every predicate window
        // landed by the guaranteed-good bound, and the degradation
        // metrics (dark rounds, backfill, catch-up) round-trip.
        let Some(Json::Obj(contact)) = map.get("contact_plan") else {
            eprintln!("smoke FAILED: no contact_plan section in the report");
            std::process::exit(1);
        };
        match contact.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: contact_plan violations = {other:?}");
                std::process::exit(1);
            }
        }
        match contact.get("late_predicate_windows") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: contact_plan late predicate windows = {other:?}");
                std::process::exit(1);
            }
        }
        match contact.get("degradation") {
            Some(Json::Obj(deg))
                if matches!(deg.get("dark_rounds"), Some(Json::UInt(n)) if *n > 0)
                    && matches!(deg.get("backfill_entries"), Some(Json::UInt(n)) if *n > 0)
                    && deg.contains_key("worst_catch_up_rounds") => {}
            other => {
                eprintln!("smoke FAILED: contact_plan degradation aggregates = {other:?}");
                std::process::exit(1);
            }
        }
        // The per-cell dark-round and catch-up fields survive the JSON
        // round-trip through the contact rsm table.
        let cells_ok = matches!(
            contact.get("rsm_layer"),
            Some(Json::Obj(rsm)) if matches!(
                rsm.get("cells"),
                Some(Json::Arr(cells)) if !cells.is_empty() && cells.iter().all(|c| matches!(
                    c,
                    Json::Obj(cell) if cell.contains_key("dark_rounds")
                        && cell.contains_key("worst_catch_up_rounds")
                        && cell.contains_key("backfill_entries")
                ))
            )
        );
        if !cells_ok {
            eprintln!("smoke FAILED: contact_plan rsm cells missing degradation fields");
            std::process::exit(1);
        }
        println!(
            "smoke ok: 0 violations, predicate fields round-trip, cross-check ok, \
             sim layer kept every Alg2/Alg3 promise, rsm layer ordered its logs \
             without a fork, sharded layer kept every shard disjoint, contact \
             plans degraded gracefully, every predicate window was on time, and \
             the forensic repro reproduced its violation"
        );
    }
}
