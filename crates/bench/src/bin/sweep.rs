//! SW — scenario sweep baseline: writes `BENCH_sweep.json`.
//!
//! `sweep [--smoke] [PATH]` — runs the canonical grid (single-core,
//! all-core, and monitored passes) and writes the report. With `--smoke` a
//! thinned grid runs instead (the CI job), the emitted JSON is parsed back
//! to prove it round-trips — predicate statistics included — and a
//! non-zero exit reports any safety violation *or* any disagreement
//! between a monitored safety-environment predicate and the safety verdict
//! (e.g. an empty kernel under the `kernel_only` adversary).

use ho_harness::Json;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_sweep.json".to_owned();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }

    let doc = bench::sweep::run_baseline(smoke);
    let text = format!("{doc}\n");
    std::fs::write(&path, &text).expect("write sweep report");
    println!("wrote {path}");

    if smoke {
        // The smoke contract: the report parses back (with its predicate
        // fields), the safe grid stayed safe, and the online predicate
        // monitor agreed with every safety verdict.
        let parsed = Json::parse(&text).expect("sweep report must parse back");
        let Json::Obj(map) = parsed else {
            panic!("sweep report must be a JSON object");
        };
        match map.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: violations = {other:?}");
                std::process::exit(1);
            }
        }
        let Some(Json::Obj(predicates)) = map.get("predicates") else {
            eprintln!("smoke FAILED: no predicate statistics in the report");
            std::process::exit(1);
        };
        match predicates.get("monitored_scenarios") {
            Some(Json::UInt(n)) if *n > 0 => {}
            other => {
                eprintln!("smoke FAILED: monitored_scenarios = {other:?}");
                std::process::exit(1);
            }
        }
        match predicates.get("check") {
            Some(Json::Str(status)) if status == "ok" => {}
            other => {
                eprintln!("smoke FAILED: predicate/safety cross-check: {other:?}");
                std::process::exit(1);
            }
        }
        // The sim layer's contract: every scenario delivered the predicate
        // window its implementation (Algorithm 2/3) promises, within the
        // theorem bound.
        let Some(Json::Obj(sim)) = map.get("sim_layer") else {
            eprintln!("smoke FAILED: no sim_layer section in the report");
            std::process::exit(1);
        };
        match sim.get("violations") {
            Some(Json::UInt(0)) => {}
            other => {
                eprintln!("smoke FAILED: sim_layer violations = {other:?}");
                std::process::exit(1);
            }
        }
        match sim.get("scenarios") {
            Some(Json::UInt(n)) if *n > 0 => {}
            other => {
                eprintln!("smoke FAILED: sim_layer scenarios = {other:?}");
                std::process::exit(1);
            }
        }
        println!(
            "smoke ok: 0 violations, predicate fields round-trip, cross-check ok, \
             sim layer kept every Alg2/Alg3 promise"
        );
    }
}
