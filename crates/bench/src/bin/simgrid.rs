fn main() {
    for _ in 0..5 {
        let report = bench::sweep::sim_layer_sweep().run();
        println!(
            "sim_layer: {} scenarios, {} violations, {:.1} scen/s, wall {:.4}s",
            report.scenarios, report.violations, report.scenarios_per_sec, report.wall_seconds
        );
    }
}
