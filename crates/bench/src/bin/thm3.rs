//! Experiment binary `thm3` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::thm3_table(1.0, 2.0, 10).print();
}
