//! Experiment binary `translation` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::translation_table(200).print();
}
