//! Experiment binary `table1` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::table1_predicates(4, 2000).print();
}
