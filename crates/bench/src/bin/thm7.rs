//! Experiment binary `thm7` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::thm7_table(1.0, 2.0, 10).print();
}
