//! Experiment binary `stack` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::full_stack_table(1.0, 2.0, 10).print();
}
