//! Experiment binary `ablation` — design-choice ablations of the predicate
//! implementation layer (timeout constant, INIT re-announcement, reception
//! policy).

use ho_predicates::bounds::BoundParams;

fn main() {
    let params = BoundParams::new(4, 1.0, 2.0);
    bench::ablation::ablation_alg2_timeout(params, 10).print();
    bench::ablation::ablation_init_resend(params, 1, 10).print();
    bench::ablation::ablation_policy(params, 1, 10).print();
}
