//! Experiment binary `thm5` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::thm5_table(1.0, 2.0, 10).print();
}
