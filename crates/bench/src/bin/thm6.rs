//! Experiment binary `thm6` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::thm6_table(1.0, 2.0, 10).print();
}
