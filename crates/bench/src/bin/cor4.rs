//! Experiment binary `cor4` — prints the corresponding EXPERIMENTS.md table.

fn main() {
    bench::experiments::corollary4_table(1.0, 2.0, 10).print();
}
